"""Tests for the command-line entry points."""

import pytest

from repro.cli import main_flow, main_table1


class TestTable1Command:
    def test_single_dataset_fast(self, capsys):
        exit_code = main_table1(["--datasets", "redwine", "--fast", "--samples", "220"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "redwine" in out
        assert "Energy" in out
        assert "energy_improvement_average" in out

    def test_invalid_dataset_rejected(self):
        with pytest.raises(SystemExit):
            main_table1(["--datasets", "imagenet"])

    def test_jobs_and_cache_dir_flags(self, tmp_path, capsys):
        """A sharded cold run persists results; the warm rerun matches it."""
        from repro.core.design_flow import clear_flow_cache, training_run_count

        args = [
            "--datasets", "redwine",
            "--fast", "--samples", "220",
            "--jobs", "2",
            "--cache-dir", str(tmp_path),
        ]
        assert main_table1(args) == 0
        cold_out = capsys.readouterr().out
        assert list(tmp_path.glob("flow-*.pkl"))  # results were persisted

        clear_flow_cache()
        before = training_run_count()
        assert main_table1(args) == 0
        warm_out = capsys.readouterr().out
        assert training_run_count() == before  # warm run retrained nothing
        assert warm_out == cold_out

    def test_no_cache_flag_disables_persistence(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main_table1(
            ["--datasets", "redwine", "--fast", "--samples", "220", "--no-cache"]
        ) == 0
        assert not list(tmp_path.glob("flow-*.pkl"))


class TestFlowCommand:
    def test_sequential_flow_report(self, capsys):
        exit_code = main_flow(["redwine", "ours", "--fast", "--samples", "220"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Ours" in out
        assert "weight bits used" in out

    def test_verilog_export(self, tmp_path, capsys):
        target = tmp_path / "design.v"
        exit_code = main_flow(
            ["redwine", "ours", "--fast", "--samples", "220", "--verilog", str(target)]
        )
        assert exit_code == 0
        text = target.read_text()
        assert "module" in text and "endmodule" in text

    def test_verilog_export_unsupported_for_baselines(self, tmp_path):
        target = tmp_path / "baseline.v"
        exit_code = main_flow(
            ["redwine", "mlp_parallel", "--fast", "--samples", "220", "--verilog", str(target)]
        )
        assert exit_code == 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(SystemExit):
            main_flow(["redwine", "transformer"])
