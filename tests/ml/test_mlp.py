"""Tests for the MLP baseline trainer."""

import numpy as np
import pytest

from repro.ml.mlp import MLPClassifier, one_hot, relu, relu_grad, softmax


class TestActivations:
    def test_relu(self):
        x = np.array([-2.0, 0.0, 3.0])
        assert np.array_equal(relu(x), np.array([0.0, 0.0, 3.0]))

    def test_relu_grad(self):
        x = np.array([-1.0, 0.0, 2.0])
        assert np.array_equal(relu_grad(x), np.array([0.0, 0.0, 1.0]))

    def test_softmax_rows_sum_to_one(self, rng):
        z = rng.normal(size=(10, 5)) * 10
        p = softmax(z)
        assert np.allclose(p.sum(axis=1), 1.0)
        assert np.all(p >= 0)

    def test_softmax_stable_for_large_inputs(self):
        z = np.array([[1000.0, 1001.0, 999.0]])
        p = softmax(z)
        assert np.all(np.isfinite(p))
        assert p[0, 1] == p.max()

    def test_one_hot(self):
        out = one_hot(np.array([0, 2, 1]), 3)
        assert np.array_equal(out, np.eye(3)[[0, 2, 1]])

    def test_one_hot_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            one_hot(np.array([3]), 3)


class TestMLPTraining:
    def test_learns_separable_problem(self, small_split, trained_mlp):
        assert trained_mlp.score(small_split.X_test, small_split.y_test) >= 0.75

    def test_loss_decreases(self, trained_mlp):
        losses = trained_mlp.history_.losses
        assert len(losses) >= 5
        assert losses[-1] < losses[0]

    def test_layer_sizes(self, small_split, trained_mlp):
        sizes = trained_mlp.layer_sizes_
        assert sizes[0] == small_split.n_features
        assert sizes[-1] == small_split.n_classes
        assert sizes[1] == 4

    def test_parameter_count(self, trained_mlp):
        sizes = trained_mlp.layer_sizes_
        expected = sum(
            sizes[i] * sizes[i + 1] + sizes[i + 1] for i in range(len(sizes) - 1)
        )
        assert trained_mlp.n_parameters_ == expected

    def test_multiplication_count(self, trained_mlp):
        sizes = trained_mlp.layer_sizes_
        expected = sum(sizes[i] * sizes[i + 1] for i in range(len(sizes) - 1))
        assert trained_mlp.n_multiplications_ == expected

    def test_predict_proba_valid_distribution(self, small_split, trained_mlp):
        proba = trained_mlp.predict_proba(small_split.X_test)
        assert proba.shape == (small_split.n_test, small_split.n_classes)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_predictions_are_known_classes(self, small_split, trained_mlp):
        preds = trained_mlp.predict(small_split.X_test)
        assert set(np.unique(preds)).issubset(set(trained_mlp.classes_.tolist()))

    def test_deterministic_given_seed(self, small_split):
        a = MLPClassifier(hidden_layer_sizes=(3,), max_epochs=10, random_state=5)
        b = MLPClassifier(hidden_layer_sizes=(3,), max_epochs=10, random_state=5)
        a.fit(small_split.X_train, small_split.y_train)
        b.fit(small_split.X_train, small_split.y_train)
        for wa, wb in zip(a.weights_, b.weights_):
            assert np.allclose(wa, wb)

    def test_two_hidden_layers(self, small_split):
        clf = MLPClassifier(hidden_layer_sizes=(5, 3), max_epochs=30, random_state=0)
        clf.fit(small_split.X_train, small_split.y_train)
        assert clf.layer_sizes_ == (
            small_split.n_features,
            5,
            3,
            small_split.n_classes,
        )

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            MLPClassifier().predict(np.zeros((1, 3)))

    def test_invalid_hyperparameters_rejected(self):
        with pytest.raises(ValueError):
            MLPClassifier(hidden_layer_sizes=(0,))
        with pytest.raises(ValueError):
            MLPClassifier(learning_rate=-1.0)
        with pytest.raises(ValueError):
            MLPClassifier(max_epochs=0)

    def test_single_class_rejected(self):
        X = np.random.default_rng(0).normal(size=(10, 2))
        with pytest.raises(ValueError):
            MLPClassifier().fit(X, np.zeros(10))
