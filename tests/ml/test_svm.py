"""Tests for the binary linear SVM trainers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.svm import LinearSVC


def make_blobs(n=80, gap=3.0, seed=0, flip=0.0):
    """Two Gaussian blobs separated along a diagonal direction."""
    rng = np.random.default_rng(seed)
    half = n // 2
    X0 = rng.normal(loc=-gap / 2, scale=1.0, size=(half, 2))
    X1 = rng.normal(loc=+gap / 2, scale=1.0, size=(n - half, 2))
    X = np.vstack([X0, X1])
    y = np.array([0] * half + [1] * (n - half))
    if flip > 0:
        mask = rng.random(n) < flip
        y = np.where(mask, 1 - y, y)
    return X, y


class TestLinearSVCBasics:
    def test_separable_problem_high_accuracy(self):
        X, y = make_blobs(gap=4.0)
        clf = LinearSVC(max_iter=100, random_state=0).fit(X, y)
        assert clf.score(X, y) >= 0.97

    def test_coefficients_shape(self):
        X, y = make_blobs()
        clf = LinearSVC().fit(X, y)
        assert clf.coef_.shape == (2,)
        assert isinstance(clf.intercept_, float)

    def test_decision_function_sign_matches_prediction(self):
        X, y = make_blobs(gap=4.0)
        clf = LinearSVC().fit(X, y)
        scores = clf.decision_function(X)
        preds = clf.predict(X)
        assert np.array_equal(preds, np.where(scores >= 0, 1, 0))

    def test_predict_preserves_original_labels(self):
        X, y = make_blobs()
        labels = np.where(y == 1, 7, -3)
        clf = LinearSVC().fit(X, labels)
        assert set(np.unique(clf.predict(X))).issubset({-3, 7})

    def test_single_sample_prediction(self):
        X, y = make_blobs()
        clf = LinearSVC().fit(X, y)
        pred = clf.predict(X[0])
        assert pred.shape == (1,)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LinearSVC().predict(np.zeros((1, 2)))

    def test_multiclass_input_rejected(self):
        X = np.random.default_rng(0).normal(size=(30, 2))
        y = np.arange(30) % 3
        with pytest.raises(ValueError):
            LinearSVC().fit(X, y)

    def test_feature_count_mismatch_rejected(self):
        X, y = make_blobs()
        clf = LinearSVC().fit(X, y)
        with pytest.raises(ValueError):
            clf.decision_function(np.zeros((3, 5)))

    def test_invalid_hyperparameters_rejected(self):
        with pytest.raises(ValueError):
            LinearSVC(C=-1.0)
        with pytest.raises(ValueError):
            LinearSVC(loss="bogus")
        with pytest.raises(ValueError):
            LinearSVC(solver="bogus")
        with pytest.raises(ValueError):
            LinearSVC(max_iter=0)


class TestSolvers:
    @pytest.mark.parametrize("loss", ["hinge", "squared_hinge"])
    def test_dual_cd_both_losses(self, loss):
        X, y = make_blobs(gap=3.5, seed=3)
        clf = LinearSVC(loss=loss, solver="dual_cd", max_iter=200).fit(X, y)
        assert clf.score(X, y) >= 0.95

    def test_sgd_solver_learns(self):
        X, y = make_blobs(gap=4.0, seed=5)
        clf = LinearSVC(solver="sgd", max_iter=150, random_state=0).fit(X, y)
        assert clf.score(X, y) >= 0.9

    def test_solvers_agree_on_separable_data(self):
        X, y = make_blobs(gap=5.0, seed=11)
        dual = LinearSVC(solver="dual_cd", max_iter=300).fit(X, y)
        sgd = LinearSVC(solver="sgd", max_iter=300).fit(X, y)
        agreement = np.mean(dual.predict(X) == sgd.predict(X))
        assert agreement >= 0.95

    def test_dual_solver_exposes_support_vectors(self):
        X, y = make_blobs(gap=3.0, flip=0.02)
        clf = LinearSVC(solver="dual_cd", max_iter=200).fit(X, y)
        assert clf.n_support_ >= 2
        assert clf.n_support_ <= len(y)
        assert np.all(clf.dual_coef_ >= -1e-12)

    def test_sgd_solver_has_no_support_vectors(self):
        X, y = make_blobs()
        clf = LinearSVC(solver="sgd", max_iter=20).fit(X, y)
        with pytest.raises(RuntimeError):
            _ = clf.n_support_

    def test_history_recorded(self):
        X, y = make_blobs()
        clf = LinearSVC(max_iter=100).fit(X, y)
        assert clf.history_.n_iterations >= 1
        assert np.isfinite(clf.history_.objective)

    def test_convergence_flag_on_easy_problem(self):
        X, y = make_blobs(gap=6.0)
        clf = LinearSVC(max_iter=1000, tol=1e-3).fit(X, y)
        assert clf.history_.converged


class TestRegularisationAndWeights:
    def test_small_c_shrinks_weights(self):
        X, y = make_blobs(gap=2.0, flip=0.05, seed=9)
        strong_reg = LinearSVC(C=0.01, max_iter=300).fit(X, y)
        weak_reg = LinearSVC(C=100.0, max_iter=300).fit(X, y)
        assert np.linalg.norm(strong_reg.coef_) < np.linalg.norm(weak_reg.coef_)

    def test_sample_weight_zero_ignores_samples(self):
        X, y = make_blobs(gap=4.0, seed=2)
        # Zero out one clear outlier-free subset: weights of the second half.
        w = np.ones(len(y))
        w[y == 1] = 0.0
        clf = LinearSVC(max_iter=100)
        # With only one effective class the fit should still run (the ignored
        # samples keep their labels), and predict everything as class 0 side.
        clf.fit(X, y, sample_weight=w)
        preds = clf.predict(X[y == 0])
        assert np.mean(preds == 0) >= 0.9

    def test_negative_sample_weight_rejected(self):
        X, y = make_blobs()
        with pytest.raises(ValueError):
            LinearSVC().fit(X, y, sample_weight=-np.ones(len(y)))

    def test_no_intercept_option(self):
        X, y = make_blobs(gap=4.0)
        clf = LinearSVC(fit_intercept=False).fit(X, y)
        assert clf.intercept_ == 0.0

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=15, deadline=None)
    def test_training_deterministic_given_seed(self, seed):
        X, y = make_blobs(gap=3.0, seed=4)
        a = LinearSVC(random_state=seed, max_iter=30).fit(X, y)
        b = LinearSVC(random_state=seed, max_iter=30).fit(X, y)
        assert np.allclose(a.coef_, b.coef_)
        assert a.intercept_ == pytest.approx(b.intercept_)
