"""Tests for preprocessing: scaling, label encoding, splitting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.preprocessing import (
    DatasetSplit,
    LabelEncoder,
    MinMaxScaler,
    prepare_split,
    train_test_split,
)


class TestMinMaxScaler:
    def test_transform_maps_to_unit_interval(self, rng):
        X = rng.normal(5.0, 3.0, size=(50, 4))
        scaler = MinMaxScaler()
        Xs = scaler.fit_transform(X)
        assert Xs.min() >= 0.0
        assert Xs.max() <= 1.0
        assert Xs.min(axis=0) == pytest.approx(np.zeros(4))
        assert Xs.max(axis=0) == pytest.approx(np.ones(4))

    def test_custom_range(self, rng):
        X = rng.uniform(-10, 10, size=(30, 2))
        scaler = MinMaxScaler(feature_range=(-1.0, 1.0))
        Xs = scaler.fit_transform(X)
        assert Xs.min() >= -1.0
        assert Xs.max() <= 1.0

    def test_constant_feature_maps_to_lower_bound(self):
        X = np.column_stack([np.full(10, 3.0), np.arange(10, dtype=float)])
        Xs = MinMaxScaler().fit_transform(X)
        assert np.allclose(Xs[:, 0], 0.0)

    def test_inverse_transform_round_trip(self, rng):
        X = rng.normal(size=(40, 3)) * 7 + 2
        scaler = MinMaxScaler()
        Xs = scaler.fit_transform(X)
        assert np.allclose(scaler.inverse_transform(Xs), X, atol=1e-9)

    def test_test_data_clipped_into_range(self, rng):
        X_train = rng.uniform(0, 1, size=(20, 2))
        scaler = MinMaxScaler(clip=True).fit(X_train)
        X_test = np.array([[5.0, -3.0]])
        out = scaler.transform(X_test)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            MinMaxScaler().transform(np.zeros((2, 2)))

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            MinMaxScaler(feature_range=(1.0, 0.0))

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            MinMaxScaler().fit(np.zeros(5))


class TestLabelEncoder:
    def test_contiguous_ids(self):
        enc = LabelEncoder()
        ids = enc.fit_transform(np.array([10, 30, 20, 10, 30]))
        assert set(ids.tolist()) == {0, 1, 2}
        assert np.array_equal(enc.classes_, np.array([10, 20, 30]))

    def test_inverse_transform(self):
        enc = LabelEncoder().fit(np.array(["b", "a", "c"]))
        ids = enc.transform(np.array(["c", "a"]))
        assert np.array_equal(enc.inverse_transform(ids), np.array(["c", "a"]))

    def test_unknown_label_rejected(self):
        enc = LabelEncoder().fit(np.array([0, 1]))
        with pytest.raises(ValueError):
            enc.transform(np.array([2]))

    def test_out_of_range_id_rejected(self):
        enc = LabelEncoder().fit(np.array([0, 1]))
        with pytest.raises(ValueError):
            enc.inverse_transform([5])

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LabelEncoder().transform([0])


class TestTrainTestSplit:
    def test_split_sizes(self, rng):
        X = rng.normal(size=(100, 3))
        y = rng.integers(0, 4, size=100)
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, test_size=0.2, random_state=0)
        assert X_tr.shape[0] + X_te.shape[0] == 100
        assert abs(X_te.shape[0] - 20) <= 4
        assert X_tr.shape[0] == y_tr.shape[0]
        assert X_te.shape[0] == y_te.shape[0]

    def test_no_overlap_and_full_coverage(self, rng):
        X = np.arange(60, dtype=float).reshape(60, 1)
        y = np.tile(np.arange(3), 20)
        X_tr, X_te, _, _ = train_test_split(X, y, test_size=0.25, random_state=3)
        train_vals = set(X_tr.ravel().tolist())
        test_vals = set(X_te.ravel().tolist())
        assert train_vals.isdisjoint(test_vals)
        assert len(train_vals | test_vals) == 60

    def test_stratified_keeps_all_classes_in_both_sides(self, rng):
        y = np.array([0] * 50 + [1] * 6 + [2] * 4)
        X = rng.normal(size=(60, 2))
        _, _, y_tr, y_te = train_test_split(X, y, test_size=0.2, random_state=0)
        assert set(y_tr.tolist()) == {0, 1, 2}
        assert set(y_te.tolist()) == {0, 1, 2}

    def test_deterministic_given_seed(self, rng):
        X = rng.normal(size=(50, 2))
        y = rng.integers(0, 2, size=50)
        a = train_test_split(X, y, random_state=7)
        b = train_test_split(X, y, random_state=7)
        for arr_a, arr_b in zip(a, b):
            assert np.array_equal(arr_a, arr_b)

    def test_different_seeds_differ(self, rng):
        X = rng.normal(size=(80, 2))
        y = rng.integers(0, 2, size=80)
        _, X_te_a, _, _ = train_test_split(X, y, random_state=1)
        _, X_te_b, _, _ = train_test_split(X, y, random_state=2)
        assert not np.array_equal(X_te_a, X_te_b)

    def test_invalid_test_size_rejected(self, rng):
        X = rng.normal(size=(10, 2))
        y = rng.integers(0, 2, size=10)
        with pytest.raises(ValueError):
            train_test_split(X, y, test_size=1.5)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((5, 2)), np.zeros(4))

    def test_unstratified_split(self, rng):
        X = rng.normal(size=(40, 2))
        y = rng.integers(0, 2, size=40)
        X_tr, X_te, _, _ = train_test_split(X, y, test_size=0.3, stratify=False, random_state=0)
        assert X_tr.shape[0] + X_te.shape[0] == 40

    @given(st.integers(min_value=20, max_value=200), st.integers(min_value=2, max_value=5))
    @settings(max_examples=30, deadline=None)
    def test_split_is_partition_property(self, n, k):
        rng = np.random.default_rng(n * 7 + k)
        X = rng.normal(size=(n, 3))
        y = np.arange(n) % k
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, test_size=0.2, random_state=0)
        assert X_tr.shape[0] + X_te.shape[0] == n
        assert len(y_tr) + len(y_te) == n
        assert set(np.unique(y_tr)) == set(range(k))


class TestPrepareSplit:
    def test_end_to_end(self, small_problem):
        X, y = small_problem
        split = prepare_split(X, y, test_size=0.2, random_state=0)
        assert isinstance(split, DatasetSplit)
        assert split.n_features == X.shape[1]
        assert split.n_classes == len(np.unique(y))
        assert split.X_train.min() >= 0.0 and split.X_train.max() <= 1.0
        assert split.X_test.min() >= 0.0 and split.X_test.max() <= 1.0
        assert split.n_train + split.n_test == X.shape[0]

    def test_labels_are_contiguous(self, small_problem):
        X, y = small_problem
        split = prepare_split(X, y + 100, random_state=0)
        assert split.y_train.min() == 0
        assert split.y_train.max() == split.n_classes - 1
