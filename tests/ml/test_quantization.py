"""Tests for post-training quantization and the lowest-precision search."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.quantization import (
    QuantizedLinearModel,
    quantize_linear_classifier,
    quantize_mlp_classifier,
    search_lowest_precision,
)


class TestQuantizedLinearModel:
    def test_shapes(self, small_split, quantized_ovr):
        assert quantized_ovr.n_classifiers == small_split.n_classes
        assert quantized_ovr.n_features == small_split.n_features
        assert quantized_ovr.weight_codes.shape == (
            small_split.n_classes,
            small_split.n_features,
        )
        assert quantized_ovr.bias_codes.shape == (small_split.n_classes,)

    def test_codes_fit_declared_precision(self, quantized_ovr):
        fmt = quantized_ovr.weight_format
        assert fmt.total_bits == 6
        assert quantized_ovr.weight_codes.max() <= fmt.max_code
        assert quantized_ovr.weight_codes.min() >= fmt.min_code

    def test_integer_codes_are_integers(self, quantized_ovr):
        assert quantized_ovr.weight_codes.dtype == np.int64
        assert quantized_ovr.bias_codes.dtype == np.int64

    def test_quantized_accuracy_close_to_float(self, small_split, trained_ovr, quantized_ovr):
        float_acc = trained_ovr.score(small_split.X_test, small_split.y_test)
        quant_acc = quantized_ovr.score(small_split.X_test, small_split.y_test)
        assert quant_acc >= float_acc - 0.15

    def test_integer_scores_match_manual_computation(self, small_split, quantized_ovr):
        x = small_split.X_test[0]
        codes = quantized_ovr.quantize_inputs(x.reshape(1, -1))[0]
        scores = quantized_ovr.integer_scores(codes)
        manual = quantized_ovr.weight_codes @ codes + quantized_ovr.bias_codes
        assert np.array_equal(scores.ravel(), manual)

    def test_decision_function_scale(self, small_split, quantized_ovr):
        scores = quantized_ovr.decision_function(small_split.X_test[:5])
        int_scores = quantized_ovr.integer_scores(
            quantized_ovr.quantize_inputs(small_split.X_test[:5])
        )
        scale = 2.0 ** (-quantized_ovr.score_scale_bits)
        assert np.allclose(scores, int_scores * scale)

    def test_predict_ids_match_argmax(self, small_split, quantized_ovr):
        codes = quantized_ovr.quantize_inputs(small_split.X_test)
        scores = quantized_ovr.integer_scores(codes)
        assert np.array_equal(
            quantized_ovr.predict_ids(small_split.X_test), np.argmax(scores, axis=1)
        )

    def test_stored_coefficients_layout(self, quantized_ovr):
        table = quantized_ovr.stored_coefficients()
        assert table.shape == (
            quantized_ovr.n_classifiers,
            quantized_ovr.n_features + 1,
        )
        assert np.array_equal(table[:, -1], quantized_ovr.bias_codes)

    def test_accumulator_bits_cover_worst_case(self, quantized_ovr):
        bits = quantized_ovr.accumulator_bits
        worst = int(
            np.max(
                np.sum(np.abs(quantized_ovr.weight_codes), axis=1)
                * quantized_ovr.input_format.max_code
                + np.abs(quantized_ovr.bias_codes)
            )
        )
        assert -(1 << (bits - 1)) <= worst < (1 << (bits - 1))

    def test_ovo_model_carries_pairs(self, quantized_ovo):
        assert quantized_ovo.strategy == "ovo"
        assert quantized_ovo.pairs is not None
        assert len(quantized_ovo.pairs) == quantized_ovo.n_classifiers

    def test_ovo_predictions_are_valid_ids(self, small_split, quantized_ovo):
        ids = quantized_ovo.predict_ids(small_split.X_test)
        assert ids.min() >= 0
        assert ids.max() < small_split.n_classes

    def test_ovo_model_without_pairs_rejected(self, quantized_ovr):
        with pytest.raises(ValueError):
            QuantizedLinearModel(
                weight_codes=quantized_ovr.weight_codes,
                bias_codes=quantized_ovr.bias_codes,
                input_format=quantized_ovr.input_format,
                weight_format=quantized_ovr.weight_format,
                strategy="ovo",
                classes=quantized_ovr.classes,
                pairs=None,
            )

    def test_invalid_bit_budgets_rejected(self, trained_ovr):
        with pytest.raises(ValueError):
            quantize_linear_classifier(trained_ovr, input_bits=0)
        with pytest.raises(ValueError):
            quantize_linear_classifier(trained_ovr, weight_bits=1)


class TestQuantizedMLP:
    def test_layer_structure_preserved(self, trained_mlp, quantized_mlp):
        assert quantized_mlp.layer_sizes == trained_mlp.layer_sizes_
        assert quantized_mlp.n_layers == len(trained_mlp.weights_)

    def test_quantized_accuracy_close_to_float(self, small_split, trained_mlp, quantized_mlp):
        float_acc = trained_mlp.score(small_split.X_test, small_split.y_test)
        quant_acc = quantized_mlp.score(small_split.X_test, small_split.y_test)
        assert quant_acc >= float_acc - 0.2

    def test_hidden_activations_nonnegative(self, small_split, quantized_mlp):
        # Run the integer forward pass layer by layer and check the ReLU.
        codes = quantized_mlp.quantize_inputs(small_split.X_test[:8])
        a = codes
        for layer in range(quantized_mlp.n_layers - 1):
            z = a @ quantized_mlp.weight_codes[layer] + quantized_mlp.bias_codes[layer]
            a = np.maximum(z, 0)
            assert np.all(a >= 0)

    def test_multiplication_count(self, trained_mlp, quantized_mlp):
        assert quantized_mlp.n_multiplications == trained_mlp.n_multiplications_

    def test_unfitted_mlp_rejected(self):
        from repro.ml.mlp import MLPClassifier

        with pytest.raises(RuntimeError):
            quantize_mlp_classifier(MLPClassifier())


class TestPrecisionSearch:
    def test_search_returns_lowest_acceptable(self, small_split, trained_ovr):
        result = search_lowest_precision(
            trained_ovr,
            small_split.X_test,
            small_split.y_test,
            input_bits=4,
            max_weight_bits=8,
            min_weight_bits=2,
            accuracy_tolerance=0.02,
        )
        assert 2 <= result.weight_bits <= 8
        assert result.accuracy + 0.02 >= result.float_accuracy
        assert result.quantized_model.weight_format.total_bits == result.weight_bits

    def test_trace_is_decreasing_in_bits(self, small_split, trained_ovr):
        result = search_lowest_precision(
            trained_ovr, small_split.X_test, small_split.y_test
        )
        bits = [b for b, _ in result.trace]
        assert bits == sorted(bits, reverse=True)

    def test_zero_tolerance_keeps_high_precision(self, small_split, trained_ovr):
        strict = search_lowest_precision(
            trained_ovr,
            small_split.X_test,
            small_split.y_test,
            accuracy_tolerance=0.0,
        )
        loose = search_lowest_precision(
            trained_ovr,
            small_split.X_test,
            small_split.y_test,
            accuracy_tolerance=0.10,
        )
        assert loose.weight_bits <= strict.weight_bits

    def test_accuracy_drop_property(self, small_split, trained_ovr):
        result = search_lowest_precision(
            trained_ovr, small_split.X_test, small_split.y_test
        )
        assert result.accuracy_drop == pytest.approx(
            result.float_accuracy - result.accuracy
        )

    def test_works_for_mlp(self, small_split, trained_mlp):
        result = search_lowest_precision(
            trained_mlp,
            small_split.X_test,
            small_split.y_test,
            max_weight_bits=8,
            accuracy_tolerance=0.05,
        )
        assert 2 <= result.weight_bits <= 8

    def test_invalid_range_rejected(self, small_split, trained_ovr):
        with pytest.raises(ValueError):
            search_lowest_precision(
                trained_ovr,
                small_split.X_test,
                small_split.y_test,
                max_weight_bits=3,
                min_weight_bits=5,
            )

    @pytest.mark.parametrize("bits", [3, 4, 5, 6, 7, 8])
    def test_more_bits_never_hurts_much(self, bits, small_split, trained_ovr):
        """Accuracy at b bits should be within noise of accuracy at b-1 bits."""
        lo = quantize_linear_classifier(trained_ovr, input_bits=4, weight_bits=bits - 1)
        hi = quantize_linear_classifier(trained_ovr, input_bits=4, weight_bits=bits)
        acc_lo = lo.score(small_split.X_test, small_split.y_test)
        acc_hi = hi.score(small_split.X_test, small_split.y_test)
        assert acc_hi >= acc_lo - 0.25
