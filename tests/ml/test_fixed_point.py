"""Tests for the fixed-point number formats."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.fixed_point import (
    FixedPointFormat,
    dequantize_array,
    fit_format,
    quantize_array,
    required_bits_for_integer,
    signed_coefficient_format,
    unsigned_input_format,
)


class TestFormatProperties:
    def test_total_bits_signed(self):
        fmt = FixedPointFormat(integer_bits=1, fraction_bits=3, signed=True)
        assert fmt.total_bits == 5

    def test_total_bits_unsigned(self):
        fmt = FixedPointFormat(integer_bits=0, fraction_bits=4, signed=False)
        assert fmt.total_bits == 4

    def test_resolution(self):
        fmt = FixedPointFormat(integer_bits=0, fraction_bits=3)
        assert fmt.resolution == pytest.approx(0.125)

    def test_value_range_signed(self):
        fmt = FixedPointFormat(integer_bits=1, fraction_bits=2, signed=True)
        assert fmt.min_code == -8
        assert fmt.max_code == 7
        assert fmt.min_value == pytest.approx(-2.0)
        assert fmt.max_value == pytest.approx(1.75)

    def test_value_range_unsigned(self):
        fmt = unsigned_input_format(4)
        assert fmt.min_value == 0.0
        assert fmt.max_value == pytest.approx(15.0 / 16.0)

    def test_invalid_rounding_rejected(self):
        with pytest.raises(ValueError):
            FixedPointFormat(integer_bits=1, fraction_bits=2, rounding="bogus")

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            FixedPointFormat(integer_bits=0, fraction_bits=0, signed=False)

    def test_describe_mentions_width(self):
        fmt = FixedPointFormat(integer_bits=1, fraction_bits=3, signed=True)
        assert "5b" in fmt.describe()


class TestQuantization:
    def test_exact_grid_values_unchanged(self):
        fmt = FixedPointFormat(integer_bits=1, fraction_bits=3)
        values = np.array([0.125, -0.5, 1.0, 0.0])
        assert np.allclose(fmt.quantize(values), values)

    def test_round_to_nearest(self):
        fmt = FixedPointFormat(integer_bits=1, fraction_bits=3)
        assert fmt.quantize(0.3) == pytest.approx(0.25)
        assert fmt.quantize(0.32) == pytest.approx(0.375)

    def test_saturation_at_extremes(self):
        fmt = FixedPointFormat(integer_bits=1, fraction_bits=2, signed=True)
        assert fmt.quantize(100.0) == pytest.approx(fmt.max_value)
        assert fmt.quantize(-100.0) == pytest.approx(fmt.min_value)

    def test_overflow_raises_when_not_saturating(self):
        fmt = FixedPointFormat(integer_bits=1, fraction_bits=2, saturate=False)
        with pytest.raises(OverflowError):
            fmt.to_code(100.0)

    def test_floor_and_ceil_rounding(self):
        floor_fmt = FixedPointFormat(integer_bits=2, fraction_bits=0, rounding="floor")
        ceil_fmt = FixedPointFormat(integer_bits=2, fraction_bits=0, rounding="ceil")
        assert floor_fmt.quantize(1.7) == pytest.approx(1.0)
        assert ceil_fmt.quantize(1.2) == pytest.approx(2.0)

    def test_truncate_rounding_moves_toward_zero(self):
        fmt = FixedPointFormat(integer_bits=2, fraction_bits=0, rounding="truncate")
        assert fmt.quantize(-1.7) == pytest.approx(-1.0)
        assert fmt.quantize(1.7) == pytest.approx(1.0)

    def test_code_round_trip(self):
        fmt = FixedPointFormat(integer_bits=2, fraction_bits=4)
        values = np.linspace(fmt.min_value, fmt.max_value, 37)
        codes = fmt.to_code(values)
        recovered = fmt.from_code(codes)
        assert np.all(np.abs(recovered - values) <= fmt.resolution / 2 + 1e-12)

    def test_quantization_error_bounded(self):
        fmt = FixedPointFormat(integer_bits=1, fraction_bits=5)
        values = np.random.default_rng(0).uniform(-1.5, 1.5, size=200)
        err = fmt.quantization_error(values)
        assert np.all(np.abs(err) <= fmt.resolution / 2 + 1e-12)

    def test_representable(self):
        fmt = FixedPointFormat(integer_bits=1, fraction_bits=2)
        assert fmt.representable(0.25)
        assert not fmt.representable(0.3)
        assert not fmt.representable(100.0)

    def test_convenience_wrappers(self):
        fmt = unsigned_input_format(4)
        x = np.array([0.1, 0.6, 0.95])
        assert np.allclose(quantize_array(x, fmt), fmt.quantize(x))
        assert np.allclose(dequantize_array([3, 7], fmt), [3 / 16, 7 / 16])

    def test_scalar_input_returns_scalar_shape(self):
        fmt = unsigned_input_format(4)
        assert np.ndim(fmt.to_code(0.5)) == 0


class TestDerivedFormats:
    def test_widen(self):
        fmt = FixedPointFormat(integer_bits=1, fraction_bits=3)
        wider = fmt.widen(extra_integer_bits=2, extra_fraction_bits=1)
        assert wider.integer_bits == 3
        assert wider.fraction_bits == 4
        assert wider.signed == fmt.signed

    def test_product_format_holds_extreme_products(self):
        a = unsigned_input_format(4)
        b = signed_coefficient_format(6)
        prod = a.product_format(b)
        extreme = a.max_code * b.min_code
        assert prod.min_code <= extreme <= prod.max_code

    def test_accumulate_format_growth(self):
        fmt = FixedPointFormat(integer_bits=2, fraction_bits=2)
        acc = fmt.accumulate_format(9)
        assert acc.integer_bits == fmt.integer_bits + 4
        with pytest.raises(ValueError):
            fmt.accumulate_format(0)

    def test_fit_format_covers_range(self):
        values = np.array([-3.7, 0.2, 1.9])
        fmt = fit_format(values, total_bits=8)
        assert fmt.total_bits == 8
        assert fmt.max_value >= 1.9 - fmt.resolution
        assert fmt.min_value <= -3.7

    def test_fit_format_all_zero(self):
        fmt = fit_format(np.zeros(5), total_bits=6)
        assert fmt.total_bits == 6

    def test_fit_format_empty_rejected(self):
        with pytest.raises(ValueError):
            fit_format(np.array([]), total_bits=6)

    def test_signed_coefficient_format_width(self):
        fmt = signed_coefficient_format(6)
        assert fmt.total_bits == 6
        assert fmt.signed


class TestRequiredBits:
    @pytest.mark.parametrize(
        "value,signed,expected",
        [
            (0, True, 1),
            (1, True, 2),
            (-1, True, 1),
            (7, True, 4),
            (-8, True, 4),
            (8, True, 5),
            (255, False, 8),
            (0, False, 1),
        ],
    )
    def test_required_bits(self, value, signed, expected):
        assert required_bits_for_integer(value, signed=signed) == expected

    def test_negative_unsigned_rejected(self):
        with pytest.raises(ValueError):
            required_bits_for_integer(-1, signed=False)


class TestFixedPointHypothesis:
    @given(
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=1, max_value=8),
        st.floats(min_value=-100, max_value=100, allow_nan=False),
    )
    @settings(max_examples=120, deadline=None)
    def test_quantize_is_idempotent(self, int_bits, frac_bits, value):
        fmt = FixedPointFormat(integer_bits=int_bits, fraction_bits=frac_bits)
        once = fmt.quantize(value)
        twice = fmt.quantize(once)
        assert once == pytest.approx(twice)

    @given(
        st.integers(min_value=1, max_value=8),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    @settings(max_examples=120, deadline=None)
    def test_input_format_error_bound(self, bits, value):
        fmt = unsigned_input_format(bits)
        q = fmt.quantize(value)
        # Values above max_value saturate; below that the error is <= 1/2 LSB.
        if value <= fmt.max_value:
            assert abs(q - value) <= fmt.resolution / 2 + 1e-12
        else:
            assert q == pytest.approx(fmt.max_value)

    @given(st.integers(min_value=-(2 ** 20), max_value=2 ** 20))
    @settings(max_examples=150, deadline=None)
    def test_required_bits_round_trip(self, value):
        bits = required_bits_for_integer(value, signed=True)
        lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
        assert lo <= value <= hi
        if bits > 1:
            # Minimality: one bit fewer cannot represent the value.
            lo2, hi2 = -(1 << (bits - 2)), (1 << (bits - 2)) - 1
            assert not (lo2 <= value <= hi2)
