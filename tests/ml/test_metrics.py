"""Tests for classification metrics."""

import numpy as np
import pytest

from repro.ml.metrics import (
    accuracy_percent,
    accuracy_score,
    balanced_accuracy_score,
    classification_report,
    confusion_matrix,
    macro_f1_score,
    per_class_metrics,
)


class TestAccuracy:
    def test_perfect(self):
        y = np.array([0, 1, 2, 1])
        assert accuracy_score(y, y) == 1.0

    def test_half_correct(self):
        assert accuracy_score([0, 0, 1, 1], [0, 1, 1, 0]) == 0.5

    def test_percent(self):
        assert accuracy_percent([0, 1], [0, 0]) == pytest.approx(50.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            accuracy_score([0, 1], [0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            accuracy_score([], [])


class TestConfusionMatrix:
    def test_diagonal_for_perfect_prediction(self):
        y = np.array([0, 1, 2, 2, 1])
        cm = confusion_matrix(y, y)
        assert np.array_equal(cm, np.diag([1, 2, 2]))

    def test_off_diagonal(self):
        cm = confusion_matrix([0, 0, 1], [1, 0, 1])
        assert cm[0, 1] == 1
        assert cm[0, 0] == 1
        assert cm[1, 1] == 1

    def test_total_equals_sample_count(self, rng):
        y_true = rng.integers(0, 4, size=100)
        y_pred = rng.integers(0, 4, size=100)
        cm = confusion_matrix(y_true, y_pred)
        assert cm.sum() == 100

    def test_explicit_class_count(self):
        cm = confusion_matrix([0, 1], [1, 0], n_classes=5)
        assert cm.shape == (5, 5)

    def test_negative_labels_rejected(self):
        with pytest.raises(ValueError):
            confusion_matrix([-1, 0], [0, 0])

    def test_label_exceeding_n_classes_rejected(self):
        with pytest.raises(ValueError):
            confusion_matrix([0, 3], [0, 0], n_classes=2)


class TestPerClassMetrics:
    def test_perfect_scores(self):
        y = np.array([0, 1, 1, 2])
        metrics = per_class_metrics(y, y)
        assert np.allclose(metrics["precision"], 1.0)
        assert np.allclose(metrics["recall"], 1.0)
        assert np.allclose(metrics["f1"], 1.0)

    def test_absent_class_scores_zero(self):
        # Class 2 never appears in y_pred.
        metrics = per_class_metrics([0, 1, 2], [0, 1, 0])
        assert metrics["precision"][2] == 0.0
        assert metrics["recall"][2] == 0.0
        assert metrics["f1"][2] == 0.0

    def test_known_values(self):
        # class 0: tp=1, fp=1, fn=1 -> p=r=f1=0.5
        metrics = per_class_metrics([0, 0, 1, 1], [0, 1, 0, 1])
        assert metrics["precision"][0] == pytest.approx(0.5)
        assert metrics["recall"][0] == pytest.approx(0.5)
        assert metrics["f1"][0] == pytest.approx(0.5)


class TestAggregateMetrics:
    def test_balanced_accuracy_on_imbalanced_data(self):
        # Majority-class predictor: accuracy is high, balanced accuracy is 1/2.
        y_true = np.array([0] * 90 + [1] * 10)
        y_pred = np.zeros(100, dtype=int)
        assert accuracy_score(y_true, y_pred) == pytest.approx(0.9)
        assert balanced_accuracy_score(y_true, y_pred) == pytest.approx(0.5)

    def test_macro_f1_between_zero_and_one(self, rng):
        y_true = rng.integers(0, 3, size=60)
        y_pred = rng.integers(0, 3, size=60)
        assert 0.0 <= macro_f1_score(y_true, y_pred) <= 1.0

    def test_classification_report_contains_sections(self):
        report = classification_report([0, 1, 1, 0], [0, 1, 0, 0])
        assert "accuracy" in report
        assert "balanced accuracy" in report
        assert "class  0" in report or "class 0" in report
