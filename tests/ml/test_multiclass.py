"""Tests for the One-vs-Rest / One-vs-One multi-class wrappers."""

import numpy as np
import pytest

from repro.ml.multiclass import (
    OneVsOneClassifier,
    OneVsRestClassifier,
    n_ovo_classifiers,
    n_ovr_classifiers,
    storage_advantage_ovr,
)
from repro.ml.svm import LinearSVC


class TestClassifierCounts:
    @pytest.mark.parametrize("n,expected", [(2, 2), (3, 3), (6, 6), (10, 10)])
    def test_ovr_count(self, n, expected):
        assert n_ovr_classifiers(n) == expected

    @pytest.mark.parametrize("n,expected", [(2, 1), (3, 3), (6, 15), (10, 45)])
    def test_ovo_count(self, n, expected):
        assert n_ovo_classifiers(n) == expected

    def test_storage_advantage_grows_with_classes(self):
        advantages = [storage_advantage_ovr(n) for n in range(2, 11)]
        assert advantages == sorted(advantages)
        assert storage_advantage_ovr(10) == pytest.approx(4.5)

    def test_invalid_class_count_rejected(self):
        with pytest.raises(ValueError):
            n_ovr_classifiers(1)
        with pytest.raises(ValueError):
            n_ovo_classifiers(1)


class TestOneVsRest:
    def test_accuracy_on_separable_problem(self, small_split, trained_ovr):
        assert trained_ovr.score(small_split.X_test, small_split.y_test) >= 0.8

    def test_one_classifier_per_class(self, small_split, trained_ovr):
        assert len(trained_ovr.estimators_) == small_split.n_classes
        assert trained_ovr.n_stored_vectors_ == small_split.n_classes

    def test_coefficient_matrix_shape(self, small_split, trained_ovr):
        assert trained_ovr.coef_.shape == (small_split.n_classes, small_split.n_features)
        assert trained_ovr.intercept_.shape == (small_split.n_classes,)

    def test_decision_function_shape(self, small_split, trained_ovr):
        scores = trained_ovr.decision_function(small_split.X_test)
        assert scores.shape == (small_split.n_test, small_split.n_classes)

    def test_prediction_is_argmax_of_scores(self, small_split, trained_ovr):
        scores = trained_ovr.decision_function(small_split.X_test)
        expected = trained_ovr.classes_[np.argmax(scores, axis=1)]
        assert np.array_equal(trained_ovr.predict(small_split.X_test), expected)

    def test_predictions_are_known_classes(self, small_split, trained_ovr):
        preds = trained_ovr.predict(small_split.X_test)
        assert set(np.unique(preds)).issubset(set(trained_ovr.classes_.tolist()))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            OneVsRestClassifier().predict(np.zeros((1, 3)))

    def test_single_class_rejected(self):
        X = np.random.default_rng(0).normal(size=(10, 2))
        with pytest.raises(ValueError):
            OneVsRestClassifier().fit(X, np.zeros(10))


class TestOneVsOne:
    def test_accuracy_on_separable_problem(self, small_split, trained_ovo):
        assert trained_ovo.score(small_split.X_test, small_split.y_test) >= 0.8

    def test_pair_count(self, small_split, trained_ovo):
        n = small_split.n_classes
        assert len(trained_ovo.estimators_) == n * (n - 1) // 2
        assert trained_ovo.n_stored_vectors_ == n * (n - 1) // 2

    def test_pairs_are_unique_and_ordered(self, trained_ovo):
        pairs = trained_ovo.pairs_
        assert len(set(pairs)) == len(pairs)
        assert all(i < j for i, j in pairs)

    def test_decision_function_shape(self, small_split, trained_ovo):
        scores = trained_ovo.decision_function(small_split.X_test)
        assert scores.shape == (small_split.n_test, len(trained_ovo.pairs_))

    def test_predictions_are_known_classes(self, small_split, trained_ovo):
        preds = trained_ovo.predict(small_split.X_test)
        assert set(np.unique(preds)).issubset(set(trained_ovo.classes_.tolist()))

    def test_binary_case_single_estimator(self):
        rng = np.random.default_rng(0)
        X = np.vstack([rng.normal(-2, 1, (30, 2)), rng.normal(2, 1, (30, 2))])
        y = np.array([0] * 30 + [1] * 30)
        clf = OneVsOneClassifier(LinearSVC(max_iter=50)).fit(X, y)
        assert len(clf.estimators_) == 1
        assert clf.score(X, y) >= 0.95


class TestOvrVsOvoAgreement:
    def test_both_strategies_reach_similar_accuracy(self, small_split, trained_ovr, trained_ovo):
        acc_ovr = trained_ovr.score(small_split.X_test, small_split.y_test)
        acc_ovo = trained_ovo.score(small_split.X_test, small_split.y_test)
        assert abs(acc_ovr - acc_ovo) <= 0.2

    def test_ovr_stores_fewer_vectors_for_many_classes(self, trained_ovr, trained_ovo):
        # 4 classes: OvR stores 4, OvO stores 6.
        assert trained_ovr.n_stored_vectors_ < trained_ovo.n_stored_vectors_
