"""Tests for feature selection and the feature-count co-design sweep."""

import numpy as np
import pytest

from repro.ml.feature_selection import (
    SelectKBest,
    anova_f_scores,
    co_design_sweep,
    mutual_information_scores,
    select_k_best,
)


def make_data_with_noise_features(n=300, informative=3, noise=5, seed=0):
    """Classes separated along the first `informative` features only."""
    rng = np.random.default_rng(seed)
    y = rng.integers(0, 3, size=n)
    X_info = rng.normal(size=(n, informative)) + 2.5 * y[:, None]
    X_noise = rng.normal(size=(n, noise))
    return np.hstack([X_info, X_noise]), y, informative


class TestScorers:
    def test_anova_ranks_informative_features_first(self):
        X, y, informative = make_data_with_noise_features()
        scores = anova_f_scores(X, y)
        top = set(np.argsort(scores)[::-1][:informative].tolist())
        assert top == set(range(informative))

    def test_mutual_information_ranks_informative_features_first(self):
        X, y, informative = make_data_with_noise_features(seed=3)
        scores = mutual_information_scores(X, y)
        top = set(np.argsort(scores)[::-1][:informative].tolist())
        assert top == set(range(informative))

    def test_constant_feature_scores_zero(self):
        X, y, _ = make_data_with_noise_features()
        X = np.hstack([X, np.full((X.shape[0], 1), 7.0)])
        assert anova_f_scores(X, y)[-1] == 0.0
        assert mutual_information_scores(X, y)[-1] == 0.0

    def test_scores_non_negative(self):
        X, y, _ = make_data_with_noise_features(seed=9)
        assert np.all(anova_f_scores(X, y) >= 0.0)
        assert np.all(mutual_information_scores(X, y) >= 0.0)

    def test_invalid_inputs_rejected(self):
        X, y, _ = make_data_with_noise_features()
        with pytest.raises(ValueError):
            anova_f_scores(X, np.zeros(X.shape[0]))  # single class
        with pytest.raises(ValueError):
            anova_f_scores(X[:10], y)  # misaligned
        with pytest.raises(ValueError):
            mutual_information_scores(X, y, n_bins=1)


class TestSelectKBest:
    def test_selects_requested_count(self):
        X, y, _ = make_data_with_noise_features()
        selector = SelectKBest(4).fit(X, y)
        assert selector.transform(X).shape == (X.shape[0], 4)
        assert len(selector.selected_indices_) == 4

    def test_indices_sorted_and_valid(self):
        X, y, _ = make_data_with_noise_features()
        selector = SelectKBest(5).fit(X, y)
        idx = selector.selected_indices_
        assert np.array_equal(idx, np.sort(idx))
        assert idx.max() < X.shape[1]

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            SelectKBest(2).transform(np.zeros((3, 4)))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            SelectKBest(0)
        with pytest.raises(ValueError):
            SelectKBest(2, scorer="chi2_magic")
        X, y, _ = make_data_with_noise_features()
        with pytest.raises(ValueError):
            SelectKBest(X.shape[1] + 1).fit(X, y)

    def test_wrapper_returns_consistent_views(self):
        X, y, _ = make_data_with_noise_features()
        X_train, X_test = X[:200], X[200:]
        X_train_k, X_test_k, idx = select_k_best(X_train, y[:200], X_test, 3)
        assert X_train_k.shape[1] == X_test_k.shape[1] == 3
        assert np.array_equal(X_train_k, X_train[:, idx])

    def test_selected_subset_beats_discarded_subset(self):
        """Training on the k selected features must beat training on the k
        features the selector discarded — the selection is informative."""
        from repro.ml.multiclass import OneVsRestClassifier
        from repro.ml.svm import LinearSVC

        X, y, informative = make_data_with_noise_features(n=400, seed=5)
        selector = SelectKBest(informative).fit(X, y)
        selected = selector.selected_indices_
        discarded = [i for i in range(X.shape[1]) if i not in set(selected.tolist())]
        acc_selected = (
            OneVsRestClassifier(LinearSVC(max_iter=40))
            .fit(X[:, selected], y)
            .score(X[:, selected], y)
        )
        acc_discarded = (
            OneVsRestClassifier(LinearSVC(max_iter=40))
            .fit(X[:, discarded[:informative]], y)
            .score(X[:, discarded[:informative]], y)
        )
        assert acc_selected > acc_discarded + 0.1


class TestCoDesignSweep:
    @pytest.fixture(scope="class")
    def sweep(self, small_split):
        return co_design_sweep(
            small_split,
            feature_counts=[small_split.n_features, 4, 2],
            svm_max_iter=30,
            dataset="small-problem",
        )

    def test_points_cover_requested_counts(self, sweep, small_split):
        assert sorted(p.n_features for p in sweep.points) == sorted(
            {small_split.n_features, 4, 2}
        )

    def test_fewer_features_means_less_hardware(self, sweep):
        by_count = {p.n_features: p for p in sweep.points}
        counts = sorted(by_count)
        assert by_count[counts[0]].area_cm2 < by_count[counts[-1]].area_cm2
        assert by_count[counts[0]].energy_mj < by_count[counts[-1]].energy_mj

    def test_best_within_accuracy_drop(self, sweep):
        best = sweep.best_within_accuracy_drop(max_drop_percent=100.0)
        # With a 100-point allowance the cheapest point must win.
        assert best.energy_mj == min(p.energy_mj for p in sweep.points)
        strict = sweep.best_within_accuracy_drop(max_drop_percent=0.0)
        full = max(sweep.points, key=lambda p: p.n_features)
        assert strict.accuracy_percent >= full.accuracy_percent
