"""The load/SLO harness: schedules, disciplines, summaries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve.loadgen import (
    ModelTraffic,
    build_schedule,
    find_saturation,
    run_closed_loop,
    run_open_loop,
)

from .conftest import MODEL_NAME


@pytest.fixture()
def mix(request_rows):
    return [ModelTraffic(MODEL_NAME, request_rows)]


def test_schedules_are_seeded_and_rate_faithful():
    a = build_schedule(1000.0, 2.0, seed=3)
    assert a == build_schedule(1000.0, 2.0, seed=3)  # deterministic
    assert a != build_schedule(1000.0, 2.0, seed=4)
    assert 1600 <= len(a) <= 2400  # ~2000 Poisson arrivals
    assert all(0.0 <= t < 2.0 for t in a)
    assert a == sorted(a)

    b = build_schedule(1000.0, 2.0, pattern="bursty", seed=3)
    assert 1600 <= len(b) <= 2400  # same mean rate, spikier placement
    with pytest.raises(ValueError, match="pattern"):
        build_schedule(100.0, 1.0, pattern="sawtooth")


def test_bursty_schedule_concentrates_arrivals():
    """The burst windows hold far more than their share of the arrivals."""
    times = np.asarray(
        build_schedule(
            2000.0, 2.0, pattern="bursty", burst_factor=4.0,
            burst_fraction=0.2, seed=1,
        )
    )
    phase = times % 0.25  # position inside each BURST_PERIOD_S window
    in_burst = float(np.mean(phase < 0.05))  # first 20% of each window
    assert in_burst > 0.5  # 4x rate on 20% of time -> ~80% of arrivals


def test_open_loop_measures_latency_and_rate(server, mix):
    result = run_open_loop(server, mix, rate=300.0, duration_s=0.5, seed=2)
    assert result.discipline == "open_loop" and result.pattern == "sustained"
    assert result.n_errors == 0
    assert 0.3 * 300 * 0.5 <= result.n_requests <= 2.0 * 300 * 0.5
    assert 0.0 <= result.latency_p50_ms <= result.latency_p99_ms
    assert result.latency_p99_ms <= result.latency_p999_ms <= result.latency_max_ms
    assert result.requests_by_model == {MODEL_NAME: result.n_requests}
    doc = result.to_json()
    assert doc["offered_rate_per_s"] == 300.0
    assert doc["latency_p999_ms"] == result.latency_p999_ms


def test_closed_loop_counts_every_request(server, mix):
    result = run_closed_loop(
        server, mix, n_clients=2, requests_per_client=128, burst=32, seed=0
    )
    assert result.discipline == "closed_loop"
    assert result.n_requests == 2 * 128
    assert result.n_errors == 0
    assert result.achieved_rate > 0.0
    assert result.offered_rate == result.achieved_rate


def test_weighted_mix_skews_traffic(server, request_rows):
    heavy = ModelTraffic(MODEL_NAME, request_rows, weight=9.0)
    light = ModelTraffic("small-problem/ours", request_rows, weight=1.0)
    result = run_open_loop(server, [heavy, light], rate=400.0, duration_s=0.5, seed=5)
    # One name, two weights: both entries route to the same model, so just
    # assert the draw respected the weights via per-entry counts.
    assert result.requests_by_model[MODEL_NAME] == result.n_requests


def test_find_saturation_reports_knee_structure(server, mix):
    knee = find_saturation(
        server, mix, start_rate=200.0, duration_s=0.2, max_steps=3, seed=0
    )
    assert knee["start_rate_per_s"] == 200.0
    assert 1 <= len(knee["steps"]) <= 3
    assert knee["saturation_rate_per_s"] >= 0.0
    for step in knee["steps"]:
        assert step["discipline"] == "open_loop"
        assert "saturated" in step


def test_empty_mix_rejected(server):
    with pytest.raises(ValueError, match="mix"):
        run_open_loop(server, [], rate=10.0, duration_s=0.1)
