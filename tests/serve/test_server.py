"""ModelServer behaviour: bit-exactness, concurrency, shutdown, registry."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core.design_flow import clear_flow_cache, training_run_count
from repro.core.flow_executor import FlowResultCache
from repro.serve.registry import ModelRegistry, parse_model_name
from repro.serve.server import ModelServer, ServerClosed

from .conftest import MODEL_NAME, make_served_model


# --------------------------------------------------------------------------- #
# Bit-exactness vs the direct run_batch path
# --------------------------------------------------------------------------- #
def test_served_predictions_match_run_batch(server, sequential_design, request_rows):
    """Everything served equals design.simulate_batch (= run_batch) exactly."""
    expected_ids = sequential_design.simulate_batch(request_rows)
    expected_labels = sequential_design.model.classes[expected_ids]

    bulk = server.predict_many(MODEL_NAME, request_rows)
    assert bulk["class_ids"] == [int(i) for i in expected_ids]
    assert bulk["predictions"] == expected_labels.tolist()

    for row, want_id, want_label in zip(request_rows[:5], expected_ids, expected_labels):
        single = server.predict(MODEL_NAME, row)
        assert single["class_id"] == int(want_id)
        assert single["prediction"] == want_label.item()
        assert single["latency_ms"] >= 0.0


def test_empty_batch_served(server):
    out = server.predict_many(MODEL_NAME, [])
    assert out["class_ids"] == []
    assert out["predictions"] == []
    assert out["n_samples"] == 0


def test_single_predict_rejects_bulk_payload(server, request_rows):
    with pytest.raises(ValueError, match="exactly one sample"):
        server.predict(MODEL_NAME, request_rows[:2])


def test_wrong_feature_count_rejected(server):
    with pytest.raises(ValueError, match="features"):
        server.predict_many(MODEL_NAME, np.zeros((3, 2)))


def test_oversized_bulk_split_across_micro_batches(registry, request_rows, sequential_design):
    """A bulk request far beyond max_batch_size is chunked but bit-exact."""
    rows = np.tile(request_rows, (20, 1))  # hundreds of rows
    with ModelServer(registry, max_batch_size=16, max_latency_ms=0.0) as server:
        out = server.predict_many(MODEL_NAME, rows)
        stats = server.stats()["models"][MODEL_NAME]
    expected = sequential_design.simulate_batch(rows)
    assert out["class_ids"] == [int(i) for i in expected]
    assert stats["batches_total"] >= int(np.ceil(rows.shape[0] / 16))
    assert stats["mean_batch_size"] <= 16


def test_concurrent_clients_one_server(registry, request_rows, sequential_design):
    """Many client threads hammer one server; every answer is bit-exact."""
    expected = sequential_design.simulate_batch(request_rows)
    n_clients = 8
    errors = []

    with ModelServer(registry, max_batch_size=32, max_latency_ms=1.0) as server:

        def client(seed: int) -> None:
            rng = np.random.default_rng(seed)
            try:
                for _ in range(30):
                    i = int(rng.integers(0, request_rows.shape[0]))
                    out = server.predict(MODEL_NAME, request_rows[i])
                    if out["class_id"] != int(expected[i]):
                        errors.append((i, out["class_id"], int(expected[i])))
            except Exception as exc:  # surfaced after join
                errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(seed,), daemon=True)
            for seed in range(n_clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        stats = server.stats()["models"][MODEL_NAME]

    assert errors == []
    assert stats["requests_total"] == n_clients * 30
    assert stats["samples_total"] == n_clients * 30
    assert stats["latency_p50_ms"] <= stats["latency_p99_ms"]
    assert 0.0 <= stats["batch_occupancy"] <= 1.0


def test_graceful_shutdown_completes_in_flight_requests(sequential_design, request_rows):
    """shutdown(drain=True) lets queued work finish; new requests fail fast."""
    design = sequential_design

    def slow_kernel(X):
        time.sleep(0.005)
        return design.simulate_batch(X)

    registry = ModelRegistry()
    registry.register(make_served_model(design, batch_fn=slow_kernel))
    server = ModelServer(registry, max_batch_size=4, max_latency_ms=0.0)

    futures = [server.submit(MODEL_NAME, request_rows[i]) for i in range(20)]
    server.shutdown(drain=True)

    expected = design.simulate_batch(request_rows[:20])
    got = [future.result(timeout=10.0)[0] for future in futures]
    assert got == [int(i) for i in expected]
    with pytest.raises(ServerClosed):
        server.predict(MODEL_NAME, request_rows[0])
    server.shutdown()  # idempotent


def test_submit_many_is_bit_exact(server, sequential_design, request_rows):
    futures = server.submit_many(MODEL_NAME, request_rows)
    got = np.concatenate([future.result(timeout=10.0) for future in futures])
    assert np.array_equal(got, sequential_design.simulate_batch(request_rows))


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
def test_parse_model_name_accepts_both_separators():
    assert parse_model_name("redwine/ours") == ("redwine", "ours")
    assert parse_model_name("redwine:ours") == ("redwine", "ours")


@pytest.mark.parametrize(
    "bad", ["redwine", "nope/ours", "redwine/nope", "redwine-ours"]
)
def test_parse_model_name_rejects_malformed_names(bad):
    with pytest.raises(ValueError):
        parse_model_name(bad)


def test_registry_register_and_names(registry, served_model):
    assert registry.names() == [MODEL_NAME]
    assert registry.get(MODEL_NAME) is served_model


def test_registry_trains_then_loads_from_persistent_cache(tmp_path, tiny_flow_config):
    """Cold get() trains; a fresh registry over the same cache retrains nothing."""
    cache = FlowResultCache(tmp_path)
    clear_flow_cache()

    before = training_run_count()
    first = ModelRegistry(config=tiny_flow_config, cache=cache).get("redwine/ours")
    trained = training_run_count() - before
    assert trained >= 1
    assert first.backend == "datapath.run_batch"

    clear_flow_cache()  # drop the in-process layer; only the disk cache remains
    before = training_run_count()
    loader = ModelRegistry(config=tiny_flow_config, cache=cache, opt_level=2)
    second = loader.get("redwine/ours")
    assert training_run_count() - before == 0  # loaded, not retrained
    assert np.array_equal(second.classes, first.classes)
    # opt_level annotates the loaded model with optimized-vs-raw MAC gates.
    assert second.info["mac_opt_level"] == 2
    assert 0 < second.info["mac_gates_optimized"] <= second.info["mac_gates_raw"]
    assert "mac_gates_raw" in second.metadata()
