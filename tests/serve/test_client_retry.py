"""HTTPClient retry edge cases: budgets, status policy, backoff caps.

The contract under test (see ``repro/serve/client.py``):

* a retry budget that runs dry re-raises the *original* transport error —
  not a wrapper, not a fresh one;
* only predict verbs retry on a 503 (their kernels are pure, resending is
  idempotent); ``healthz``/``stats``/``models`` never retry on status;
* backoff sleeps grow exponentially but are capped at ``max_backoff_s`` —
  a big retry budget must not become minute-long sleeps.
"""

from __future__ import annotations

import http.client
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

import repro.serve.client as client_module
from repro.serve.client import HTTPClient, HTTPError


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


@pytest.fixture()
def slamming_server():
    """A server that accepts and immediately closes every connection."""
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(8)
    listener.settimeout(0.05)  # a blocked accept() would outlive close()
    accepts = []
    stop = threading.Event()

    def loop():
        while not stop.is_set():
            try:
                conn, _ = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            accepts.append(1)
            conn.close()

    thread = threading.Thread(target=loop, daemon=True)
    thread.start()
    yield listener.getsockname()[1], accepts
    stop.set()
    thread.join(timeout=5)
    assert not thread.is_alive()
    listener.close()


class _Always503(BaseHTTPRequestHandler):
    requests = []

    def _answer(self):
        type(self).requests.append(self.path)
        body = b'{"error": "draining"}'
        self.send_response(503)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    do_GET = _answer
    do_POST = _answer

    def log_message(self, *args):  # keep pytest output clean
        pass


@pytest.fixture()
def always_503():
    _Always503.requests = []
    httpd = ThreadingHTTPServer(("127.0.0.1", 0), _Always503)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield httpd.server_address[1], _Always503.requests
    httpd.shutdown()
    httpd.server_close()


class TestBudgetExhaustion:
    def test_original_error_raised_after_budget(self, slamming_server):
        """The last failure's own exception type survives the retry loop."""
        port, accepts = slamming_server
        client = HTTPClient(
            f"http://127.0.0.1:{port}", retries=2, backoff_s=0.001
        )
        # A close-after-accept surfaces as RemoteDisconnected or (when the
        # kernel turns it into an RST) its parent ConnectionResetError —
        # either way the transport error itself propagates.
        with pytest.raises(ConnectionResetError):
            client.healthz()
        # Initial attempt + the full budget, each on a fresh connection.
        assert len(accepts) == 3

    def test_refused_connection_raises_original_oserror(self):
        port = _free_port()  # nothing is listening here
        client = HTTPClient(
            f"http://127.0.0.1:{port}", retries=1, backoff_s=0.001
        )
        with pytest.raises(ConnectionRefusedError):
            client.stats()

    def test_zero_retries_fails_on_first_error(self, slamming_server):
        port, accepts = slamming_server
        client = HTTPClient(f"http://127.0.0.1:{port}", retries=0)
        with pytest.raises(ConnectionResetError):
            client.models()
        assert len(accepts) == 1


class TestStatusRetryPolicy:
    def test_non_predict_verbs_never_retry_on_503(self, always_503):
        """A 503 from healthz/stats/models IS the answer: one request each."""
        port, requests = always_503
        client = HTTPClient(
            f"http://127.0.0.1:{port}", retries=3, backoff_s=0.001
        )
        for verb, expected_total in (
            (client.healthz, 1),
            (client.stats, 2),
            (client.models, 3),
        ):
            with pytest.raises(HTTPError) as err:
                verb()
            assert err.value.status == 503
            assert len(requests) == expected_total, (
                f"{verb.__name__} must not retry on status"
            )

    def test_predict_retries_on_503_then_surfaces_it(self, always_503):
        """Predict IS idempotent: it retries a 503, then reports the last."""
        port, requests = always_503
        client = HTTPClient(
            f"http://127.0.0.1:{port}", retries=2, backoff_s=0.001
        )
        with pytest.raises(HTTPError) as err:
            client.predict("redwine/ours", [0.5] * 11)
        assert err.value.status == 503
        assert len(requests) == 3  # initial + 2 retries

        requests.clear()
        with pytest.raises(HTTPError) as err:
            client.predict_many("redwine/ours", [[0.5] * 11])
        assert err.value.status == 503
        assert len(requests) == 3


class TestBackoffCap:
    def test_sleeps_never_exceed_max_backoff(self, monkeypatch):
        """Even an absurd base backoff is clamped to max_backoff_s."""
        sleeps = []
        monkeypatch.setattr(client_module.time, "sleep", sleeps.append)
        port = _free_port()
        client = HTTPClient(
            f"http://127.0.0.1:{port}",
            retries=4,
            backoff_s=100.0,
            max_backoff_s=0.002,
        )
        with pytest.raises(ConnectionRefusedError):
            client.healthz()
        assert len(sleeps) == 4  # one sleep before each retry, none before #0
        assert all(s == 0.002 for s in sleeps)

    def test_uncapped_growth_is_exponential(self, monkeypatch):
        sleeps = []
        monkeypatch.setattr(client_module.time, "sleep", sleeps.append)
        port = _free_port()
        client = HTTPClient(
            f"http://127.0.0.1:{port}",
            retries=3,
            backoff_s=0.001,
            max_backoff_s=10.0,
        )
        with pytest.raises(ConnectionRefusedError):
            client.healthz()
        assert sleeps == [
            pytest.approx(0.001),
            pytest.approx(0.002),
            pytest.approx(0.004),
        ]

    def test_negative_max_backoff_rejected(self):
        with pytest.raises(ValueError):
            HTTPClient("http://127.0.0.1:1", max_backoff_s=-0.1)
