"""Unit tests of the micro-batching queue (no models, synthetic kernels)."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.serve.batching import BatcherClosed, MicroBatcher


def echo_first_column(X: np.ndarray) -> np.ndarray:
    """A trivially-checkable kernel: returns each row's first value."""
    return np.asarray(X)[:, 0].copy()


def test_single_request_round_trip():
    with MicroBatcher(fn=echo_first_column, max_batch_size=4) as batcher:
        future = batcher.submit(np.array([[7.0, 1.0]]))
        assert future.result(timeout=5.0).tolist() == [7.0]


def test_empty_request_resolves_immediately():
    with MicroBatcher(fn=echo_first_column, max_batch_size=4) as batcher:
        future = batcher.submit(np.zeros((0, 2)))
        # Resolved synchronously, without a worker round trip.
        assert future.done()
        assert future.result().shape == (0,)


def test_rejects_non_2d_requests():
    with MicroBatcher(fn=echo_first_column, max_batch_size=4) as batcher:
        with pytest.raises(ValueError, match="2-D"):
            batcher.submit(np.array([1.0, 2.0]))
        with pytest.raises(ValueError, match="2-D"):
            batcher.submit_many([np.array([1.0, 2.0])])


def test_oversized_request_split_across_micro_batches():
    """A bulk request beyond max_batch_size spans several kernel calls."""
    batch_sizes = []

    def recording_kernel(X):
        batch_sizes.append(X.shape[0])
        return echo_first_column(X)

    rows = np.arange(103, dtype=float).reshape(-1, 1)
    with MicroBatcher(fn=recording_kernel, max_batch_size=16) as batcher:
        future = batcher.submit(rows)
        result = future.result(timeout=5.0)
    assert result.tolist() == rows[:, 0].tolist()  # order preserved end to end
    assert max(batch_sizes) <= 16
    assert sum(batch_sizes) == 103
    assert len(batch_sizes) == 7  # ceil(103 / 16)


def test_concurrent_singles_coalesce():
    """While the kernel runs, arriving singles pile up into one batch."""
    batch_sizes = []
    release = threading.Event()

    def gated_kernel(X):
        release.wait(timeout=5.0)
        batch_sizes.append(X.shape[0])
        return echo_first_column(X)

    batcher = MicroBatcher(fn=gated_kernel, max_batch_size=64, max_latency_ms=0.0)
    try:
        first = batcher.submit(np.array([[0.0]]))  # occupies the worker
        futures = [batcher.submit(np.array([[float(i)]])) for i in range(1, 40)]
        release.set()
        assert first.result(timeout=5.0).tolist() == [0.0]
        for i, future in enumerate(futures, start=1):
            assert future.result(timeout=5.0).tolist() == [float(i)]
    finally:
        batcher.close()
    # The 39 waiting singles were served by (far) fewer kernel calls.
    assert len(batch_sizes) < 10
    assert max(batch_sizes) > 1


def test_kernel_error_propagates_and_batcher_survives():
    def flaky_kernel(X):
        if np.any(X < 0):
            raise RuntimeError("negative feature")
        return echo_first_column(X)

    with MicroBatcher(fn=flaky_kernel, max_batch_size=4) as batcher:
        bad = batcher.submit(np.array([[-1.0]]))
        with pytest.raises(RuntimeError, match="negative feature"):
            bad.result(timeout=5.0)
        # The worker is still alive and serving.
        good = batcher.submit(np.array([[3.0]]))
        assert good.result(timeout=5.0).tolist() == [3.0]


def test_close_drains_in_flight_requests():
    def slow_kernel(X):
        time.sleep(0.01)
        return echo_first_column(X)

    batcher = MicroBatcher(fn=slow_kernel, max_batch_size=2, max_latency_ms=0.0)
    futures = [batcher.submit(np.array([[float(i)]])) for i in range(10)]
    batcher.close(drain=True)
    for i, future in enumerate(futures):
        assert future.result(timeout=5.0).tolist() == [float(i)]
    with pytest.raises(BatcherClosed):
        batcher.submit(np.array([[0.0]]))


def test_close_without_drain_fails_queued_requests():
    release = threading.Event()

    def gated_kernel(X):
        release.wait(timeout=5.0)
        return echo_first_column(X)

    batcher = MicroBatcher(fn=gated_kernel, max_batch_size=1, max_latency_ms=0.0)
    in_flight = batcher.submit(np.array([[1.0]]))
    queued = [batcher.submit(np.array([[float(i)]])) for i in range(2, 6)]
    # The worker is gated inside the kernel, so close(drain=False) must fail
    # the queued requests immediately — run it from a thread because it also
    # joins the (still gated) worker.
    closer = threading.Thread(
        target=batcher.close, kwargs={"drain": False}, daemon=True
    )
    closer.start()
    for future in queued:
        with pytest.raises(BatcherClosed):
            future.result(timeout=5.0)
    release.set()
    closer.join(timeout=5.0)
    assert not closer.is_alive()
    # The abandoned in-flight request resolved one way or the other — it
    # never hangs a caller.
    assert in_flight.done()


def test_submit_many_matches_individual_submissions():
    rows = np.arange(20, dtype=float).reshape(-1, 1)
    with MicroBatcher(fn=echo_first_column, max_batch_size=8) as batcher:
        futures = batcher.submit_many([rows[i : i + 1] for i in range(20)])
        values = [future.result(timeout=5.0).tolist() for future in futures]
    assert values == [[float(i)] for i in range(20)]
