"""The HTTP endpoint and the ``repro-serve`` CLI, end to end."""

from __future__ import annotations

import threading
import time

import pytest

from repro.serve.client import Client, HTTPClient, HTTPError
from repro.serve.http import serve_in_thread
from repro.serve.server import ModelServer

from .conftest import MODEL_NAME


@pytest.fixture()
def endpoint(server):
    """The test server bound to an ephemeral loopback port."""
    httpd = serve_in_thread(server, port=0)
    host, port = httpd.server_address[:2]
    yield HTTPClient(f"http://{host}:{port}", timeout=30.0)
    httpd.shutdown()
    httpd.server_close()


def test_http_predict_bit_identical_to_run_batch(
    endpoint, sequential_design, request_rows
):
    expected = sequential_design.simulate_batch(request_rows)
    labels = sequential_design.model.classes[expected]

    single = endpoint.predict(MODEL_NAME, list(request_rows[0]))
    assert single["class_id"] == int(expected[0])
    assert single["prediction"] == labels[0].item()

    bulk = endpoint.predict_many(MODEL_NAME, request_rows.tolist())
    assert bulk["class_ids"] == [int(i) for i in expected]
    assert bulk["predictions"] == labels.tolist()
    assert bulk["n_samples"] == request_rows.shape[0]


def test_http_and_in_process_clients_agree(endpoint, server, request_rows):
    local = Client(server)
    remote = endpoint
    a = local.predict_many(MODEL_NAME, request_rows[:7])
    b = remote.predict_many(MODEL_NAME, request_rows[:7].tolist())
    assert a["class_ids"] == b["class_ids"]
    assert a["predictions"] == b["predictions"]


def test_http_empty_batch(endpoint):
    out = endpoint.predict_many(MODEL_NAME, [])
    assert out["class_ids"] == []
    assert out["n_samples"] == 0


def test_http_stats_and_models_routes(endpoint, request_rows):
    endpoint.predict(MODEL_NAME, list(request_rows[0]))
    stats = endpoint.stats()
    assert MODEL_NAME in stats["models"]
    snap = stats["models"][MODEL_NAME]
    for key in (
        "requests_total",
        "requests_per_s",
        "batch_occupancy",
        "latency_p50_ms",
        "latency_p99_ms",
    ):
        assert key in snap
    assert snap["requests_total"] >= 1

    models = endpoint.models()["models"]
    assert [m["name"] for m in models] == [MODEL_NAME]
    assert models[0]["backend"] == "datapath.run_batch"
    assert endpoint.healthz()["status"] == "ok"


def test_http_keep_alive_reuses_one_connection(endpoint, request_rows):
    """Sequential requests ride one persistent HTTP/1.1 connection."""
    endpoint.healthz()
    conn = endpoint._conn
    assert conn is not None and conn.sock is not None
    local_port = conn.sock.getsockname()[1]
    for _ in range(3):
        endpoint.predict(MODEL_NAME, list(request_rows[0]))
        endpoint.stats()
    assert endpoint._conn is conn, "client dropped its persistent connection"
    assert conn.sock.getsockname()[1] == local_port, "socket was re-established"


def test_http_post_to_unknown_route_does_not_poison_the_connection(
    endpoint, request_rows
):
    """A 404 whose body the server never read must not desync keep-alive."""
    with pytest.raises(HTTPError) as err:
        endpoint._request("/nope", {"model": MODEL_NAME, "features": [0.5] * 64})
    assert err.value.status == 404
    # The very next requests on this client must still parse cleanly.
    assert endpoint.healthz()["status"] == "ok"
    out = endpoint.predict(MODEL_NAME, list(request_rows[0]))
    assert "class_id" in out


def test_http_client_survives_server_side_close(endpoint, request_rows):
    """A dropped kept socket is re-established transparently (one retry)."""
    import socket

    endpoint.healthz()
    # Simulate the server idle-timing us out: the fd stays valid but the
    # connection is dead, exactly like a peer close.
    endpoint._conn.sock.shutdown(socket.SHUT_RDWR)
    out = endpoint.predict(MODEL_NAME, list(request_rows[0]))
    assert "class_id" in out
    endpoint.close()  # explicit close re-opens lazily
    assert endpoint.healthz()["status"] == "ok"


def test_http_error_codes(endpoint, request_rows):
    with pytest.raises(HTTPError) as err:
        endpoint.predict(MODEL_NAME, [0.1, 0.2])  # wrong feature count
    assert err.value.status == 400

    with pytest.raises(HTTPError) as err:
        endpoint.predict("not-a-model-name", list(request_rows[0]))
    assert err.value.status == 400

    with pytest.raises(HTTPError) as err:
        endpoint._request("/predict", {"model": MODEL_NAME})  # neither key
    assert err.value.status == 400

    with pytest.raises(HTTPError) as err:
        endpoint._request(
            "/predict",
            {
                "model": MODEL_NAME,
                "features": list(request_rows[0]),
                "batch": [list(request_rows[0])],
            },
        )
    assert err.value.status == 400

    with pytest.raises(HTTPError) as err:
        endpoint._request("/nope")
    assert err.value.status == 404


def test_healthz_reports_ready(endpoint):
    health = endpoint.healthz()
    assert health["status"] == "ok"
    assert health["ready"] is True
    assert endpoint.wait_ready(timeout_s=5.0)["ready"] is True


def test_fleet_endpoint_end_to_end(registry, sequential_design, request_rows):
    """HTTP over a worker fleet: poll ready, predict, aggregated stats."""
    import multiprocessing

    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("fleet needs the fork start method")
    server = ModelServer(registry, max_batch_size=16, max_latency_ms=1.0, workers=2)
    httpd = serve_in_thread(server, port=0)
    host, port = httpd.server_address[:2]
    client = HTTPClient(f"http://{host}:{port}", timeout=30.0)
    try:
        assert client.wait_ready(timeout_s=30.0)["ready"] is True
        expected = sequential_design.simulate_batch(request_rows)
        out = client.predict_many(MODEL_NAME, request_rows.tolist())
        assert out["class_ids"] == [int(i) for i in expected]
        stats = client.stats()
        assert stats["models"][MODEL_NAME]["requests_total"] >= 1
        assert [w["alive"] for w in stats["workers"]] == [True, True]
    finally:
        httpd.shutdown()
        httpd.server_close()
        server.shutdown()


def test_predict_retries_on_503_with_backoff(request_rows):
    """A 503 window (drain/restart) is invisible to predict callers."""
    import json as json_module
    from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

    hits = {"predict": 0}

    class FlakyHandler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, format, *args):  # noqa: A002 - stdlib signature
            pass

        def _reply(self, status, payload):
            body = json_module.dumps(payload).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def do_POST(self):
            self.rfile.read(int(self.headers.get("Content-Length", 0) or 0))
            hits["predict"] += 1
            if hits["predict"] <= 2:
                self._reply(503, {"error": "draining"})
            else:
                self._reply(200, {"class_id": 1})

        def do_GET(self):
            self._reply(503, {"error": "draining"})

    httpd = ThreadingHTTPServer(("127.0.0.1", 0), FlakyHandler)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    host, port = httpd.server_address[:2]
    client = HTTPClient(f"http://{host}:{port}", retries=3, backoff_s=0.01)
    try:
        # predict rides out the two 503s (idempotent, bounded backoff)...
        assert client.predict(MODEL_NAME, list(request_rows[0]))["class_id"] == 1
        assert hits["predict"] == 3
        # ...but healthz never retries on status: the 503 is the answer.
        with pytest.raises(HTTPError) as err:
            client.healthz()
        assert err.value.status == 503
    finally:
        httpd.shutdown()
        httpd.server_close()


def test_http_shutdown_returns_503(registry, request_rows):
    server = ModelServer(registry, max_batch_size=8, max_latency_ms=0.0)
    httpd = serve_in_thread(server, port=0)
    host, port = httpd.server_address[:2]
    client = HTTPClient(f"http://{host}:{port}", timeout=30.0)
    try:
        assert client.healthz()["status"] == "ok"
        server.shutdown(drain=True)
        with pytest.raises(HTTPError) as err:
            client.healthz()
        assert err.value.status == 503
        with pytest.raises(HTTPError) as err:
            client.predict(MODEL_NAME, list(request_rows[0]))
        assert err.value.status == 503
    finally:
        httpd.shutdown()
        httpd.server_close()
        server.shutdown()


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #
def test_cli_rejects_malformed_model_names(capsys):
    from repro.cli import main_serve

    with pytest.raises(SystemExit) as exit_info:
        main_serve(["--models", "redwine-ours", "--port", "0"])
    assert exit_info.value.code == 2  # argparse usage error, before training


def test_cli_serves_http_end_to_end(monkeypatch, tiny_flow_config):
    """Boot the real repro-serve CLI on an ephemeral port and query it."""
    import repro.cli as cli
    import repro.serve.http as serve_http

    captured = {}
    original = serve_http.ServingHTTPServer.serve_forever

    def capturing_serve_forever(self, *args, **kwargs):
        captured["httpd"] = self
        return original(self, *args, **kwargs)

    monkeypatch.setattr(
        serve_http.ServingHTTPServer, "serve_forever", capturing_serve_forever
    )
    # Route the CLI onto the small test configuration so the preload trains
    # (or reuses) the tiny flow rather than the paper-sized one.
    monkeypatch.setattr(cli, "fast_config", lambda: tiny_flow_config)

    thread = threading.Thread(
        target=cli.main_serve,
        args=(
            [
                "--models",
                "redwine/ours",
                "--port",
                "0",
                "--fast",
                "--no-cache",
                "--max-batch-size",
                "32",
            ],
        ),
        daemon=True,
    )
    thread.start()
    deadline = time.monotonic() + 120.0
    while "httpd" not in captured and time.monotonic() < deadline:
        time.sleep(0.05)
    assert "httpd" in captured, "CLI server did not come up"
    httpd = captured["httpd"]
    host, port = httpd.server_address[:2]
    client = HTTPClient(f"http://{host}:{port}", timeout=30.0)
    try:
        assert client.healthz()["status"] == "ok"
        models = client.models()["models"]
        assert [m["name"] for m in models] == ["redwine/ours"]
        n_features = models[0]["n_features"]
        out = client.predict("redwine/ours", [0.5] * n_features)
        assert out["model"] == "redwine/ours"
        assert out["class_id"] in range(len(models[0]["classes"]))
    finally:
        httpd.shutdown()
        thread.join(timeout=30.0)
    assert not thread.is_alive()


def test_cli_serves_worker_fleet_end_to_end(monkeypatch, tiny_flow_config):
    """repro-serve --workers 2: training happens in the workers, /healthz
    turns ready, and predictions flow through the frontend router."""
    import multiprocessing

    import repro.cli as cli
    import repro.serve.http as serve_http

    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("fleet needs the fork start method")

    captured = {}
    original = serve_http.ServingHTTPServer.serve_forever

    def capturing_serve_forever(self, *args, **kwargs):
        captured["httpd"] = self
        return original(self, *args, **kwargs)

    monkeypatch.setattr(
        serve_http.ServingHTTPServer, "serve_forever", capturing_serve_forever
    )
    monkeypatch.setattr(cli, "fast_config", lambda: tiny_flow_config)

    thread = threading.Thread(
        target=cli.main_serve,
        args=(
            [
                "--models",
                "redwine/ours",
                "--port",
                "0",
                "--fast",
                "--no-cache",
                "--workers",
                "2",
                "--lanes-per-worker",
                "1",
            ],
        ),
        daemon=True,
    )
    thread.start()
    deadline = time.monotonic() + 120.0
    while "httpd" not in captured and time.monotonic() < deadline:
        time.sleep(0.05)
    assert "httpd" in captured, "CLI fleet server did not come up"
    httpd = captured["httpd"]
    host, port = httpd.server_address[:2]
    client = HTTPClient(f"http://{host}:{port}", timeout=30.0)
    try:
        assert client.wait_ready(timeout_s=60.0)["ready"] is True
        models = client.models()["models"]
        assert [m["name"] for m in models] == ["redwine/ours"]
        out = client.predict("redwine/ours", [0.5] * models[0]["n_features"])
        assert out["model"] == "redwine/ours"
        stats = client.stats()
        assert len(stats["workers"]) == 2
        assert sum(len(w["models"]) for w in stats["workers"]) == 1
    finally:
        httpd.shutdown()
        thread.join(timeout=60.0)
    assert not thread.is_alive()
