"""Fixtures for the serving tests.

Serving tests must not train on the request path, so the served model is
built directly from the session-scoped ``sequential_design`` fixture (the
small 4-class problem) and installed into the registry by hand — exactly
what :meth:`ModelRegistry.register` exists for.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve.model import ServedModel
from repro.serve.registry import ModelRegistry
from repro.serve.server import ModelServer

#: Registry name of the hand-registered test model.
MODEL_NAME = "small-problem/ours"


def make_served_model(design, name: str = MODEL_NAME, batch_fn=None) -> ServedModel:
    """A ServedModel over the test design (optionally with a wrapped kernel)."""
    return ServedModel(
        name=name,
        dataset="small-problem",
        kind="ours",
        design=design,
        batch_fn=batch_fn if batch_fn is not None else design.simulate_batch,
        classes=np.asarray(design.model.classes),
        n_features=design.n_features,
        backend="datapath.run_batch",
    )


@pytest.fixture()
def served_model(sequential_design) -> ServedModel:
    """The small sequential SVM design wrapped for serving."""
    return make_served_model(sequential_design)


@pytest.fixture()
def registry(served_model) -> ModelRegistry:
    """A registry with the test model pre-registered (no training paths)."""
    reg = ModelRegistry()
    reg.register(served_model)
    return reg


@pytest.fixture()
def server(registry):
    """A ModelServer over the test registry, shut down after the test."""
    srv = ModelServer(registry, max_batch_size=16, max_latency_ms=1.0)
    yield srv
    srv.shutdown()


@pytest.fixture()
def request_rows(small_split) -> np.ndarray:
    """Real-valued test-split rows the served model accepts."""
    return np.asarray(small_split.X_test, dtype=float)
