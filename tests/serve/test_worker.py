"""The frontend/worker split: framing, bit-exactness, drain, crash recovery.

The fleet tests fork worker processes, so they rely on the ``fork`` start
method (hand-registered test models inherit across the fork without
pickling) — available on every POSIX platform CI runs on.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import socket
import time

import numpy as np
import pytest

from repro.serve.registry import ModelRegistry
from repro.serve.server import ModelServer, ServerClosed
from repro.serve.transport import (
    MSG_CONTROL,
    MSG_REQUEST,
    MSG_RESPONSE,
    FrameConnection,
    TransportError,
)

from .conftest import make_served_model

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fleet tests hand models across os.fork()",
)

#: The >=4-model mix the fleet tests serve.
FLEET_MODELS = ("mix/a", "mix/b", "mix/c", "mix/d")


@pytest.fixture()
def fleet_registry(sequential_design):
    """Four hand-registered copies of the test design under distinct names."""
    registry = ModelRegistry()
    for name in FLEET_MODELS:
        registry.register(make_served_model(sequential_design, name=name))
    return registry


def make_fleet(registry, **kwargs):
    kwargs.setdefault("max_batch_size", 16)
    kwargs.setdefault("max_latency_ms", 1.0)
    kwargs.setdefault("workers", 2)
    return ModelServer(registry, **kwargs)


# --------------------------------------------------------------------------- #
# Transport framing
# --------------------------------------------------------------------------- #
def test_frame_round_trip_preserves_kinds_and_payloads():
    left_sock, right_sock = socket.socketpair()
    left, right = FrameConnection(left_sock), FrameConnection(right_sock)
    rows = np.arange(12, dtype=float).reshape(3, 4)
    left.send(MSG_REQUEST, (7, "mix/a", "ids", rows))
    left.send(MSG_CONTROL, (8, "ping", None))
    kind, body = right.recv()
    assert kind == MSG_REQUEST
    assert body[0] == 7 and body[1] == "mix/a" and body[2] == "ids"
    assert np.array_equal(body[3], rows)
    assert right.recv() == (MSG_CONTROL, (8, "ping", None))
    right.send(MSG_RESPONSE, (7, np.zeros(3, dtype=np.int64)))
    kind, (req_id, payload) = left.recv()
    assert kind == MSG_RESPONSE and req_id == 7 and payload.dtype == np.int64
    left.close()
    right.close()


def test_clean_eof_is_none_torn_frame_raises():
    left_sock, right_sock = socket.socketpair()
    left, right = FrameConnection(left_sock), FrameConnection(right_sock)
    left.close()
    assert right.recv() is None  # peer closed at a frame boundary

    left_sock, right_sock = socket.socketpair()
    # A header announcing 100 payload bytes, then death mid-frame.
    left_sock.sendall(b"\x01\x00\x00\x00\x64partial")
    left_sock.close()
    with pytest.raises(TransportError):
        FrameConnection(right_sock).recv()


def test_send_on_closed_connection_raises_oserror():
    left_sock, _right_sock = socket.socketpair()
    conn = FrameConnection(left_sock)
    conn.close()
    with pytest.raises(OSError):
        conn.send(MSG_CONTROL, (1, "ping", None))


# --------------------------------------------------------------------------- #
# Fleet vs oracle bit-exactness
# --------------------------------------------------------------------------- #
@needs_fork
def test_fleet_bit_identical_to_single_process_oracle(
    fleet_registry, sequential_design, request_rows
):
    """Every request mode agrees exactly with the workers=0 oracle."""
    expected = sequential_design.simulate_batch(request_rows)
    labels = sequential_design.model.classes[expected]
    with make_fleet(fleet_registry, workers=2, lanes_per_worker=2) as fleet:
        for name in FLEET_MODELS:
            bulk = fleet.predict_many(name, request_rows)
            assert bulk["class_ids"] == [int(i) for i in expected]
            assert bulk["predictions"] == labels.tolist()

        single = fleet.predict(FLEET_MODELS[0], request_rows[0])
        assert single["class_id"] == int(expected[0])
        assert single["prediction"] == labels[0].item()
        assert single["latency_ms"] >= 0.0

        ids = fleet.submit(FLEET_MODELS[1], request_rows[:1]).result(timeout=30.0)
        assert ids[0] == expected[0]

        futures = fleet.submit_many(FLEET_MODELS[2], request_rows)
        got = np.concatenate([f.result(timeout=30.0) for f in futures])
        assert np.array_equal(got, expected)

        empty = fleet.predict_many(FLEET_MODELS[3], [])
        assert empty["class_ids"] == [] and empty["n_samples"] == 0


@needs_fork
def test_fleet_relays_validation_errors(fleet_registry, request_rows):
    with make_fleet(fleet_registry) as fleet:
        with pytest.raises(ValueError, match="exactly one sample"):
            fleet.predict(FLEET_MODELS[0], request_rows[:2])
        with pytest.raises(ValueError, match="features"):
            fleet.predict_many(FLEET_MODELS[0], np.zeros((3, 2)))
        with pytest.raises(ValueError):
            fleet.open_lane("not-a/model")
        # The failed route must not pin the bogus name to a worker.
        assert all(
            "not-a/model" not in w["models"] for w in fleet.stats()["workers"]
        )


@needs_fork
def test_lanes_per_worker_spreads_models(fleet_registry):
    with make_fleet(fleet_registry, workers=2, lanes_per_worker=2) as fleet:
        for name in FLEET_MODELS:
            fleet.open_lane(name)
        counts = sorted(len(w["models"]) for w in fleet.stats()["workers"])
        assert counts == [2, 2]  # least-loaded under the cap, 4 models / 2 seats


# --------------------------------------------------------------------------- #
# Graceful drain
# --------------------------------------------------------------------------- #
@needs_fork
def test_fleet_graceful_drain_completes_in_flight_requests(
    sequential_design, request_rows
):
    """shutdown(drain=True) answers queued slow work; new requests fail fast."""
    design = sequential_design

    def slow_kernel(X):
        time.sleep(0.005)
        return design.simulate_batch(X)

    registry = ModelRegistry()
    for name in FLEET_MODELS[:2]:
        registry.register(make_served_model(design, name=name, batch_fn=slow_kernel))
    fleet = make_fleet(registry, workers=2, max_batch_size=4, max_latency_ms=0.0)
    try:
        for name in FLEET_MODELS[:2]:
            fleet.open_lane(name)
        futures = [
            fleet.submit(FLEET_MODELS[i % 2], request_rows[i : i + 1])
            for i in range(20)
        ]
        fleet.shutdown(drain=True)
        expected = design.simulate_batch(request_rows[:20])
        got = [future.result(timeout=30.0)[0] for future in futures]
        assert got == [int(i) for i in expected]
        with pytest.raises(ServerClosed):
            fleet.predict(FLEET_MODELS[0], request_rows[0])
        fleet.shutdown()  # idempotent
    finally:
        fleet.shutdown()


# --------------------------------------------------------------------------- #
# Crash recovery
# --------------------------------------------------------------------------- #
@needs_fork
def test_worker_crash_mid_load_restarts_and_loses_nothing(
    sequential_design, request_rows
):
    """SIGKILL a worker with requests in flight: the frontend restarts it and
    resubmits, so every future resolves exactly once with the right answer."""
    design = sequential_design

    def slow_kernel(X):
        time.sleep(0.004)
        return design.simulate_batch(X)

    registry = ModelRegistry()
    for name in FLEET_MODELS[:2]:
        registry.register(make_served_model(design, name=name, batch_fn=slow_kernel))
    rows = np.tile(request_rows, (8, 1))
    expected = design.simulate_batch(rows)

    with make_fleet(
        registry, workers=2, lanes_per_worker=1, max_batch_size=8, max_latency_ms=0.0
    ) as fleet:
        for name in FLEET_MODELS[:2]:
            fleet.open_lane(name)
        stats = fleet.stats()
        victim = stats["workers"][0]
        victim_model = victim["models"][0]

        # Many slow micro-batches in flight on the victim, then kill it.
        futures = fleet.submit_many(victim_model, rows)
        time.sleep(0.01)
        os.kill(victim["pid"], signal.SIGKILL)

        results = [int(f.result(timeout=60.0)[0]) for f in futures]
        assert results == [int(i) for i in expected]  # nothing lost, nothing dup

        after = fleet.stats()
        assert after["workers"][0]["restarts"] == 1
        assert after["workers"][0]["alive"]
        assert after["workers"][0]["pid"] != victim["pid"]
        # The replacement re-opened the victim's lanes and keeps serving.
        again = fleet.predict(victim_model, request_rows[0])
        assert again["class_id"] == int(design.simulate_batch(request_rows[:1])[0])


@needs_fork
def test_fleet_ready_reflects_worker_health(fleet_registry):
    fleet = make_fleet(fleet_registry, workers=2, restart_workers=False)
    try:
        deadline = time.monotonic() + 30.0
        while not fleet.ready and time.monotonic() < deadline:
            time.sleep(0.01)
        assert fleet.ready
        os.kill(fleet.stats()["workers"][0]["pid"], signal.SIGKILL)
        deadline = time.monotonic() + 30.0
        while fleet.ready and time.monotonic() < deadline:
            time.sleep(0.01)
        assert not fleet.ready  # a dead, unrestarted worker makes the fleet unready
    finally:
        fleet.shutdown()


# --------------------------------------------------------------------------- #
# Fleet-wide /stats aggregation
# --------------------------------------------------------------------------- #
@needs_fork
def test_fleet_stats_aggregate_across_workers(fleet_registry, request_rows):
    """Per-model sections come from the owning workers; counts add up."""
    per_model = {name: 3 + i for i, name in enumerate(FLEET_MODELS)}
    with make_fleet(fleet_registry, workers=2, lanes_per_worker=2) as fleet:
        for name, n in per_model.items():
            for i in range(n):
                fleet.predict(name, request_rows[i])
        stats = fleet.stats()

    assert stats["workers_configured"] == 2
    assert len(stats["workers"]) == 2
    owned = [set(w["models"]) for w in stats["workers"]]
    assert owned[0] | owned[1] == set(FLEET_MODELS)
    assert owned[0] & owned[1] == set()  # each model lives on exactly one worker
    for worker in stats["workers"]:
        assert worker["alive"] and worker["ready"]
        assert worker["restarts"] == 0
        assert worker["uptime_s"] > 0.0
    for name, n in per_model.items():
        snap = stats["models"][name]
        assert snap["requests_total"] == n
        assert snap["samples_total"] == n
        assert snap["latency_p50_ms"] <= snap["latency_p99_ms"]
    total = sum(s["requests_total"] for s in stats["models"].values())
    assert total == sum(per_model.values())
