"""Smoke tests: every example script must run end to end.

The examples are executed in-process (``runpy``) with their default fast
configuration so they share the dataset / flow caches with the rest of the
test session; each one must finish without raising and produce the output
sections its docstring promises.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(script: str, argv, capsys) -> str:
    """Execute one example as __main__ with the given argv; return stdout."""
    path = EXAMPLES_DIR / script
    assert path.exists(), f"example {script} is missing"
    old_argv = sys.argv
    sys.argv = [str(path)] + list(argv)
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", ["--dataset", "redwine"], capsys)
        assert "Hardware evaluation" in out
        assert "Cycle-accurate simulation" in out
        assert "Printed-battery feasibility" in out
        assert "True" in out  # bit-exact check

    def test_healthcare_wearable(self, capsys):
        out = run_example("healthcare_wearable.py", [], capsys)
        assert "Hardware comparison" in out
        assert "battery life" in out.lower()
        assert "longer battery life" in out

    def test_design_space_exploration(self, capsys):
        out = run_example("design_space_exploration.py", ["--dataset", "redwine"], capsys)
        assert "Precision sweep" in out
        assert "Pareto-optimal" in out
        assert "OvR" in out and "OvO" in out
        assert "crossbar" in out

    def test_smart_packaging_verilog(self, capsys, tmp_path):
        out = run_example(
            "smart_packaging_verilog.py", ["--outdir", str(tmp_path)], capsys
        )
        assert "behavioural Verilog written" in out
        assert (tmp_path / "sequential_svm_redwine.v").exists()
        assert (tmp_path / "sequential_svm_whitewine.v").exists()
        verilog = (tmp_path / "sequential_svm_redwine.v").read_text()
        assert "module" in verilog and "endmodule" in verilog
        # The optimized structural constant-MAC datapath is exported too.
        assert "structural MAC datapath" in out
        assert "% removed, bit-exact" in out
        mac = (tmp_path / "mac_datapath_redwine.v").read_text()
        assert "module" in mac and "endmodule" in mac

    def test_manufacturability_study(self, capsys):
        out = run_example("manufacturability_study.py", ["--dataset", "redwine"], capsys)
        assert "Floorplans" in out
        assert "yield" in out.lower()
        assert "holds at every corner: True" in out
