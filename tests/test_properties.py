"""Cross-module property-based tests (hypothesis).

These properties tie the layers together: whatever coefficients a trained
model ends up with, the quantized software model, the cycle-accurate
hardware simulator and the architectural cost models must stay consistent.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compute_engine import FoldedComputeEngine
from repro.core.control import SequentialController
from repro.core.storage import MuxStorage
from repro.core.voter import SequentialArgmaxVoter
from repro.hw.pdk import EGFET_PDK
from repro.hw.rtl.adders import adder_tree, adder_tree_output_width
from repro.hw.rtl.multipliers import constant_multiplier, csd_digits
from repro.hw.rtl.registers import counter_bits
from repro.hw.simulate import SequentialDatapathSimulator
from repro.ml.fixed_point import required_bits_for_integer


# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #
small_models = st.tuples(
    st.integers(min_value=2, max_value=6),   # n_classifiers
    st.integers(min_value=1, max_value=8),   # n_features
    st.integers(min_value=1, max_value=999), # seed
)


def _random_model(n_classifiers, n_features, seed):
    rng = np.random.default_rng(seed)
    weights = rng.integers(-31, 32, size=(n_classifiers, n_features))
    biases = rng.integers(-300, 300, size=n_classifiers)
    return weights, biases


# --------------------------------------------------------------------------- #
# Properties
# --------------------------------------------------------------------------- #
class TestDatapathEquivalence:
    @given(small_models, st.integers(min_value=0, max_value=999))
    @settings(max_examples=60, deadline=None)
    def test_sequential_simulator_equals_argmax(self, shape, input_seed):
        """For any hardwired coefficients and any quantized input, the
        cycle-accurate sequential datapath computes exactly
        argmax_k (w_k . x + b_k) with first-wins tie-breaking."""
        n_classifiers, n_features, seed = shape
        weights, biases = _random_model(n_classifiers, n_features, seed)
        x = np.random.default_rng(input_seed).integers(0, 16, size=n_features)
        sim = SequentialDatapathSimulator(weights, biases)
        scores = weights @ x + biases
        assert sim.run(x).predicted_class == int(np.argmax(scores))

    @given(small_models, st.integers(min_value=0, max_value=999))
    @settings(max_examples=40, deadline=None)
    def test_engine_storage_voter_composition(self, shape, input_seed):
        """Fetching every word from storage, evaluating it on the folded
        engine and feeding the scores to the sequential voter reproduces the
        simulator's prediction — i.e. the four architectural components
        compose into the paper's datapath."""
        n_classifiers, n_features, seed = shape
        weights, biases = _random_model(n_classifiers, n_features, seed)
        x = np.random.default_rng(input_seed).integers(0, 16, size=n_features)

        score_bound = int(np.max(np.sum(np.abs(weights), axis=1) * 15 + np.abs(biases)))
        score_bits = max(required_bits_for_integer(score_bound), 2)
        table = np.hstack([weights, biases.reshape(-1, 1)])
        storage = MuxStorage(table, [6] * n_features + [score_bits])
        engine = FoldedComputeEngine(n_features, 4, 6, score_bits)
        controller = SequentialController(n_classifiers)
        voter = SequentialArgmaxVoter(score_bits, counter_bits(n_classifiers))

        scores = []
        for select in controller.run_sequence():
            word = storage.read(select)
            scores.append(engine.compute(x, word[:-1], int(word[-1])))
        predicted = voter.decide(scores)

        sim = SequentialDatapathSimulator(weights, biases)
        assert predicted == sim.run(x).predicted_class

    @given(small_models)
    @settings(max_examples=40, deadline=None)
    def test_latency_is_class_count_times_period(self, shape):
        """The sequential architecture always takes exactly n cycles."""
        n_classifiers, _, _ = shape
        controller = SequentialController(n_classifiers)
        assert len(controller.run_sequence()) == n_classifiers


class TestCostModelInvariants:
    @given(st.integers(min_value=2, max_value=40), st.integers(min_value=2, max_value=16))
    @settings(max_examples=40, deadline=None)
    def test_adder_tree_area_monotone_in_operand_count(self, n_operands, width):
        smaller = adder_tree(n_operands, width).area_cm2(EGFET_PDK)
        larger = adder_tree(n_operands + 1, width).area_cm2(EGFET_PDK)
        assert larger >= smaller

    @given(st.integers(min_value=2, max_value=64), st.integers(min_value=1, max_value=16))
    @settings(max_examples=40, deadline=None)
    def test_adder_tree_width_bound(self, n_operands, width):
        out = adder_tree_output_width(n_operands, width)
        assert width < out <= width + 6

    @given(st.integers(min_value=-127, max_value=127), st.integers(min_value=2, max_value=8))
    @settings(max_examples=80, deadline=None)
    def test_constant_multiplier_cost_bounded_by_csd_weight(self, constant, input_bits):
        """A bespoke constant multiplier never needs more adder stages than
        non-zero CSD digits minus one (each stage merges two terms)."""
        block = constant_multiplier(constant, input_bits)
        nonzero = sum(1 for d in csd_digits(constant) if d != 0)
        if nonzero <= 1:
            # Shift-only (or negation-only) multipliers contain no full adders.
            assert block.counts.get("FA", 0) == 0
        else:
            max_width = input_bits + int(abs(constant)).bit_length()
            assert block.counts["FA"] <= (nonzero - 1) * (max_width + 2)

    @given(st.integers(min_value=1, max_value=4096))
    @settings(max_examples=60, deadline=None)
    def test_counter_bits_cover_state_count(self, n_states):
        bits = counter_bits(n_states)
        assert 2 ** bits >= n_states
        assert 2 ** max(bits - 1, 0) < n_states or n_states == 1

    @given(small_models)
    @settings(max_examples=30, deadline=None)
    def test_storage_cost_scales_with_word_count_not_explode(self, shape):
        n_classifiers, n_features, seed = shape
        weights, biases = _random_model(n_classifiers, n_features, seed)
        table = np.hstack([weights, biases.reshape(-1, 1)])
        storage = MuxStorage(table, [6] * n_features + [12])
        # Never more cells than one 2:1 mux per stored bit (the un-collapsed
        # upper bound), and never negative.
        upper_bound = storage.total_bits
        assert 0 <= storage.hardware().n_cells() <= upper_bound + storage.word_bits


class TestVoterProperties:
    @given(
        st.lists(st.integers(min_value=-(2 ** 15), max_value=2 ** 15 - 1), min_size=1, max_size=20)
    )
    @settings(max_examples=100, deadline=None)
    def test_sequential_voter_is_argmax_for_any_scores(self, scores):
        voter = SequentialArgmaxVoter(score_bits=17, index_bits=5)
        assert voter.decide(scores) == int(np.argmax(scores))

    @given(
        st.lists(st.integers(min_value=-1000, max_value=1000), min_size=2, max_size=12),
        st.integers(min_value=0, max_value=11),
    )
    @settings(max_examples=60, deadline=None)
    def test_raising_one_score_can_only_move_prediction_toward_it(self, scores, index):
        """Monotonicity: increasing classifier k's score never makes the voter
        prefer a *different* classifier over the previous winner unless that
        classifier is k itself."""
        voter = SequentialArgmaxVoter(score_bits=16, index_bits=4)
        index = index % len(scores)
        before = voter.decide(scores)
        bumped = list(scores)
        bumped[index] += 500
        after = voter.decide(bumped)
        assert after in (before, index)
