"""Tests for the synthetic dataset generators and the registry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (
    available_datasets,
    canonical_name,
    clear_cache,
    dataset_summary,
    load_dataset,
    register_dataset,
)
from repro.datasets.synthetic import (
    SyntheticDataset,
    SyntheticSpec,
    generate_dataset,
    make_classification,
)
from repro.datasets.uci import (
    make_cardio,
    make_dermatology,
    make_pendigits,
    make_redwine,
    make_whitewine,
)

#: Shapes of the real UCI datasets the paper evaluates on.
EXPECTED_SHAPES = {
    "cardio": (21, 3),
    "dermatology": (34, 6),
    "pendigits": (16, 10),
    "redwine": (11, 6),
    "whitewine": (11, 7),
}


class TestSyntheticGenerator:
    def test_shapes(self):
        spec = SyntheticSpec(n_samples=100, n_features=8, n_classes=3, seed=0)
        X, y = make_classification(spec)
        assert X.shape == (100, 8)
        assert y.shape == (100,)
        assert set(np.unique(y)) == {0, 1, 2}

    def test_deterministic_given_seed(self):
        spec = SyntheticSpec(n_samples=60, n_features=5, n_classes=3, seed=42)
        X1, y1 = make_classification(spec)
        X2, y2 = make_classification(spec)
        assert np.array_equal(X1, X2)
        assert np.array_equal(y1, y2)

    def test_different_seeds_give_different_data(self):
        a = SyntheticSpec(n_samples=60, n_features=5, n_classes=3, seed=1)
        b = SyntheticSpec(n_samples=60, n_features=5, n_classes=3, seed=2)
        Xa, _ = make_classification(a)
        Xb, _ = make_classification(b)
        assert not np.array_equal(Xa, Xb)

    def test_every_class_present(self):
        spec = SyntheticSpec(
            n_samples=80,
            n_features=4,
            n_classes=5,
            class_priors=(0.9, 0.05, 0.03, 0.01, 0.01),
            seed=3,
        )
        _, y = make_classification(spec)
        assert set(np.unique(y)) == set(range(5))

    def test_separability_controls_difficulty(self):
        """Higher separability must make a linear classifier more accurate."""
        from repro.ml.multiclass import OneVsRestClassifier
        from repro.ml.preprocessing import prepare_split
        from repro.ml.svm import LinearSVC

        accuracies = []
        for sep in (0.6, 4.0):
            spec = SyntheticSpec(
                n_samples=400, n_features=8, n_classes=4, separability=sep, seed=5
            )
            X, y = make_classification(spec)
            split = prepare_split(X, y, random_state=0)
            clf = OneVsRestClassifier(LinearSVC(max_iter=40)).fit(
                split.X_train, split.y_train
            )
            accuracies.append(clf.score(split.X_test, split.y_test))
        assert accuracies[1] > accuracies[0] + 0.15

    def test_ordinal_datasets_confuse_adjacent_classes(self):
        spec = SyntheticSpec(
            n_samples=600,
            n_features=6,
            n_classes=5,
            separability=1.2,
            ordinal=True,
            seed=6,
        )
        X, y = make_classification(spec)
        # Project onto the first latent direction via class means: means must
        # be ordered, the signature of ordinal structure.
        means = np.array([X[y == c].mean(axis=0) for c in range(5)])
        # Use the direction between the extreme classes as the ordinal axis.
        axis = means[-1] - means[0]
        projections = means @ axis
        assert np.all(np.diff(projections) > 0)

    def test_label_noise_increases_bayes_error(self):
        clean_spec = SyntheticSpec(
            n_samples=300, n_features=6, n_classes=3, separability=4.0, seed=8
        )
        noisy_spec = SyntheticSpec(
            n_samples=300,
            n_features=6,
            n_classes=3,
            separability=4.0,
            label_noise=0.3,
            seed=8,
        )
        _, y_clean = make_classification(clean_spec)
        _, y_noisy = make_classification(noisy_spec)
        assert np.mean(y_clean != y_noisy) > 0.1

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            SyntheticSpec(n_samples=2, n_features=3, n_classes=5)
        with pytest.raises(ValueError):
            SyntheticSpec(n_samples=10, n_features=3, n_classes=2, separability=0.0)
        with pytest.raises(ValueError):
            SyntheticSpec(n_samples=10, n_features=3, n_classes=2, feature_correlation=1.5)
        with pytest.raises(ValueError):
            SyntheticSpec(n_samples=10, n_features=3, n_classes=2, label_noise=1.0)
        with pytest.raises(ValueError):
            SyntheticSpec(
                n_samples=10, n_features=3, n_classes=2, n_informative=5, noise_features=2
            )
        with pytest.raises(ValueError):
            SyntheticSpec(
                n_samples=10, n_features=3, n_classes=3, class_priors=(0.5, 0.5)
            )

    def test_generate_dataset_wrapper(self):
        spec = SyntheticSpec(n_samples=50, n_features=4, n_classes=2, seed=0)
        ds = generate_dataset("toy", spec, feature_names=list("abcd"), description="x")
        assert isinstance(ds, SyntheticDataset)
        assert ds.n_samples == 50
        assert ds.feature_names == list("abcd")
        assert ds.class_distribution().sum() == pytest.approx(1.0)

    def test_generate_dataset_wrong_names_rejected(self):
        spec = SyntheticSpec(n_samples=50, n_features=4, n_classes=2, seed=0)
        with pytest.raises(ValueError):
            generate_dataset("toy", spec, feature_names=["a"])

    @given(
        st.integers(min_value=30, max_value=200),
        st.integers(min_value=2, max_value=12),
        st.integers(min_value=2, max_value=6),
    )
    @settings(max_examples=25, deadline=None)
    def test_generator_respects_requested_shape(self, n_samples, n_features, n_classes):
        spec = SyntheticSpec(
            n_samples=n_samples,
            n_features=n_features,
            n_classes=n_classes,
            seed=n_samples,
        )
        X, y = make_classification(spec)
        assert X.shape == (n_samples, n_features)
        assert len(np.unique(y)) == n_classes


class TestUCIStandIns:
    @pytest.mark.parametrize(
        "maker,name",
        [
            (make_cardio, "cardio"),
            (make_dermatology, "dermatology"),
            (make_pendigits, "pendigits"),
            (make_redwine, "redwine"),
            (make_whitewine, "whitewine"),
        ],
    )
    def test_shapes_match_uci(self, maker, name):
        ds = maker(n_samples=300)
        features, classes = EXPECTED_SHAPES[name]
        assert ds.n_features == features
        assert ds.n_classes == classes
        assert len(ds.feature_names) == features

    def test_cardio_is_imbalanced(self):
        ds = make_cardio()
        dist = ds.class_distribution()
        assert dist.max() > 0.6  # dominant "Normal" class

    def test_wine_datasets_concentrate_on_middle_grades(self):
        ds = make_redwine()
        dist = ds.class_distribution()
        assert dist[2] + dist[3] > 0.6

    def test_pendigits_roughly_balanced(self):
        ds = make_pendigits(n_samples=2000)
        dist = ds.class_distribution()
        assert dist.max() < 0.2

    def test_default_generation_is_deterministic(self):
        a = make_redwine()
        b = make_redwine()
        assert np.array_equal(a.X, b.X)
        assert np.array_equal(a.y, b.y)


class TestRegistry:
    def test_all_five_datasets_available(self):
        assert available_datasets() == [
            "cardio",
            "dermatology",
            "pendigits",
            "redwine",
            "whitewine",
        ]

    @pytest.mark.parametrize(
        "alias,canonical",
        [
            ("PD", "pendigits"),
            ("rw", "redwine"),
            ("WW", "whitewine"),
            ("Derm.", "dermatology"),
            ("Cardiotocography", "cardio"),
        ],
    )
    def test_paper_aliases(self, alias, canonical):
        assert canonical_name(alias) == canonical

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            canonical_name("mnist")

    def test_load_dataset_cached(self):
        clear_cache()
        a = load_dataset("redwine", n_samples=200)
        b = load_dataset("redwine", n_samples=200)
        assert a is b

    def test_load_with_overrides(self):
        ds = load_dataset("cardio", seed=99, n_samples=150)
        assert ds.n_samples == 150

    def test_register_custom_dataset(self):
        def make_custom():
            spec = SyntheticSpec(n_samples=40, n_features=3, n_classes=2, seed=0)
            return generate_dataset("custom-tiny", spec)

        register_dataset("custom-tiny", make_custom)
        ds = load_dataset("custom-tiny")
        assert ds.n_features == 3

    def test_register_colliding_alias_rejected(self):
        with pytest.raises(ValueError):
            register_dataset("PD", lambda: None)

    def test_dataset_summary_structure(self):
        rows = dataset_summary()
        assert len(rows) == 5
        for row in rows:
            assert {"name", "n_samples", "n_features", "n_classes"} <= set(row)
