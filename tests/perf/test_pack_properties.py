"""Property tests for the packed-word codecs (hypothesis).

The bit-parallel engines are only as trustworthy as the pack/unpack layer
under them: these properties pin the round-trips for arbitrary shapes —
``n_vectors`` not a multiple of 64, the empty batch, single lines — and the
integer bus decoders for arbitrary widths and signs.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perf.bitsim import (
    pack_vectors,
    unpack_vectors,
    words_to_ints,
    words_to_signed_ints,
)


class TestPackUnpackRoundTrip:
    @given(
        n_vectors=st.integers(min_value=0, max_value=300),
        n_lines=st.integers(min_value=1, max_value=24),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_any_shape(self, n_vectors, n_lines, seed):
        """unpack(pack(bits)) == bits for every shape, including ragged
        tails (n_vectors % 64 != 0) and the empty batch."""
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, size=(n_vectors, n_lines))
        packed, n = pack_vectors(bits)
        assert n == n_vectors
        assert packed.shape == (n_lines, max((n_vectors + 63) // 64, 1))
        assert packed.dtype == np.uint64
        assert np.array_equal(unpack_vectors(packed, n), bits)

    @given(
        n_vectors=st.integers(min_value=1, max_value=200),
        n_lines=st.integers(min_value=1, max_value=16),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_padding_bits_beyond_n_vectors_are_zero(self, n_vectors, n_lines, seed):
        """The ragged tail of the last word must be zero-padded — engines
        rely on this when masking is skipped."""
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, size=(n_vectors, n_lines))
        packed, _ = pack_vectors(bits)
        n_words = packed.shape[1]
        full = unpack_vectors(packed, n_words * 64)
        assert np.array_equal(full[:n_vectors], bits)
        assert not full[n_vectors:].any()

    def test_empty_batch_packs_to_one_zero_word(self):
        packed, n = pack_vectors(np.zeros((0, 5), dtype=np.int64))
        assert n == 0
        assert packed.shape == (5, 1)
        assert not packed.any()
        assert unpack_vectors(packed, 0).shape == (0, 5)


class TestBusDecoders:
    @given(
        width=st.integers(min_value=1, max_value=16),
        n=st.integers(min_value=0, max_value=100),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=80, deadline=None)
    def test_words_to_ints_inverts_binary_expansion(self, width, n, seed):
        rng = np.random.default_rng(seed)
        values = rng.integers(0, 1 << width, size=n, dtype=np.int64)
        bits = (values[:, None] >> np.arange(width)) & 1
        assert np.array_equal(words_to_ints(bits, range(width)), values)

    @given(
        width=st.integers(min_value=1, max_value=16),
        n=st.integers(min_value=0, max_value=100),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=80, deadline=None)
    def test_words_to_signed_ints_inverts_twos_complement(self, width, n, seed):
        rng = np.random.default_rng(seed)
        values = rng.integers(-(1 << (width - 1)), 1 << (width - 1), size=n)
        codes = values & ((1 << width) - 1)  # two's-complement encode
        bits = (codes[:, None] >> np.arange(width)) & 1
        assert np.array_equal(words_to_signed_ints(bits, range(width)), values)

    @given(
        width=st.integers(min_value=2, max_value=12),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_decoders_agree_on_nonnegative_values(self, width, seed):
        """Signed and unsigned decoding coincide whenever the sign bit is
        clear (and the full pack -> unpack -> decode chain round-trips)."""
        rng = np.random.default_rng(seed)
        values = rng.integers(0, 1 << (width - 1), size=50, dtype=np.int64)
        bits = (values[:, None] >> np.arange(width)) & 1
        packed, n = pack_vectors(bits)
        decoded_bits = unpack_vectors(packed, n)
        assert np.array_equal(words_to_ints(decoded_bits, range(width)), values)
        assert np.array_equal(
            words_to_signed_ints(decoded_bits, range(width)), values
        )
