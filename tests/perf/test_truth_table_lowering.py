"""Truth-table lowering of custom cell libraries in the netlist compiler.

Cells outside the simple-op map (and standard names redefined with different
logic) are lowered through their truth tables (sum of minterms).  This was
previously exercised only implicitly; these tests sweep the path directly:
multi-output custom cells, constant outputs, redefined standard cells, and
interaction with the optimization passes.
"""

import numpy as np
import pytest

from repro.hw.cells import CellLibrary, CellType, GENERIC_CELL_SET
from repro.hw.netlist import GateNetlist
from repro.hw.opt import check_equivalence, optimize
from repro.hw.simulate import simulate_combinational_reference
from repro.perf.bitsim import BitParallelEvaluator, pack_vectors, simulate_netlist_batch
from repro.perf.compile import compile_netlist


def generic_cells():
    return [
        CellType(name, spec[0], spec[1], 0.1, 0.1, 0.1, 0.1, function=spec[2])
        for name, spec in GENERIC_CELL_SET.items()
    ]


def custom_library():
    """The generic set plus cells that only the truth-table path can lower."""
    cells = generic_cells()
    cells.extend(
        [
            # 3-input majority (the classic non-simple-op cell).
            CellType(
                "MAJ3", 3, 1, 0.1, 0.1, 0.1, 0.1,
                function=lambda b: (1 if b[0] + b[1] + b[2] >= 2 else 0,),
            ),
            # AOI21: ~(a*b + c) — inverted mixed-term cell.
            CellType(
                "AOI21", 3, 1, 0.1, 0.1, 0.1, 0.1,
                function=lambda b: (1 - ((b[0] & b[1]) | b[2]),),
            ),
            # Multi-output: (parity, all-ones) over 3 inputs.
            CellType(
                "PARAND3", 3, 2, 0.1, 0.1, 0.1, 0.1,
                function=lambda b: (b[0] ^ b[1] ^ b[2], b[0] & b[1] & b[2]),
            ),
            # Constant outputs exercise the 0-minterm / all-minterm branches.
            CellType(
                "TIE", 1, 2, 0.1, 0.1, 0.1, 0.1,
                function=lambda b: (0, 1),
            ),
        ]
    )
    return CellLibrary("custom", cells)


def assert_matches_reference(netlist, library, n_vectors=64, seed=0):
    """Compiled program output == interpreted reference, for every net."""
    rng = np.random.default_rng(seed)
    vectors = rng.integers(0, 2, size=(n_vectors, len(netlist.inputs)))
    program = compile_netlist(netlist, library)
    evaluator = BitParallelEvaluator(program)
    packed, _ = pack_vectors(vectors)
    state = evaluator.evaluate_packed(packed)
    for v, vec in enumerate(vectors):
        ref = simulate_combinational_reference(
            netlist, dict(zip(netlist.inputs, (int(x) for x in vec))), library
        )
        for net, value in ref.items():
            slot = program.net_slots[net]
            got = int((state[slot, v // 64] >> np.uint64(v % 64)) & np.uint64(1))
            assert got == value, f"net {net} vector {v}: {got} != {value}"


class TestCustomCellLowering:
    def test_mixed_custom_netlist_matches_reference(self):
        library = custom_library()
        n = GateNetlist("mixed_custom")
        a, b, c = (n.add_input(x) for x in "abc")
        (m,) = n.add_gate("MAJ3", [a, b, c])
        (aoi,) = n.add_gate("AOI21", [a, m, c])
        par, al = n.add_gate("PARAND3", [m, aoi, b], outputs=["par", "al"])
        z0, z1 = n.add_gate("TIE", [par], outputs=["z0", "z1"])
        (y,) = n.add_gate("XOR2", [par, al])
        (w,) = n.add_gate("OR2", [z0, z1])
        n.mark_output(y)
        n.mark_output(w)
        assert_matches_reference(n, library, seed=1)

    def test_multi_output_custom_cell_outputs_decode(self):
        library = custom_library()
        n = GateNetlist("parand")
        ins = [n.add_input(x) for x in "abc"]
        par, al = n.add_gate("PARAND3", ins, outputs=["par", "al"])
        n.mark_output(par)
        n.mark_output(al)
        vectors = np.array([[(v >> k) & 1 for k in range(3)] for v in range(8)])
        out = simulate_netlist_batch(n, vectors, library)
        expected_par = [v.sum() % 2 for v in vectors]
        expected_all = [int(v.sum() == 3) for v in vectors]
        assert list(out[:, 0]) == expected_par
        assert list(out[:, 1]) == expected_all

    def test_constant_output_cell_lowers_to_tied_slots(self):
        library = custom_library()
        n = GateNetlist("tie")
        a = n.add_input("a")
        z0, z1 = n.add_gate("TIE", [a], outputs=["z0", "z1"])
        n.mark_output(z0)
        n.mark_output(z1)
        out = simulate_netlist_batch(n, np.array([[0], [1]]), library)
        assert list(out[:, 0]) == [0, 0]
        assert list(out[:, 1]) == [1, 1]

    def test_redefined_standard_name_is_not_miscompiled(self):
        # A library that redefines AND2 as OR must fall back to truth-table
        # lowering — the direct-lowering fast path would miscompile it.
        cells = [c for c in generic_cells() if c.name != "AND2"]
        cells.append(
            CellType("AND2", 2, 1, 0.1, 0.1, 0.1, 0.1, function=lambda b: (b[0] | b[1],))
        )
        library = CellLibrary("weird", cells)
        n = GateNetlist("weird_and")
        a = n.add_input("a")
        b = n.add_input("b")
        (y,) = n.add_gate("AND2", [a, b])
        n.mark_output(y)
        out = simulate_netlist_batch(
            n, np.array([[0, 0], [0, 1], [1, 0], [1, 1]]), library
        )
        assert list(out[:, 0]) == [0, 1, 1, 1]
        assert_matches_reference(n, library, seed=2)

    def test_wide_cell_rejected(self):
        cells = generic_cells()
        cells.append(
            CellType("WIDE", 11, 1, 0.1, 0.1, 0.1, 0.1, function=lambda b: (b[0],))
        )
        library = CellLibrary("wide", cells)
        n = GateNetlist("wide")
        ins = [n.add_input(f"i{k}") for k in range(11)]
        (y,) = n.add_gate("WIDE", ins)
        n.mark_output(y)
        with pytest.raises(NotImplementedError):
            compile_netlist(n, library)

    def test_optimizer_folds_custom_cells_through_truth_tables(self):
        # MAJ3 with a tied-1 input is OR2; const-prop must find that via the
        # same truth-table restriction the compiler's fallback uses.
        library = custom_library()
        n = GateNetlist("maj_tied")
        a = n.add_input("a")
        b = n.add_input("b")
        (m,) = n.add_gate("MAJ3", [a, b, GateNetlist.CONST_ONE])
        n.mark_output(m)
        result = optimize(n, level=2, library=library)
        assert result.netlist.cell_counts() == {"OR2": 1}
        assert check_equivalence(n, result.netlist, library=library)
