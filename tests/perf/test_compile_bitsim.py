"""Equivalence tests: compiled bit-parallel engine vs the interpreted oracle.

Every RTL generator family (adder, multiplier, MUX tree, comparator) is
swept with randomized vectors through both the compiled bit-parallel
evaluator and the original per-gate dict-walk
(:func:`simulate_combinational_reference`); results must match gate for
gate, net for net.
"""

import numpy as np
import pytest

from repro.hw.cells import CellLibrary, CellType, GENERIC_CELL_SET
from repro.hw.netlist import GateNetlist
from repro.hw.rtl.adders import build_ripple_adder_netlist
from repro.hw.rtl.comparator import build_comparator_netlist
from repro.hw.rtl.multipliers import build_array_multiplier_netlist
from repro.hw.rtl.mux import build_mux_tree_netlist
from repro.hw.simulate import (
    simulate_combinational,
    simulate_combinational_batch,
    simulate_combinational_reference,
)
from repro.perf.bitsim import (
    BitParallelEvaluator,
    pack_vectors,
    unpack_vectors,
    words_to_ints,
)
from repro.perf.compile import compile_netlist


def random_vectors(netlist, n_vectors, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2, size=(n_vectors, len(netlist.inputs)))


def assert_netlist_equivalence(netlist, n_vectors=200, seed=0):
    """Compiled batch sweep == interpreted reference, for every net."""
    vectors = random_vectors(netlist, n_vectors, seed)
    program = compile_netlist(netlist)
    evaluator = BitParallelEvaluator(program)
    packed, n = pack_vectors(vectors)
    state = evaluator.evaluate_packed(packed)
    for v, vec in enumerate(vectors):
        ref = simulate_combinational_reference(
            netlist, dict(zip(netlist.inputs, (int(x) for x in vec)))
        )
        for net, value in ref.items():
            slot = program.net_slots[net]
            got = int((state[slot, v // 64] >> np.uint64(v % 64)) & np.uint64(1))
            assert got == value, f"net {net} vector {v}: bitsim {got} != ref {value}"


class TestPackUnpack:
    @pytest.mark.parametrize("n_vectors", [1, 63, 64, 65, 200])
    def test_roundtrip(self, n_vectors):
        rng = np.random.default_rng(n_vectors)
        bits = rng.integers(0, 2, size=(n_vectors, 7))
        packed, n = pack_vectors(bits)
        assert n == n_vectors
        assert packed.shape == (7, max((n_vectors + 63) // 64, 1))
        assert np.array_equal(unpack_vectors(packed, n), bits)

    def test_empty_batch(self):
        packed, n = pack_vectors(np.zeros((0, 3)))
        assert n == 0
        assert unpack_vectors(packed, n).shape == (0, 3)


class TestCompiler:
    def test_program_is_flat_and_topological(self):
        netlist = build_ripple_adder_netlist(4)
        program = compile_netlist(netlist)
        assert program.n_ops > 0
        assert program.opcodes.shape == program.dsts.shape
        assert program.operands.shape == (program.n_ops, 3)
        # Every operand slot is defined before it is read (constants, inputs
        # or an earlier op's destination) — i.e. the program is topological.
        defined = {0, 1} | set(int(s) for s in program.input_slots)
        for k in range(program.n_ops):
            used = set(int(x) for x in program.operands[k])
            assert used <= defined | {0}
            defined.add(int(program.dsts[k]))

    def test_compilation_is_cached_per_netlist(self):
        netlist = build_ripple_adder_netlist(4)
        assert compile_netlist(netlist) is compile_netlist(netlist)

    def test_cache_keyed_on_library_identity(self):
        # Two libraries may share a name but differ in cell functions: the
        # per-netlist cache must recompile for a different library object.
        def make_library(inv):
            return CellLibrary(
                "same-name", [CellType("INV", 1, 1, 0.1, 0.1, 0.1, 0.1, function=inv)]
            )

        netlist = GateNetlist("toy")
        a = netlist.add_input("a")
        (y,) = netlist.add_gate("INV", [a])
        netlist.mark_output(y)
        lib_a = make_library(lambda b: (1 - b[0],))
        lib_b = make_library(lambda b: (b[0],))  # deliberately different logic
        first = compile_netlist(netlist, lib_a)
        assert compile_netlist(netlist, lib_b) is not first
        assert simulate_combinational(netlist, {"a": 1}, lib_b)[y] == 1
        assert simulate_combinational(netlist, {"a": 1}, lib_a)[y] == 0

    def test_cache_invalidated_when_netlist_grows(self):
        netlist = GateNetlist("grow")
        a = netlist.add_input("a")
        first = compile_netlist(netlist)
        (y,) = netlist.add_gate("INV", [a])
        netlist.mark_output(y)
        second = compile_netlist(netlist)
        assert second is not first
        assert second.n_ops == first.n_ops + 1

    def test_unknown_cell_without_function_rejected(self):
        library = CellLibrary(
            "broken",
            [CellType("MYST", 2, 1, 0.1, 0.1, 0.1, 0.1, function=None)],
        )
        netlist = GateNetlist("toy")
        a = netlist.add_input("a")
        b = netlist.add_input("b")
        netlist.add_gate("MYST", [a, b])
        with pytest.raises(NotImplementedError):
            compile_netlist(netlist, library)

    def test_truth_table_lowering_of_custom_cell(self):
        # A 3-input majority cell, absent from the direct-lowering table,
        # exercises the sum-of-minterms fallback.
        cells = [
            CellType(
                name, spec[0], spec[1], 0.1, 0.1, 0.1, 0.1, function=spec[2]
            )
            for name, spec in GENERIC_CELL_SET.items()
        ]
        cells.append(
            CellType(
                "MAJ3", 3, 1, 0.1, 0.1, 0.1, 0.1,
                function=lambda b: ((b[0] + b[1] + b[2] >= 2) * 1,),
            )
        )
        library = CellLibrary("custom", cells)
        netlist = GateNetlist("maj")
        ins = [netlist.add_input(n) for n in "abc"]
        (y,) = netlist.add_gate("MAJ3", ins)
        netlist.mark_output(y)
        evaluator = BitParallelEvaluator(compile_netlist(netlist, library))
        vectors = np.array(
            [[(v >> k) & 1 for k in range(3)] for v in range(8)]
        )
        out = evaluator.evaluate(vectors)
        expected = [(v.sum() >= 2) * 1 for v in vectors]
        assert list(out[:, 0]) == expected


class TestBitParallelEquivalence:
    def test_adder_matches_reference_on_random_sweeps(self):
        assert_netlist_equivalence(build_ripple_adder_netlist(6), seed=1)

    def test_adder_with_carry_in(self):
        assert_netlist_equivalence(
            build_ripple_adder_netlist(4, with_carry_in=True), seed=2
        )

    def test_multiplier_matches_reference_on_random_sweeps(self):
        assert_netlist_equivalence(build_array_multiplier_netlist(4, 5), seed=3)

    def test_mux_tree_matches_reference_on_random_sweeps(self):
        assert_netlist_equivalence(build_mux_tree_netlist(11), seed=4)

    def test_comparator_matches_reference_on_random_sweeps(self):
        assert_netlist_equivalence(build_comparator_netlist(7), seed=5)

    def test_multiplier_products_decode_correctly(self):
        a_bits, b_bits = 4, 4
        netlist = build_array_multiplier_netlist(a_bits, b_bits)
        pairs = [(a, b) for a in range(16) for b in range(16)]
        bits = np.array(
            [
                [(a >> i) & 1 for i in range(a_bits)]
                + [(b >> j) & 1 for j in range(b_bits)]
                for a, b in pairs
            ]
        )
        out = simulate_combinational_batch(netlist, bits)
        products = words_to_ints(out, range(out.shape[1]))
        assert list(products) == [a * b for a, b in pairs]

    def test_single_vector_wrapper_matches_reference(self):
        netlist = build_comparator_netlist(5)
        rng = np.random.default_rng(6)
        for _ in range(20):
            values = {net: int(rng.integers(0, 2)) for net in netlist.inputs}
            assert simulate_combinational(netlist, values) == (
                simulate_combinational_reference(netlist, values)
            )

    def test_constants_and_transparent_cells(self):
        netlist = GateNetlist("mixed")
        a = netlist.add_input("a")
        (q,) = netlist.add_gate("DFF", [a])
        (y,) = netlist.add_gate("AND2", [q, GateNetlist.CONST_ONE])
        (z,) = netlist.add_gate("OR2", [y, GateNetlist.CONST_ZERO])
        netlist.mark_output(z)
        out = simulate_combinational_batch(netlist, np.array([[0], [1]]))
        assert list(out[:, 0]) == [0, 1]
