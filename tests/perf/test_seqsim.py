"""The bit-parallel sequential engine: edge cases and oracle equivalence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hw.netlist import GateNetlist
from repro.hw.rtl.registers import build_counter_netlist
from repro.hw.rtl.svm_top import (
    build_sequential_svm_netlist,
    verify_sequential_svm_netlist,
)
from repro.hw.simulate import (
    SequentialDatapathSimulator,
    simulate_sequential_reference,
)
from repro.perf.bitsim import words_to_ints, words_to_signed_ints
from repro.perf.seqsim import (
    compile_sequential,
    sequential_evaluator_for,
    simulate_sequential_batch,
)


def _shift_register(bits: int = 3) -> GateNetlist:
    """A serial-in shift register: input d, outputs every tap."""
    n = GateNetlist("shift")
    d = n.add_input("d")
    prev = d
    for i in range(bits):
        prev = n.add_dff(prev, f"t[{i}]", name=f"ff{i}")
        n.mark_output(prev)
    return n


class TestSequentialEngineBasics:
    def test_counter_counts_and_wraps(self):
        netlist = build_counter_netlist(3)
        trace = simulate_sequential_batch(netlist, np.zeros((2, 0)), cycles=20)
        values = [int(words_to_ints(trace[t], range(3))[0]) for t in range(20)]
        assert values == [t % 8 for t in range(20)]
        # Terminal count fires exactly at value 7.
        tc = [int(trace[t, 0, 3]) for t in range(20)]
        assert tc == [1 if t % 8 == 7 else 0 for t in range(20)]

    def test_shift_register_delays_input_stream(self):
        netlist = _shift_register(3)
        cycles, n_vectors = 10, 5
        rng = np.random.default_rng(0)
        stream = rng.integers(0, 2, size=(cycles, n_vectors, 1))
        trace = simulate_sequential_batch(netlist, stream)
        for t in range(cycles):
            for tap in range(3):
                # Tap k shows the input from k+1 cycles ago (zeros before t=0).
                expected = (
                    stream[t - tap - 1, :, 0] if t - tap - 1 >= 0 else np.zeros(n_vectors)
                )
                assert np.array_equal(trace[t, :, tap], expected)

    def test_zero_cycle_run_returns_empty_trace(self):
        netlist = build_counter_netlist(2)
        trace = simulate_sequential_batch(netlist, np.zeros((4, 0)), cycles=0)
        assert trace.shape == (0, 4, 3)

    def test_empty_batch(self):
        netlist = _shift_register(2)
        trace = simulate_sequential_batch(
            netlist, np.zeros((0, 1), dtype=np.int64), cycles=6
        )
        assert trace.shape == (6, 0, 2)

    def test_negative_cycles_raise(self):
        netlist = build_counter_netlist(2)
        with pytest.raises(ValueError):
            simulate_sequential_batch(netlist, np.zeros((1, 0)), cycles=-1)

    def test_cycles_required_for_constant_inputs(self):
        netlist = _shift_register(2)
        with pytest.raises(ValueError):
            simulate_sequential_batch(netlist, np.zeros((1, 1)))

    def test_unbound_dff_raises(self):
        n = GateNetlist("open")
        n.declare_dff("q")
        n.mark_output("q")
        with pytest.raises(ValueError, match="unbound"):
            simulate_sequential_batch(n, np.zeros((1, 0)), cycles=1)


class TestDffInitAndReset:
    def test_declared_init_values_are_honoured(self):
        n = GateNetlist("init")
        q0 = n.declare_dff("q0", name="a", init=1)
        q1 = n.declare_dff("q1", name="b")  # powers on to 0
        n.bind_dff(q0, q0)  # hold registers
        n.bind_dff(q1, q1)
        n.mark_output(q0)
        n.mark_output(q1)
        trace = simulate_sequential_batch(n, np.zeros((3, 0)), cycles=4)
        assert np.array_equal(trace[:, :, 0], np.ones((4, 3)))
        assert np.array_equal(trace[:, :, 1], np.zeros((4, 3)))

    def test_init_override_by_name_net_vector_and_matrix(self):
        netlist = build_counter_netlist(3)
        start_5 = {"dff0": 1, "q[2]": 1}  # 0b101 via instance + Q-net keys
        trace = simulate_sequential_batch(
            netlist, np.zeros((1, 0)), cycles=3, init=start_5
        )
        assert [int(words_to_ints(trace[t], range(3))[0]) for t in range(3)] == [5, 6, 7]

        vec = simulate_sequential_batch(
            netlist, np.zeros((1, 0)), cycles=1, init=[0, 1, 1]
        )
        assert int(words_to_ints(vec[0], range(3))[0]) == 6

        per_vector = np.array([[1, 0, 0], [0, 0, 1]])
        both = simulate_sequential_batch(
            netlist, np.zeros((2, 0)), cycles=1, init=per_vector
        )
        assert list(words_to_ints(both[0], range(3))) == [1, 4]

    def test_unknown_init_key_raises(self):
        netlist = build_counter_netlist(2)
        with pytest.raises(KeyError):
            simulate_sequential_batch(
                netlist, np.zeros((1, 0)), cycles=1, init={"nope": 1}
            )

    def test_reference_walk_honours_init_too(self):
        netlist = build_counter_netlist(3)
        ref = simulate_sequential_reference(netlist, {}, 2, init={"dff1": 1})
        assert sum(int(ref[0][b]) << b for b in range(3)) == 2
        assert sum(int(ref[1][b]) << b for b in range(3)) == 3


class TestStructuralInvalidation:
    def test_mutation_recompiles_sequential_program(self):
        netlist = build_counter_netlist(2)
        first = compile_sequential(netlist)
        assert compile_sequential(netlist) is first  # cached
        evaluator = sequential_evaluator_for(netlist)
        assert sequential_evaluator_for(netlist) is evaluator

        # Append an observer gate: structure version moves, caches must miss.
        (inv,) = netlist.add_gate("INV", ["q[0]"], outputs=["nq0"])
        netlist.mark_output(inv)
        second = compile_sequential(netlist)
        assert second is not first
        assert sequential_evaluator_for(netlist) is not evaluator
        assert second.n_outputs == first.n_outputs + 1

    def test_note_structural_change_invalidates(self):
        netlist = build_counter_netlist(2)
        first = compile_sequential(netlist)
        netlist.note_structural_change()
        assert compile_sequential(netlist) is not first

    def test_bind_dff_moves_the_structure_version(self):
        n = GateNetlist("late")
        q = n.declare_dff("q")
        n.mark_output(q)
        before = n.structural_signature()
        n.bind_dff(q, GateNetlist.CONST_ONE)
        assert n.structural_signature() != before


class TestOracleEquivalence:
    @pytest.mark.parametrize("bits,cycles", [(1, 5), (4, 20)])
    def test_counter_matches_reference_per_cycle(self, bits, cycles):
        netlist = build_counter_netlist(bits)
        trace = simulate_sequential_batch(netlist, np.zeros((3, 0)), cycles=cycles)
        reference = simulate_sequential_reference(netlist, {}, cycles)
        for v in range(3):
            assert np.array_equal(trace[:, v, :], reference)

    def test_random_logic_matches_reference_per_cycle(self):
        rng = np.random.default_rng(7)
        netlist = _shift_register(4)
        vectors = rng.integers(0, 2, size=(70, 1))  # >64: spans two words
        trace = simulate_sequential_batch(netlist, vectors, cycles=6)
        for v in range(vectors.shape[0]):
            reference = simulate_sequential_reference(
                netlist, {"d": int(vectors[v, 0])}, 6
            )
            assert np.array_equal(trace[:, v, :], reference)

    def test_opt_level_is_cycle_exact(self):
        netlist = build_counter_netlist(4)
        raw = simulate_sequential_batch(netlist, np.zeros((2, 0)), cycles=18)
        opt = simulate_sequential_batch(
            netlist, np.zeros((2, 0)), cycles=18, opt_level=2
        )
        assert np.array_equal(raw, opt)


class TestSequentialSVMTop:
    def test_gate_level_svm_matches_datapath_oracle_every_cycle(self):
        rng = np.random.default_rng(3)
        weights = rng.integers(-15, 16, size=(6, 5))
        biases = rng.integers(-60, 61, size=6)
        top, ports = build_sequential_svm_netlist(weights, biases, input_bits=3)
        codes = rng.integers(0, 8, size=(40, 5))
        oracle = SequentialDatapathSimulator(weights, biases)
        assert verify_sequential_svm_netlist(top, ports, codes, oracle)
        assert verify_sequential_svm_netlist(top, ports, codes, oracle, opt_level=2)

    def test_predictions_match_run_batch(self):
        rng = np.random.default_rng(4)
        weights = rng.integers(-7, 8, size=(5, 3))
        biases = rng.integers(-20, 21, size=5)
        top, ports = build_sequential_svm_netlist(weights, biases, input_bits=2)
        codes = rng.integers(0, 4, size=(90, 3))
        trace = simulate_sequential_batch(
            top, ports.input_matrix(codes), cycles=ports.n_classifiers
        )
        predictions = words_to_ints(trace[-1], ports.pred_lanes())
        expected = SequentialDatapathSimulator(weights, biases).run_batch(codes)
        assert np.array_equal(predictions, expected)

    def test_signed_scores_decode_exactly(self):
        weights = np.array([[-3, 2], [1, -4]])
        biases = np.array([-5, 7])
        top, ports = build_sequential_svm_netlist(weights, biases, input_bits=2)
        codes = np.array([[3, 1], [0, 2]])
        trace = simulate_sequential_batch(
            top, ports.input_matrix(codes), cycles=2
        )
        oracle = SequentialDatapathSimulator(weights, biases)
        for s in range(codes.shape[0]):
            expected = [step.score for step in oracle.run(codes[s]).trace]
            got = [
                int(words_to_signed_ints(trace[t, s : s + 1], ports.score_lanes())[0])
                for t in range(2)
            ]
            assert got == expected

    def test_input_matrix_validates_range(self):
        top, ports = build_sequential_svm_netlist(
            np.array([[1, 1]]), np.array([0]), input_bits=2
        )
        with pytest.raises(ValueError):
            ports.input_matrix(np.array([[4, 0]]))  # 4 needs 3 bits
        with pytest.raises(ValueError):
            ports.input_matrix(np.array([[1, 2, 3]]))  # wrong feature count


class TestDesignIntegration:
    def test_design_gate_level_agrees_with_model(self):
        from repro.core.design_flow import fast_config, run_flow

        result = run_flow("redwine", "ours", fast_config(n_samples=150))
        design = result.design
        X = result.split.X_test[:25]
        assert design.verify_gate_level(X)
        gate_ids = design.simulate_gate_level(X)
        assert np.array_equal(gate_ids, design.simulate_batch(X))
        # The netlist is built once and cached on the design.
        assert design.gate_netlist()[0] is design.gate_netlist()[0]
