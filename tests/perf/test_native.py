"""The native (compiled C) engine: toolchain probing, caching, fallback.

Bit-exactness across the zoo rides the shared matrices in
``tests/perf/test_engines.py``; this module covers what is *specific* to
``engine='native'``: the C source emitter, the no-compiler degradation to
``codegen`` (one-time warning, shared cache entry, ``auto`` never picks
native), the two-level kernel cache (memory + disk under the
``$REPRO_CACHE_DIR`` root, hit on second construction, invalidated by
structural mutation), the GIL-free word sharding, and the ``REPRO_*``
environment knobs.  Everything that needs a real compiler is skipped — not
failed — on hosts without one, so the whole file passes either way.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
import repro.perf.native as native
from repro.hw.rtl.adders import build_ripple_adder_netlist
from repro.hw.rtl.multipliers import build_array_multiplier_netlist
from repro.perf.bitsim import evaluator_for, pack_vectors, simulate_netlist_batch
from repro.perf.compile import compile_netlist
from repro.perf.engines import (
    ENGINES,
    BIGINT_MAX_WORDS,
    CodegenEvaluator,
    _env_int,
    available_engines,
    make_evaluator,
    resolve_engine,
)
from repro.perf.native import (
    NativeEvaluator,
    Toolchain,
    find_toolchain,
    generate_c_kernel_source,
    native_available,
)

requires_toolchain = pytest.mark.skipif(
    not native_available(), reason="no C toolchain on this host"
)

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])


@pytest.fixture()
def fresh_caches(tmp_path, monkeypatch):
    """Isolate the disk cache in tmp_path and start with a cold memory cache.

    Also snapshots the cached toolchain probe so tests that re-probe under a
    mutated environment cannot leak into later tests.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setattr(native, "_SO_CACHE", {})
    monkeypatch.setattr(native, "_TOOLCHAIN", native._TOOLCHAIN)
    monkeypatch.setattr(native, "_WARNED_MISSING", native._WARNED_MISSING)
    return tmp_path


def _no_toolchain(monkeypatch):
    monkeypatch.setattr(native, "find_toolchain", lambda refresh=False: None)
    monkeypatch.setattr(native, "_WARNED_MISSING", False)


# --------------------------------------------------------------------------- #
# C source emission (no compiler needed)
# --------------------------------------------------------------------------- #
class TestCSource:
    def test_c_source_shape_and_liveness(self):
        netlist = build_array_multiplier_netlist(3, 3)
        program = compile_netlist(netlist)
        full = generate_c_kernel_source(program, program.output_slots)
        # p[0]'s cone is a single AND: almost everything is dead for it.
        low = generate_c_kernel_source(program, [int(program.output_slots[0])])
        for source in (full, low):
            assert "#include <stdint.h>" in source
            assert "void repro_kernel(const uint64_t *in, uint64_t *out," in source
            assert "for (int64_t w = w_lo; w < w_hi; ++w)" in source
        assert len(low.splitlines()) < len(full.splitlines())

    def test_c_source_mirrors_python_plan(self):
        """Both emitters consume one plan: same locals, same input loads."""
        from repro.perf.engines import generate_kernel_source, plan_kernel

        program = compile_netlist(build_ripple_adder_netlist(5))
        slots = [int(s) for s in program.output_slots]
        plan = plan_kernel(program, slots)
        py = generate_kernel_source(program, slots)
        c = generate_c_kernel_source(program, slots)
        for dst, _ in plan.statements:
            assert f"v{dst} = " in py
            assert f"const uint64_t v{dst} = " in c
        for s, row in plan.input_loads:
            assert f"i{s} = inp[{row}]" in py
            assert f"const uint64_t i{s} = in[(int64_t){row} * n_words + w]" in c
        assert c.count("out[") == len(slots)

    def test_constant_and_input_slots_in_returns(self):
        """Requested slots may be constants or inputs — the shapes the
        sequential cone requests (shift registers tap Q nets directly)."""
        program = compile_netlist(build_ripple_adder_netlist(2))
        slots = [0, 1, int(program.input_slots[0])]
        source = generate_c_kernel_source(program, slots)
        assert "out[(int64_t)0 * n_words + w] = ZERO;" in source
        assert "out[(int64_t)1 * n_words + w] = ONE;" in source


# --------------------------------------------------------------------------- #
# Toolchain probing and the no-compiler fallback
# --------------------------------------------------------------------------- #
class TestFallback:
    def test_no_native_env_disables_probe(self, fresh_caches, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NATIVE", "1")
        assert find_toolchain(refresh=True) is None
        monkeypatch.delenv("REPRO_NO_NATIVE")
        find_toolchain(refresh=True)  # re-probe so the snapshot restore is moot

    def test_native_resolves_to_codegen_without_toolchain(self, monkeypatch):
        _no_toolchain(monkeypatch)
        program = compile_netlist(build_ripple_adder_netlist(3))
        with pytest.warns(RuntimeWarning, match="degrades to 'codegen'"):
            assert resolve_engine("native", program) == "codegen"

    def test_fallback_warns_exactly_once(self, monkeypatch, recwarn):
        _no_toolchain(monkeypatch)
        program = compile_netlist(build_ripple_adder_netlist(3))
        resolve_engine("native", program)
        resolve_engine("native", program)
        messages = [w for w in recwarn.list if w.category is RuntimeWarning]
        assert len(messages) == 1

    def test_fallback_evaluator_shares_codegen_cache_entry(self, monkeypatch):
        _no_toolchain(monkeypatch)
        netlist = build_ripple_adder_netlist(4)
        with pytest.warns(RuntimeWarning):
            via_native = evaluator_for(netlist, engine="native")
        assert isinstance(via_native, CodegenEvaluator)
        assert via_native.engine == "codegen"
        assert evaluator_for(netlist, engine="codegen") is via_native

    def test_fallback_stays_bit_exact(self, monkeypatch):
        _no_toolchain(monkeypatch)
        netlist = build_ripple_adder_netlist(5)
        rng = np.random.default_rng(0)
        vectors = rng.integers(0, 2, size=(70, len(netlist.inputs)))
        with pytest.warns(RuntimeWarning):
            out = simulate_netlist_batch(netlist, vectors, engine="native")
        reference = simulate_netlist_batch(netlist, vectors, engine="interp")
        assert np.array_equal(out, reference)

    def test_auto_never_selects_native(self):
        program = compile_netlist(build_ripple_adder_netlist(4))
        assert resolve_engine("auto", program) in ("codegen", "fused")

    def test_available_engines_drops_native_without_toolchain(self, monkeypatch):
        _no_toolchain(monkeypatch)
        assert available_engines() == tuple(e for e in ENGINES if e != "native")

    def test_available_engines_is_full_tuple_with_toolchain(self, monkeypatch):
        monkeypatch.setattr(
            native, "find_toolchain", lambda refresh=False: Toolchain("/bin/cc", "x")
        )
        assert available_engines() == ENGINES

    def test_direct_construction_without_toolchain_raises(self, monkeypatch):
        _no_toolchain(monkeypatch)
        program = compile_netlist(build_ripple_adder_netlist(2))
        with pytest.raises(RuntimeError, match="no C toolchain"):
            NativeEvaluator(program)


# --------------------------------------------------------------------------- #
# Compilation + two-level cache (real compiler required)
# --------------------------------------------------------------------------- #
@requires_toolchain
class TestKernelCache:
    def test_disk_cache_hit_on_second_construction(self, fresh_caches, monkeypatch):
        invocations = []
        real = native._invoke_compiler

        def spy(toolchain, c_path, so_path):
            invocations.append(str(so_path))
            return real(toolchain, c_path, so_path)

        monkeypatch.setattr(native, "_invoke_compiler", spy)
        rng = np.random.default_rng(1)
        netlist = build_ripple_adder_netlist(4)
        vectors = rng.integers(0, 2, size=(90, len(netlist.inputs)))
        first = evaluator_for(netlist, engine="native")
        out_first = first.evaluate(vectors)
        assert len(invocations) == 1
        assert list(native.kernel_cache_dir().glob("*.so"))
        # Same structure, new netlist object, cold memory cache: the kernel
        # must come off disk without invoking the compiler again.
        monkeypatch.setattr(native, "_SO_CACHE", {})
        second = evaluator_for(build_ripple_adder_netlist(4), engine="native")
        out_second = second.evaluate(vectors)
        assert len(invocations) == 1
        assert np.array_equal(out_first, out_second)

    def test_memory_cache_shares_kernels_across_evaluators(
        self, fresh_caches, monkeypatch
    ):
        invocations = []
        real = native._invoke_compiler
        monkeypatch.setattr(
            native,
            "_invoke_compiler",
            lambda *a: (invocations.append(a), real(*a))[1],
        )
        netlist_a = build_ripple_adder_netlist(4)
        netlist_b = build_ripple_adder_netlist(4)
        rng = np.random.default_rng(2)
        vectors = rng.integers(0, 2, size=(70, len(netlist_a.inputs)))
        evaluator_for(netlist_a, engine="native").evaluate(vectors)
        evaluator_for(netlist_b, engine="native").evaluate(vectors)
        # Identical structure -> identical source -> one compile, even with
        # two distinct evaluator instances.
        assert len(invocations) == 1

    def test_structural_mutation_invalidates_kernel(self, fresh_caches):
        rng = np.random.default_rng(3)
        netlist = build_ripple_adder_netlist(3)
        vectors = rng.integers(0, 2, size=(50, len(netlist.inputs)))
        stale = evaluator_for(netlist, engine="native")
        stale.evaluate(vectors)
        n_so_before = len(list(native.kernel_cache_dir().glob("*.so")))
        (inv,) = netlist.add_gate("INV", [netlist.outputs[0]], outputs=["obs"])
        netlist.mark_output(inv)
        fresh = evaluator_for(netlist, engine="native")
        assert fresh is not stale
        reference = evaluator_for(netlist, engine="interp").evaluate(vectors)
        assert np.array_equal(fresh.evaluate(vectors), reference)
        # The mutated structure emits different source, hence a new disk key.
        assert len(list(native.kernel_cache_dir().glob("*.so"))) > n_so_before

    def test_compiler_failure_raises_with_stderr(self, fresh_caches):
        toolchain = find_toolchain()
        with pytest.raises(RuntimeError, match="native kernel compilation failed"):
            native.load_kernel("this is not C;", toolchain)

    def test_kernel_source_inspectable_via_evaluator(self, fresh_caches):
        netlist = build_ripple_adder_netlist(2)
        evaluator = evaluator_for(netlist, engine="native")
        source = evaluator.kernel_source(evaluator.program.output_slots)
        assert "repro_kernel" in source


# --------------------------------------------------------------------------- #
# Word-axis thread sharding (real compiler required)
# --------------------------------------------------------------------------- #
@requires_toolchain
class TestThreadSharding:
    def test_forced_shard_counts_stay_bit_exact(self, fresh_caches):
        netlist = build_array_multiplier_netlist(4, 4)
        rng = np.random.default_rng(4)
        vectors = rng.integers(0, 2, size=(1300, len(netlist.inputs)))
        packed, _ = pack_vectors(vectors)
        evaluator = evaluator_for(netlist, engine="native")
        slots = evaluator.program.output_slots
        reference = evaluator_for(netlist, engine="interp").evaluate_packed_slots(
            packed, slots
        )
        try:
            for threads in (1, 2, 3, 4, 7):
                evaluator.threads = threads
                out = evaluator.evaluate_packed_slots(packed, slots)
                assert np.array_equal(out, reference), threads
        finally:
            evaluator.threads = None

    def test_auto_sharding_threshold(self, fresh_caches, monkeypatch):
        """Below the word threshold the automatic path must stay on the
        calling thread; above it, shard — both bit-exact."""
        netlist = build_ripple_adder_netlist(4)
        rng = np.random.default_rng(5)
        vectors = rng.integers(0, 2, size=(400, len(netlist.inputs)))
        packed, _ = pack_vectors(vectors)  # 7 words
        evaluator = evaluator_for(netlist, engine="native")
        slots = evaluator.program.output_slots
        reference = evaluator_for(netlist, engine="interp").evaluate_packed_slots(
            packed, slots
        )
        monkeypatch.setattr(native, "NATIVE_PARALLEL_MIN_WORDS", 4)
        monkeypatch.setattr(native, "NATIVE_THREADS", 3)
        assert np.array_equal(evaluator.evaluate_packed_slots(packed, slots), reference)
        monkeypatch.setattr(native, "NATIVE_PARALLEL_MIN_WORDS", 10_000)
        assert np.array_equal(evaluator.evaluate_packed_slots(packed, slots), reference)

    def test_more_shards_than_words_is_clamped(self, fresh_caches):
        netlist = build_ripple_adder_netlist(3)
        rng = np.random.default_rng(6)
        vectors = rng.integers(0, 2, size=(65, len(netlist.inputs)))  # 2 words
        packed, _ = pack_vectors(vectors)
        evaluator = evaluator_for(netlist, engine="native")
        slots = evaluator.program.output_slots
        evaluator.threads = 16
        try:
            out = evaluator.evaluate_packed_slots(packed, slots)
        finally:
            evaluator.threads = None
        reference = evaluator_for(netlist, engine="interp").evaluate_packed_slots(
            packed, slots
        )
        assert np.array_equal(out, reference)

    def test_empty_batch(self, fresh_caches):
        netlist = build_ripple_adder_netlist(3)
        evaluator = evaluator_for(netlist, engine="native")
        slots = evaluator.program.output_slots
        packed = np.zeros((evaluator.program.n_inputs, 0), dtype=np.uint64)
        out = evaluator.evaluate_packed_slots(packed, slots)
        assert out.shape == (len(slots), 0)


# --------------------------------------------------------------------------- #
# Batch sizes across the bigint/numpy domain boundary (vs codegen + interp)
# --------------------------------------------------------------------------- #
@requires_toolchain
class TestDomainBoundary:
    def test_large_batch_matches_codegen_numpy_domain(self, fresh_caches):
        """Past BIGINT_MAX_WORDS codegen switches to its numpy domain; the
        native kernel must agree with both domains and with interp."""
        netlist = build_ripple_adder_netlist(4)
        n_vectors = (BIGINT_MAX_WORDS + 1) * 64  # one word past the boundary
        rng = np.random.default_rng(7)
        vectors = rng.integers(0, 2, size=(n_vectors, len(netlist.inputs)))
        packed, _ = pack_vectors(vectors)
        assert packed.shape[1] > BIGINT_MAX_WORDS
        slots = evaluator_for(netlist, engine="interp").program.output_slots
        outs = {
            e: evaluator_for(netlist, engine=e).evaluate_packed_slots(packed, slots)
            for e in ("interp", "codegen", "native")
        }
        assert np.array_equal(outs["native"], outs["interp"])
        assert np.array_equal(outs["native"], outs["codegen"])


# --------------------------------------------------------------------------- #
# Environment knobs
# --------------------------------------------------------------------------- #
class TestEnvKnobs:
    def test_env_int_accepts_valid_values(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "42")
        assert _env_int("REPRO_TEST_KNOB", 7, minimum=1) == 42
        monkeypatch.setenv("REPRO_TEST_KNOB", "  ")
        assert _env_int("REPRO_TEST_KNOB", 7, minimum=1) == 7
        monkeypatch.delenv("REPRO_TEST_KNOB")
        assert _env_int("REPRO_TEST_KNOB", 7, minimum=1) == 7

    def test_env_int_rejects_garbage_and_below_minimum(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "fast")
        with pytest.raises(ValueError, match="REPRO_TEST_KNOB"):
            _env_int("REPRO_TEST_KNOB", 7, minimum=1)
        monkeypatch.setenv("REPRO_TEST_KNOB", "0")
        with pytest.raises(ValueError, match="below 1"):
            _env_int("REPRO_TEST_KNOB", 7, minimum=1)

    def test_engine_knobs_read_from_environment(self):
        """Fresh interpreter: the module constants honor $REPRO_* overrides.

        A subprocess keeps this hermetic — reloading repro.perf.engines in
        this process would strand other modules on stale class objects.
        """
        code = (
            "import repro.perf.engines as e, repro.perf.native as n; "
            "print(e.AUTO_CODEGEN_MAX_OPS, e.BIGINT_MAX_WORDS, "
            "n.NATIVE_THREADS, n.NATIVE_PARALLEL_MIN_WORDS)"
        )
        env = {
            **os.environ,
            "PYTHONPATH": SRC_DIR,
            "REPRO_AUTO_CODEGEN_MAX_OPS": "123",
            "REPRO_BIGINT_MAX_WORDS": "7",
            "REPRO_NATIVE_THREADS": "2",
            "REPRO_NATIVE_MIN_WORDS": "999",
        }
        proc = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True, env=env
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.split() == ["123", "7", "2", "999"]

    def test_invalid_engine_knob_fails_loudly(self):
        code = "import repro.perf.engines"
        env = {
            **os.environ,
            "PYTHONPATH": SRC_DIR,
            "REPRO_AUTO_CODEGEN_MAX_OPS": "many",
        }
        proc = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True, env=env
        )
        assert proc.returncode != 0
        assert "REPRO_AUTO_CODEGEN_MAX_OPS" in proc.stderr


# --------------------------------------------------------------------------- #
# Engine selection plumbing
# --------------------------------------------------------------------------- #
@requires_toolchain
class TestSelection:
    def test_make_evaluator_constructs_native(self, fresh_caches):
        program = compile_netlist(build_ripple_adder_netlist(3))
        evaluator = make_evaluator(program, "native")
        assert isinstance(evaluator, NativeEvaluator)
        assert evaluator.engine == "native"

    def test_native_evaluator_cached_separately_from_codegen(self, fresh_caches):
        netlist = build_ripple_adder_netlist(4)
        native_ev = evaluator_for(netlist, engine="native")
        codegen_ev = evaluator_for(netlist, engine="codegen")
        assert native_ev is not codegen_ev
        assert evaluator_for(netlist, engine="native") is native_ev

    def test_toolchain_fingerprint_is_stable_and_version_sensitive(self):
        a = Toolchain("/usr/bin/cc", "cc 12.2.0")
        b = Toolchain("/usr/bin/cc", "cc 12.2.0")
        c = Toolchain("/usr/bin/cc", "cc 13.1.0")
        assert a.fingerprint == b.fingerprint
        assert a.fingerprint != c.fingerprint
