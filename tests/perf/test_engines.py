"""The fused/codegen/native execution engines: bit-exactness, caching, codegen.

Every engine must produce exactly the same bits as the interp engine on
every netlist in the zoo — combinational and sequential, raw and optimized —
because the engines only change the execution *schedule*, never the program.
``native`` rides the same matrices: on hosts without a C toolchain it
resolves to ``codegen``, so the assertions still hold (the native-specific
behaviours live in ``tests/perf/test_native.py``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hw.netlist import GateNetlist
from repro.hw.rtl.adders import build_ripple_adder_netlist
from repro.hw.rtl.comparator import build_comparator_netlist
from repro.hw.rtl.multipliers import (
    build_array_multiplier_netlist,
    build_constant_mac_netlist,
)
from repro.hw.rtl.mux import build_mux_tree_netlist
from repro.hw.rtl.registers import build_counter_netlist
from repro.hw.rtl.svm_top import build_sequential_svm_netlist
from repro.perf.bitsim import evaluator_for, pack_vectors, simulate_netlist_batch
from repro.perf.compile import compile_netlist
from repro.perf.engines import (
    AUTO_CODEGEN_MAX_OPS,
    CodegenEvaluator,
    ENGINES,
    FusedEvaluator,
    generate_kernel_source,
    levelize,
    make_evaluator,
    resolve_engine,
)
from repro.perf.seqsim import sequential_evaluator_for, simulate_sequential_batch


def _combinational_zoo():
    return {
        "ripple_adder_8b": build_ripple_adder_netlist(8),
        "ripple_adder_cin": build_ripple_adder_netlist(4, with_carry_in=True),
        "array_multiplier_4x4": build_array_multiplier_netlist(4, 4),
        "mux_tree_8": build_mux_tree_netlist(8),
        "comparator_6b": build_comparator_netlist(6),
        "constant_mac": build_constant_mac_netlist([0, 3, 8, 5], 3),
    }


def _sequential_zoo():
    rng = np.random.default_rng(11)
    weights = rng.integers(-7, 8, size=(4, 3))
    biases = rng.integers(-20, 21, size=4)
    svm_top, ports = build_sequential_svm_netlist(weights, biases, input_bits=2)

    shift = GateNetlist("shift")
    d = shift.add_input("d")
    prev = d
    for i in range(3):
        prev = shift.add_dff(prev, f"t[{i}]", name=f"ff{i}")
        shift.mark_output(prev)

    return {
        "counter_5b": (build_counter_netlist(5), 0, 12),
        "shift_register_3": (shift, 1, 8),
        "svm_top_4x3": (svm_top, ports.n_features * 2, ports.n_classifiers),
    }


class TestCombinationalBitExactness:
    @pytest.mark.parametrize("engine", ["fused", "codegen", "native", "auto"])
    @pytest.mark.parametrize("opt_level", [0, 1, 2])
    def test_zoo_matches_interp(self, engine, opt_level):
        rng = np.random.default_rng(0)
        for name, netlist in _combinational_zoo().items():
            # 130 vectors spans three words with a ragged tail.
            vectors = rng.integers(0, 2, size=(130, len(netlist.inputs)))
            reference = simulate_netlist_batch(
                netlist, vectors, opt_level=opt_level, engine="interp"
            )
            out = simulate_netlist_batch(
                netlist, vectors, opt_level=opt_level, engine=engine
            )
            assert np.array_equal(out, reference), (name, engine, opt_level)

    @pytest.mark.parametrize("engine", ["fused", "codegen", "native"])
    def test_full_slot_state_matches_interp(self, engine):
        """evaluate_packed keeps the interp contract: every slot, in order."""
        rng = np.random.default_rng(1)
        netlist = build_array_multiplier_netlist(4, 4)
        vectors = rng.integers(0, 2, size=(100, len(netlist.inputs)))
        packed, _ = pack_vectors(vectors)
        reference = evaluator_for(netlist, engine="interp").evaluate_packed(packed)
        state = evaluator_for(netlist, engine=engine).evaluate_packed(packed)
        assert np.array_equal(state, reference)

    @pytest.mark.parametrize("engine", ["fused", "codegen", "native"])
    def test_evaluate_nets_matches_interp(self, engine):
        rng = np.random.default_rng(2)
        netlist = build_ripple_adder_netlist(5)
        vectors = rng.integers(0, 2, size=(70, len(netlist.inputs)))
        reference = evaluator_for(netlist, engine="interp").evaluate_nets(vectors)
        nets = evaluator_for(netlist, engine=engine).evaluate_nets(vectors)
        assert nets.keys() == reference.keys()
        for net in reference:
            assert np.array_equal(nets[net], reference[net]), net

    @pytest.mark.parametrize("engine", ["fused", "codegen", "native"])
    def test_duplicate_and_input_slots_allowed(self, engine):
        """Requested slots may repeat and may name inputs or constants —
        the shapes a sequential cone produces (shift registers tap Q nets)."""
        netlist = build_ripple_adder_netlist(3)
        rng = np.random.default_rng(3)
        vectors = rng.integers(0, 2, size=(65, len(netlist.inputs)))
        packed, _ = pack_vectors(vectors)
        interp = evaluator_for(netlist, engine="interp")
        other = evaluator_for(netlist, engine=engine)
        program = interp.program
        slots = [
            int(program.output_slots[0]),
            int(program.output_slots[0]),
            int(program.input_slots[1]),
            0,
            1,
        ]
        assert np.array_equal(
            other.evaluate_packed_slots(packed, slots),
            interp.evaluate_packed_slots(packed, slots),
        )

    def test_codegen_numpy_domain_matches_bigint_domain(self, monkeypatch):
        """Forcing the numpy operand domain gives the same bits as bigints."""
        import repro.perf.engines as engines_mod

        netlist = build_array_multiplier_netlist(4, 4)
        rng = np.random.default_rng(4)
        vectors = rng.integers(0, 2, size=(200, len(netlist.inputs)))
        bigint = simulate_netlist_batch(netlist, vectors, engine="codegen")
        netlist.note_structural_change()  # drop cached evaluators
        monkeypatch.setattr(engines_mod, "BIGINT_MAX_WORDS", 0)
        numpy_domain = simulate_netlist_batch(netlist, vectors, engine="codegen")
        assert np.array_equal(bigint, numpy_domain)


class TestSequentialBitExactness:
    @pytest.mark.parametrize("engine", ["fused", "codegen", "native", "auto"])
    @pytest.mark.parametrize("opt_level", [0, 2])
    def test_zoo_matches_interp(self, engine, opt_level):
        rng = np.random.default_rng(5)
        for name, (netlist, n_inputs, cycles) in _sequential_zoo().items():
            vectors = rng.integers(0, 2, size=(70, n_inputs))
            reference = simulate_sequential_batch(
                netlist, vectors, cycles=cycles, opt_level=opt_level, engine="interp"
            )
            out = simulate_sequential_batch(
                netlist, vectors, cycles=cycles, opt_level=opt_level, engine=engine
            )
            assert np.array_equal(out, reference), (name, engine, opt_level)

    def test_auto_sequential_cone_uses_codegen(self):
        evaluator = sequential_evaluator_for(build_counter_netlist(4))
        assert evaluator.engine == "codegen"
        assert isinstance(evaluator._cone, CodegenEvaluator)


class TestEngineSelection:
    def test_resolve_engine_auto_switches_on_program_size(self):
        program = compile_netlist(build_ripple_adder_netlist(4))
        assert resolve_engine("auto", program) == "codegen"
        assert resolve_engine("fused", program) == "fused"
        assert resolve_engine("interp", program) == "interp"
        assert program.n_ops <= AUTO_CODEGEN_MAX_OPS

    def test_unknown_engine_raises(self):
        program = compile_netlist(build_ripple_adder_netlist(2))
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_engine("turbo", program)
        with pytest.raises(ValueError, match="unknown engine"):
            evaluator_for(build_ripple_adder_netlist(2), engine="turbo")

    def test_make_evaluator_classes_and_engine_attr(self):
        program = compile_netlist(build_ripple_adder_netlist(3))
        assert isinstance(make_evaluator(program, "fused"), FusedEvaluator)
        assert isinstance(make_evaluator(program, "codegen"), CodegenEvaluator)
        assert make_evaluator(program, "auto").engine == "codegen"

    def test_engines_tuple_is_the_cli_contract(self):
        assert ENGINES == ("interp", "fused", "codegen", "native", "auto")


class TestCaching:
    def test_evaluators_cached_per_engine(self):
        netlist = build_ripple_adder_netlist(4)
        interp = evaluator_for(netlist, engine="interp")
        fused = evaluator_for(netlist, engine="fused")
        codegen = evaluator_for(netlist, engine="codegen")
        assert interp is not fused and fused is not codegen
        assert evaluator_for(netlist, engine="interp") is interp
        assert evaluator_for(netlist, engine="fused") is fused
        assert evaluator_for(netlist, engine="codegen") is codegen
        # auto resolves to codegen here, so it shares the codegen entry.
        assert evaluator_for(netlist, engine="auto") is codegen
        # All engines share one compiled program.
        assert interp.program is fused.program is codegen.program

    def test_structural_mutation_drops_compiled_kernels(self):
        """Version-keyed invalidation: mutating the netlist must retire the
        codegen evaluator (and with it every compiled kernel) and the fused
        schedule, exactly like the compiled program itself."""
        netlist = build_ripple_adder_netlist(3)
        rng = np.random.default_rng(6)
        vectors = rng.integers(0, 2, size=(40, len(netlist.inputs)))
        codegen = evaluator_for(netlist, engine="codegen")
        fused = evaluator_for(netlist, engine="fused")
        codegen.evaluate(vectors)  # force a kernel compile
        (inv,) = netlist.add_gate("INV", [netlist.outputs[0]], outputs=["obs"])
        netlist.mark_output(inv)
        new_codegen = evaluator_for(netlist, engine="codegen")
        new_fused = evaluator_for(netlist, engine="fused")
        assert new_codegen is not codegen
        assert new_fused is not fused
        assert new_codegen.program is not codegen.program
        # The new evaluator simulates the observer gate; bit-exact vs interp.
        reference = evaluator_for(netlist, engine="interp").evaluate(vectors)
        assert np.array_equal(new_codegen.evaluate(vectors), reference)

    def test_sequential_mutation_drops_engine_evaluator(self):
        netlist = build_counter_netlist(3)
        evaluator = sequential_evaluator_for(netlist, engine="codegen")
        assert sequential_evaluator_for(netlist, engine="codegen") is evaluator
        netlist.note_structural_change()
        assert sequential_evaluator_for(netlist, engine="codegen") is not evaluator

    def test_codegen_kernels_cached_per_slot_tuple(self):
        netlist = build_ripple_adder_netlist(3)
        evaluator = evaluator_for(netlist, engine="codegen")
        rng = np.random.default_rng(7)
        vectors = rng.integers(0, 2, size=(10, len(netlist.inputs)))
        evaluator.evaluate(vectors)
        evaluator.evaluate(vectors)
        slots = tuple(int(s) for s in evaluator.program.output_slots)
        assert len(evaluator._kernels) == 1
        assert slots in evaluator._kernels
        evaluator.evaluate_nets(vectors)
        assert len(evaluator._kernels) == 2


class TestCodegenSource:
    def test_kernel_source_is_compilable_and_dead_code_free(self):
        netlist = build_array_multiplier_netlist(3, 3)
        program = compile_netlist(netlist)
        # Request only the lowest product bit: the cone for p[0] is a single
        # AND, so almost the whole program is dead for this slot tuple.
        low = generate_kernel_source(program, [int(program.output_slots[0])])
        full = generate_kernel_source(program, program.output_slots)
        compile(low, "<t>", "exec")
        compile(full, "<t>", "exec")
        assert len(low.splitlines()) < len(full.splitlines())
        assert "def _kernel(inp, ZERO, ONE):" in low

    def test_kernel_source_inspectable_via_evaluator(self):
        netlist = build_ripple_adder_netlist(2)
        evaluator = evaluator_for(netlist, engine="codegen")
        source = evaluator.kernel_source(evaluator.program.output_slots)
        assert "return (" in source

    def test_levelize_covers_every_op_in_topological_layers(self):
        program = compile_netlist(build_array_multiplier_netlist(4, 4))
        layers = levelize(program)
        seen = [k for layer in layers for k in layer]
        assert sorted(seen) == list(range(program.n_ops))
        # Every op's operands are produced strictly earlier.
        produced_at = {}
        for depth, layer in enumerate(layers):
            for k in layer:
                produced_at[int(program.dsts[k])] = depth
        for depth, layer in enumerate(layers):
            for k in layer:
                for operand in program.operands[k]:
                    assert produced_at.get(int(operand), -1) < depth


class TestOpListing:
    def test_disassembly_is_arity_aware(self):
        netlist = GateNetlist("listing")
        a = netlist.add_input("a")
        b = netlist.add_input("b")
        (x,) = netlist.add_gate("INV", [a], outputs=["x"])
        (y,) = netlist.add_gate("NAND2", [x, b], outputs=["y"])
        netlist.mark_output(y)
        listing = compile_netlist(netlist).op_listing()
        not_lines = [line for line in listing if "NOT(" in line]
        nand_lines = [line for line in listing if "NAND2(" in line]
        assert not_lines and nand_lines
        # 1-input ops show one operand, 2-input ops two — no phantom slots.
        assert all(line.count("s") == 2 for line in not_lines)
        assert all(line.count(",") == 0 for line in not_lines)
        assert all(line.count(",") == 1 for line in nand_lines)
