"""Tests for MUX storage, comparators, registers and counters."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.rtl.comparator import (
    argmax_comparator_tree,
    build_comparator_netlist,
    magnitude_comparator,
    simulate_comparator,
)
from repro.hw.rtl.mux import (
    build_mux_tree_netlist,
    constant_mux_storage,
    mux_tree,
    storage_table_bits,
)
from repro.hw.pdk import EGFET_PDK
from repro.hw.rtl.registers import binary_counter, counter_bits, register_bank
from repro.hw.simulate import simulate_combinational


class TestMuxTree:
    def test_generic_mux_cell_count(self):
        block = mux_tree(8, width=4)
        assert block.counts["MUX2"] == 7 * 4
        assert block.logic_depth() == 3

    def test_single_input_is_wire(self):
        assert mux_tree(1, 4).n_cells() == 0

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            mux_tree(0, 1)

    @pytest.mark.parametrize("n_inputs", [2, 3, 5, 8])
    def test_gate_level_mux_selects_correct_input(self, n_inputs):
        netlist = build_mux_tree_netlist(n_inputs)
        n_sel = max(1, int(np.ceil(np.log2(n_inputs))))
        rng = np.random.default_rng(n_inputs)
        data = rng.integers(0, 2, size=n_inputs)
        for select in range(n_inputs):
            values = {f"d[{i}]": int(data[i]) for i in range(n_inputs)}
            for s in range(n_sel):
                values[f"sel[{s}]"] = (select >> s) & 1
            out = simulate_combinational(netlist, values)
            assert out[netlist.outputs[0]] == data[select]


class TestConstantMuxStorage:
    def test_identical_words_cost_nothing(self):
        table = np.tile(np.array([[3, -2, 5]]), (4, 1))
        block = constant_mux_storage(table, [4, 4, 4])
        assert block.n_cells() == 0

    def test_distinct_words_cost_something(self, quantized_ovr):
        block = constant_mux_storage(
            quantized_ovr.stored_coefficients(),
            [quantized_ovr.weight_format.total_bits] * quantized_ovr.n_features
            + [quantized_ovr.accumulator_bits],
        )
        assert block.n_cells() > 0

    def test_cost_below_generic_mux(self):
        rng = np.random.default_rng(0)
        table = rng.integers(-7, 8, size=(4, 6))
        bits = [4] * 6
        bespoke = constant_mux_storage(table, bits)
        generic = mux_tree(4, width=24)
        assert bespoke.n_cells() <= generic.n_cells()

    def test_more_words_cost_more(self):
        rng = np.random.default_rng(1)
        small = constant_mux_storage(rng.integers(-7, 8, size=(3, 8)), [4] * 8)
        large = constant_mux_storage(rng.integers(-7, 8, size=(10, 8)), [4] * 8)
        assert large.n_cells() > small.n_cells()

    def test_storage_table_bits_round_trip(self):
        table = np.array([[3, -2], [-8, 7]])
        bits = storage_table_bits(table, [5, 4])
        assert bits.shape == (2, 9)
        # Decode back: word 0, column 0 (5 bits, LSB first).
        word0_col0 = sum(int(bits[0, i]) << i for i in range(5))
        assert word0_col0 == 3
        word1_col0 = sum(int(bits[1, i]) << i for i in range(5))
        assert word1_col0 - (1 << 5) == -8

    def test_out_of_range_code_rejected(self):
        with pytest.raises(ValueError):
            storage_table_bits(np.array([[100]]), [4])

    def test_wrong_bits_length_rejected(self):
        with pytest.raises(ValueError):
            constant_mux_storage(np.zeros((2, 3), dtype=int), [4, 4])

    @given(st.integers(min_value=2, max_value=9), st.integers(min_value=1, max_value=6))
    @settings(max_examples=25, deadline=None)
    def test_cost_never_exceeds_one_generic_mux_tree(self, n_words, n_cols):
        rng = np.random.default_rng(n_words * 31 + n_cols)
        table = rng.integers(-7, 8, size=(n_words, n_cols))
        bespoke = constant_mux_storage(table, [4] * n_cols)
        generic = mux_tree(n_words, width=4 * n_cols)
        # The collapsed bespoke storage must not cost more printed area than a
        # generic MUX tree of the same geometry (plus a tiny folding margin —
        # the collapse trades some MUX2 cells for cheaper AND/OR/INV cells).
        assert bespoke.area_cm2(EGFET_PDK) <= 1.1 * generic.area_cm2(EGFET_PDK) + 0.01


class TestComparators:
    def test_magnitude_comparator_counts(self):
        block = magnitude_comparator(8, signed=False)
        assert block.counts["XNOR2"] == 8
        assert block.counts["AND2"] == 8

    def test_signed_comparator_has_sign_handling(self):
        signed = magnitude_comparator(8, signed=True)
        unsigned = magnitude_comparator(8, signed=False)
        assert signed.n_cells() > unsigned.n_cells()

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            magnitude_comparator(0)

    def test_argmax_tree_scales_with_classifiers(self):
        small = argmax_comparator_tree(3, 10, 2)
        large = argmax_comparator_tree(10, 10, 4)
        assert large.n_cells() > small.n_cells()

    def test_argmax_tree_single_value_free(self):
        assert argmax_comparator_tree(1, 10, 1).n_cells() == 0

    @pytest.mark.parametrize("width", [2, 3, 5])
    def test_gate_level_comparator_exhaustive(self, width):
        netlist = build_comparator_netlist(width)
        for a in range(1 << width):
            for b in range(1 << width):
                assert simulate_comparator(netlist, a, b, width) == (1 if a > b else 0)

    @given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=255))
    @settings(max_examples=60, deadline=None)
    def test_gate_level_comparator_random_8bit(self, a, b):
        netlist = build_comparator_netlist(8)
        assert simulate_comparator(netlist, a, b, 8) == (1 if a > b else 0)


class TestRegistersAndCounters:
    def test_register_bank_counts(self):
        block = register_bank(10)
        assert block.counts["DFF"] == 10
        assert block.counts["MUX2"] == 10

    def test_register_without_enable(self):
        block = register_bank(10, with_enable=False)
        assert "MUX2" not in block.counts

    def test_counter_bits(self):
        assert counter_bits(1) == 1
        assert counter_bits(2) == 1
        assert counter_bits(3) == 2
        assert counter_bits(6) == 3
        assert counter_bits(10) == 4

    def test_counter_hardware_matches_bits(self):
        block = binary_counter(10)
        assert block.counts["DFF"] == 4

    def test_counter_is_tiny_compared_to_datapath(self):
        """The paper's control is a log2(n)-bit counter — a negligible block."""
        from repro.hw.rtl.multipliers import array_multiplier

        counter = binary_counter(10)
        one_multiplier = array_multiplier(4, 6)
        assert counter.n_cells() < one_multiplier.n_cells()

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            register_bank(0)
        with pytest.raises(ValueError):
            binary_counter(0)
        with pytest.raises(ValueError):
            counter_bits(0)
