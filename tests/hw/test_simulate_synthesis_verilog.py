"""Tests for simulators, datapath synthesis helpers and Verilog export."""

import numpy as np
import pytest

from repro.hw.netlist import GateNetlist
from repro.hw.simulate import (
    ParallelDatapathSimulator,
    SequentialDatapathSimulator,
    simulate_combinational,
)
from repro.hw.synthesis import (
    estimate_classifier_score_bound,
    gate_equivalent_count,
    synthesize_constant_mac,
    synthesize_folded_mac,
)
from repro.hw.verilog import netlist_to_verilog, sequential_svm_to_verilog
from repro.hw.rtl.adders import build_ripple_adder_netlist


class TestLogicSimulator:
    def test_missing_input_rejected(self):
        net = GateNetlist("toy")
        net.add_input("a")
        with pytest.raises(ValueError):
            simulate_combinational(net, {})

    def test_constants(self):
        net = GateNetlist("toy")
        a = net.add_input("a")
        (y,) = net.add_gate("AND2", [a, GateNetlist.CONST_ONE])
        net.mark_output(y)
        out = simulate_combinational(net, {"a": 1})
        assert out[y] == 1

    def test_values_for_all_nets_returned(self):
        net = build_ripple_adder_netlist(3)
        out = simulate_combinational(net, {f"{p}[{i}]": 0 for p in "ab" for i in range(3)})
        for name in net.nets():
            assert name in out


class TestSequentialDatapathSimulator:
    def test_matches_quantized_model(self, small_split, quantized_ovr):
        sim = SequentialDatapathSimulator(
            quantized_ovr.weight_codes, quantized_ovr.bias_codes
        )
        codes = quantized_ovr.quantize_inputs(small_split.X_test)
        hw_ids = sim.run_batch(codes)
        sw_ids = quantized_ovr.predict_ids(small_split.X_test)
        assert np.array_equal(hw_ids, sw_ids)

    def test_trace_structure(self, quantized_ovr, small_split):
        sim = SequentialDatapathSimulator(
            quantized_ovr.weight_codes, quantized_ovr.bias_codes
        )
        codes = quantized_ovr.quantize_inputs(small_split.X_test[:1])[0]
        result = sim.run(codes)
        assert result.n_cycles == quantized_ovr.n_classifiers
        assert len(result.trace) == quantized_ovr.n_classifiers
        assert [t.selected_classifier for t in result.trace] == list(
            range(quantized_ovr.n_classifiers)
        )

    def test_best_score_monotone_in_trace(self, quantized_ovr, small_split):
        sim = SequentialDatapathSimulator(
            quantized_ovr.weight_codes, quantized_ovr.bias_codes
        )
        codes = quantized_ovr.quantize_inputs(small_split.X_test[:4])
        for row in codes:
            result = sim.run(row)
            best = [t.best_score for t in result.trace]
            assert best == sorted(best) or all(
                b >= best[0] for b in best
            )  # non-decreasing after initial load
            assert result.predicted_class == result.trace[-1].best_class

    def test_tie_breaking_prefers_first_classifier(self):
        # Two identical classifiers: the voter's strict > keeps the first.
        weights = np.array([[1, 1], [1, 1], [0, 0]])
        biases = np.array([0, 0, -5])
        sim = SequentialDatapathSimulator(weights, biases)
        assert sim.run([2, 3]).predicted_class == 0

    def test_wrong_input_length_rejected(self, quantized_ovr):
        sim = SequentialDatapathSimulator(
            quantized_ovr.weight_codes, quantized_ovr.bias_codes
        )
        with pytest.raises(ValueError):
            sim.run([1, 2])

    def test_scores_match_linear_algebra(self):
        weights = np.array([[2, -1, 3], [0, 4, -2]])
        biases = np.array([5, -7])
        sim = SequentialDatapathSimulator(weights, biases)
        x = np.array([1, 2, 3])
        result = sim.run(x)
        assert result.scores() == list(weights @ x + biases)


class TestParallelDatapathSimulator:
    def test_ovr_matches_quantized_model(self, small_split, quantized_ovr):
        sim = ParallelDatapathSimulator(
            quantized_ovr.weight_codes, quantized_ovr.bias_codes, strategy="ovr"
        )
        codes = quantized_ovr.quantize_inputs(small_split.X_test)
        assert np.array_equal(
            sim.run_batch(codes), quantized_ovr.predict_ids(small_split.X_test)
        )

    def test_ovo_matches_quantized_model(self, small_split, quantized_ovo):
        sim = ParallelDatapathSimulator(
            quantized_ovo.weight_codes,
            quantized_ovo.bias_codes,
            strategy="ovo",
            pairs=quantized_ovo.pairs,
            n_classes=quantized_ovo.n_classes,
        )
        codes = quantized_ovo.quantize_inputs(small_split.X_test)
        assert np.array_equal(
            sim.run_batch(codes), quantized_ovo.predict_ids(small_split.X_test)
        )

    def test_ovo_without_pairs_rejected(self):
        with pytest.raises(ValueError):
            ParallelDatapathSimulator(np.zeros((3, 2)), np.zeros(3), strategy="ovo")

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            ParallelDatapathSimulator(np.zeros((3, 2)), np.zeros(3), strategy="xyz")


class TestDatapathSynthesis:
    def test_folded_mac_multiplier_count(self):
        block, width = synthesize_folded_mac(21, 4, 6, 18)
        # 21 multipliers of 4x6: 21 * 24 AND gates for partial products.
        assert block.counts["AND2"] >= 21 * 24
        assert width >= 18

    def test_folded_mac_single_feature(self):
        block, width = synthesize_folded_mac(1, 4, 6, 12)
        assert block.n_cells() > 0
        assert width >= 12

    def test_constant_mac_skips_zero_weights(self):
        dense, _ = synthesize_constant_mac([5, 3, -7, 6], 2, input_bits=4, score_bits=12)
        sparse, _ = synthesize_constant_mac([5, 0, 0, 0], 2, input_bits=4, score_bits=12)
        assert sparse.n_cells() < dense.n_cells()

    def test_constant_mac_all_zero_weights_is_free(self):
        block, _ = synthesize_constant_mac([0, 0, 0], 4, input_bits=4, score_bits=8)
        assert block.n_cells() == 0

    def test_zero_bias_skips_bias_adder(self):
        with_bias, _ = synthesize_constant_mac([3, 5], 7, input_bits=4, score_bits=12)
        without_bias, _ = synthesize_constant_mac([3, 5], 0, input_bits=4, score_bits=12)
        assert without_bias.n_cells() < with_bias.n_cells()

    def test_score_bound(self):
        weights = np.array([[3, -2], [1, 4]])
        biases = np.array([-5, 2])
        bound = estimate_classifier_score_bound(weights, biases, max_input_code=15)
        assert bound == max(5 * 15 + 5, 5 * 15 + 2)

    def test_gate_equivalents_positive(self):
        block, _ = synthesize_folded_mac(4, 4, 6, 14)
        assert gate_equivalent_count(block) > 0

    def test_invalid_folded_mac_rejected(self):
        with pytest.raises(ValueError):
            synthesize_folded_mac(0, 4, 6, 12)


class TestVerilogExport:
    def test_structural_verilog_for_adder(self):
        netlist = build_ripple_adder_netlist(4, name="rca4")
        verilog = netlist_to_verilog(netlist)
        assert "module rca4" in verilog
        assert "endmodule" in verilog
        assert verilog.count("assign") >= netlist.n_gates()
        assert "input" in verilog and "output" in verilog

    def test_behavioural_sequential_svm_module(self, quantized_ovr):
        verilog = sequential_svm_to_verilog(
            quantized_ovr.weight_codes,
            quantized_ovr.bias_codes,
            input_bits=4,
            weight_bits=6,
            score_bits=16,
            module_name="seq_svm_test",
        )
        assert "module seq_svm_test" in verilog
        assert "endmodule" in verilog
        assert f"N_CLASSIFIERS = {quantized_ovr.n_classifiers}" in verilog
        assert "sv_counter" in verilog
        assert "best_score" in verilog
        assert "case (sv_counter)" in verilog
        # One case arm per stored support vector, plus the default arm.
        assert verilog.count(": begin") == quantized_ovr.n_classifiers + 1

    def test_verilog_mentions_every_feature(self, quantized_ovr):
        verilog = sequential_svm_to_verilog(
            quantized_ovr.weight_codes,
            quantized_ovr.bias_codes,
            input_bits=4,
            weight_bits=6,
            score_bits=16,
        )
        for f in range(quantized_ovr.n_features):
            assert f"w{f}" in verilog
            assert f"x{f}" in verilog
