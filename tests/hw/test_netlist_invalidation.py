"""Structural-mutation cache invalidation on :class:`GateNetlist`.

The compiled-program, evaluator and optimizer caches key on the netlist's
structural signature (mutation version + counts).  Growth through the
builder API always invalidated them; these tests pin down the harder case —
*in-place rewrites that keep every count identical* — which must invalidate
too once announced via :meth:`GateNetlist.note_structural_change`.
"""

import numpy as np

from repro.hw.netlist import GateNetlist
from repro.hw.opt import optimize
from repro.hw.simulate import simulate_combinational
from repro.perf.bitsim import evaluator_for, simulate_netlist_batch
from repro.perf.compile import compile_netlist


def two_gate_netlist():
    n = GateNetlist("mut")
    a = n.add_input("a")
    b = n.add_input("b")
    (x,) = n.add_gate("AND2", [a, b])
    (y,) = n.add_gate("OR2", [x, a])
    n.mark_output(y)
    return n


class TestStructuralSignature:
    def test_builder_growth_changes_the_signature(self):
        n = GateNetlist("sig")
        s0 = n.structural_signature()
        n.add_input("a")
        s1 = n.structural_signature()
        n.add_gate("INV", ["a"])
        s2 = n.structural_signature()
        assert len({s0, s1, s2}) == 3

    def test_in_place_rewrite_changes_signature_only_when_announced(self):
        n = two_gate_netlist()
        before = n.structural_signature()
        n.gates[0].cell = "XOR2"  # same counts, different logic
        assert n.structural_signature() == before  # silent mutation: undetected
        n.note_structural_change()
        assert n.structural_signature() != before


class TestCompiledProgramInvalidation:
    def test_same_size_rewrite_recompiles_after_announcement(self):
        n = two_gate_netlist()
        first = compile_netlist(n)
        n.gates[0].cell = "XOR2"
        n.note_structural_change()
        second = compile_netlist(n)
        assert second is not first
        # And the new program really computes XOR-based logic.
        out = simulate_combinational(n, {"a": 1, "b": 1})
        assert out[n.outputs[0]] == 1  # (1 ^ 1) | 1
        assert out[n.gates[0].outputs[0]] == 0

    def test_unannounced_rewrite_keeps_the_stale_program(self):
        # Documents the contract: mutate -> must call note_structural_change.
        n = two_gate_netlist()
        first = compile_netlist(n)
        n.gates[0].cell = "XOR2"
        assert compile_netlist(n) is first

    def test_evaluator_cache_follows_the_program(self):
        n = two_gate_netlist()
        ev1 = evaluator_for(n)
        n.gates[0].cell = "NAND2"
        n.note_structural_change()
        ev2 = evaluator_for(n)
        assert ev2 is not ev1
        vectors = np.array([[1, 1], [0, 1]])
        out = simulate_netlist_batch(n, vectors)
        assert list(out[:, 0]) == [1, 1]  # NAND(1,1)|1 = 1, NAND(0,1)|0 = 1

    def test_rewired_pins_recompile_after_announcement(self):
        n = GateNetlist("rewire")
        a = n.add_input("a")
        b = n.add_input("b")
        (y,) = n.add_gate("AND2", [a, a])
        n.mark_output(y)
        assert simulate_combinational(n, {"a": 0, "b": 1})[y] == 0
        n.gates[0].inputs = (b, b)
        n.note_structural_change()
        assert simulate_combinational(n, {"a": 0, "b": 1})[y] == 1


class TestOptimizerCacheInvalidation:
    def test_same_size_rewrite_reoptimizes_after_announcement(self):
        n = GateNetlist("opt")
        a = n.add_input("a")
        (x,) = n.add_gate("AND2", [a, GateNetlist.CONST_ONE])  # folds to wire
        (y,) = n.add_gate("INV", [x])
        n.mark_output(y)
        first = optimize(n, level=2)
        assert first.netlist.cell_counts() == {"INV": 1}
        n.gates[0].inputs = (a, GateNetlist.CONST_ZERO)  # now folds to const
        n.note_structural_change()
        second = optimize(n, level=2)
        assert second is not first
        out = simulate_netlist_batch(second.netlist, np.array([[0], [1]]))
        assert list(out[:, 0]) == [1, 1]  # INV(0) regardless of a

    def test_driver_and_fanout_maps_rebuild(self):
        n = two_gate_netlist()
        assert n.driver_of(n.gates[1].outputs[0]).name == n.gates[1].name
        # Swap the two gates' roles in place (same counts).
        g0, g1 = n.gates
        n.gates = [
            type(g0)(name="r0", cell="AND2", inputs=("a", "b"), outputs=("p",)),
            type(g0)(name="r1", cell="OR2", inputs=("p", "a"), outputs=("q",)),
        ]
        n.outputs = ["q"]
        n.note_structural_change()
        assert n.driver_of("q").name == "r1"
        assert n.driver_of("p").name == "r0"
        assert n.fanout_of("p") == 1
        assert n.fanout_of("q") == 1
