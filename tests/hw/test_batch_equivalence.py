"""Bit-exact equivalence: vectorized ``run_batch`` vs the scalar oracle.

The scalar, trace-producing ``run()`` methods are the reference models of
the paper's hardware; the vectorized batch paths must reproduce their
predictions bit for bit — including tie cases, where the strict ``A > B``
comparator keeps the *earlier* classifier.
"""

import itertools

import numpy as np
import pytest

from repro.core.design_flow import fast_config, run_flow
from repro.datasets import available_datasets
from repro.hw.simulate import ParallelDatapathSimulator, SequentialDatapathSimulator


def random_simulator_inputs(rng, n_classifiers, n_features, n_samples, max_code=15):
    weights = rng.integers(-31, 32, size=(n_classifiers, n_features), dtype=np.int64)
    biases = rng.integers(-120, 120, size=n_classifiers, dtype=np.int64)
    X = rng.integers(0, max_code + 1, size=(n_samples, n_features), dtype=np.int64)
    return weights, biases, X


class TestSequentialBatchEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_scalar_oracle_on_random_models(self, seed):
        rng = np.random.default_rng(seed)
        weights, biases, X = random_simulator_inputs(rng, 8, 12, 300)
        sim = SequentialDatapathSimulator(weights, biases)
        scalar = np.array([sim.run(row).predicted_class for row in X])
        batch = sim.run_batch(X)
        assert batch.dtype == np.int64
        assert np.array_equal(batch, scalar)

    def test_constructed_ties_resolve_to_earlier_classifier(self):
        # Classifiers 1 and 3 produce identical (maximal) scores; the strict
        # comparator never replaces an equal best, so classifier 1 must win.
        weights = np.array([[0, 0], [2, 1], [1, 1], [2, 1], [0, 1]])
        biases = np.array([-10, 5, 0, 5, 0])
        sim = SequentialDatapathSimulator(weights, biases)
        X = np.array([[3, 4], [1, 1], [0, 0]])
        scalar = np.array([sim.run(row).predicted_class for row in X])
        batch = sim.run_batch(X)
        assert np.array_equal(batch, scalar)
        assert batch[0] == 1  # not 3, despite the equal score

    def test_all_scores_equal_keeps_first_classifier(self):
        sim = SequentialDatapathSimulator(np.zeros((4, 3), dtype=int), np.zeros(4, dtype=int))
        assert list(sim.run_batch(np.arange(6).reshape(2, 3))) == [0, 0]

    def test_empty_batch_returns_int64(self):
        sim = SequentialDatapathSimulator(np.ones((3, 4), dtype=int), np.zeros(3, dtype=int))
        out = sim.run_batch(np.zeros((0, 4), dtype=np.int64))
        assert out.shape == (0,)
        assert out.dtype == np.int64

    def test_feature_mismatch_rejected_like_run(self):
        sim = SequentialDatapathSimulator(np.ones((3, 4), dtype=int), np.zeros(3, dtype=int))
        with pytest.raises(ValueError):
            sim.run_batch(np.zeros((5, 3), dtype=np.int64))
        with pytest.raises(ValueError):
            sim.run_batch(np.zeros(3, dtype=np.int64))


class TestParallelBatchEquivalence:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_ovr_matches_scalar_oracle(self, seed):
        rng = np.random.default_rng(seed)
        weights, biases, X = random_simulator_inputs(rng, 6, 10, 300)
        sim = ParallelDatapathSimulator(weights, biases, strategy="ovr")
        scalar = np.array([sim.run(row) for row in X])
        batch = sim.run_batch(X)
        assert batch.dtype == np.int64
        assert np.array_equal(batch, scalar)

    @pytest.mark.parametrize("n_classes", [3, 4, 5])
    def test_ovo_matches_scalar_oracle(self, n_classes):
        rng = np.random.default_rng(n_classes)
        pairs = list(itertools.combinations(range(n_classes), 2))
        weights, biases, X = random_simulator_inputs(rng, len(pairs), 8, 400)
        sim = ParallelDatapathSimulator(
            weights, biases, strategy="ovo", pairs=pairs, n_classes=n_classes
        )
        scalar = np.array([sim.run(row) for row in X])
        assert np.array_equal(sim.run_batch(X), scalar)

    def test_ovo_vote_ties_resolve_like_scalar_stable_sort(self):
        # Force vote ties: zero weights make every pairwise score equal the
        # bias, so votes/margins are input-independent and engineered to tie.
        pairs = [(0, 1), (0, 2), (1, 2)]
        weights = np.zeros((3, 2), dtype=np.int64)
        # score >= 0 -> j wins.  (0,1)->1, (0,2)->0 (score<0), (1,2)->2:
        # votes = [1, 1, 1]; margins decide, and remaining ties go to the
        # lowest class id exactly as the scalar stable sort does.
        for biases in ([0, -1, 0], [0, 0, 0], [-1, -1, -1], [5, -5, 0]):
            sim = ParallelDatapathSimulator(
                weights, np.array(biases), strategy="ovo", pairs=pairs, n_classes=3
            )
            X = np.zeros((4, 2), dtype=np.int64)
            scalar = np.array([sim.run(row) for row in X])
            assert np.array_equal(sim.run_batch(X), scalar), f"biases={biases}"

    def test_empty_batch_returns_int64(self):
        sim = ParallelDatapathSimulator(
            np.ones((3, 4), dtype=int), np.zeros(3, dtype=int), strategy="ovr"
        )
        out = sim.run_batch(np.zeros((0, 4), dtype=np.int64))
        assert out.shape == (0,)
        assert out.dtype == np.int64

    def test_feature_mismatch_rejected(self):
        sim = ParallelDatapathSimulator(
            np.ones((3, 4), dtype=int), np.zeros(3, dtype=int), strategy="ovr"
        )
        with pytest.raises(ValueError):
            sim.run_batch(np.zeros((5, 6), dtype=np.int64))


class TestTable1DatasetEquivalence:
    """Batch predictions are bit-identical to the oracle on all five datasets."""

    @pytest.fixture(scope="class")
    def flow_config(self):
        return fast_config(n_samples=160, svm_max_iter=12, mlp_max_epochs=10)

    @pytest.mark.parametrize("dataset", sorted(available_datasets()))
    def test_sequential_batch_matches_oracle(self, dataset, flow_config):
        result = run_flow(dataset, "ours", flow_config)
        design = result.design
        codes = design.model.quantize_inputs(result.split.X_test)
        scalar = np.array(
            [design.simulator.run(row).predicted_class for row in codes]
        )
        assert np.array_equal(design.simulator.run_batch(codes), scalar)
        # And the cycle-accurate hardware agrees with the integer model.
        assert design.verify_against_model(result.split.X_test)

    @pytest.mark.parametrize("dataset", sorted(available_datasets()))
    def test_parallel_batch_matches_oracle(self, dataset, flow_config):
        result = run_flow(dataset, "svm_parallel_exact", flow_config)
        design = result.design
        codes = design.model.quantize_inputs(result.split.X_test)
        scalar = np.array([design.simulator.run(row) for row in codes])
        assert np.array_equal(design.simulator.run_batch(codes), scalar)
