"""Tests for the arithmetic RTL generators (adders, multipliers) including
gate-level verification against integer arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.rtl.adders import (
    adder_tree,
    adder_tree_output_width,
    build_ripple_adder_netlist,
    ripple_carry_adder,
    ripple_carry_subtractor,
    simulate_ripple_adder,
)
from repro.hw.rtl.multipliers import (
    array_multiplier,
    array_multiplier_output_bits,
    build_array_multiplier_netlist,
    constant_multiplier,
    constant_multiplier_output_bits,
    csd_digits,
    csd_nonzero_count,
    csd_value,
    simulate_array_multiplier,
)


class TestCSD:
    @pytest.mark.parametrize("value", [0, 1, -1, 2, 3, 7, -7, 15, 23, 100, -100, 255, -128])
    def test_csd_round_trip(self, value):
        assert csd_value(csd_digits(value)) == value

    def test_no_adjacent_nonzero_digits(self):
        for value in range(-200, 201):
            digits = csd_digits(value)
            for lo, hi in zip(digits, digits[1:]):
                assert not (lo != 0 and hi != 0), f"adjacent digits for {value}"

    def test_nonzero_count_at_most_binary_weight(self):
        for value in range(1, 300):
            assert csd_nonzero_count(value) <= bin(value).count("1")

    def test_known_values(self):
        # 7 = 8 - 1 -> two non-zero digits instead of three.
        assert csd_nonzero_count(7) == 2
        assert csd_nonzero_count(0) == 0
        assert csd_nonzero_count(8) == 1

    @given(st.integers(min_value=-(2 ** 12), max_value=2 ** 12))
    @settings(max_examples=200, deadline=None)
    def test_csd_round_trip_property(self, value):
        assert csd_value(csd_digits(value)) == value


class TestAdderBlocks:
    def test_ripple_adder_counts(self):
        block = ripple_carry_adder(8)
        assert block.counts["FA"] == 7
        assert block.counts["HA"] == 1
        assert block.logic_depth() == 8

    def test_single_bit_adder(self):
        block = ripple_carry_adder(1)
        assert block.counts["HA"] == 1
        assert "FA" not in block.counts

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            ripple_carry_adder(0)

    def test_subtractor_has_inverters(self):
        block = ripple_carry_subtractor(6)
        assert block.counts["INV"] == 6
        assert block.counts["FA"] == 6

    def test_adder_tree_adder_count(self):
        # Summing n operands always needs exactly n-1 two-operand adders.
        for n in (2, 3, 5, 8, 13):
            block = adder_tree(n, 6)
            assert block.counts["HA"] == n - 1

    def test_adder_tree_single_operand_is_free(self):
        block = adder_tree(1, 8)
        assert block.n_cells() == 0

    def test_adder_tree_depth_grows_logarithmically(self):
        deep = adder_tree(32, 8).logic_depth()
        shallow = adder_tree(4, 8).logic_depth()
        assert deep > shallow
        assert deep < 32  # far less than a linear chain

    def test_output_width(self):
        assert adder_tree_output_width(1, 8) == 8
        assert adder_tree_output_width(2, 8) == 9
        assert adder_tree_output_width(21, 10) == 15

    def test_invalid_tree_rejected(self):
        with pytest.raises(ValueError):
            adder_tree(0, 4)
        with pytest.raises(ValueError):
            adder_tree_output_width(4, 0)


class TestGateLevelAdder:
    @pytest.mark.parametrize("width", [1, 2, 4, 6])
    def test_exhaustive_small_widths(self, width):
        netlist = build_ripple_adder_netlist(width)
        limit = 1 << width
        step = max(1, limit // 8)
        for a in range(0, limit, step):
            for b in range(0, limit, step):
                total, carry = simulate_ripple_adder(netlist, a, b, width)
                assert total + (carry << width) == a + b

    def test_carry_in_variant(self):
        netlist = build_ripple_adder_netlist(4, with_carry_in=True)
        total, carry = simulate_ripple_adder(netlist, 9, 7, 4, cin=1)
        assert total + (carry << 4) == 17

    def test_netlist_cell_count_matches_block_model(self):
        width = 6
        netlist = build_ripple_adder_netlist(width)
        block = ripple_carry_adder(width)
        assert netlist.cell_counts()["FA"] == block.counts["FA"]
        assert netlist.cell_counts()["HA"] == block.counts["HA"]

    @given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=255))
    @settings(max_examples=60, deadline=None)
    def test_random_additions_8bit(self, a, b):
        netlist = build_ripple_adder_netlist(8)
        total, carry = simulate_ripple_adder(netlist, a, b, 8)
        assert total + (carry << 8) == a + b


class TestArrayMultiplier:
    def test_counts(self):
        block = array_multiplier(4, 6, signed=False)
        assert block.counts["AND2"] == 24
        assert block.counts["FA"] == 5 * 3
        assert block.counts["HA"] == 5

    def test_signed_variant_is_larger(self):
        unsigned = array_multiplier(4, 6, signed=False)
        signed = array_multiplier(4, 6, signed=True)
        assert signed.n_cells() > unsigned.n_cells()

    def test_output_bits(self):
        assert array_multiplier_output_bits(4, 6) == 10

    def test_invalid_widths_rejected(self):
        with pytest.raises(ValueError):
            array_multiplier(0, 4)
        with pytest.raises(ValueError):
            array_multiplier_output_bits(4, 0)

    @pytest.mark.parametrize("a_bits,b_bits", [(2, 2), (3, 3), (4, 3)])
    def test_gate_level_exhaustive(self, a_bits, b_bits):
        netlist = build_array_multiplier_netlist(a_bits, b_bits)
        for a in range(1 << a_bits):
            for b in range(1 << b_bits):
                assert simulate_array_multiplier(netlist, a, b, a_bits, b_bits) == a * b

    @given(st.integers(min_value=0, max_value=15), st.integers(min_value=0, max_value=63))
    @settings(max_examples=40, deadline=None)
    def test_gate_level_random_4x6(self, a, b):
        netlist = build_array_multiplier_netlist(4, 6)
        assert simulate_array_multiplier(netlist, a, b, 4, 6) == a * b


class TestConstantMultiplier:
    def test_zero_constant_is_free(self):
        assert constant_multiplier(0, 4).n_cells() == 0

    def test_power_of_two_is_free(self):
        assert constant_multiplier(8, 4).n_cells() == 0
        assert constant_multiplier(1, 4).n_cells() == 0

    def test_negative_power_of_two_needs_negation_only(self):
        block = constant_multiplier(-4, 4)
        assert block.n_cells() > 0
        assert "FA" not in block.counts  # negation uses INV + HA, no full adders

    def test_general_constant_cheaper_than_array_multiplier(self):
        const = constant_multiplier(23, 4)
        generic = array_multiplier(4, 6, signed=True)
        assert const.n_cells() < generic.n_cells()

    def test_cost_grows_with_csd_weight(self):
        sparse = constant_multiplier(16, 6)   # one CSD digit
        medium = constant_multiplier(18, 6)   # two CSD digits
        dense = constant_multiplier(27, 6)    # three CSD digits (32 - 4 - 1)
        assert sparse.n_cells() <= medium.n_cells() <= dense.n_cells()

    def test_output_bits(self):
        assert constant_multiplier_output_bits(0, 4) == 1
        assert constant_multiplier_output_bits(15, 4) == 8
        assert constant_multiplier_output_bits(-15, 4) == 9

    def test_symmetric_cost_for_negated_constant(self):
        pos = constant_multiplier(21, 5).n_cells()
        neg = constant_multiplier(-21, 5).n_cells()
        assert abs(pos - neg) <= 10
