"""Optimization and timing of clocked netlists (register-boundary regions)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hw.netlist import GateNetlist
from repro.hw.opt import check_equivalence, optimize
from repro.hw.rtl.adders import build_ripple_adder_netlist
from repro.hw.rtl.registers import build_counter_netlist
from repro.hw.rtl.svm_top import build_sequential_svm_netlist
from repro.hw.timing import analyze_netlist_timing, longest_path_cells
from repro.perf.seqsim import simulate_sequential_batch


def _clocked_with_dead_and_foldable_logic() -> GateNetlist:
    """A register sandwiched between foldable and dead combinational logic."""
    n = GateNetlist("regions")
    a = n.add_input("a")
    q = n.declare_dff("q", name="ff")
    # Next-state region: AND with constant 1 folds to a wire.
    (d,) = n.add_gate("AND2", [a, GateNetlist.CONST_ONE], outputs=["d"])
    n.bind_dff(q, d)
    # Output region: double inverter collapses.
    (x,) = n.add_gate("INV", [q], outputs=["x"])
    (y,) = n.add_gate("INV", [x], outputs=["y"])
    n.mark_output(y)
    # Dead region: feeds nothing.
    n.add_gate("XOR2", [a, q], outputs=["dead"])
    return n


class TestSequentialOptimization:
    def test_regions_between_registers_are_optimized(self):
        raw = _clocked_with_dead_and_foldable_logic()
        result = optimize(raw, level=2)
        counts = result.netlist.cell_counts()
        assert counts["DFF"] == 1  # the barrier survives
        assert "XOR2" not in counts  # dead region eliminated
        assert "AND2" not in counts  # const-fed gate folded
        assert check_equivalence(raw, result.netlist, n_cycles=6)

    def test_optimized_clocked_netlist_is_cycle_exact(self):
        rng = np.random.default_rng(11)
        weights = rng.integers(-7, 8, size=(4, 3))
        biases = rng.integers(-10, 11, size=4)
        top, ports = build_sequential_svm_netlist(weights, biases, input_bits=2)
        result = optimize(top, level=2)
        assert result.stats.gates_removed > 0
        codes = rng.integers(0, 4, size=(20, 3))
        raw_trace = simulate_sequential_batch(
            top, ports.input_matrix(codes), cycles=4
        )
        opt_trace = simulate_sequential_batch(
            result.netlist, ports.input_matrix(codes), cycles=4
        )
        assert np.array_equal(raw_trace, opt_trace)

    def test_counter_feedback_round_trips_through_the_ir(self):
        raw = build_counter_netlist(4)
        optimized = optimize(raw, level=2).netlist
        assert optimized.cell_counts()["DFF"] == 4
        assert check_equivalence(raw, optimized, n_cycles=20)

    def test_dff_init_survives_optimization(self):
        n = GateNetlist("held")
        q = n.declare_dff("q", name="ff", init=1)
        n.bind_dff(q, q)
        (buf,) = n.add_gate("BUF", [q], outputs=["out"])
        n.mark_output(buf)
        optimized = optimize(n, level=2).netlist
        assert optimized.dff_init.get("ff") == 1
        trace = simulate_sequential_batch(optimized, np.zeros((1, 0)), cycles=3)
        assert np.array_equal(trace[:, 0, 0], np.ones(3))

    def test_live_register_keeps_its_feedback_cone(self):
        # dead-gate elimination must not drop the increment logic that only
        # the flip-flops (which precede it in the gate list) consume.
        raw = build_counter_netlist(3)
        optimized = optimize(raw, level=1).netlist
        counts = optimized.cell_counts()
        # HA(q0, const 1) folds to an inverter + wire; the rest of the
        # increment chain must survive because the live registers consume it.
        assert counts["DFF"] == 3
        assert counts["HA"] == 2 and counts["INV"] == 1
        assert check_equivalence(raw, optimized, n_cycles=10)


class TestRegisterAwareTiming:
    def test_clocked_netlist_reports_reg_to_reg_path(self):
        counter = build_counter_netlist(4)
        path = longest_path_cells(counter)
        # The critical register-to-register path is the increment carry
        # chain (4 half adders); the flip-flop overhead is priced separately.
        assert path["HA"] == 4
        assert "DFF" not in path

    def test_analyze_netlist_timing_autodetects_sequential(self):
        counter = build_counter_netlist(4)
        report = analyze_netlist_timing(counter)
        from repro.hw.pdk import EGFET_PDK

        overhead = EGFET_PDK["DFF"].delay_ms
        # Clock period covers the path plus the register overhead and margin.
        assert report.clock_period_ms > report.critical_path_ms + overhead * 0.99

    def test_combinational_netlists_unchanged(self):
        adder = build_ripple_adder_netlist(8)
        path = longest_path_cells(adder)
        assert path["FA"] == 7 and path["HA"] == 1
        report = analyze_netlist_timing(adder)
        assert report.logic_depth == 8

    def test_svm_top_timing_improves_with_optimization(self):
        rng = np.random.default_rng(5)
        weights = rng.integers(-15, 16, size=(5, 4))
        biases = rng.integers(-30, 31, size=5)
        top, _ = build_sequential_svm_netlist(weights, biases, input_bits=3)
        raw = analyze_netlist_timing(top)
        opt = analyze_netlist_timing(top, opt_level=2)
        assert raw.frequency_hz > 0
        assert opt.critical_path_ms <= raw.critical_path_ms

    def test_explicit_sequential_flag_still_wins(self):
        adder = build_ripple_adder_netlist(4)
        combinational = analyze_netlist_timing(adder, sequential=False)
        clocked = analyze_netlist_timing(adder, sequential=True)
        assert clocked.clock_period_ms > combinational.clock_period_ms
