"""Structural-Verilog emission checks for the small gate-level netlists."""

import re

import pytest

from repro.hw.rtl.adders import build_ripple_adder_netlist
from repro.hw.rtl.comparator import build_comparator_netlist
from repro.hw.rtl.multipliers import build_array_multiplier_netlist
from repro.hw.rtl.mux import build_mux_tree_netlist
from repro.hw.verilog import _CELL_EXPRESSIONS, netlist_to_verilog

IDENTIFIER = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def _port_names(verilog: str) -> list:
    """Port identifiers declared in the module header."""
    header = verilog.split("(", 1)[1].split(");", 1)[0]
    return [token.strip() for token in header.split(",") if token.strip()]


@pytest.mark.parametrize(
    "builder,kwargs",
    [
        (build_ripple_adder_netlist, {"width": 4}),
        (build_array_multiplier_netlist, {"a_bits": 3, "b_bits": 3}),
        (build_comparator_netlist, {"width": 4}),
        (build_mux_tree_netlist, {"n_inputs": 5}),
    ],
)
class TestStructuralVerilog:
    def test_one_assign_per_gate_output_expression(self, builder, kwargs):
        netlist = builder(**kwargs)
        verilog = netlist_to_verilog(netlist)
        # HA/FA templates contain two assigns; everything else one.
        expected = sum(
            2 if gate.cell in ("HA", "FA") else 1 for gate in netlist.gates
        )
        assert verilog.count("assign ") == expected

    def test_module_ports_are_legal_identifiers(self, builder, kwargs):
        netlist = builder(**kwargs)
        verilog = netlist_to_verilog(netlist)
        for port in _port_names(verilog):
            assert IDENTIFIER.match(port), f"illegal port name {port!r}"

    def test_every_declared_port_is_referenced(self, builder, kwargs):
        netlist = builder(**kwargs)
        verilog = netlist_to_verilog(netlist)
        body = verilog.split(");", 1)[1]
        for port in _port_names(verilog):
            assert port in body, f"port {port!r} never used in the module body"

    def test_inputs_and_outputs_declared(self, builder, kwargs):
        netlist = builder(**kwargs)
        verilog = netlist_to_verilog(netlist)
        assert verilog.count("  input ") == len(netlist.inputs)
        assert verilog.count("  output ") == len(netlist.outputs)

    def test_module_name_and_terminator(self, builder, kwargs):
        netlist = builder(**kwargs)
        verilog = netlist_to_verilog(netlist)
        assert verilog.startswith("//")
        assert f"module {netlist.name}" in verilog
        assert verilog.rstrip().endswith("endmodule")


class TestTemplateCoverage:
    def test_every_generic_cell_has_a_verilog_template(self):
        from repro.hw.cells import GENERIC_CELL_SET

        missing = [
            name
            for name in GENERIC_CELL_SET
            if name not in _CELL_EXPRESSIONS and name not in ("DFF", "ADC1")
        ]
        assert missing == [], f"cells without Verilog templates: {missing}"

    def test_unknown_cell_rejected(self):
        from repro.hw.netlist import GateNetlist
        from repro.hw.verilog import netlist_to_verilog

        netlist = GateNetlist("bad")
        a = netlist.add_input("a")
        netlist.add_gate("ADC1", [a], outputs=["q"])  # no structural template
        netlist.mark_output("q")
        with pytest.raises(ValueError):
            netlist_to_verilog(netlist)

    def test_clocked_netlist_emits_registers(self):
        from repro.hw.netlist import GateNetlist
        from repro.hw.verilog import netlist_to_verilog

        netlist = GateNetlist("clocked")
        a = netlist.add_input("a")
        q = netlist.declare_dff("q", name="ff", init=1)
        (d,) = netlist.add_gate("XOR2", [a, q], outputs=["d"])
        netlist.bind_dff(q, d)
        netlist.mark_output(q)
        verilog = netlist_to_verilog(netlist)
        assert "input  clk;" in verilog
        assert "reg    q;" in verilog
        assert "initial q = 1'b1;" in verilog
        assert "always @(posedge clk) q <= d;" in verilog
