"""Netlist optimization pipeline: pass units, equivalence, and lowerings.

The correctness contract of :mod:`repro.hw.opt` is that the optimized
netlist is bit-exact with the raw one on randomized vectors for *every* RTL
generator family, while preserving the primary input/output interface.  The
per-pass unit tests pin down the individual rewrites (constant folding,
buffer collapse, CSE, dead-gate removal) on hand-built netlists.
"""

import numpy as np
import pytest

from repro.hw.area import analyze_netlist_area
from repro.hw.cells import CellLibrary, CellType, GENERIC_CELL_SET
from repro.hw.netlist import GateNetlist
from repro.hw.opt import (
    DEFAULT_OPAQUE_CELLS,
    OptStats,
    check_equivalence,
    netlist_to_block,
    optimize,
)
from repro.hw.power import analyze_netlist_power
from repro.hw.rtl.adders import build_ripple_adder_netlist
from repro.hw.rtl.comparator import build_comparator_netlist
from repro.hw.rtl.multipliers import (
    build_array_multiplier_netlist,
    build_constant_mac_netlist,
    build_constant_multiplier_netlist,
)
from repro.hw.rtl.mux import build_mux_tree_netlist
from repro.hw.timing import analyze_netlist_timing
from repro.hw.verilog import netlist_to_verilog
from repro.perf.bitsim import simulate_netlist_batch, words_to_ints

C0 = GateNetlist.CONST_ZERO
C1 = GateNetlist.CONST_ONE


def gates_by_cell(netlist):
    return netlist.cell_counts()


# --------------------------------------------------------------------------- #
# Equivalence across every RTL generator family
# --------------------------------------------------------------------------- #
ALL_GENERATORS = [
    ("ripple_adder", lambda: build_ripple_adder_netlist(6)),
    ("ripple_adder_cin", lambda: build_ripple_adder_netlist(4, with_carry_in=True)),
    ("array_multiplier", lambda: build_array_multiplier_netlist(4, 5)),
    ("mux_tree", lambda: build_mux_tree_netlist(11)),
    ("comparator", lambda: build_comparator_netlist(7)),
    ("constant_multiplier", lambda: build_constant_multiplier_netlist(11, 5)),
    ("constant_multiplier_pow2", lambda: build_constant_multiplier_netlist(8, 4)),
    (
        "constant_mac",
        lambda: build_constant_mac_netlist([0, 1, 2, 5, 8, 11, 6, 3], 4),
    ),
]


class TestEquivalence:
    @pytest.mark.parametrize("level", [1, 2])
    @pytest.mark.parametrize(
        "name,builder", ALL_GENERATORS, ids=[n for n, _ in ALL_GENERATORS]
    )
    def test_every_generator_is_bit_exact_after_optimization(
        self, name, builder, level
    ):
        raw = builder()
        result = optimize(raw, level=level, verify=True)
        optimized = result.netlist
        assert optimized.inputs == raw.inputs
        assert optimized.outputs == raw.outputs
        assert check_equivalence(raw, optimized, n_vectors=300, seed=7)

    def test_constant_datapaths_shrink(self):
        """The passes must remove gates on the hardwired-constant datapaths."""
        for builder in (
            lambda: build_constant_multiplier_netlist(11, 5),
            lambda: build_constant_mac_netlist([0, 1, 2, 5, 8, 11, 6, 3], 4),
        ):
            raw = builder()
            stats = optimize(raw, level=2).stats
            assert stats.gates_removed > 0
            assert stats.gates_after < stats.gates_before

    def test_optimized_constant_mac_still_computes_the_dot_product(self):
        weights = [3, 0, 7, 4]
        raw = build_constant_mac_netlist(weights, 3)
        optimized = optimize(raw, level=2).netlist
        rng = np.random.default_rng(1)
        X = rng.integers(0, 8, size=(40, 4))
        bits = np.zeros((40, 12), dtype=np.int64)
        for f in range(4):
            for i in range(3):
                bits[:, f * 3 + i] = (X[:, f] >> i) & 1
        out = simulate_netlist_batch(optimized, bits)
        values = words_to_ints(out, range(out.shape[1]))
        assert list(values) == list(X @ np.array(weights))


# --------------------------------------------------------------------------- #
# Individual passes
# --------------------------------------------------------------------------- #
class TestConstantPropagation:
    def test_tied_gates_fold_to_wires_and_constants(self):
        n = GateNetlist("fold")
        a = n.add_input("a")
        b = n.add_input("b")
        (w1,) = n.add_gate("AND2", [a, C1])  # -> wire a
        (w2,) = n.add_gate("OR2", [b, C0])  # -> wire b
        (k,) = n.add_gate("AND2", [w1, C0])  # -> constant 0
        (y,) = n.add_gate("OR2", [w2, k])  # -> wire b
        n.mark_output(y)
        result = optimize(n, level=1, verify=True)
        # Everything folds away; the output is recovered from net b.
        assert result.stats.gates_after <= 1
        assert result.stats.removed_per_pass["const_prop"] > 0

    def test_full_adder_with_tied_carry_becomes_half_adder(self):
        n = GateNetlist("fa0")
        a = n.add_input("a")
        b = n.add_input("b")
        s, c = n.add_gate("FA", [a, b, C0])
        n.mark_output(s)
        n.mark_output(c)
        optimized = optimize(n, level=1, verify=True).netlist
        assert gates_by_cell(optimized) == {"HA": 1}

    def test_xor_of_duplicate_nets_is_constant_zero(self):
        n = GateNetlist("dup")
        a = n.add_input("a")
        (y,) = n.add_gate("XOR2", [a, a])
        n.mark_output(y)
        optimized = optimize(n, level=1, verify=True).netlist
        # Only the output-recovery buffer from the constant remains.
        assert gates_by_cell(optimized) == {"BUF": 1}
        out = simulate_netlist_batch(optimized, np.array([[0], [1]]))
        assert list(out[:, 0]) == [0, 0]

    def test_mux_with_equal_data_inputs_collapses(self):
        n = GateNetlist("muxdup")
        d = n.add_input("d")
        s = n.add_input("s")
        (y,) = n.add_gate("MUX2", [d, d, s])
        (z,) = n.add_gate("INV", [y])
        n.mark_output(z)
        optimized = optimize(n, level=1, verify=True).netlist
        assert gates_by_cell(optimized) == {"INV": 1}

    def test_folding_cascades_through_levels(self):
        # INV(1) = 0 feeds an AND which therefore dies too, in one run.
        n = GateNetlist("cascade")
        a = n.add_input("a")
        (k,) = n.add_gate("INV", [C1])
        (y,) = n.add_gate("AND2", [a, k])
        (z,) = n.add_gate("OR2", [y, a])  # -> wire a
        n.mark_output(z)
        result = optimize(n, level=1, verify=True)
        assert result.stats.gates_after <= 1


class TestBufferCollapse:
    def test_buffers_and_double_inverters_alias_away(self):
        n = GateNetlist("bufs")
        a = n.add_input("a")
        b = n.add_input("b")
        (x,) = n.add_gate("XOR2", [a, b])
        (bufd,) = n.add_gate("BUF", [x])
        (i1,) = n.add_gate("INV", [bufd])
        (i2,) = n.add_gate("INV", [i1])
        (y,) = n.add_gate("AND2", [i2, a])
        n.mark_output(y)
        optimized = optimize(n, level=2, verify=True).netlist
        counts = gates_by_cell(optimized)
        assert counts["XOR2"] == 1 and counts["AND2"] == 1
        assert "BUF" not in counts
        assert counts.get("INV", 0) == 0  # both inverters cancelled

    def test_odd_inverter_chain_keeps_one_inverter(self):
        n = GateNetlist("inv3")
        a = n.add_input("a")
        (i1,) = n.add_gate("INV", [a])
        (i2,) = n.add_gate("INV", [i1])
        (i3,) = n.add_gate("INV", [i2])
        n.mark_output(i3)
        optimized = optimize(n, level=2, verify=True).netlist
        assert gates_by_cell(optimized) == {"INV": 1}


class TestStructuralHashing:
    def test_identical_gates_merge_including_commutative_orders(self):
        n = GateNetlist("cse")
        a = n.add_input("a")
        b = n.add_input("b")
        (x1,) = n.add_gate("AND2", [a, b])
        (x2,) = n.add_gate("AND2", [b, a])  # commutative duplicate
        (x3,) = n.add_gate("AND2", [a, b])  # exact duplicate
        (y,) = n.add_gate("OR3", [x1, x2, x3])  # -> wire x1 after merge
        n.mark_output(y)
        result = optimize(n, level=2, verify=True)
        counts = gates_by_cell(result.netlist)
        assert counts.get("AND2", 0) == 1
        assert result.stats.removed_per_pass["structural_hash"] >= 1

    def test_mux_select_order_is_not_commutative(self):
        n = GateNetlist("muxorder")
        d0 = n.add_input("d0")
        d1 = n.add_input("d1")
        s = n.add_input("s")
        (y1,) = n.add_gate("MUX2", [d0, d1, s])
        (y2,) = n.add_gate("MUX2", [d1, d0, s])  # different function!
        n.mark_output(y1)
        n.mark_output(y2)
        optimized = optimize(n, level=2, verify=True).netlist
        assert gates_by_cell(optimized)["MUX2"] == 2


class TestDeadGateElimination:
    def test_unobserved_logic_is_removed(self):
        n = GateNetlist("dead")
        a = n.add_input("a")
        b = n.add_input("b")
        (y,) = n.add_gate("AND2", [a, b])
        n.add_gate("XOR2", [a, b])  # never marked as output
        n.add_gate("OR2", [a, b])  # never marked as output
        n.mark_output(y)
        result = optimize(n, level=1, verify=True)
        assert gates_by_cell(result.netlist) == {"AND2": 1}
        assert result.stats.removed_per_pass["dead_gate"] == 2

    def test_transitively_dead_chains_are_removed(self):
        n = GateNetlist("chain")
        a = n.add_input("a")
        (x,) = n.add_gate("INV", [a])
        (y,) = n.add_gate("INV", [x])  # whole chain feeds nothing observed
        (z,) = n.add_gate("AND2", [y, a])
        (keep,) = n.add_gate("OR2", [a, a])
        n.mark_output(keep)
        optimized = optimize(n, level=1, verify=True).netlist
        assert "INV" not in gates_by_cell(optimized)
        assert "AND2" not in gates_by_cell(optimized)


# --------------------------------------------------------------------------- #
# Interface preservation and barriers
# --------------------------------------------------------------------------- #
class TestInterfacePreservation:
    def test_output_tied_to_constant_gets_a_port_buffer(self):
        n = GateNetlist("tieout")
        a = n.add_input("a")
        (y,) = n.add_gate("AND2", [a, C0])  # output is constant 0
        n.mark_output(y)
        optimized = optimize(n, level=1, verify=True).netlist
        assert optimized.outputs == [y]
        out = simulate_netlist_batch(optimized, np.array([[0], [1]]))
        assert list(out[:, 0]) == [0, 0]

    def test_output_aliased_to_input_gets_a_port_buffer(self):
        n = GateNetlist("wireout")
        a = n.add_input("a")
        (y,) = n.add_gate("BUF", [a])
        n.mark_output(y)
        optimized = optimize(n, level=2, verify=True).netlist
        assert optimized.inputs == ["a"]
        assert optimized.outputs == [y]
        out = simulate_netlist_batch(optimized, np.array([[0], [1]]))
        assert list(out[:, 0]) == [0, 1]

    def test_two_outputs_sharing_one_survivor(self):
        n = GateNetlist("shareout")
        a = n.add_input("a")
        b = n.add_input("b")
        (x1,) = n.add_gate("AND2", [a, b])
        (x2,) = n.add_gate("AND2", [b, a])  # merges into x1
        n.mark_output(x1)
        n.mark_output(x2)
        optimized = optimize(n, level=2, verify=True).netlist
        assert optimized.outputs == [x1, x2]
        vectors = np.array([[0, 0], [0, 1], [1, 0], [1, 1]])
        out = simulate_netlist_batch(optimized, vectors)
        assert np.array_equal(out[:, 0], out[:, 1])

    def test_unused_primary_inputs_are_kept(self):
        n = GateNetlist("unused")
        a = n.add_input("a")
        b = n.add_input("b")  # becomes unused after folding
        (x,) = n.add_gate("AND2", [b, C0])
        (y,) = n.add_gate("OR2", [a, x])
        n.mark_output(y)
        optimized = optimize(n, level=1, verify=True).netlist
        assert optimized.inputs == ["a", "b"]


class TestOptimizationBarriers:
    def test_opaque_cells_are_never_folded(self):
        n = GateNetlist("adc")
        a = n.add_input("a")
        (x,) = n.add_gate("ADC1", [a])
        (y,) = n.add_gate("AND2", [x, C1])  # folds to wire x
        n.mark_output(y)
        optimized = optimize(n, level=2, verify=True).netlist
        assert gates_by_cell(optimized)["ADC1"] == 1
        assert "AND2" not in gates_by_cell(optimized)

    def test_sequential_cells_are_never_folded(self):
        n = GateNetlist("seq")
        a = n.add_input("a")
        (q,) = n.add_gate("DFF", [a])
        n.mark_output(q)
        optimized = optimize(n, level=2, verify=True).netlist
        assert gates_by_cell(optimized) == {"DFF": 1}

    def test_dead_opaque_cells_are_still_removable(self):
        n = GateNetlist("deadadc")
        a = n.add_input("a")
        n.add_gate("ADC1", [a])  # feeds nothing
        (y,) = n.add_gate("INV", [a])
        n.mark_output(y)
        optimized = optimize(n, level=1, verify=True).netlist
        assert "ADC1" not in gates_by_cell(optimized)

    def test_library_without_buf_keeps_output_drivers(self):
        # No canonical BUF cell -> an output that would fold to a constant
        # or a wire has no port buffer to fall back on; its driver must
        # survive and the result must stay equivalent and compilable.
        cells = [
            CellType("AND2", 2, 1, 0.1, 0.1, 0.1, 0.1, function=lambda b: (b[0] & b[1],)),
            CellType("OR2", 2, 1, 0.1, 0.1, 0.1, 0.1, function=lambda b: (b[0] | b[1],)),
            CellType("INV", 1, 1, 0.1, 0.1, 0.1, 0.1, function=lambda b: (1 - b[0],)),
        ]
        library = CellLibrary("no-buf", cells)
        n = GateNetlist("nobuf")
        a = n.add_input("a")
        (y,) = n.add_gate("AND2", [a, C0])  # would fold to constant 0
        (w,) = n.add_gate("OR2", [a, C0])  # would fold to wire a
        n.mark_output(y)
        n.mark_output(w)
        optimized = optimize(n, level=2, library=library).netlist
        assert check_equivalence(n, optimized, library=library)
        assert "BUF" not in optimized.cell_counts()
        out = simulate_netlist_batch(optimized, np.array([[0], [1]]), library)
        assert list(out[:, 0]) == [0, 0] and list(out[:, 1]) == [0, 1]

    def test_noncanonical_buf_is_never_instantiated(self):
        # A library whose BUF cell actually inverts: the optimizer must not
        # insert port buffers (they would flip the output) nor collapse them.
        cells = [
            CellType("AND2", 2, 1, 0.1, 0.1, 0.1, 0.1, function=lambda b: (b[0] & b[1],)),
            CellType("BUF", 1, 1, 0.1, 0.1, 0.1, 0.1, function=lambda b: (1 - b[0],)),
        ]
        library = CellLibrary("weird-buf", cells)
        n = GateNetlist("weirdbuf")
        a = n.add_input("a")
        (y,) = n.add_gate("AND2", [a, C1])  # would fold to wire a
        (z,) = n.add_gate("BUF", [y])  # actually an inverter here!
        n.mark_output(z)
        optimized = optimize(n, level=2, library=library).netlist
        assert check_equivalence(n, optimized, library=library)

    def test_custom_library_without_rewrite_cells_degrades_gracefully(self):
        # A library whose only cells are a custom majority gate and NAND2:
        # const-prop cannot express INV/AND2 rewrites, so it must keep gates
        # rather than miscompile.
        cells = [
            CellType("NAND2", 2, 1, 0.1, 0.1, 0.1, 0.1, function=lambda b: (1 - (b[0] & b[1]),)),
            CellType(
                "MAJ3", 3, 1, 0.1, 0.1, 0.1, 0.1,
                function=lambda b: (1 if b[0] + b[1] + b[2] >= 2 else 0,),
            ),
        ]
        library = CellLibrary("tiny", cells)
        n = GateNetlist("maj")
        a = n.add_input("a")
        b = n.add_input("b")
        (m,) = n.add_gate("MAJ3", [a, b, C1])  # = a | b, inexpressible here
        (y,) = n.add_gate("NAND2", [m, C1])  # = ~m, inexpressible (no INV)
        n.mark_output(y)
        optimized = optimize(n, level=2, library=library).netlist
        assert check_equivalence(n, optimized, library=library)
        assert gates_by_cell(optimized) == {"MAJ3": 1, "NAND2": 1}


# --------------------------------------------------------------------------- #
# Pass-manager mechanics
# --------------------------------------------------------------------------- #
class TestPassManager:
    def test_level_zero_is_identity(self):
        raw = build_constant_multiplier_netlist(11, 4)
        result = optimize(raw, level=0)
        assert result.netlist is raw
        assert result.stats.gates_removed == 0
        assert result.stats.iterations == 0

    def test_levels_above_max_clamp(self):
        raw = build_constant_multiplier_netlist(11, 4)
        assert optimize(raw, level=99).stats.level == 2

    def test_negative_level_rejected(self):
        with pytest.raises(ValueError):
            optimize(build_ripple_adder_netlist(2), level=-1)

    def test_results_are_cached_per_structure_and_level(self):
        raw = build_constant_multiplier_netlist(11, 4)
        assert optimize(raw, level=2) is optimize(raw, level=2)
        assert optimize(raw, level=1) is not optimize(raw, level=2)

    def test_cache_invalidated_by_structural_mutation(self):
        raw = build_constant_multiplier_netlist(11, 4)
        first = optimize(raw, level=2)
        (extra,) = raw.add_gate("INV", [raw.inputs[0]])
        raw.mark_output(extra)
        second = optimize(raw, level=2)
        assert second is not first
        assert second.netlist.outputs[-1] == extra

    def test_mutating_the_returned_netlist_does_not_poison_the_cache(self):
        raw = build_constant_multiplier_netlist(11, 4)
        first = optimize(raw, level=2)
        expected_outputs = list(first.netlist.outputs)
        # A caller growing the shared result must not leak into later calls.
        (extra,) = first.netlist.add_gate("INV", [first.netlist.inputs[0]])
        first.netlist.mark_output(extra)
        second = optimize(raw, level=2)
        assert second is not first
        assert second.netlist.outputs == expected_outputs
        assert check_equivalence(raw, second.netlist)

    def test_stats_are_consistent(self):
        raw = build_constant_mac_netlist([0, 1, 2, 5], 3)
        stats = optimize(raw, level=2).stats
        assert isinstance(stats, OptStats)
        assert stats.gates_before == raw.n_gates()
        assert stats.gates_removed == stats.gates_before - stats.gates_after
        assert 0.0 < stats.reduction_percent <= 100.0
        assert stats.iterations >= 1
        assert set(stats.removed_per_pass) == {
            "const_prop", "buffer_collapse", "structural_hash", "dead_gate",
        }
        doc = stats.to_dict()
        assert doc["gates_removed"] == stats.gates_removed

    def test_result_unpacks_like_a_tuple(self):
        raw = build_ripple_adder_netlist(3)
        netlist, stats = optimize(raw, level=2)
        assert netlist.outputs == raw.outputs
        assert stats.gates_before == raw.n_gates()

    def test_raw_netlist_is_never_mutated(self):
        raw = build_constant_mac_netlist([5, 3], 3)
        before_gates = raw.n_gates()
        before_sig = raw.structural_signature()
        optimize(raw, level=2, verify=True)
        assert raw.n_gates() == before_gates
        assert raw.structural_signature() == before_sig


# --------------------------------------------------------------------------- #
# Downstream lowerings: block / area / power / timing / verilog
# --------------------------------------------------------------------------- #
class TestLowerings:
    def test_netlist_to_block_counts_match_optimized_netlist(self):
        raw = build_constant_mac_netlist([0, 1, 2, 5, 8, 11], 4)
        optimized = optimize(raw, level=2).netlist
        block_raw = netlist_to_block(raw)
        block_opt = netlist_to_block(raw, level=2)
        assert block_raw.n_cells() == raw.n_gates()
        assert block_opt.n_cells() == optimized.n_gates()
        assert block_opt.n_cells() < block_raw.n_cells()

    def test_to_block_still_works_and_matches_lowering(self):
        raw = build_ripple_adder_netlist(5)
        assert raw.to_block().n_cells() == netlist_to_block(raw).n_cells()
        assert raw.to_block().logic_depth() == netlist_to_block(raw).logic_depth()

    def test_optimized_area_and_power_shrink(self):
        raw = build_constant_mac_netlist([0, 1, 2, 5, 8, 11], 4)
        area_raw = analyze_netlist_area(raw)
        area_opt = analyze_netlist_area(raw, opt_level=2)
        assert area_opt.total_cm2 < area_raw.total_cm2
        power_raw = analyze_netlist_power(raw, frequency_hz=10.0)
        power_opt = analyze_netlist_power(raw, frequency_hz=10.0, opt_level=2)
        assert power_opt.total_mw < power_raw.total_mw

    def test_optimized_timing_is_no_worse(self):
        raw = build_constant_mac_netlist([0, 1, 2, 5, 8, 11], 4)
        t_raw = analyze_netlist_timing(raw)
        t_opt = analyze_netlist_timing(raw, opt_level=2)
        assert t_opt.critical_path_ms <= t_raw.critical_path_ms + 1e-9
        assert t_opt.frequency_hz >= t_raw.frequency_hz - 1e-9

    def test_verilog_export_of_optimized_netlist(self):
        raw = build_constant_multiplier_netlist(11, 4)
        text_raw = netlist_to_verilog(raw)
        text_opt = netlist_to_verilog(raw, opt_level=2)
        assert text_opt.count("assign") < text_raw.count("assign")
        # The module interface is identical at every level.
        head_raw = text_raw.split(");")[0]
        head_opt = text_opt.split(");")[0]
        assert head_raw.splitlines()[2:] == head_opt.splitlines()[2:]

    def test_compile_opt_level_produces_fewer_ops(self):
        from repro.perf.compile import compile_netlist

        raw = build_constant_mac_netlist([0, 1, 2, 5, 8, 11], 4)
        program_raw = compile_netlist(raw)
        program_opt = compile_netlist(raw, opt_level=2)
        assert program_opt.n_ops < program_raw.n_ops
        rng = np.random.default_rng(3)
        vectors = rng.integers(0, 2, size=(128, len(raw.inputs)))
        assert np.array_equal(
            simulate_netlist_batch(raw, vectors),
            simulate_netlist_batch(raw, vectors, opt_level=2),
        )
