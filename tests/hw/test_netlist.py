"""Tests for HardwareBlock composition and explicit GateNetlists."""

import pytest

from repro.hw.netlist import (
    GateNetlist,
    HardwareBlock,
    empty_block,
    parallel,
    series,
)
from repro.hw.pdk import EGFET_PDK


def block(name, fa=0, mux=0, dff=0, path_fa=0):
    counts = {}
    if fa:
        counts["FA"] = fa
    if mux:
        counts["MUX2"] = mux
    if dff:
        counts["DFF"] = dff
    path = {"FA": path_fa} if path_fa else {}
    toggles = {cell: 0.5 * n for cell, n in counts.items()}
    return HardwareBlock(name, counts=counts, path=path, toggles=toggles)


class TestHardwareBlock:
    def test_cell_count_and_area(self):
        b = block("b", fa=10, mux=5)
        assert b.n_cells() == 15
        expected_area = 10 * EGFET_PDK["FA"].area_cm2 + 5 * EGFET_PDK["MUX2"].area_cm2
        assert b.area_cm2(EGFET_PDK) == pytest.approx(expected_area)

    def test_static_power_positive(self):
        b = block("b", fa=4, dff=2)
        assert b.static_power_mw(EGFET_PDK) > 0

    def test_series_composition_adds_paths(self):
        a = block("a", fa=3, path_fa=3)
        b = block("b", fa=5, path_fa=5)
        combined = series("ab", [a, b])
        assert combined.n_cells() == 8
        assert combined.logic_depth() == 8
        assert combined.critical_path_delay_ms(EGFET_PDK) == pytest.approx(
            a.critical_path_delay_ms(EGFET_PDK) + b.critical_path_delay_ms(EGFET_PDK),
            rel=1e-6,
        )

    def test_parallel_composition_takes_worst_path(self):
        a = block("a", fa=3, path_fa=3)
        b = block("b", fa=9, path_fa=9)
        combined = parallel("ab", [a, b])
        assert combined.n_cells() == 12
        assert combined.logic_depth() == 9

    def test_toggles_accumulate(self):
        a = block("a", fa=4)
        b = block("b", fa=6)
        combined = parallel("ab", [a, b])
        assert combined.toggles["FA"] == pytest.approx(5.0)

    def test_scaled_replicates_counts_not_path(self):
        a = block("a", fa=4, path_fa=4)
        scaled = a.scaled(5)
        assert scaled.n_cells() == 20
        assert scaled.logic_depth() == 4
        assert scaled.toggles["FA"] == pytest.approx(4 * 0.5 * 5)

    def test_scaled_invalid_factor_rejected(self):
        with pytest.raises(ValueError):
            block("a", fa=1).scaled(0)

    def test_empty_block_is_neutral(self):
        a = block("a", fa=3, path_fa=3)
        combined = series("x", [empty_block(), a])
        assert combined.n_cells() == a.n_cells()
        assert combined.logic_depth() == a.logic_depth()

    def test_children_recorded_and_reported(self):
        a = block("storage", mux=4)
        b = block("engine", fa=8, path_fa=8)
        combined = series("design", [a, b])
        assert [child.name for child in combined.children] == ["storage", "engine"]
        report = combined.hierarchy_report(EGFET_PDK)
        assert "storage" in report and "engine" in report

    def test_cell_report_sorted(self):
        b = block("b", fa=2, mux=1)
        assert list(b.cell_report().keys()) == sorted(b.cell_report().keys())


class TestGateNetlist:
    def test_build_and_count(self):
        net = GateNetlist("toy")
        a, b = net.add_input("a"), net.add_input("b")
        (y,) = net.add_gate("AND2", [a, b])
        net.mark_output(y)
        assert net.n_gates() == 1
        assert net.cell_counts()["AND2"] == 1
        assert y in net.nets()

    def test_bus_inputs(self):
        net = GateNetlist("bus")
        nets = net.add_inputs("x", 4)
        assert nets == ["x[0]", "x[1]", "x[2]", "x[3]"]

    def test_reading_undriven_net_rejected(self):
        net = GateNetlist("bad")
        net.add_input("a")
        with pytest.raises(ValueError):
            net.add_gate("AND2", ["a", "ghost"])

    def test_double_driving_rejected(self):
        net = GateNetlist("bad")
        a = net.add_input("a")
        net.add_gate("INV", [a], outputs=["n1"])
        with pytest.raises(ValueError):
            net.add_gate("INV", [a], outputs=["n1"])

    def test_duplicate_input_rejected(self):
        net = GateNetlist("bad")
        net.add_input("a")
        with pytest.raises(ValueError):
            net.add_input("a")

    def test_constants_always_available(self):
        net = GateNetlist("const")
        (y,) = net.add_gate("OR2", [GateNetlist.CONST_ZERO, GateNetlist.CONST_ONE])
        net.mark_output(y)
        assert net.n_gates() == 1

    def test_marking_undriven_output_rejected(self):
        net = GateNetlist("bad")
        with pytest.raises(ValueError):
            net.mark_output("nowhere")

    def test_fanout_and_driver_queries(self):
        net = GateNetlist("fan")
        a = net.add_input("a")
        (n1,) = net.add_gate("INV", [a], outputs=["n1"])
        net.add_gate("AND2", [n1, a], outputs=["n2"])
        net.add_gate("OR2", [n1, a], outputs=["n3"])
        assert net.fanout_of(n1) == 2
        assert net.driver_of(n1).cell == "INV"
        assert net.driver_of(a) is None

    def test_ha_fa_have_two_outputs(self):
        net = GateNetlist("adders")
        a, b = net.add_input("a"), net.add_input("b")
        outs = net.add_gate("HA", [a, b])
        assert len(outs) == 2

    def test_to_block_matches_counts(self):
        net = GateNetlist("toy")
        a, b = net.add_input("a"), net.add_input("b")
        (n1,) = net.add_gate("AND2", [a, b])
        (n2,) = net.add_gate("INV", [n1])
        net.mark_output(n2)
        blk = net.to_block()
        assert blk.n_cells() == 2
        assert blk.logic_depth() == 2
