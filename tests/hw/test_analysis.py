"""Tests for timing, power, area and activity analysis."""

import pytest

from repro.hw.activity import (
    DATAPATH_BASE_ACTIVITY,
    control_toggles,
    datapath_toggles,
    glitch_factor,
    register_toggles,
    scale_toggles,
    storage_toggles,
)
from repro.hw.area import TYPICAL_PRINTED_AREA_LIMIT_CM2, AreaAnalyzer, analyze_area
from repro.hw.netlist import HardwareBlock, series
from repro.hw.pdk import EGFET_PDK, PDKParameters, build_printed_library
from repro.hw.power import PowerAnalyzer, analyze_power
from repro.hw.rtl.adders import adder_tree, ripple_carry_adder
from repro.hw.rtl.multipliers import array_multiplier
from repro.hw.timing import TimingAnalyzer, analyze_timing, longest_path_cells
from repro.hw.rtl.adders import build_ripple_adder_netlist


class TestActivityModel:
    def test_glitch_factor_monotone(self):
        factors = [glitch_factor(d) for d in range(0, 200, 10)]
        assert factors == sorted(factors)
        assert glitch_factor(0) == pytest.approx(1.0)

    def test_glitch_factor_saturates(self):
        assert glitch_factor(10_000) == glitch_factor(100_000)

    def test_negative_depth_rejected(self):
        with pytest.raises(ValueError):
            glitch_factor(-1)

    def test_datapath_toggles_scale_with_depth(self):
        counts = {"FA": 100}
        shallow = datapath_toggles(counts, depth_levels=5)
        deep = datapath_toggles(counts, depth_levels=100)
        assert deep["FA"] > shallow["FA"]

    def test_storage_activity_much_lower_than_datapath(self):
        counts = {"MUX2": 100}
        storage = storage_toggles(counts)
        datapath = datapath_toggles(counts, depth_levels=30)
        assert storage["MUX2"] < datapath["MUX2"]

    def test_register_and_control_toggles_positive(self):
        assert register_toggles({"DFF": 4})["DFF"] > 0
        assert control_toggles({"DFF": 2, "HA": 2})["HA"] > 0

    def test_scale_toggles(self):
        toggles = {"FA": 10.0}
        assert scale_toggles(toggles, 0.5)["FA"] == pytest.approx(5.0)
        with pytest.raises(ValueError):
            scale_toggles(toggles, -1.0)


class TestTiming:
    def test_longer_path_means_lower_frequency(self):
        fast = ripple_carry_adder(4)
        slow = series("slow", [ripple_carry_adder(16), ripple_carry_adder(16)])
        t_fast = analyze_timing(fast)
        t_slow = analyze_timing(slow)
        assert t_slow.frequency_hz < t_fast.frequency_hz

    def test_hz_range_frequencies(self):
        """Printed classifiers operate at Hz-range frequencies (paper setup)."""
        block = series("datapath", [array_multiplier(4, 6), adder_tree(21, 10)])
        report = analyze_timing(block)
        assert 1.0 <= report.frequency_hz <= 200.0

    def test_sequential_designs_pay_register_overhead(self):
        block = ripple_carry_adder(8)
        seq = analyze_timing(block, sequential=True)
        comb = analyze_timing(block, sequential=False)
        assert seq.clock_period_ms > comb.clock_period_ms

    def test_external_constraint_limits_frequency(self):
        block = ripple_carry_adder(4)
        report = TimingAnalyzer().analyze(block, min_period_ms=1000.0)
        assert report.frequency_hz == pytest.approx(1.0)
        assert report.limited_by == "external-constraint"

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            TimingAnalyzer().analyze(HardwareBlock("empty"), sequential=False)

    def test_area_dependent_wire_delay_slows_large_designs(self):
        small = ripple_carry_adder(16)
        # Same critical path, but duplicated many times in parallel: much more
        # area, so the printed-wire RC penalty must reduce the frequency.
        large = small.scaled(400, name="large")
        large.path = dict(small.path)
        f_small = analyze_timing(small).frequency_hz
        f_large = analyze_timing(HardwareBlock("large", counts=large.counts, path=small.path, toggles=large.toggles)).frequency_hz
        assert f_large < f_small

    def test_longest_path_extraction_on_netlist(self):
        netlist = build_ripple_adder_netlist(6)
        path = longest_path_cells(netlist)
        # The worst path must ripple through (almost) every adder position.
        assert sum(path.values()) >= 5

    def test_report_string_contains_frequency(self):
        report = analyze_timing(ripple_carry_adder(8))
        assert "Hz" in str(report)


class TestPower:
    def test_power_breakdown_positive(self):
        block = array_multiplier(4, 6)
        report = analyze_power(block, frequency_hz=30.0)
        assert report.static_mw > 0
        assert report.dynamic_mw > 0
        assert report.total_mw == pytest.approx(report.static_mw + report.dynamic_mw)

    def test_dynamic_power_scales_with_frequency(self):
        block = array_multiplier(4, 6)
        slow = analyze_power(block, frequency_hz=10.0)
        fast = analyze_power(block, frequency_hz=40.0)
        assert fast.dynamic_mw == pytest.approx(4 * slow.dynamic_mw)
        assert fast.static_mw == pytest.approx(slow.static_mw)

    def test_latency_and_energy(self):
        block = array_multiplier(4, 6)
        report = analyze_power(block, frequency_hz=20.0, cycles_per_classification=5)
        assert report.latency_ms == pytest.approx(250.0)
        assert report.energy_per_classification_mj == pytest.approx(
            report.total_mw * 0.25
        )

    def test_duty_cycle_reduces_dynamic_power(self):
        block = array_multiplier(4, 6)
        always_on = PowerAnalyzer().analyze(block, 30.0, duty_cycle=1.0)
        sometimes = PowerAnalyzer().analyze(block, 30.0, duty_cycle=0.1)
        assert sometimes.dynamic_mw < always_on.dynamic_mw

    def test_invalid_arguments_rejected(self):
        block = array_multiplier(4, 6)
        with pytest.raises(ValueError):
            analyze_power(block, frequency_hz=0.0)
        with pytest.raises(ValueError):
            analyze_power(block, frequency_hz=10.0, cycles_per_classification=0)
        with pytest.raises(ValueError):
            PowerAnalyzer().analyze(block, 10.0, duty_cycle=0.0)

    def test_bigger_block_burns_more_static_power(self):
        small = array_multiplier(4, 4)
        big = array_multiplier(8, 8)
        assert (
            analyze_power(big, 30.0).static_mw > analyze_power(small, 30.0).static_mw
        )


class TestArea:
    def test_area_report_totals(self):
        storage = HardwareBlock("storage", counts={"MUX2": 50}, toggles={})
        engine = array_multiplier(4, 6, name="engine")
        design = series("design", [storage, engine])
        report = analyze_area(design)
        assert report.total_cm2 == pytest.approx(
            storage.area_cm2(EGFET_PDK) + engine.area_cm2(EGFET_PDK)
        )
        assert set(report.breakdown_cm2) == {"storage", "engine"}
        assert report.n_cells == design.n_cells()

    def test_within_typical_printed_limit(self):
        small = array_multiplier(4, 6)
        report = analyze_area(small)
        assert report.within_limit
        assert 0 < report.utilization < 1

    def test_custom_limit(self):
        block = array_multiplier(8, 8)
        report = AreaAnalyzer(limit_cm2=0.001).analyze(block)
        assert not report.within_limit

    def test_default_limit_value(self):
        assert TYPICAL_PRINTED_AREA_LIMIT_CM2 == pytest.approx(100.0)

    def test_custom_library_scales_area(self):
        params = PDKParameters(nand2_area_cm2=0.006)
        big_lib = build_printed_library(params)
        block = array_multiplier(4, 6)
        assert AreaAnalyzer(library=big_lib).analyze(block).total_cm2 > analyze_area(block).total_cm2
