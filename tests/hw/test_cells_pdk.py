"""Tests for the cell library and the printed PDK."""

import pytest

from repro.hw.cells import GENERIC_CELL_SET, CellLibrary, CellType
from repro.hw.pdk import (
    DEFAULT_PDK_PARAMETERS,
    EGFET_PDK,
    MOLEX_30MW,
    PRINTED_BATTERIES,
    PDKParameters,
    PrintedBattery,
    build_printed_library,
    gate_equivalents,
)


class TestCellType:
    def test_evaluate_inverter(self):
        inv = EGFET_PDK["INV"]
        assert inv.evaluate([0]) == (1,)
        assert inv.evaluate([1]) == (0,)

    def test_evaluate_full_adder_truth_table(self):
        fa = EGFET_PDK["FA"]
        for a in (0, 1):
            for b in (0, 1):
                for c in (0, 1):
                    s, carry = fa.evaluate([a, b, c])
                    assert s + 2 * carry == a + b + c

    def test_evaluate_half_adder(self):
        ha = EGFET_PDK["HA"]
        for a in (0, 1):
            for b in (0, 1):
                s, carry = ha.evaluate([a, b])
                assert s + 2 * carry == a + b

    def test_evaluate_mux(self):
        mux = EGFET_PDK["MUX2"]
        assert mux.evaluate([1, 0, 0]) == (1,)
        assert mux.evaluate([1, 0, 1]) == (0,)

    def test_wrong_input_count_rejected(self):
        with pytest.raises(ValueError):
            EGFET_PDK["NAND2"].evaluate([1])

    def test_invalid_cell_definition_rejected(self):
        with pytest.raises(ValueError):
            CellType(
                name="BAD",
                n_inputs=1,
                n_outputs=1,
                area_cm2=-1.0,
                static_power_mw=0.0,
                switch_energy_mj=0.0,
                delay_ms=0.0,
            )


class TestCellLibrary:
    def test_all_generic_cells_present(self):
        for name in GENERIC_CELL_SET:
            assert name in EGFET_PDK

    def test_unknown_cell_raises(self):
        with pytest.raises(KeyError):
            EGFET_PDK["NAND17"]

    def test_duplicate_cell_rejected(self):
        cell = EGFET_PDK["INV"]
        with pytest.raises(ValueError):
            CellLibrary("dup", [cell, cell])

    def test_area_of_counts(self):
        area = EGFET_PDK.area_of({"NAND2": 10, "FA": 2})
        expected = 10 * EGFET_PDK["NAND2"].area_cm2 + 2 * EGFET_PDK["FA"].area_cm2
        assert area == pytest.approx(expected)

    def test_static_power_clock_overhead_applies_to_sequential_cells(self):
        p_dff = EGFET_PDK.static_power_of({"DFF": 1})
        assert p_dff > EGFET_PDK["DFF"].static_power_mw

    def test_delay_of_path(self):
        delay = EGFET_PDK.delay_of_path({"FA": 3, "MUX2": 1})
        raw = 3 * EGFET_PDK["FA"].delay_ms + EGFET_PDK["MUX2"].delay_ms
        assert delay >= raw

    def test_switch_energy_of(self):
        energy = EGFET_PDK.switch_energy_of({"FA": 2.5})
        assert energy == pytest.approx(2.5 * EGFET_PDK["FA"].switch_energy_mj)


class TestPrintedPDK:
    def test_printed_scale_characteristics(self):
        """Printed gates are cm^2-fraction sized, mW-fraction powered, ms slow."""
        nand = EGFET_PDK["NAND2"]
        assert 1e-4 < nand.area_cm2 < 0.1
        assert 1e-4 < nand.static_power_mw < 0.1
        assert 0.01 < nand.delay_ms < 5.0

    def test_adc_is_by_far_the_largest_cell(self):
        adc_area = EGFET_PDK["ADC1"].area_cm2
        others = [EGFET_PDK[name].area_cm2 for name in GENERIC_CELL_SET if name != "ADC1"]
        assert adc_area > 3 * max(others)

    def test_full_adder_larger_than_nand(self):
        assert EGFET_PDK["FA"].area_cm2 > 4 * EGFET_PDK["NAND2"].area_cm2

    def test_custom_parameters_scale_library(self):
        params = PDKParameters(nand2_area_cm2=DEFAULT_PDK_PARAMETERS.nand2_area_cm2 * 2)
        lib = build_printed_library(params, name="EGFET-2x")
        assert lib["NAND2"].area_cm2 == pytest.approx(2 * EGFET_PDK["NAND2"].area_cm2)

    def test_gate_equivalents(self):
        assert gate_equivalents("NAND2") == 1.0
        assert gate_equivalents("FA") > 1.0
        with pytest.raises(KeyError):
            gate_equivalents("XYZ")


class TestPrintedBatteries:
    def test_molex_budget_is_30mw(self):
        assert MOLEX_30MW.max_power_mw == pytest.approx(30.0)

    def test_can_power(self):
        assert MOLEX_30MW.can_power(22.9)
        assert not MOLEX_30MW.can_power(57.4)

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            MOLEX_30MW.can_power(-1.0)

    def test_lifetime(self):
        battery = PrintedBattery("test", max_power_mw=30.0, capacity_mwh=90.0)
        assert battery.lifetime_hours(15.0) == pytest.approx(6.0)
        assert battery.lifetime_hours(0.0) == float("inf")

    def test_lifetime_exceeding_budget_rejected(self):
        with pytest.raises(ValueError):
            MOLEX_30MW.lifetime_hours(100.0)

    def test_harvester_has_unbounded_lifetime(self):
        harvester = PrintedBattery("solar", max_power_mw=5.0, capacity_mwh=None)
        assert harvester.lifetime_hours(3.0) == float("inf")
        assert harvester.classifications_per_charge(1.0) == float("inf")

    def test_classifications_per_charge(self):
        battery = PrintedBattery("test", max_power_mw=30.0, capacity_mwh=1.0)
        # 1 mWh = 3600 mJ, at 2 mJ per classification -> 1800 classifications.
        assert battery.classifications_per_charge(2.0) == pytest.approx(1800.0)
        with pytest.raises(ValueError):
            battery.classifications_per_charge(0.0)

    def test_registry_contains_molex(self):
        assert MOLEX_30MW in PRINTED_BATTERIES
