"""Tests for printed floorplanning, yield and unit-cost models."""

import math

import pytest

from repro.hw.floorplan import (
    DEFAULT_MAX_WIDTH_CM,
    Floorplanner,
    compare_manufacturability,
    cost_per_working_unit,
    fabrication_yield,
)
from repro.hw.netlist import HardwareBlock, series
from repro.hw.pdk import EGFET_PDK
from repro.hw.rtl.multipliers import array_multiplier


def make_design():
    storage = HardwareBlock("storage", counts={"MUX2": 400}, toggles={})
    engine = array_multiplier(4, 6, name="engine").scaled(20, name="engine")
    voter = HardwareBlock("voter", counts={"DFF": 20, "XNOR2": 16}, toggles={})
    return series("design", [storage, engine, voter])


class TestFloorplanner:
    def test_places_every_block(self):
        plan = Floorplanner().floorplan(make_design())
        names = {p.name for p in plan.placed}
        assert {"storage", "engine", "voter"} <= names

    def test_bounding_box_covers_cell_area(self):
        plan = Floorplanner().floorplan(make_design())
        assert plan.bounding_area_cm2 >= plan.cell_area_cm2
        assert 0.0 < plan.utilization <= 1.0

    def test_respects_web_width(self):
        plan = Floorplanner(max_width_cm=5.0).floorplan(make_design())
        assert plan.width_cm <= 5.0 + 1e-9
        for block in plan.placed:
            assert block.width_cm <= 5.0 + 1e-9

    def test_narrower_web_gives_taller_floorplan(self):
        wide = Floorplanner(max_width_cm=DEFAULT_MAX_WIDTH_CM).floorplan(make_design())
        narrow = Floorplanner(max_width_cm=3.0).floorplan(make_design())
        assert narrow.height_cm >= wide.height_cm

    def test_fits_check(self):
        plan = Floorplanner(max_width_cm=8.0).floorplan(make_design())
        assert plan.fits(100.0, 100.0)
        assert not plan.fits(0.1, 0.1)
        # Rotation is allowed.
        assert plan.fits(plan.height_cm, plan.width_cm)

    def test_wire_length_positive_for_multi_block_designs(self):
        plan = Floorplanner().floorplan(make_design())
        assert plan.estimated_wire_length_cm() > 0.0

    def test_empty_design(self):
        plan = Floorplanner().floorplan(HardwareBlock("empty"))
        assert plan.bounding_area_cm2 == 0.0
        assert plan.estimated_wire_length_cm() == 0.0

    def test_summary_mentions_blocks(self):
        plan = Floorplanner().floorplan(make_design())
        text = plan.summary()
        assert "storage" in text and "engine" in text

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            Floorplanner(max_width_cm=0.0)

    def test_sequential_design_floorplan(self, sequential_design):
        plan = Floorplanner().floorplan(sequential_design.hardware())
        assert plan.bounding_area_cm2 >= sequential_design.hardware().area_cm2(EGFET_PDK)


class TestYieldAndCost:
    def test_yield_decreases_with_area(self):
        areas = [1.0, 10.0, 50.0, 150.0]
        yields = [fabrication_yield(a) for a in areas]
        assert yields == sorted(yields, reverse=True)
        assert all(0.0 < y <= 1.0 for y in yields)

    def test_zero_area_yields_one(self):
        assert fabrication_yield(0.0) == 1.0

    def test_poisson_below_murphy(self):
        # Murphy's clustered-defect model is always more optimistic.
        assert fabrication_yield(50.0, model="poisson") <= fabrication_yield(50.0, model="murphy")

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            fabrication_yield(1.0, model="weibull")
        with pytest.raises(ValueError):
            fabrication_yield(-1.0)

    def test_cost_per_working_unit_superlinear_in_area(self):
        small = cost_per_working_unit(10.0)
        large = cost_per_working_unit(100.0)
        assert large > 10 * small * 0.99  # at least ~linear, in practice worse

    def test_compare_manufacturability(self):
        table = compare_manufacturability({"ours": 13.0, "svm2": 244.0})
        assert table["ours"]["yield"] > table["svm2"]["yield"]
        assert table["ours"]["cost_per_working_unit"] < table["svm2"]["cost_per_working_unit"]
        assert math.isclose(table["ours"]["area_cm2"], 13.0)
