"""End-to-end integration tests across the whole stack.

These tests run the complete pipeline (synthetic dataset -> training ->
quantization -> circuit generation -> hardware analysis -> cycle-accurate
simulation) on reduced dataset sizes, and check the cross-cutting invariants
that individual unit tests cannot see.
"""

import numpy as np
import pytest

from repro.core.design_flow import FlowConfig, run_dataset_comparison, run_flow
from repro.datasets import available_datasets
from repro.eval.battery import assess_design
from repro.eval.pareto import accuracy_energy_points, is_on_front
from repro.hw.pdk import MOLEX_30MW


CONFIG = FlowConfig(n_samples=300, svm_max_iter=25, mlp_max_epochs=30, mlp_hidden_neurons=4)


@pytest.fixture(scope="module", params=["cardio", "redwine"])
def comparison(request):
    """Full four-model comparison on two structurally different datasets."""
    return request.param, run_dataset_comparison(request.param, config=CONFIG)


class TestEndToEndPipeline:
    def test_every_dataset_runs_the_proposed_flow(self):
        for dataset in available_datasets():
            result = run_flow(dataset, "ours", CONFIG)
            assert result.report.energy_mj > 0
            assert result.report.accuracy_percent > 30.0

    def test_cycles_equal_class_count(self):
        expected_classes = {
            "cardio": 3,
            "dermatology": 6,
            "pendigits": 10,
            "redwine": 6,
            "whitewine": 7,
        }
        for dataset, classes in expected_classes.items():
            result = run_flow(dataset, "ours", CONFIG)
            assert result.report.cycles_per_classification == classes

    def test_hardware_simulation_bitexact_for_all_datasets(self):
        for dataset in available_datasets():
            result = run_flow(dataset, "ours", CONFIG)
            X_test = result.split.X_test[:40]
            assert result.design.verify_against_model(X_test)

    def test_report_internal_consistency(self, comparison):
        _, results = comparison
        for result in results:
            r = result.report
            assert r.latency_ms == pytest.approx(
                1000.0 * r.cycles_per_classification / r.frequency_hz, rel=1e-6
            )
            assert r.energy_mj == pytest.approx(r.power_mw * r.latency_ms / 1000.0, rel=1e-6)
            assert r.power_mw == pytest.approx(r.static_power_mw + r.dynamic_power_mw, rel=1e-6)


class TestPaperShape:
    def test_proposed_design_wins_energy(self, comparison):
        dataset, results = comparison
        by_kind = {r.kind: r.report for r in results}
        ours = by_kind["ours"]
        for kind in ("svm_parallel_exact", "svm_parallel_approx"):
            assert ours.energy_mj < by_kind[kind].energy_mj, (
                f"sequential SVM should beat {kind} on energy for {dataset}"
            )

    def test_proposed_design_fits_printed_battery_baselines_mostly_do_not(self, comparison):
        _, results = comparison
        by_kind = {r.kind: r.report for r in results}
        assert assess_design(by_kind["ours"], MOLEX_30MW).feasible
        infeasible_baselines = sum(
            1
            for kind in ("svm_parallel_exact", "svm_parallel_approx", "mlp_parallel")
            if not assess_design(by_kind[kind], MOLEX_30MW).feasible
        )
        assert infeasible_baselines >= 2

    def test_proposed_design_clock_is_faster_but_latency_longer(self, comparison):
        """Sequential designs trade a shorter critical path (higher clock) for
        multi-cycle latency — exactly the Table I pattern."""
        _, results = comparison
        by_kind = {r.kind: r.report for r in results}
        ours = by_kind["ours"]
        exact = by_kind["svm_parallel_exact"]
        assert ours.frequency_hz > exact.frequency_hz
        assert ours.latency_ms > 0.5 * exact.latency_ms

    def test_proposed_design_on_accuracy_energy_pareto_front(self, comparison):
        _, results = comparison
        points = accuracy_energy_points([r.report for r in results])
        ours_point = next(p for p in points if "Ours" in p.label or "ours" in p.label)
        assert is_on_front(ours_point, points)

    def test_sequential_area_smaller_than_parallel_for_many_classes(self):
        """Folding pays off most when the class count is large (PenDigits)."""
        ours = run_flow("pendigits", "ours", CONFIG).report
        exact = run_flow("pendigits", "svm_parallel_exact", CONFIG).report
        assert ours.area_cm2 < exact.area_cm2 / 3


class TestRobustnessAcrossSeeds:
    @pytest.mark.parametrize("seed", [11, 29])
    def test_shape_holds_for_other_dataset_seeds(self, seed):
        config = FlowConfig(
            n_samples=300,
            svm_max_iter=25,
            mlp_max_epochs=30,
            dataset_seed=seed,
            mlp_hidden_neurons=4,
        )
        ours = run_flow("redwine", "ours", config).report
        exact = run_flow("redwine", "svm_parallel_exact", config).report
        assert ours.energy_mj < exact.energy_mj
        assert ours.power_mw < 30.0
