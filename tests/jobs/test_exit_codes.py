"""One exit-code contract across the maintenance CLIs (satellite 4).

``bench_simulation --compare``, ``bench_serving --compare`` and every
``repro-jobs`` subcommand share :mod:`repro.core.benchcompare`'s contract:
exit 0 on success, exit 2 on bad input — reported as a *single* clear line
on stderr, never a traceback.
"""

import json

import pytest

from repro.cli import main_jobs
from repro.core.benchcompare import EXIT_BAD_INPUT, EXIT_OK, bad_input_exit
from repro.core.design_flow import FlowConfig
from repro.jobs import JobManifest, JobSpec


def _one_stderr_line(capsys):
    err = capsys.readouterr().err
    lines = [line for line in err.splitlines() if line]
    assert len(lines) == 1, f"expected exactly one stderr line, got: {err!r}"
    return lines[0]


def test_bad_input_exit_helper(capsys):
    assert EXIT_OK == 0
    assert bad_input_exit("some-tool", ValueError("what went wrong")) == 2
    line = _one_stderr_line(capsys)
    assert line == "some-tool: what went wrong"


class TestBenchCompare:
    def test_bench_simulation_missing_baseline_exits_2(self, tmp_path, capsys):
        from repro.perf.benchmark import main

        rc = main(["--compare", "--baseline", str(tmp_path / "nope.json")])
        assert rc == EXIT_BAD_INPUT
        line = _one_stderr_line(capsys)
        assert line.startswith("bench_simulation --compare: baseline ")

    def test_bench_serving_malformed_baseline_exits_2(self, tmp_path, capsys):
        from repro.serve.bench import main

        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        rc = main(["--compare", "--baseline", str(bad)])
        assert rc == EXIT_BAD_INPUT
        line = _one_stderr_line(capsys)
        assert line.startswith("bench_serving --compare: baseline ")


class TestJobsCli:
    def test_status_missing_manifest_exits_2(self, tmp_path, capsys):
        rc = main_jobs(["status", "--dir", str(tmp_path / "nowhere")])
        assert rc == EXIT_BAD_INPUT
        line = _one_stderr_line(capsys)
        assert line.startswith("repro-jobs status: ")
        assert "no job manifest" in line

    def test_resume_missing_manifest_exits_2(self, tmp_path, capsys):
        rc = main_jobs(["resume", "--dir", str(tmp_path / "nowhere")])
        assert rc == EXIT_BAD_INPUT
        line = _one_stderr_line(capsys)
        assert line.startswith("repro-jobs resume: ")

    def test_query_missing_store_exits_2(self, tmp_path, capsys):
        rc = main_jobs(["query", "--dir", str(tmp_path / "nowhere")])
        assert rc == EXIT_BAD_INPUT
        line = _one_stderr_line(capsys)
        assert line.startswith("repro-jobs query: ")
        assert "no result store" in line

    def test_status_corrupt_manifest_exits_2(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        (run_dir / "manifest.jsonl").write_text("garbage\n{}\n")
        rc = main_jobs(["status", "--dir", str(run_dir)])
        assert rc == EXIT_BAD_INPUT
        line = _one_stderr_line(capsys)
        assert line.startswith("repro-jobs status: ")

    def test_status_valid_manifest_exits_0(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        with JobManifest(run_dir / "manifest.jsonl") as manifest:
            manifest.submit(JobSpec("redwine", "ours", FlowConfig()))
        rc = main_jobs(["status", "--dir", str(run_dir)])
        assert rc == EXIT_OK
        captured = capsys.readouterr()
        assert captured.err == ""
        assert "redwine/ours" in captured.out

    def test_query_valid_store_exits_0(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        record = {
            "id": "aa",
            "dataset": "redwine",
            "kind": "ours",
            "row": {"accuracy_percent": 80.0},
            "weight_bits_used": 6,
        }
        (run_dir / "results.jsonl").write_text(json.dumps(record) + "\n")
        rc = main_jobs(["query", "--dir", str(run_dir), "--dataset", "redwine"])
        assert rc == EXIT_OK
        captured = capsys.readouterr()
        assert captured.err == ""
        assert '"id": "aa"' in captured.out


def test_contract_is_shared():
    """The jobs CLI and the bench CLIs literally share one helper/constants."""
    import repro.perf.benchmark as bench_sim
    import repro.serve.bench as bench_srv
    from repro.core import benchcompare

    assert bench_sim.bad_input_exit is benchcompare.bad_input_exit
    assert bench_srv.bad_input_exit is benchcompare.bad_input_exit
