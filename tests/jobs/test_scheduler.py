"""Scheduler tests: dispatch, cache fast paths, and injected chaos.

Every fault here is injected deterministically through the scheduler's
``connection_wrapper`` seam by :mod:`jobs.chaos` — worker SIGKILL, torn
frames, delayed heartbeats — and each test asserts both the recovery
outcome (the job still completes, or fails for the right reason) and that
the fault actually fired (``plan.fired``).
"""

import pytest
from jobs.chaos import ChaosPlan

from repro.core.design_flow import FlowConfig, clear_flow_cache, run_flow
from repro.jobs import (
    DONE,
    FAILED,
    JobManifest,
    JobScheduler,
    JobSpec,
    ResultStore,
    SOURCE_CACHE,
    SOURCE_TRAINED,
    submit_grid,
)

@pytest.fixture()
def run_dir(tmp_path):
    return tmp_path


def _pair(run_dir):
    manifest = JobManifest(run_dir / "manifest.jsonl")
    store = ResultStore(run_dir / "results.jsonl")
    return manifest, store


def _scheduler(manifest, store, **kwargs):
    kwargs.setdefault("cache", False)
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("job_timeout_s", 120.0)
    kwargs.setdefault("heartbeat_timeout_s", 30.0)
    kwargs.setdefault("retry_backoff_s", 0.01)
    return JobScheduler(manifest, store, **kwargs)


class TestSubmitGrid:
    def test_grid_order_and_idempotence(self, run_dir, tiny_flow_config):
        manifest, _ = _pair(run_dir)
        ids = submit_grid(
            manifest, ["redwine", "cardio"], ["ours", "mlp_parallel"],
            tiny_flow_config,
        )
        assert len(ids) == 4
        assert len(set(ids)) == 4
        assert ids[0] == JobSpec("redwine", "ours", tiny_flow_config).job_id
        # Resubmission after a crash is a journal no-op.
        again = submit_grid(
            manifest, ["redwine", "cardio"], ["ours", "mlp_parallel"],
            tiny_flow_config,
        )
        assert again == ids
        assert manifest.counts()["pending"] == 4
        assert len(manifest.path.read_text().splitlines()) == 4


class TestCacheFastPath:
    def test_in_process_cache_hit_skips_workers(self, run_dir, tiny_flow_config):
        result = run_flow("redwine", "mlp_parallel", tiny_flow_config)
        manifest, store = _pair(run_dir)
        job_id = manifest.submit(JobSpec("redwine", "mlp_parallel", tiny_flow_config))
        summary = _scheduler(manifest, store).run()
        assert summary.completed == 1
        assert summary.cache_hits == 1
        assert summary.trained == 0
        assert summary.workers_replaced == 0
        assert manifest.state.jobs[job_id].state == DONE
        assert manifest.state.jobs[job_id].source == SOURCE_CACHE
        record = store.get(job_id)
        assert record["row"] == result.report.as_row()

    def test_store_record_closes_crash_window(self, run_dir, tiny_flow_config):
        """A store record with no `done` line (died between the appends)."""
        clear_flow_cache()
        manifest, store = _pair(run_dir)
        job_id = manifest.submit(JobSpec("redwine", "ours", tiny_flow_config))
        store.append({"id": job_id, "dataset": "redwine", "kind": "ours"})
        summary = _scheduler(manifest, store).run()
        assert summary.cache_hits == 1
        assert summary.trained == 0
        assert manifest.state.jobs[job_id].state == DONE
        assert manifest.state.jobs[job_id].source == SOURCE_CACHE

    def test_empty_manifest_is_a_noop(self, run_dir):
        manifest, store = _pair(run_dir)
        summary = _scheduler(manifest, store).run()
        assert summary.completed == 0
        assert summary.failed == 0
        assert summary.manifest_counts["pending"] == 0


class TestChaos:
    def test_worker_sigkill_retries_to_done(self, run_dir, tiny_flow_config):
        """Connection 0's worker is SIGKILLed on the job send (send 2)."""
        clear_flow_cache()
        plan = ChaosPlan(faults={0: {"kill_on_send": 2}})
        manifest, store = _pair(run_dir)
        job_id = manifest.submit(JobSpec("redwine", "mlp_parallel", tiny_flow_config))
        summary = _scheduler(
            manifest, store, connection_wrapper=plan.wrapper()
        ).run()
        assert ("kill_on_send", 0, 2) in plan.fired
        assert summary.completed == 1
        assert summary.trained == 1
        assert summary.retries == 1
        assert summary.workers_replaced >= 1
        record = manifest.state.jobs[job_id]
        assert record.state == DONE
        assert record.attempts == 2
        assert record.source == SOURCE_TRAINED
        assert job_id in store

    def test_torn_frame_retries_to_done(self, run_dir, tiny_flow_config):
        """Connection 0 tears the job-response frame (recv 2)."""
        clear_flow_cache()
        plan = ChaosPlan(faults={0: {"tear_on_recv": 2}})
        manifest, store = _pair(run_dir)
        job_id = manifest.submit(JobSpec("redwine", "mlp_parallel", tiny_flow_config))
        summary = _scheduler(
            manifest, store, connection_wrapper=plan.wrapper()
        ).run()
        assert ("tear_on_recv", 0, 2) in plan.fired
        assert summary.completed == 1
        assert summary.retries == 1
        record = manifest.state.jobs[job_id]
        assert record.state == DONE
        assert record.attempts == 2
        assert "torn" in (record.error or "") or record.error is None

    def test_delayed_heartbeat_replaces_worker_without_charging(
        self, run_dir, tiny_flow_config
    ):
        """Connection 0's first pong arrives after the heartbeat deadline."""
        clear_flow_cache()
        plan = ChaosPlan(faults={0: {"delay_on_recv": 1}})
        manifest, store = _pair(run_dir)
        job_id = manifest.submit(JobSpec("redwine", "mlp_parallel", tiny_flow_config))
        summary = _scheduler(
            manifest,
            store,
            connection_wrapper=plan.wrapper(),
            heartbeat_timeout_s=0.2,
        ).run()
        assert ("delay_on_recv", 0, 1) in plan.fired
        assert summary.workers_replaced == 1
        assert summary.retries == 0  # the job was never charged an attempt
        record = manifest.state.jobs[job_id]
        assert record.state == DONE
        assert record.attempts == 1

    def test_worker_reported_error_fails_without_retry(
        self, run_dir, tiny_flow_config
    ):
        """A deterministic bad spec is permanent: no retries, no worker kill."""
        clear_flow_cache()
        manifest, store = _pair(run_dir)
        job_id = manifest.submit(JobSpec("nope", "ours", tiny_flow_config))
        summary = _scheduler(manifest, store).run()
        assert summary.failed == 1
        assert summary.retries == 0
        assert summary.workers_replaced == 0
        record = manifest.state.jobs[job_id]
        assert record.state == FAILED
        assert record.attempts == 1
        assert record.error
        assert len(store) == 0

    def test_retry_budget_exhaustion_fails_with_reason(
        self, run_dir, tiny_flow_config
    ):
        """Every worker dies on its job send; the budget runs out."""
        clear_flow_cache()
        plan = ChaosPlan(default_faults={"kill_on_send": 2})
        manifest, store = _pair(run_dir)
        job_id = manifest.submit(JobSpec("redwine", "mlp_parallel", tiny_flow_config))
        summary = _scheduler(
            manifest, store, connection_wrapper=plan.wrapper(), max_retries=1
        ).run()
        kills = [f for f in plan.fired if f[0] == "kill_on_send"]
        assert len(kills) == 2  # attempts = max_retries + 1
        assert summary.failed == 1
        assert summary.retries == 1
        assert summary.trained == 0
        record = manifest.state.jobs[job_id]
        assert record.state == FAILED
        assert record.attempts == 2
        assert "retry budget exhausted" in record.error
        assert len(store) == 0

    def test_backoff_sleeps_are_capped(self, run_dir, tiny_flow_config):
        """Retry backoff grows exponentially but never exceeds the cap."""
        clear_flow_cache()
        plan = ChaosPlan(default_faults={"kill_on_send": 2})
        manifest, store = _pair(run_dir)
        manifest.submit(JobSpec("redwine", "mlp_parallel", tiny_flow_config))
        sleeps = []
        _scheduler(
            manifest,
            store,
            connection_wrapper=plan.wrapper(),
            max_retries=4,
            retry_backoff_s=0.004,
            max_backoff_s=0.01,
            sleep=sleeps.append,
        ).run()
        assert len(sleeps) == 4
        assert sleeps[0] == pytest.approx(0.004)
        assert sleeps[1] == pytest.approx(0.008)
        assert all(s <= 0.01 for s in sleeps)


class TestEndToEnd:
    def test_grid_drains_and_resume_is_all_cache_hits(
        self, run_dir, tiny_flow_config
    ):
        """A trained grid, then a fresh manifest resume: zero retraining."""
        clear_flow_cache()
        manifest, store = _pair(run_dir)
        ids = submit_grid(manifest, ["redwine"], ["ours", "mlp_parallel"],
                          tiny_flow_config)
        summary = _scheduler(manifest, store, workers=2).run()
        assert summary.completed == 2
        assert summary.failed == 0
        assert summary.manifest_counts["done"] == 2
        assert all(job_id in store for job_id in ids)
        first_bytes = store.canonical_bytes()

        # Re-running the same drain on the same durable pair is a no-op.
        summary2 = _scheduler(manifest, store, workers=2).run()
        assert summary2.completed == 0
        assert store.canonical_bytes() == first_bytes
