"""The PR's acceptance test: SIGKILL a mid-grid scheduler, resume exactly.

A 3x2 flow grid is drained by a scheduler that (a) has one worker SIGKILLed
by the seeded chaos plan and (b) is itself SIGKILLed after its third
completion.  A fresh scheduler then resumes from the manifest and must
produce a result store *bit-identical* to an uninterrupted reference run —
and a third pass over the warm flow cache must retrain nothing (the PR 2
zero-retraining probe).

The chaos point is seeded: ``REPRO_CHAOS_SEED`` (CI varies it) selects
which send kills the first worker, and the seed is printed so any failure
reproduces exactly.
"""

import multiprocessing
import os
import signal

from jobs.chaos import seeded_kill_plan

from repro.core.design_flow import clear_flow_cache, training_run_count
from repro.core.flow_executor import FlowResultCache
from repro.jobs import (
    JobManifest,
    JobScheduler,
    ResultStore,
    run_jobs,
    submit_grid,
)

DATASETS = ["redwine", "cardio", "whitewine"]
KINDS = ["ours", "mlp_parallel"]
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))
#: SIGKILL the scheduler once this many jobs have completed (of 6).
KILL_AFTER_DONE = 3


def _chaos_scheduler_main(run_dir, cache_dir, config, seed):
    """Child process: drain the grid under chaos, dying mid-grid.

    Connection 0's worker is SIGKILLed at a seed-chosen send, and the
    scheduler SIGKILLs *itself* (the hardest possible death: no cleanup, no
    flush beyond what each append already did) after its third completion.
    """
    plan, kill_send = seeded_kill_plan(seed, max_send=2)
    print(f"chaos seed {seed}: kill worker connection 0 on send {kill_send}")
    dones = []

    def progress(event, record):
        if event == "done":
            dones.append(record.job_id)
            if len(dones) >= KILL_AFTER_DONE:
                os.kill(os.getpid(), signal.SIGKILL)

    manifest = JobManifest(run_dir / "manifest.jsonl")
    submit_grid(manifest, DATASETS, KINDS, config)
    store = ResultStore(run_dir / "results.jsonl")
    JobScheduler(
        manifest,
        store,
        cache=FlowResultCache(cache_dir),
        workers=2,
        job_timeout_s=300.0,
        retry_backoff_s=0.01,
        connection_wrapper=plan.wrapper(),
        progress=progress,
    ).run()


def test_sigkilled_grid_resumes_bit_identical(tmp_path, tiny_flow_config):
    print(f"REPRO_CHAOS_SEED={CHAOS_SEED}")

    # ---- Reference: the same grid, uninterrupted, in its own cache. ------ #
    clear_flow_cache()
    dir_a = tmp_path / "reference"
    dir_a.mkdir()
    manifest_a = JobManifest(dir_a / "manifest.jsonl")
    submit_grid(manifest_a, DATASETS, KINDS, tiny_flow_config)
    store_a = ResultStore(dir_a / "results.jsonl")
    summary_a = JobScheduler(
        manifest_a,
        store_a,
        cache=FlowResultCache(tmp_path / "cache-a"),
        workers=2,
        retry_backoff_s=0.01,
    ).run()
    assert summary_a.completed == 6
    assert summary_a.failed == 0
    reference_bytes = store_a.canonical_bytes()
    manifest_a.close(), store_a.close()

    # ---- Chaos run: worker SIGKILL + scheduler SIGKILL mid-grid. --------- #
    clear_flow_cache()  # the fork must not inherit warm in-process results
    dir_b = tmp_path / "interrupted"
    dir_b.mkdir()
    cache_b = tmp_path / "cache-b"
    child = multiprocessing.get_context("fork").Process(
        target=_chaos_scheduler_main,
        args=(dir_b, cache_b, tiny_flow_config, CHAOS_SEED),
    )
    child.start()
    child.join(timeout=300)
    assert not child.is_alive(), "chaos scheduler failed to die"
    assert child.exitcode == -signal.SIGKILL  # it died by SIGKILL, mid-grid

    interrupted = JobManifest(dir_b / "manifest.jsonl").reload()
    done_before = len(interrupted.by_state("done"))
    assert done_before >= KILL_AFTER_DONE  # it really was mid-grid...
    assert done_before < len(DATASETS) * len(KINDS)  # ...not finished

    # ---- Resume from the manifest with a fresh scheduler. ---------------- #
    clear_flow_cache()
    summary_resumed = run_jobs(
        dir_b / "manifest.jsonl",
        dir_b / "results.jsonl",
        cache=FlowResultCache(cache_b),
        workers=2,
        retry_backoff_s=0.01,
    )
    assert summary_resumed.failed == 0
    assert summary_resumed.manifest_counts["done"] == 6
    assert summary_resumed.manifest_counts["pending"] == 0

    store_b = ResultStore(dir_b / "results.jsonl")
    assert store_b.canonical_bytes() == reference_bytes
    # Compacted files are bit-identical too.
    store_b.compact()
    ResultStore(dir_a / "results.jsonl").compact()
    assert (dir_b / "results.jsonl").read_bytes() == (
        dir_a / "results.jsonl"
    ).read_bytes()

    # ---- Zero retraining: a fresh grid over the warm cache. -------------- #
    clear_flow_cache()
    dir_c = tmp_path / "warm"
    dir_c.mkdir()
    manifest_c = JobManifest(dir_c / "manifest.jsonl")
    submit_grid(manifest_c, DATASETS, KINDS, tiny_flow_config)
    store_c = ResultStore(dir_c / "results.jsonl")
    trainings_before = training_run_count()
    summary_c = JobScheduler(
        manifest_c,
        store_c,
        cache=FlowResultCache(cache_b),
        workers=2,
        retry_backoff_s=0.01,
    ).run()
    assert summary_c.completed == 6
    assert summary_c.cache_hits == 6  # every job answered by the cache
    assert summary_c.trained == 0  # no worker ever dispatched
    assert training_run_count() == trainings_before  # PR 2 probe: no training
    assert store_c.canonical_bytes() == reference_bytes
