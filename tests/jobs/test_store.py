"""Result-store tests: append/dedupe, querying, canonical bytes, crashes."""

import json

import pytest

from repro.jobs import ResultStore, StoreError


def _record(job_id, dataset="redwine", kind="ours", accuracy=80.0, bits=6):
    return {
        "id": job_id,
        "dataset": dataset,
        "kind": kind,
        "row": {"accuracy_percent": accuracy, "energy_mj": 1.5},
        "float_accuracy_percent": accuracy + 1.0,
        "weight_bits_used": bits,
        "cycles_per_classification": 12,
    }


class TestAppendAndLoad:
    def test_append_persists_one_canonical_line(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        store.append(_record("aa"))
        store.close()
        text = (tmp_path / "r.jsonl").read_text()
        assert text.endswith("\n")
        (line,) = text.splitlines()
        assert json.loads(line)["id"] == "aa"
        # Canonical formatting: sorted keys, no spaces.
        assert line == json.dumps(json.loads(line), sort_keys=True, separators=(",", ":"))

    def test_duplicate_append_is_idempotent(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        store.append(_record("aa"))
        store.append(_record("aa", accuracy=99.0))  # resume replay: ignored
        assert len(store) == 1
        assert store.get("aa")["row"]["accuracy_percent"] == 80.0
        store.close()
        assert len((tmp_path / "r.jsonl").read_text().splitlines()) == 1

    def test_record_without_id_is_rejected(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        with pytest.raises(ValueError):
            store.append({"dataset": "redwine"})

    def test_reload_roundtrip(self, tmp_path):
        with ResultStore(tmp_path / "r.jsonl") as store:
            store.append(_record("bb"))
            store.append(_record("aa"))
        twin = ResultStore(tmp_path / "r.jsonl")
        assert len(twin) == 2
        assert "aa" in twin and "bb" in twin
        assert [r["id"] for r in twin.records()] == ["aa", "bb"]

    def test_torn_final_line_is_discarded(self, tmp_path):
        path = tmp_path / "r.jsonl"
        with ResultStore(path) as store:
            store.append(_record("aa"))
        with path.open("a") as handle:
            handle.write('{"id": "bb", "dataset": "car')  # no newline: torn
        twin = ResultStore(path)
        assert len(twin) == 1
        assert "bb" not in twin

    def test_mid_file_corruption_is_fatal(self, tmp_path):
        path = tmp_path / "r.jsonl"
        with ResultStore(path) as store:
            store.append(_record("aa"))
        path.write_text("garbage\n" + path.read_text())
        with pytest.raises(StoreError):
            ResultStore(path)

    def test_non_record_line_is_fatal(self, tmp_path):
        path = tmp_path / "r.jsonl"
        path.write_text('{"dataset": "redwine"}\n{"id": "aa"}\n')
        with pytest.raises(StoreError):
            ResultStore(path)


class TestQuery:
    @pytest.fixture()
    def store(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        store.append(_record("a1", "redwine", "ours", accuracy=85.0, bits=6))
        store.append(_record("a2", "redwine", "mlp_parallel", accuracy=70.0, bits=4))
        store.append(_record("a3", "cardio", "ours", accuracy=90.0, bits=6))
        return store

    def test_filters_compose(self, store):
        assert [r["id"] for r in store.query(dataset="redwine")] == ["a1", "a2"]
        assert [r["id"] for r in store.query(kind="ours")] == ["a1", "a3"]
        assert [r["id"] for r in store.query(dataset="redwine", kind="ours")] == ["a1"]
        assert store.query(dataset="redwine", kind="svm_parallel_exact") == []

    def test_precision_and_accuracy_filters(self, store):
        assert [r["id"] for r in store.query(weight_bits_used=4)] == ["a2"]
        assert [r["id"] for r in store.query(min_accuracy_percent=84.0)] == ["a1", "a3"]

    def test_no_filters_returns_all_in_id_order(self, store):
        assert [r["id"] for r in store.query()] == ["a1", "a2", "a3"]


class TestCanonicalBytes:
    def test_order_independent(self, tmp_path):
        a = ResultStore(tmp_path / "a.jsonl")
        b = ResultStore(tmp_path / "b.jsonl")
        records = [_record("x1"), _record("x2", "cardio"), _record("x3", "pendigits")]
        for record in records:
            a.append(record)
        for record in reversed(records):
            b.append(record)
        assert a.canonical_bytes() == b.canonical_bytes()
        # On-disk order differs until compaction...
        a.close(), b.close()
        assert (tmp_path / "a.jsonl").read_bytes() != (tmp_path / "b.jsonl").read_bytes()
        # ...after which the files themselves are bit-identical.
        a.compact(), b.compact()
        assert (tmp_path / "a.jsonl").read_bytes() == (tmp_path / "b.jsonl").read_bytes()
        assert (tmp_path / "a.jsonl").read_bytes() == a.canonical_bytes()

    def test_compact_collapses_resume_duplicates(self, tmp_path):
        path = tmp_path / "r.jsonl"
        line = json.dumps(_record("aa"), sort_keys=True, separators=(",", ":"))
        path.write_text(line + "\n" + line + "\n")  # crash-window duplicate
        store = ResultStore(path)
        assert len(store) == 1
        store.compact()
        assert path.read_text() == line + "\n"

    def test_append_after_compact_reopens(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        store.append(_record("aa"))
        store.compact()
        store.append(_record("bb"))
        store.close()
        assert len(ResultStore(tmp_path / "r.jsonl")) == 2
