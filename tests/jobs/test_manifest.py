"""Manifest journal tests: round trips, crash truncation, replay (PR 9).

The hypothesis properties are the PR's satellite 1: *arbitrary*
interleavings of journal appends, crash-truncations and reloads must
converge to one consistent pending set, with a torn final line discarded —
never fatal.
"""

import json
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.design_flow import FlowConfig
from repro.jobs import (
    DONE,
    FAILED,
    JOB_STATES,
    PENDING,
    RUNNING,
    JobManifest,
    JobSpec,
    ManifestError,
    job_content_key,
    replay_journal,
)

CONFIG = FlowConfig()

SPEC_POOL = [
    JobSpec("redwine", "ours", CONFIG),
    JobSpec("cardio", "ours", CONFIG),
    JobSpec("pendigits", "mlp_parallel", CONFIG),
]


# --------------------------------------------------------------------------- #
# Deterministic unit tests
# --------------------------------------------------------------------------- #
class TestJournalBasics:
    def test_job_id_is_content_keyed(self):
        spec = SPEC_POOL[0]
        assert spec.job_id == job_content_key("redwine", "ours", CONFIG)
        assert len(spec.job_id) == 16
        # A config change changes the identity; a duplicate spec does not.
        other = JobSpec("redwine", "ours", FlowConfig(n_samples=123))
        assert other.job_id != spec.job_id
        assert JobSpec("redwine", "ours", FlowConfig()).job_id == spec.job_id

    def test_submit_roundtrip_and_duplicate_noop(self, tmp_path):
        manifest = JobManifest(tmp_path / "m.jsonl")
        job_id = manifest.submit(SPEC_POOL[0])
        assert manifest.submit(SPEC_POOL[0]) == job_id
        reloaded = JobManifest(manifest.path)
        assert list(reloaded.state.jobs) == [job_id]
        record = reloaded.state.jobs[job_id]
        assert record.state == PENDING
        assert record.spec == SPEC_POOL[0]
        # The journal holds exactly one submit line.
        lines = manifest.path.read_text().splitlines()
        assert len(lines) == 1

    def test_full_lifecycle_replays(self, tmp_path):
        manifest = JobManifest(tmp_path / "m.jsonl")
        a = manifest.submit(SPEC_POOL[0])
        b = manifest.submit(SPEC_POOL[1])
        manifest.start(a, attempt=1)
        manifest.retry(a, attempt=1, error="worker crashed")
        manifest.start(a, attempt=2)
        manifest.done(a, source="trained")
        manifest.start(b, attempt=1)
        manifest.failed(b, error="bad dataset")
        state = JobManifest(manifest.path).state
        assert state.jobs[a].state == DONE
        assert state.jobs[a].attempts == 2
        assert state.jobs[a].source == "trained"
        assert state.jobs[b].state == FAILED
        assert "bad dataset" in state.jobs[b].error

    def test_torn_final_line_is_discarded_not_fatal(self, tmp_path):
        manifest = JobManifest(tmp_path / "m.jsonl")
        a = manifest.submit(SPEC_POOL[0])
        manifest.close()
        with manifest.path.open("a") as handle:
            handle.write('{"event": "done", "id": "' + a)  # no newline: torn
        state = replay_journal(manifest.path.read_text())
        assert state.discarded_torn_tail
        assert state.jobs[a].state == PENDING
        # And the manifest class itself loads it the same way.
        assert JobManifest(manifest.path).state.jobs[a].state == PENDING

    def test_mid_file_corruption_is_fatal(self, tmp_path):
        manifest = JobManifest(tmp_path / "m.jsonl")
        manifest.submit(SPEC_POOL[0])
        manifest.close()
        text = manifest.path.read_text()
        manifest.path.write_text("NOT JSON\n" + text)
        with pytest.raises(ManifestError):
            JobManifest(manifest.path)

    def test_event_for_unknown_job_is_fatal(self):
        with pytest.raises(ManifestError):
            replay_journal('{"event": "done", "id": "feedbeef", "source": "cache"}\n')

    def test_edited_submit_id_is_fatal(self, tmp_path):
        doc = {"event": "submit", "id": "0" * 16, "job": SPEC_POOL[0].to_json()}
        with pytest.raises(ManifestError):
            replay_journal(json.dumps(doc) + "\n")

    def test_unknown_events_are_skipped(self, tmp_path):
        manifest = JobManifest(tmp_path / "m.jsonl")
        a = manifest.submit(SPEC_POOL[0])
        manifest.close()
        with manifest.path.open("a") as handle:
            handle.write(json.dumps({"event": "lease", "id": a}) + "\n")
        assert JobManifest(manifest.path).state.jobs[a].state == PENDING

    def test_reload_normalises_running_to_pending(self, tmp_path):
        manifest = JobManifest(tmp_path / "m.jsonl")
        a = manifest.submit(SPEC_POOL[0])
        manifest.start(a, attempt=1)
        assert manifest.state.jobs[a].state == RUNNING
        state = manifest.reload()
        assert state.jobs[a].state == PENDING
        assert manifest.pending_ids() == [a]

    def test_mid_write_death_leaves_resumable_journal(self, tmp_path):
        """A scheduler SIGKILLed halfway through a journal write."""
        manifest = JobManifest(tmp_path / "m.jsonl")
        a = manifest.submit(SPEC_POOL[0])
        b = manifest.submit(SPEC_POOL[1])
        manifest.start(a, attempt=1)
        manifest.close()
        # Die mid-write of the `done` line: half the bytes, no newline.
        line = json.dumps({"event": "done", "id": a, "source": "trained"})
        with manifest.path.open("a") as handle:
            handle.write(line[: len(line) // 2])
        resumed = JobManifest(manifest.path)
        assert resumed.state.discarded_torn_tail
        state = resumed.reload()
        # The half-written `done` never happened; both jobs are owed work.
        assert state.jobs[a].state == PENDING
        assert state.jobs[b].state == PENDING
        assert set(resumed.pending_ids()) == {a, b}


# --------------------------------------------------------------------------- #
# Property-based round trips (satellite 1)
# --------------------------------------------------------------------------- #
#: One journal op: (op_kind, spec_or_job_selector).
_OPS = st.lists(
    st.tuples(
        st.sampled_from(["submit", "start", "retry", "done", "failed"]),
        st.integers(min_value=0, max_value=7),
    ),
    max_size=30,
)


def _apply_ops(manifest: JobManifest, ops) -> None:
    """Drive a manifest through an arbitrary (always-legal) op sequence."""
    submitted = []
    for op, selector in ops:
        if op == "submit":
            submitted.append(manifest.submit(SPEC_POOL[selector % len(SPEC_POOL)]))
            continue
        if not submitted:
            continue
        job_id = submitted[selector % len(submitted)]
        attempts = manifest.state.jobs[job_id].attempts
        if op == "start":
            manifest.start(job_id, attempt=attempts + 1)
        elif op == "retry":
            manifest.retry(job_id, attempt=attempts, error="chaos")
        elif op == "done":
            manifest.done(job_id, source="trained" if selector % 2 else "cache")
        elif op == "failed":
            manifest.failed(job_id, error="chaos")


@settings(max_examples=60, deadline=None)
@given(ops=_OPS)
def test_property_journal_roundtrip(ops):
    """Replay-from-disk always equals the live in-memory state."""
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "m.jsonl"
        manifest = JobManifest(path)
        _apply_ops(manifest, ops)
        manifest.close()
        replayed = JobManifest(path).state
        live = manifest.state
        assert set(replayed.jobs) == set(live.jobs)
        for job_id, record in live.jobs.items():
            twin = replayed.jobs[job_id]
            assert twin.state == record.state
            assert twin.attempts == record.attempts
            assert twin.source == record.source
            assert twin.spec == record.spec


@settings(max_examples=60, deadline=None)
@given(ops=_OPS, cut=st.integers(min_value=0, max_value=10_000))
def test_property_crash_truncation_never_fatal(ops, cut):
    """Any prefix of a valid journal replays: only the tail can be torn."""
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "m.jsonl"
        manifest = JobManifest(path)
        _apply_ops(manifest, ops)
        manifest.close()
        text = path.read_text() if path.is_file() else ""
        prefix = text[: cut % (len(text) + 1)]
        state = replay_journal(prefix)  # must never raise
        # The torn-tail flag is exact: set iff bytes follow the last newline.
        newline_end = prefix.rfind("\n") + 1
        assert state.discarded_torn_tail == (len(prefix) > newline_end)
        # Replaying the complete lines alone gives the identical state.
        clean = replay_journal(prefix[:newline_end])
        assert set(state.jobs) == set(clean.jobs)
        for job_id in state.jobs:
            assert state.jobs[job_id].state == clean.jobs[job_id].state
            assert state.jobs[job_id].attempts == clean.jobs[job_id].attempts


@settings(max_examples=60, deadline=None)
@given(ops=_OPS, cut=st.integers(min_value=0, max_value=10_000))
def test_property_truncate_reload_converges(ops, cut):
    """Crash-truncate + reload always yields a consistent pending set."""
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "m.jsonl"
        manifest = JobManifest(path)
        _apply_ops(manifest, ops)
        manifest.close()
        text = path.read_text() if path.is_file() else ""
        path.write_text(text[: cut % (len(text) + 1)])
        resumed = JobManifest(path)
        state = resumed.reload()
        for record in state.jobs.values():
            assert record.state in JOB_STATES
            assert record.state != RUNNING  # normalised for resume
            assert record.attempts >= 0
            if record.state == DONE:
                assert record.source in ("trained", "cache")
        # pending set = everything submitted minus the terminal states.
        terminal = {
            job_id
            for job_id, record in state.jobs.items()
            if record.state in (DONE, FAILED)
        }
        assert set(resumed.pending_ids()) == set(state.jobs) - terminal
