"""Seeded, deterministic fault injection for the jobs test suite.

The scheduler takes a ``connection_wrapper`` seam: every freshly spawned
worker's :class:`~repro.serve.transport.FrameConnection` is passed through
it before use.  :class:`ChaosPlan` builds :class:`FaultyConnection`
wrappers from that seam and injects the failure modes the PR's robustness
claims rest on:

* **worker SIGKILL** — ``kill_on_send=N`` kills the worker process right
  before that connection's Nth send (the scheduler sees a broken pipe or
  EOF, i.e. a real crash);
* **torn frames** — ``tear_on_recv=N`` raises
  :class:`~repro.serve.transport.TransportError` on the Nth receive (a
  peer that died mid-frame);
* **delayed heartbeats** — ``delay_on_recv=N`` makes the Nth frame arrive
  *after* the caller's deadline: the frame is received and dropped, and the
  connection keeps listening, so the scheduler's heartbeat timeout trips
  exactly as it would for a real late pong (optionally preceded by a
  ``delay_recv_s`` sleep).

Faults are addressed *per connection* in spawn order (connection 0 is the
first worker spawned, replacements increment the index), each fault fires
at a deterministic per-connection operation count, and every firing is
recorded in :attr:`ChaosPlan.fired` so tests can assert the fault actually
happened.  Mid-write scheduler death is injected elsewhere (monkeypatching
``JobManifest._write_line`` / SIGKILLing the scheduler process) — it is a
journal-layer fault, not a transport one.

Example::

    plan = ChaosPlan(faults={0: {"kill_on_send": 2}})
    scheduler = JobScheduler(manifest, store,
                             connection_wrapper=plan.wrapper(), ...)
    scheduler.run()
    assert ("kill_on_send", 0, 2) in plan.fired
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.serve.transport import FrameConnection, TransportError

#: Recognised per-connection fault keys.
FAULT_KEYS = ("kill_on_send", "tear_on_recv", "delay_on_recv", "delay_recv_s")


class FaultyConnection:
    """A :class:`FrameConnection` wrapper that injects one plan's faults.

    Delegates everything to the wrapped connection; faults fire on this
    connection's own 1-based send/recv counters, exactly once each.
    """

    def __init__(
        self,
        plan: "ChaosPlan",
        index: int,
        faults: Dict,
        conn: FrameConnection,
        process,
    ) -> None:
        self._plan = plan
        self._index = index
        self._faults = dict(faults)
        self._conn = conn
        self._process = process
        self._sends = 0
        self._recvs = 0

    # -- passthrough ----------------------------------------------------- #
    @property
    def fileno(self) -> int:
        return self._conn.fileno

    def set_timeout(self, timeout) -> None:
        self._conn.set_timeout(timeout)

    def close(self) -> None:
        self._conn.close()

    # -- faulted operations ---------------------------------------------- #
    def send(self, kind: int, obj) -> None:
        self._sends += 1
        if self._faults.get("kill_on_send") == self._sends:
            # SIGKILL the worker and wait for the kernel to close its end,
            # so this very send observes a real crash (EPIPE/ECONNRESET),
            # not a race.
            self._process.kill()
            self._process.join(timeout=10.0)
            self._plan.record("kill_on_send", self._index, self._sends)
        self._conn.send(kind, obj)

    def recv(self):
        self._recvs += 1
        if self._faults.get("tear_on_recv") == self._recvs:
            self._plan.record("tear_on_recv", self._index, self._recvs)
            raise TransportError("chaos: frame torn by fault injection")
        if self._faults.get("delay_on_recv") == self._recvs:
            # A frame that arrives after the deadline: consume and drop it,
            # then keep listening — the caller's socket timeout fires just
            # as it would for a genuinely late pong.
            self._plan.record("delay_on_recv", self._index, self._recvs)
            time.sleep(float(self._faults.get("delay_recv_s", 0.0)))
            self._conn.recv()
            return self._conn.recv()
        return self._conn.recv()


@dataclass
class ChaosPlan:
    """A deterministic fault schedule over a scheduler run's connections.

    ``faults`` maps a connection index (spawn order, replacements counted)
    to that connection's fault dict; ``default_faults`` applies to every
    connection without an explicit entry (e.g. kill every worker's first
    job send to exhaust a retry budget).

    Example::

        plan = ChaosPlan(default_faults={"kill_on_send": 2})
        JobScheduler(..., connection_wrapper=plan.wrapper()).run()
    """

    faults: Dict[int, Dict] = field(default_factory=dict)
    default_faults: Dict = field(default_factory=dict)
    #: Every fault that fired: (fault_key, connection_index, op_count).
    fired: List[Tuple[str, int, int]] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    _connections: int = 0

    def wrapper(self):
        """The ``connection_wrapper`` callable the scheduler consumes."""

        def wrap(conn: FrameConnection, process) -> FaultyConnection:
            with self._lock:
                index = self._connections
                self._connections += 1
            faults = self.faults.get(index, self.default_faults)
            return FaultyConnection(self, index, faults, conn, process)

        return wrap

    def record(self, key: str, index: int, count: int) -> None:
        with self._lock:
            self.fired.append((key, index, count))


def seeded_kill_plan(seed: int, max_send: int = 2) -> Tuple[ChaosPlan, int]:
    """A worker-SIGKILL plan whose kill point is derived from ``seed``.

    Used by the CI chaos step: ``REPRO_CHAOS_SEED`` varies the kill point
    within the range every correct scheduler must survive, and the seed is
    printed by the test so a failure reproduces exactly.

    Example::

        plan, kill_send = seeded_kill_plan(seed=7)
        print(f"chaos seed 7 -> kill connection 0 on send {kill_send}")
    """
    rng = random.Random(seed)
    kill_send = rng.randint(1, max_send)
    return ChaosPlan(faults={0: {"kill_on_send": kill_send}}), kill_send
