"""CLI ``--opt-level`` knob: optimized-vs-raw gate counts in the reports."""

import pytest

from repro.cli import main_flow, main_table1

FAST_ARGS = ["--fast", "--samples", "220", "--no-cache"]


class TestTable1OptLevel:
    def test_opt_level_section_is_printed(self, capsys):
        exit_code = main_table1(
            ["--datasets", "redwine", "--opt-level", "2"] + FAST_ARGS
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Constant-MAC datapath netlists" in out
        assert "gates raw ->" in out
        assert "% removed" in out

    def test_opt_level_zero_reports_raw_counts(self, capsys):
        exit_code = main_table1(
            ["--datasets", "redwine", "--opt-level", "0"] + FAST_ARGS
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "pass pipeline level 0" in out
        assert "  0.0% removed" in out  # raw report: nothing optimized away

    def test_without_opt_level_no_section(self, capsys):
        exit_code = main_table1(["--datasets", "redwine"] + FAST_ARGS)
        assert exit_code == 0
        assert "Constant-MAC datapath netlists" not in capsys.readouterr().out

    def test_invalid_opt_level_rejected(self):
        with pytest.raises(SystemExit):
            main_table1(["--datasets", "redwine", "--opt-level", "7"] + FAST_ARGS)


class TestFlowOptLevel:
    def test_flow_reports_gate_reduction(self, capsys):
        exit_code = main_flow(["redwine", "ours", "--opt-level", "2"] + FAST_ARGS)
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "netlist optimization:" in out
        assert "gates raw ->" in out

    def test_flow_mlp_has_no_linear_datapath(self, capsys):
        exit_code = main_flow(
            ["redwine", "mlp_parallel", "--opt-level", "1"] + FAST_ARGS
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "no hardwired linear datapath" in out
