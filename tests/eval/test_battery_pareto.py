"""Tests for battery feasibility analysis and Pareto utilities."""

import pytest

from repro.core.report import ClassifierHardwareReport
from repro.eval.battery import (
    assess_design,
    assess_many,
    battery_life_extension,
    best_battery_for,
    feasible_designs,
)
from repro.eval.pareto import (
    TradeoffPoint,
    accuracy_area_points,
    accuracy_energy_points,
    dominance_count,
    hypervolume_2d,
    is_on_front,
    pareto_front,
)
from repro.hw.pdk import BLUESPARK_10MW, MOLEX_30MW, PRINTED_BATTERIES, ZINERGY_15MW


def report(dataset="cardio", model="ours", accuracy=93.0, area=15.0, power=15.0, energy=1.5):
    return ClassifierHardwareReport(
        dataset=dataset,
        model=model,
        accuracy_percent=accuracy,
        area_cm2=area,
        power_mw=power,
        frequency_hz=38.0,
        latency_ms=energy / power * 1000.0,
        energy_mj=energy,
    )


class TestBatteryAssessment:
    def test_feasible_design(self):
        assessment = assess_design(report(power=15.0), MOLEX_30MW)
        assert assessment.feasible
        assert assessment.lifetime_hours == pytest.approx(90.0 / 15.0)
        assert assessment.classifications_per_charge > 0

    def test_infeasible_design(self):
        assessment = assess_design(report(power=57.4), MOLEX_30MW)
        assert not assessment.feasible
        assert assessment.lifetime_hours is None

    def test_duty_cycle_extends_lifetime(self):
        always_on = assess_design(report(power=20.0), MOLEX_30MW, duty_cycle=1.0)
        intermittent = assess_design(report(power=20.0), MOLEX_30MW, duty_cycle=0.1)
        assert intermittent.lifetime_hours > always_on.lifetime_hours

    def test_invalid_duty_cycle_rejected(self):
        with pytest.raises(ValueError):
            assess_design(report(), MOLEX_30MW, duty_cycle=0.0)

    def test_assess_many_and_feasible_filter(self):
        rows = [report(power=10.0), report(dataset="pd", power=90.0)]
        assessments = assess_many(rows)
        assert len(assessments) == 2
        assert len(feasible_designs(rows)) == 1

    def test_battery_life_extension_equals_energy_ratio(self):
        ours = report(energy=1.0)
        baseline = report(model="svm[2]", energy=6.5)
        assert battery_life_extension(ours, baseline) == pytest.approx(6.5)

    def test_best_battery_picks_smallest_sufficient_source(self):
        low_power = report(power=8.0)
        mid_power = report(power=14.0)
        huge_power = report(power=200.0)
        assert best_battery_for(low_power, PRINTED_BATTERIES) == BLUESPARK_10MW
        assert best_battery_for(mid_power, PRINTED_BATTERIES) == ZINERGY_15MW
        assert best_battery_for(huge_power, PRINTED_BATTERIES) is None

    def test_assessment_string(self):
        text = str(assess_design(report(), MOLEX_30MW))
        assert "OK" in text or "EXCEEDS" in text

    def test_infeasible_lifetime_renders_na_not_unbounded(self):
        """Regression: a design that EXCEEDS the budget used to print
        "lifetime unbounded" because ``lifetime_hours=None`` fell into the
        infinite branch of ``__str__``."""
        text = str(assess_design(report(power=57.4), MOLEX_30MW))
        assert "EXCEEDS BUDGET" in text
        assert "n/a" in text
        assert "unbounded" not in text

    def test_harvester_lifetime_renders_unbounded(self):
        from repro.hw.pdk import PRINTED_SOLAR_5MW

        assessment = assess_design(report(power=3.0), PRINTED_SOLAR_5MW)
        assert assessment.feasible
        assert assessment.lifetime_hours == float("inf")
        assert "unbounded" in str(assessment)
        assert "n/a" not in str(assessment)

    def test_finite_lifetime_renders_hours(self):
        text = str(assess_design(report(power=15.0), MOLEX_30MW))
        assert f"{90.0 / 15.0:.1f} h" in text
        assert "unbounded" not in text and "n/a" not in text

    def test_assess_many_plumbs_duty_cycle(self):
        """Regression: ``assess_many`` silently ignored duty-cycled operation."""
        rows = [report(power=20.0), report(dataset="pd", power=10.0)]
        always_on = assess_many(rows, MOLEX_30MW)
        intermittent = assess_many(rows, MOLEX_30MW, duty_cycle=0.1)
        for full, duty in zip(always_on, intermittent):
            assert duty.lifetime_hours == pytest.approx(full.lifetime_hours * 10.0)
            assert duty.feasible == full.feasible
        # Element-wise identical to the single-design entry point.
        singles = [assess_design(r, MOLEX_30MW, duty_cycle=0.1) for r in rows]
        assert [a.lifetime_hours for a in intermittent] == [
            a.lifetime_hours for a in singles
        ]

    def test_feasible_designs_duty_cycle_keeps_peak_power_check(self):
        """Duty cycling lowers *average* power only: a design whose peak draw
        exceeds the source's maximum must stay infeasible at any duty cycle."""
        rows = [report(power=10.0), report(dataset="pd", power=90.0)]
        assert len(feasible_designs(rows, MOLEX_30MW, duty_cycle=0.05)) == 1
        assert feasible_designs(rows, MOLEX_30MW, duty_cycle=0.05) == feasible_designs(
            rows, MOLEX_30MW
        )

    def test_invalid_duty_cycle_rejected_by_collection_helpers(self):
        with pytest.raises(ValueError):
            assess_many([report()], MOLEX_30MW, duty_cycle=0.0)
        with pytest.raises(ValueError):
            feasible_designs([report()], MOLEX_30MW, duty_cycle=1.5)


class TestPareto:
    def test_dominance(self):
        better = TradeoffPoint("a", maximise_value=95.0, minimise_value=1.0)
        worse = TradeoffPoint("b", maximise_value=90.0, minimise_value=2.0)
        assert better.dominates(worse)
        assert not worse.dominates(better)

    def test_no_self_dominance(self):
        p = TradeoffPoint("a", 90.0, 1.0)
        assert not p.dominates(p)

    def test_incomparable_points(self):
        fast_inaccurate = TradeoffPoint("a", 80.0, 0.5)
        slow_accurate = TradeoffPoint("b", 95.0, 3.0)
        assert not fast_inaccurate.dominates(slow_accurate)
        assert not slow_accurate.dominates(fast_inaccurate)

    def test_pareto_front_extraction(self):
        points = [
            TradeoffPoint("a", 95.0, 1.0),
            TradeoffPoint("b", 90.0, 2.0),   # dominated by a
            TradeoffPoint("c", 97.0, 5.0),   # on the front (more accurate)
            TradeoffPoint("d", 80.0, 0.5),   # on the front (cheaper)
        ]
        front = pareto_front(points)
        labels = {p.label for p in front}
        assert labels == {"a", "c", "d"}
        assert is_on_front(points[0], points)
        assert not is_on_front(points[1], points)

    def test_dominance_count(self):
        points = [
            TradeoffPoint("a", 95.0, 1.0),
            TradeoffPoint("b", 90.0, 2.0),
            TradeoffPoint("c", 85.0, 3.0),
        ]
        assert dominance_count(points[0], points) == 2
        assert dominance_count(points[2], points) == 0

    def test_points_from_reports(self):
        rows = [report(accuracy=93.0, energy=1.4), report(model="svm[2]", accuracy=90.0, energy=4.3)]
        energy_points = accuracy_energy_points(rows)
        area_points = accuracy_area_points(rows)
        assert energy_points[0].minimise_value == pytest.approx(1.4)
        assert area_points[0].minimise_value == pytest.approx(15.0)
        assert energy_points[0].dominates(energy_points[1])

    def test_hypervolume_monotone_in_front_quality(self):
        reference = (50.0, 10.0)
        weak = [TradeoffPoint("w", 80.0, 5.0)]
        strong = [TradeoffPoint("s", 95.0, 1.0)]
        assert hypervolume_2d(strong, reference) > hypervolume_2d(weak, reference)

    def test_hypervolume_of_empty_or_out_of_range_front(self):
        reference = (90.0, 1.0)
        points = [TradeoffPoint("p", 80.0, 5.0)]  # worse than the reference
        assert hypervolume_2d(points, reference) == 0.0

    def test_hypervolume_additive_for_disjoint_rectangles(self):
        reference = (0.0, 10.0)
        points = [TradeoffPoint("a", 5.0, 6.0), TradeoffPoint("b", 10.0, 8.0)]
        # a: from x=0..5 (after sweep) ... total = (10-5)*(10-8) + (5-0)*(10-6)
        assert hypervolume_2d(points, reference) == pytest.approx(5 * 2 + 5 * 4)
