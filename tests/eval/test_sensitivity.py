"""Tests for the PDK-sensitivity (corner) analysis."""

import pytest

from repro.core.design_flow import FlowConfig, run_flow
from repro.eval.sensitivity import (
    DEFAULT_CORNERS,
    PDKCorner,
    build_corner_library,
    sweep_pdk_parameters,
)
from repro.hw.pdk import EGFET_PDK

CONFIG = FlowConfig(n_samples=260, svm_max_iter=20, mlp_max_epochs=20, mlp_hidden_neurons=4)


@pytest.fixture(scope="module")
def redwine_results():
    kinds = ("ours", "svm_parallel_exact", "svm_parallel_approx")
    return [run_flow("redwine", kind, CONFIG) for kind in kinds]


class TestCorners:
    def test_nominal_corner_is_identity(self):
        nominal = PDKCorner("nominal")
        library = build_corner_library(nominal)
        assert library["NAND2"].area_cm2 == pytest.approx(EGFET_PDK["NAND2"].area_cm2)
        assert library["FA"].delay_ms == pytest.approx(EGFET_PDK["FA"].delay_ms)

    def test_scaled_corner_changes_only_requested_parameters(self):
        corner = PDKCorner("area+30%", area_scale=1.3)
        library = build_corner_library(corner)
        assert library["NAND2"].area_cm2 == pytest.approx(1.3 * EGFET_PDK["NAND2"].area_cm2)
        assert library["NAND2"].static_power_mw == pytest.approx(
            EGFET_PDK["NAND2"].static_power_mw
        )

    def test_delay_corner_scales_delays(self):
        corner = PDKCorner("delay+30%", delay_scale=1.3)
        library = build_corner_library(corner)
        assert library["FA"].delay_ms == pytest.approx(1.3 * EGFET_PDK["FA"].delay_ms)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            PDKCorner("bad", area_scale=0.0).apply()

    def test_default_corner_set_contains_nominal_and_extremes(self):
        names = {corner.name for corner in DEFAULT_CORNERS}
        assert "nominal" in names
        assert any("+30%" in n for n in names)
        assert any("-30%" in n for n in names)


class TestSweep:
    def test_sweep_covers_all_corners(self, redwine_results):
        report = sweep_pdk_parameters(redwine_results, corners=DEFAULT_CORNERS[:4])
        assert len(report.corners) == 4
        for corner in report.corners:
            assert set(corner.reports) == {"ours", "svm_parallel_exact", "svm_parallel_approx"}

    def test_conclusions_hold_across_default_corners(self, redwine_results):
        """The robustness statement in EXPERIMENTS.md, verified on RedWine."""
        report = sweep_pdk_parameters(redwine_results)
        assert report.conclusion_holds_everywhere("energy_win")
        assert report.conclusion_holds_everywhere("battery_fit", budget_mw=30.0)
        assert report.conclusion_holds_everywhere("faster_clock")

    def test_energy_improvement_range_is_positive(self, redwine_results):
        report = sweep_pdk_parameters(redwine_results)
        low, high = report.energy_improvement_range()
        assert 1.0 < low <= high

    def test_corner_scaling_shifts_power_in_the_right_direction(self, redwine_results):
        corners = (PDKCorner("nominal"), PDKCorner("static+30%", static_power_scale=1.3))
        report = sweep_pdk_parameters(redwine_results, corners=corners)
        nominal = report.corners[0].reports["ours"]
        hungry = report.corners[1].reports["ours"]
        assert hungry.power_mw > nominal.power_mw
        # Accuracy is untouched by PDK perturbations.
        assert hungry.accuracy_percent == pytest.approx(nominal.accuracy_percent)

    def test_sweep_requires_proposed_design(self, redwine_results):
        baselines_only = [r for r in redwine_results if r.kind != "ours"]
        with pytest.raises(ValueError):
            sweep_pdk_parameters(baselines_only)
        with pytest.raises(ValueError):
            sweep_pdk_parameters([])

    def test_summary_mentions_every_corner(self, redwine_results):
        report = sweep_pdk_parameters(redwine_results, corners=DEFAULT_CORNERS[:3])
        text = report.summary()
        for corner in DEFAULT_CORNERS[:3]:
            assert corner.name in text
