"""Tests for the published reference data and the comparison aggregates."""

import pytest

from repro.core.report import ClassifierHardwareReport
from repro.eval.comparison import (
    battery_feasibility_count,
    claim_check,
    compare_against_baseline,
    overall_energy_improvement,
    power_statistics,
)
from repro.eval.reference import (
    MODEL_TO_KIND,
    PAPER_CLAIMS,
    TABLE1_DATASETS,
    TABLE1_REFERENCE,
    models_reported_for,
    reference_row,
    reference_rows,
)


def report(dataset, model, accuracy=90.0, energy=1.0, power=10.0):
    return ClassifierHardwareReport(
        dataset=dataset,
        model=model,
        accuracy_percent=accuracy,
        area_cm2=10.0,
        power_mw=power,
        frequency_hz=30.0,
        latency_ms=energy / power * 1000.0,
        energy_mj=energy,
    )


class TestReferenceData:
    def test_all_datasets_have_a_proposed_row(self):
        for dataset in TABLE1_DATASETS:
            row = reference_row(dataset, "ours")
            assert row.is_proposed

    def test_row_count_matches_paper(self):
        # 4 + 2 + 4 + 4 + 4 = 18 rows in Table I.
        assert len(TABLE1_REFERENCE) == 18

    def test_dermatology_only_has_svm2_baseline(self):
        assert models_reported_for("dermatology") == ["svm[2]", "ours"]

    def test_every_model_id_maps_to_a_flow_kind(self):
        for row in TABLE1_REFERENCE:
            assert row.model in MODEL_TO_KIND

    def test_published_energy_improvement_consistent_with_rows(self):
        """The 10.6x / 5.4x / 3.46x claims are reproducible from the published
        per-row numbers when aggregated as the ratio of *average* energies
        (sanity check of both our transcription and our aggregation method)."""
        ours = {r.dataset: r for r in reference_rows(model="ours")}
        for model, claimed in [
            ("svm[2]", PAPER_CLAIMS["energy_improvement_vs_svm2"]),
            ("svm[3]", PAPER_CLAIMS["energy_improvement_vs_svm3"]),
            ("mlp[4]", PAPER_CLAIMS["energy_improvement_vs_mlp4"]),
        ]:
            rows = reference_rows(model=model)
            baseline_mean = sum(r.energy_mj for r in rows) / len(rows)
            ours_mean = sum(ours[r.dataset].energy_mj for r in rows) / len(rows)
            assert baseline_mean / ours_mean == pytest.approx(claimed, rel=0.05)

    def test_published_power_statistics_consistent(self):
        ours = reference_rows(model="ours")
        peak = max(r.power_mw for r in ours)
        mean = sum(r.power_mw for r in ours) / len(ours)
        assert peak == pytest.approx(PAPER_CLAIMS["peak_power_mw"], rel=0.01)
        assert mean == pytest.approx(PAPER_CLAIMS["average_power_mw"], rel=0.02)

    def test_all_proposed_designs_fit_molex_budget(self):
        for row in reference_rows(model="ours"):
            assert row.power_mw <= PAPER_CLAIMS["battery_budget_mw"]

    def test_unknown_row_rejected(self):
        with pytest.raises(KeyError):
            reference_row("dermatology", "mlp[4]")

    def test_approximate_flags(self):
        assert reference_row("cardio", "svm[3]").approximate
        assert not reference_row("cardio", "svm[2]").approximate


class TestComparisons:
    def test_energy_ratio_and_accuracy_delta(self):
        proposed = [report("cardio", "ours", accuracy=93.0, energy=1.0)]
        baseline = [report("cardio", "svm[2]", accuracy=90.0, energy=4.0)]
        summary = compare_against_baseline(proposed, baseline)
        assert summary.mean_energy_improvement == pytest.approx(4.0)
        assert summary.mean_accuracy_gain == pytest.approx(3.0)

    def test_only_shared_datasets_compared(self):
        proposed = [
            report("cardio", "ours", energy=1.0),
            report("redwine", "ours", energy=1.0),
        ]
        baseline = [report("cardio", "svm[2]", energy=2.0)]
        summary = compare_against_baseline(proposed, baseline)
        assert summary.datasets == ["cardio"]

    def test_no_shared_datasets_raises_on_aggregate(self):
        proposed = [report("cardio", "ours")]
        baseline = [report("redwine", "svm[2]")]
        summary = compare_against_baseline(proposed, baseline)
        with pytest.raises(ValueError):
            _ = summary.mean_energy_improvement

    def test_overall_energy_improvement_matches_paper_aggregation(self):
        proposed = [report("cardio", "ours", energy=1.0), report("redwine", "ours", energy=1.0)]
        base_a = [report("cardio", "svm[2]", energy=2.0), report("redwine", "svm[2]", energy=4.0)]
        base_b = [report("cardio", "mlp[4]", energy=6.0)]
        summary_a = compare_against_baseline(proposed, base_a)
        summary_b = compare_against_baseline(proposed, base_b)
        # Per-baseline figures are ratios of average energies: 3.0 and 6.0.
        assert summary_a.energy_improvement_of_averages == pytest.approx(3.0)
        assert summary_b.energy_improvement_of_averages == pytest.approx(6.0)
        # The per-dataset-ratio mean remains available as a secondary view.
        assert summary_a.mean_energy_improvement == pytest.approx(3.0)
        # The overall figure averages the per-baseline figures (paper's 6.5x).
        assert overall_energy_improvement([summary_a, summary_b]) == pytest.approx(4.5)

    def test_power_statistics(self):
        rows = [report("a", "ours", power=10.0, energy=1.0), report("b", "ours", power=20.0, energy=3.0)]
        stats = power_statistics(rows)
        assert stats["peak_power_mw"] == pytest.approx(20.0)
        assert stats["average_power_mw"] == pytest.approx(15.0)
        assert stats["average_energy_mj"] == pytest.approx(2.0)
        with pytest.raises(ValueError):
            power_statistics([])

    def test_battery_feasibility_count(self):
        rows = [report("a", "m", power=10.0), report("b", "m", power=50.0)]
        assert battery_feasibility_count(rows, budget_mw=30.0) == 1

    def test_claim_check_structure(self):
        measured = {"energy_improvement_average": 4.0}
        published = {"energy_improvement_average": 6.5, "unmeasured": 1.0}
        record = claim_check(measured, published, tolerance=0.5)
        assert "energy_improvement_average" in record
        assert record["energy_improvement_average"]["within_tolerance"] == 1.0
        assert "unmeasured" not in record
