"""Tests for Table I regeneration and report formatting (small configurations)."""

import pytest

from repro.eval.reporting import (
    breakdown_summary,
    console_summary,
    experiments_markdown,
    markdown_claims,
    markdown_table1,
)
from repro.eval.table1 import (
    Table1,
    Table1Entry,
    format_table1,
    generate_table1,
    table1_aggregates,
)


@pytest.fixture(scope="module")
def small_table(tiny_flow_config_module):
    """Table I restricted to one small dataset so tests stay fast."""
    return generate_table1(datasets=["redwine"], config=tiny_flow_config_module)


@pytest.fixture(scope="module")
def tiny_flow_config_module():
    from repro.core.design_flow import FlowConfig

    return FlowConfig(n_samples=220, svm_max_iter=20, mlp_max_epochs=25, mlp_hidden_neurons=4)


class TestGenerateTable1:
    def test_all_reported_models_present(self, small_table):
        models = [e.model for e in small_table.entries]
        assert models == ["svm[2]", "svm[3]", "mlp[4]", "ours"]

    def test_entries_carry_references(self, small_table):
        for entry in small_table.entries:
            assert entry.reference is not None
            assert entry.reference.dataset == entry.dataset

    def test_row_lookup(self, small_table):
        entry = small_table.row("redwine", "ours")
        assert entry.measured.model.startswith("Ours")
        with pytest.raises(KeyError):
            small_table.row("redwine", "transformer")

    def test_rows_for_model(self, small_table):
        assert len(small_table.rows_for_model("ours")) == 1
        assert small_table.datasets() == ["redwine"]

    def test_model_filter(self, tiny_flow_config_module):
        table = generate_table1(
            datasets=["redwine"], config=tiny_flow_config_module, models=["ours"]
        )
        assert [e.model for e in table.entries] == ["ours"]

    def test_aggregates_structure(self, small_table):
        aggregates = table1_aggregates(small_table)
        assert "energy_improvement_average" in aggregates
        assert "peak_power_mw" in aggregates
        assert aggregates["energy_improvement_average"] > 0

    def test_aggregates_require_proposed_rows(self):
        with pytest.raises(ValueError):
            table1_aggregates(Table1(entries=[]))

    def test_proposed_design_wins_energy_on_redwine(self, small_table):
        """Core claim, checked end-to-end on a small configuration."""
        ours = small_table.row("redwine", "ours").measured
        svm2 = small_table.row("redwine", "svm[2]").measured
        svm3 = small_table.row("redwine", "svm[3]").measured
        assert ours.energy_mj < svm2.energy_mj
        assert ours.energy_mj < svm3.energy_mj
        assert ours.power_mw < 30.0


class TestFormatting:
    def test_format_table1_contains_all_rows(self, small_table):
        text = format_table1(small_table)
        assert "redwine" in text
        assert "(paper)" in text
        assert "Energy" in text

    def test_format_without_reference(self, small_table):
        text = format_table1(small_table, show_reference=False)
        assert "(paper)" not in text

    def test_markdown_table(self, small_table):
        md = markdown_table1(small_table)
        assert md.startswith("| Dataset |")
        assert "| redwine | ours |" in md

    def test_markdown_claims(self, small_table):
        aggregates = table1_aggregates(small_table)
        md = markdown_claims(aggregates)
        assert "| Claim | Paper | Measured |" in md
        assert "energy_improvement_average" in md

    def test_experiments_markdown_sections(self, small_table):
        md = experiments_markdown(small_table)
        assert "## Table I" in md
        assert "## Aggregate claims" in md

    def test_console_summary(self, small_table):
        rows = [e.measured for e in small_table.entries]
        text = console_summary(rows)
        assert text.count("\n") == len(rows) - 1

    def test_breakdown_summary(self, small_table):
        ours = small_table.row("redwine", "ours").measured
        text = breakdown_summary(ours)
        assert "storage" in text
        assert "compute_engine" in text

    def test_breakdown_summary_without_breakdown(self, small_table):
        baseline = small_table.row("redwine", "svm[2]").measured
        assert "no breakdown" in breakdown_summary(baseline)
