"""Tests for the complete classifier circuits (sequential SVM, parallel
SVM/MLP baselines) and their evaluation reports."""

import numpy as np
import pytest

from repro.core.parallel_mlp import ParallelMLPDesign
from repro.core.parallel_svm import ParallelSVMDesign, truncate_model
from repro.core.report import ClassifierHardwareReport
from repro.core.sequential_svm import SequentialSVMDesign
from repro.hw.pdk import MOLEX_30MW


class TestSequentialSVMDesign:
    def test_structure_follows_model(self, sequential_design, quantized_ovr):
        assert sequential_design.n_classifiers == quantized_ovr.n_classifiers
        assert sequential_design.n_features == quantized_ovr.n_features
        assert (
            sequential_design.cycles_per_classification == quantized_ovr.n_classifiers
        )

    def test_hardware_contains_all_four_components(self, sequential_design):
        block = sequential_design.hardware()
        names = {child.name for child in block.children}
        # datapath (storage + engine + voter) and the control counter
        assert any("datapath" in n for n in names)
        assert any("control" in n or "counter" in n for n in names)
        assert block.n_cells() > 0

    def test_predictions_match_quantized_model(self, sequential_design, small_split, quantized_ovr):
        assert np.array_equal(
            sequential_design.predict(small_split.X_test),
            quantized_ovr.predict(small_split.X_test),
        )

    def test_cycle_accurate_simulation_matches_model(self, sequential_design, small_split):
        assert sequential_design.verify_against_model(small_split.X_test)

    def test_simulate_sample_trace(self, sequential_design, small_split):
        result = sequential_design.simulate_sample(small_split.X_test[0])
        assert result.n_cycles == sequential_design.n_classifiers
        assert 0 <= result.predicted_class < sequential_design.n_classifiers

    def test_evaluation_report_fields(self, sequential_design, small_split):
        report = sequential_design.evaluate(small_split.X_test, small_split.y_test)
        assert isinstance(report, ClassifierHardwareReport)
        assert 0 <= report.accuracy_percent <= 100
        assert report.area_cm2 > 0
        assert report.power_mw > 0
        assert report.frequency_hz > 0
        assert report.energy_mj > 0
        assert report.cycles_per_classification == sequential_design.n_classifiers
        # Latency = cycles / frequency.
        assert report.latency_ms == pytest.approx(
            1000.0 * report.cycles_per_classification / report.frequency_hz
        )
        # Energy = power * latency.
        assert report.energy_mj == pytest.approx(
            report.power_mw * report.latency_ms / 1000.0, rel=1e-6
        )

    def test_area_breakdown_covers_components(self, sequential_design, small_split):
        report = sequential_design.evaluate(small_split.X_test, small_split.y_test)
        assert set(report.area_breakdown_cm2) == {
            "storage",
            "compute_engine",
            "voter",
            "control",
        }
        assert sum(report.area_breakdown_cm2.values()) == pytest.approx(
            report.area_cm2, rel=0.05
        )

    def test_small_design_fits_printed_battery(self, sequential_design, small_split):
        report = sequential_design.evaluate(small_split.X_test, small_split.y_test)
        assert MOLEX_30MW.can_power(report.power_mw)

    def test_crossbar_storage_variant_is_larger(self, quantized_ovr, small_split):
        mux_design = SequentialSVMDesign(quantized_ovr, storage_style="mux")
        rom_design = SequentialSVMDesign(quantized_ovr, storage_style="crossbar")
        mux_report = mux_design.evaluate(small_split.X_test, small_split.y_test)
        rom_report = rom_design.evaluate(small_split.X_test, small_split.y_test)
        assert rom_report.area_cm2 > mux_report.area_cm2

    def test_invalid_storage_style_rejected(self, quantized_ovr):
        with pytest.raises(ValueError):
            SequentialSVMDesign(quantized_ovr, storage_style="dram")

    def test_verilog_export(self, sequential_design):
        verilog = sequential_design.to_verilog()
        assert "module" in verilog and "endmodule" in verilog
        assert str(sequential_design.n_classifiers) in verilog

    def test_summary_mentions_key_quantities(self, sequential_design):
        summary = sequential_design.summary()
        assert "classifiers" in summary
        assert "multipliers" in summary
        assert "cycles" in summary

    def test_ovo_model_accepted_but_verification_rejected(self, quantized_ovo, small_split):
        design = SequentialSVMDesign(quantized_ovo)
        assert design.n_classifiers == quantized_ovo.n_classifiers
        with pytest.raises(ValueError):
            design.verify_against_model(small_split.X_test)


class TestParallelSVMDesign:
    def test_exact_design_predictions_match_model(self, quantized_ovo, small_split):
        design = ParallelSVMDesign(quantized_ovo, style="exact")
        assert np.array_equal(
            design.predict(small_split.X_test), quantized_ovo.predict(small_split.X_test)
        )

    def test_single_cycle_classification(self, quantized_ovo, small_split):
        design = ParallelSVMDesign(quantized_ovo, style="exact")
        report = design.evaluate(small_split.X_test, small_split.y_test)
        assert report.cycles_per_classification == 1
        assert report.latency_ms == pytest.approx(1000.0 / report.frequency_hz)

    def test_parallel_larger_than_sequential(self, quantized_ovo, sequential_design, small_split):
        parallel_design = ParallelSVMDesign(quantized_ovo, style="exact")
        seq_report = sequential_design.evaluate(small_split.X_test, small_split.y_test)
        par_report = parallel_design.evaluate(small_split.X_test, small_split.y_test)
        assert par_report.area_cm2 > seq_report.area_cm2
        assert par_report.power_mw > seq_report.power_mw

    def test_sequential_more_energy_efficient(self, quantized_ovo, sequential_design, small_split):
        """The paper's headline: the sequential design wins on energy."""
        parallel_design = ParallelSVMDesign(quantized_ovo, style="exact")
        seq_report = sequential_design.evaluate(small_split.X_test, small_split.y_test)
        par_report = parallel_design.evaluate(small_split.X_test, small_split.y_test)
        assert seq_report.energy_mj < par_report.energy_mj

    def test_approximate_design_smaller_than_exact(self, quantized_ovo, small_split):
        exact = ParallelSVMDesign(quantized_ovo, style="exact")
        approx = ParallelSVMDesign(quantized_ovo, style="approximate", approx_drop_bits=2)
        exact_report = exact.evaluate(small_split.X_test, small_split.y_test)
        approx_report = approx.evaluate(small_split.X_test, small_split.y_test)
        assert approx_report.area_cm2 < exact_report.area_cm2
        assert approx_report.power_mw < exact_report.power_mw

    def test_approximate_accuracy_within_reason(self, quantized_ovo, small_split):
        exact = ParallelSVMDesign(quantized_ovo, style="exact")
        approx = ParallelSVMDesign(quantized_ovo, style="approximate", approx_drop_bits=1)
        acc_exact = exact.evaluate(small_split.X_test, small_split.y_test).accuracy_percent
        acc_approx = approx.evaluate(small_split.X_test, small_split.y_test).accuracy_percent
        assert acc_approx >= acc_exact - 20.0

    def test_ovr_parallel_design_supported(self, quantized_ovr, small_split):
        design = ParallelSVMDesign(quantized_ovr, style="exact")
        report = design.evaluate(small_split.X_test, small_split.y_test)
        assert report.area_cm2 > 0

    def test_behavioural_simulation_matches_model(self, quantized_ovo, small_split):
        design = ParallelSVMDesign(quantized_ovo, style="exact")
        assert np.array_equal(
            design.simulate_batch(small_split.X_test),
            quantized_ovo.predict_ids(small_split.X_test),
        )

    def test_invalid_style_rejected(self, quantized_ovo):
        with pytest.raises(ValueError):
            ParallelSVMDesign(quantized_ovo, style="fancy")

    def test_default_model_names_match_citations(self, quantized_ovo, small_split):
        exact = ParallelSVMDesign(quantized_ovo, style="exact")
        approx = ParallelSVMDesign(quantized_ovo, style="approximate")
        assert "[2]" in exact.evaluate(small_split.X_test, small_split.y_test).model
        assert "[3]" in approx.evaluate(small_split.X_test, small_split.y_test).model


class TestTruncateModel:
    def test_zero_drop_is_identity(self, quantized_ovo):
        assert truncate_model(quantized_ovo, 0) is quantized_ovo

    def test_truncated_codes_are_multiples(self, quantized_ovo):
        truncated = truncate_model(quantized_ovo, 2)
        assert np.all(truncated.weight_codes % 4 == 0)
        assert np.all(truncated.bias_codes % 4 == 0)

    def test_truncation_error_bounded(self, quantized_ovo):
        truncated = truncate_model(quantized_ovo, 2)
        assert np.max(np.abs(truncated.weight_codes - quantized_ovo.weight_codes)) <= 2

    def test_negative_drop_rejected(self, quantized_ovo):
        with pytest.raises(ValueError):
            truncate_model(quantized_ovo, -1)


class TestParallelMLPDesign:
    def test_predictions_match_model(self, quantized_mlp, small_split):
        design = ParallelMLPDesign(quantized_mlp)
        assert np.array_equal(
            design.predict(small_split.X_test), quantized_mlp.predict(small_split.X_test)
        )

    def test_report_fields(self, quantized_mlp, small_split):
        design = ParallelMLPDesign(quantized_mlp, dataset="small-problem")
        report = design.evaluate(small_split.X_test, small_split.y_test)
        assert report.cycles_per_classification == 1
        assert report.area_cm2 > 0
        assert report.energy_mj > 0
        assert "topology" in report.notes

    def test_hardware_scales_with_hidden_width(self, small_split):
        from repro.ml.mlp import MLPClassifier
        from repro.ml.quantization import quantize_mlp_classifier

        small_mlp = MLPClassifier(hidden_layer_sizes=(2,), max_epochs=15, random_state=0)
        large_mlp = MLPClassifier(hidden_layer_sizes=(10,), max_epochs=15, random_state=0)
        small_mlp.fit(small_split.X_train, small_split.y_train)
        large_mlp.fit(small_split.X_train, small_split.y_train)
        small_design = ParallelMLPDesign(quantize_mlp_classifier(small_mlp))
        large_design = ParallelMLPDesign(quantize_mlp_classifier(large_mlp))
        assert large_design.hardware().n_cells() > small_design.hardware().n_cells()

    def test_layer_widths_monotone_enough_to_avoid_overflow(self, quantized_mlp, small_split):
        design = ParallelMLPDesign(quantized_mlp)
        codes = quantized_mlp.quantize_inputs(small_split.X_test)
        outputs = quantized_mlp.integer_forward(codes)
        width = design._layer_output_bits[-1]
        limit = 1 << (width - 1)
        assert np.all(outputs < limit) and np.all(outputs >= -limit)


class TestReportDataclass:
    def test_power_density_and_edp(self):
        report = ClassifierHardwareReport(
            dataset="d",
            model="m",
            accuracy_percent=90.0,
            area_cm2=10.0,
            power_mw=20.0,
            frequency_hz=40.0,
            latency_ms=100.0,
            energy_mj=2.0,
        )
        assert report.power_density_mw_per_cm2 == pytest.approx(2.0)
        assert report.energy_delay_product == pytest.approx(200.0)
        assert report.within_power_budget(30.0)
        assert not report.within_power_budget(10.0)

    def test_as_row_contains_table1_columns(self):
        report = ClassifierHardwareReport(
            dataset="d",
            model="m",
            accuracy_percent=90.0,
            area_cm2=10.0,
            power_mw=20.0,
            frequency_hz=40.0,
            latency_ms=100.0,
            energy_mj=2.0,
        )
        row = report.as_row()
        assert {"accuracy_percent", "area_cm2", "power_mw", "frequency_hz", "latency_ms", "energy_mj"} <= set(row)

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            ClassifierHardwareReport(
                dataset="d", model="m", accuracy_percent=150.0, area_cm2=1.0,
                power_mw=1.0, frequency_hz=1.0, latency_ms=1.0, energy_mj=1.0,
            )
        with pytest.raises(ValueError):
            ClassifierHardwareReport(
                dataset="d", model="m", accuracy_percent=50.0, area_cm2=-1.0,
                power_mw=1.0, frequency_hz=1.0, latency_ms=1.0, energy_mj=1.0,
            )
