"""Tests for the end-to-end design flow (train -> quantize -> generate -> report)."""

import numpy as np
import pytest

from repro.core.design_flow import (
    FlowConfig,
    MODEL_KINDS,
    clear_flow_cache,
    fast_config,
    prepare_dataset,
    quantize_split_inputs,
    run_dataset_comparison,
    run_flow,
    run_parallel_mlp_flow,
    run_parallel_svm_flow,
    run_sequential_svm_flow,
)


class TestFlowConfig:
    def test_defaults_follow_paper(self):
        config = FlowConfig()
        assert config.test_size == pytest.approx(0.2)  # 80/20 split
        assert config.input_bits <= 6  # low-precision inputs
        assert config.storage_style == "mux"

    def test_cache_key_distinguishes_configs(self):
        a = FlowConfig()
        b = FlowConfig(input_bits=5)
        assert a.cache_key("cardio", "ours") != b.cache_key("cardio", "ours")
        assert a.cache_key("cardio", "ours") == FlowConfig().cache_key("cardio", "ours")

    def test_fast_config_reduces_work(self):
        config = fast_config()
        assert config.n_samples is not None
        assert config.svm_max_iter < FlowConfig().svm_max_iter


class TestDataPreparation:
    def test_prepare_dataset_is_cached(self, tiny_flow_config):
        a = prepare_dataset("redwine", tiny_flow_config)
        b = prepare_dataset("redwine", tiny_flow_config)
        assert a is b

    def test_split_is_80_20(self, tiny_flow_config):
        split = prepare_dataset("cardio", tiny_flow_config)
        total = split.n_train + split.n_test
        assert split.n_test / total == pytest.approx(0.2, abs=0.05)

    def test_inputs_normalised(self, tiny_flow_config):
        split = prepare_dataset("cardio", tiny_flow_config)
        assert split.X_train.min() >= 0.0
        assert split.X_train.max() <= 1.0

    def test_quantize_split_inputs_snaps_to_grid(self, tiny_flow_config):
        split = prepare_dataset("cardio", tiny_flow_config)
        quantized = quantize_split_inputs(split, 4)
        levels = np.unique(np.round(quantized.X_train * 16).astype(int))
        assert levels.min() >= 0 and levels.max() <= 15
        # All values must be exact multiples of 1/16.
        assert np.allclose(quantized.X_train * 16, np.round(quantized.X_train * 16))


class TestIndividualFlows:
    def test_sequential_flow_produces_consistent_result(self, tiny_flow_config):
        result = run_sequential_svm_flow("redwine", tiny_flow_config)
        assert result.kind == "ours"
        assert result.dataset == "redwine"
        assert result.report.cycles_per_classification == 6  # RedWine: 6 classes
        assert 0 < result.report.accuracy_percent <= 100
        assert result.weight_bits_used >= tiny_flow_config.min_weight_bits
        assert result.design.verify_against_model(result.split.X_test)

    def test_flow_results_are_cached(self, tiny_flow_config):
        a = run_sequential_svm_flow("redwine", tiny_flow_config)
        b = run_sequential_svm_flow("redwine", tiny_flow_config)
        assert a is b

    def test_parallel_svm_flow_exact_and_approx_differ(self, tiny_flow_config):
        exact = run_parallel_svm_flow("redwine", approximate=False, config=tiny_flow_config)
        approx = run_parallel_svm_flow("redwine", approximate=True, config=tiny_flow_config)
        assert exact.kind == "svm_parallel_exact"
        assert approx.kind == "svm_parallel_approx"
        assert approx.report.area_cm2 < exact.report.area_cm2

    def test_baseline_uses_ovo(self, tiny_flow_config):
        result = run_parallel_svm_flow("redwine", config=tiny_flow_config)
        # RedWine has 6 classes -> OvO trains 15 classifiers.
        assert result.design.n_classifiers == 15

    def test_mlp_flow(self, tiny_flow_config):
        result = run_parallel_mlp_flow("redwine", tiny_flow_config)
        assert result.kind == "mlp_parallel"
        assert result.report.cycles_per_classification == 1
        assert result.report.area_cm2 > 0

    def test_run_flow_dispatch(self, tiny_flow_config):
        for kind in MODEL_KINDS:
            result = run_flow("redwine", kind, tiny_flow_config)
            assert result.kind == kind

    def test_unknown_kind_rejected(self, tiny_flow_config):
        with pytest.raises(ValueError):
            run_flow("redwine", "transformer", tiny_flow_config)

    def test_clear_cache_forces_regeneration(self, tiny_flow_config):
        a = run_sequential_svm_flow("redwine", tiny_flow_config)
        clear_flow_cache()
        b = run_sequential_svm_flow("redwine", tiny_flow_config)
        assert a is not b
        assert a.report.area_cm2 == pytest.approx(b.report.area_cm2)


class TestDatasetComparison:
    def test_comparison_covers_requested_kinds(self, tiny_flow_config):
        results = run_dataset_comparison(
            "redwine", kinds=["ours", "svm_parallel_exact"], config=tiny_flow_config
        )
        assert [r.kind for r in results] == ["ours", "svm_parallel_exact"]

    def test_paper_shape_on_one_dataset(self, tiny_flow_config):
        """The qualitative Table I shape on RedWine: sequential wins energy."""
        results = run_dataset_comparison("redwine", config=tiny_flow_config)
        by_kind = {r.kind: r.report for r in results}
        ours = by_kind["ours"]
        # Energy: the proposed design beats both parallel SVM baselines.
        assert ours.energy_mj < by_kind["svm_parallel_exact"].energy_mj
        assert ours.energy_mj < by_kind["svm_parallel_approx"].energy_mj
        # Power: the proposed design fits the 30 mW printed battery.
        assert ours.power_mw <= 30.0
        # Frequency: Hz range, faster clock than the parallel designs' rate.
        assert ours.frequency_hz > by_kind["svm_parallel_exact"].frequency_hz
