"""Tests for the sharded flow executor and the persistent result cache."""

import os
import pickle

import pytest

from repro.core import design_flow
from repro.core.design_flow import (
    FlowConfig,
    clear_flow_cache,
    fast_config,
    run_flow,
    training_run_count,
)
from repro.core import flow_executor
from repro.core.flow_executor import (
    FlowResultCache,
    cache_disabled_by_env,
    code_fingerprint,
    default_cache,
    default_cache_dir,
    execute_flow_grid,
    resolve_cache,
    resolve_jobs,
    run_flow_cached,
)
from repro.eval.table1 import generate_table1, table1_aggregates


@pytest.fixture()
def disk_cache(tmp_path):
    return FlowResultCache(tmp_path / "cache")


@pytest.fixture(autouse=True)
def _fresh_in_process_caches():
    clear_flow_cache()
    yield
    clear_flow_cache()


class TestBoundedCache:
    def test_evicts_least_recently_used(self):
        cache = design_flow._BoundedCache(maxsize=2)
        cache[("a",)] = 1
        cache[("b",)] = 2
        assert cache[("a",)] == 1  # touch: "a" becomes most recent
        cache[("c",)] = 3
        assert ("a",) in cache and ("c",) in cache
        assert ("b",) not in cache
        assert len(cache) == 2

    def test_rejects_invalid_size(self):
        with pytest.raises(ValueError):
            design_flow._BoundedCache(maxsize=0)

    def test_flow_caches_are_bounded(self):
        assert design_flow._FLOW_CACHE.maxsize == design_flow.FLOW_CACHE_MAX_ENTRIES
        assert design_flow._SPLIT_CACHE.maxsize == design_flow.SPLIT_CACHE_MAX_ENTRIES


class TestFlowResultCache:
    def test_store_load_roundtrip(self, disk_cache, tiny_flow_config):
        result = run_flow("redwine", "ours", tiny_flow_config)
        disk_cache.store(result, tiny_flow_config)
        loaded = disk_cache.load("redwine", "ours", tiny_flow_config)
        assert loaded is not None
        assert loaded.report == result.report
        assert loaded.weight_bits_used == result.weight_bits_used

    def test_manifest_written_alongside_payload(self, disk_cache, tiny_flow_config):
        result = run_flow("redwine", "ours", tiny_flow_config)
        disk_cache.store(result, tiny_flow_config)
        manifests = list(disk_cache.cache_dir.glob("flow-*.json"))
        assert len(manifests) == 1
        assert '"redwine"' in manifests[0].read_text()

    def test_miss_for_other_config(self, disk_cache, tiny_flow_config):
        result = run_flow("redwine", "ours", tiny_flow_config)
        disk_cache.store(result, tiny_flow_config)
        other = FlowConfig(**{**tiny_flow_config.__dict__, "input_bits": 5})
        assert disk_cache.load("redwine", "ours", other) is None
        assert disk_cache.load("cardio", "ours", tiny_flow_config) is None

    def test_code_fingerprint_invalidates(
        self, disk_cache, tiny_flow_config, monkeypatch
    ):
        result = run_flow("redwine", "ours", tiny_flow_config)
        disk_cache.store(result, tiny_flow_config)
        monkeypatch.setattr(flow_executor, "_FINGERPRINT", "f" * 64)
        assert disk_cache.load("redwine", "ours", tiny_flow_config) is None

    def test_corrupt_payload_is_dropped(self, disk_cache, tiny_flow_config):
        result = run_flow("redwine", "ours", tiny_flow_config)
        path = disk_cache.store(result, tiny_flow_config)
        path.write_bytes(b"not a pickle")
        assert disk_cache.load("redwine", "ours", tiny_flow_config) is None
        assert not path.exists()  # the bad entry was evicted

    def test_non_flowresult_payload_is_dropped(self, disk_cache, tiny_flow_config):
        result = run_flow("redwine", "ours", tiny_flow_config)
        path = disk_cache.store(result, tiny_flow_config)
        path.write_bytes(pickle.dumps({"not": "a flow result"}))
        assert disk_cache.load("redwine", "ours", tiny_flow_config) is None

    def test_size_bound_evicts_oldest(self, tmp_path, tiny_flow_config):
        cache = FlowResultCache(tmp_path, max_entries=2)
        for kind in ("ours", "svm_parallel_exact", "mlp_parallel"):
            cache.store(run_flow("redwine", kind, tiny_flow_config), tiny_flow_config)
        assert len(cache) == 2
        # The oldest entry ("ours") was evicted, the newest survives.
        assert cache.load("redwine", "mlp_parallel", tiny_flow_config) is not None

    def test_clear_removes_everything(self, disk_cache, tiny_flow_config):
        disk_cache.store(run_flow("redwine", "ours", tiny_flow_config), tiny_flow_config)
        assert disk_cache.clear() == 1
        assert len(disk_cache) == 0

    def test_fingerprint_is_stable_within_process(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 64


class TestCacheResolution:
    def test_env_var_disables_default_cache(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert cache_disabled_by_env()
        assert default_cache() is None
        assert resolve_cache(None) is None

    def test_env_var_sets_cache_dir(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        assert default_cache_dir() == tmp_path / "elsewhere"
        assert default_cache().cache_dir == tmp_path / "elsewhere"

    def test_explicit_cache_and_false_pass_through(self, disk_cache):
        assert resolve_cache(disk_cache) is disk_cache
        assert resolve_cache(False) is None

    def test_resolve_jobs(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1
        assert resolve_jobs(4) == 4
        assert resolve_jobs(0) == (os.cpu_count() or 1)
        with pytest.raises(ValueError):
            resolve_jobs(-1)

    def test_clear_flow_cache_disk_invalidates_persisted_rows(
        self, monkeypatch, tmp_path, tiny_flow_config
    ):
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        run_flow_cached("redwine", "ours", tiny_flow_config)
        assert len(default_cache()) == 1
        # Purging must work even when the persistent layer is disabled for
        # lookups — an explicit clear is an explicit clear.
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        clear_flow_cache(disk=True)
        assert len(FlowResultCache()) == 0

    def test_clear_flow_cache_accepts_explicit_cache(
        self, disk_cache, tiny_flow_config
    ):
        run_flow_cached("redwine", "ours", tiny_flow_config, cache=disk_cache)
        assert len(disk_cache) == 1
        clear_flow_cache(disk=disk_cache)
        assert len(disk_cache) == 0


class TestRunFlowCached:
    def test_warm_run_skips_training(self, disk_cache, tiny_flow_config):
        cold = run_flow_cached("redwine", "ours", tiny_flow_config, cache=disk_cache)
        clear_flow_cache()
        before = training_run_count()
        warm = run_flow_cached("redwine", "ours", tiny_flow_config, cache=disk_cache)
        assert training_run_count() == before
        assert warm.report == cold.report

    def test_disk_hit_warms_in_process_cache(self, disk_cache, tiny_flow_config):
        run_flow_cached("redwine", "ours", tiny_flow_config, cache=disk_cache)
        clear_flow_cache()
        warm = run_flow_cached("redwine", "ours", tiny_flow_config, cache=disk_cache)
        again = run_flow_cached("redwine", "ours", tiny_flow_config, cache=disk_cache)
        assert again is warm  # second call served by the in-process layer

    def test_cache_false_always_retrains(self, tiny_flow_config):
        run_flow_cached("redwine", "ours", tiny_flow_config, cache=False)
        clear_flow_cache()
        before = training_run_count()
        run_flow_cached("redwine", "ours", tiny_flow_config, cache=False)
        assert training_run_count() == before + 1


class TestExecuteFlowGrid:
    def test_grid_collapses_duplicates(self, tiny_flow_config):
        pairs = [("redwine", "ours"), ("redwine", "ours")]
        results = execute_flow_grid(pairs, config=tiny_flow_config, cache=False)
        assert set(results) == {("redwine", "ours")}

    def test_serial_grid_matches_run_flow(self, tiny_flow_config):
        results = execute_flow_grid(
            [("redwine", "ours")], config=tiny_flow_config, cache=False
        )
        direct = run_flow("redwine", "ours", tiny_flow_config)
        assert results[("redwine", "ours")] is direct  # same in-process entry


class TestParallelEquivalence:
    """ISSUE acceptance: sharded == serial, bit-identically."""

    def test_generate_table1_sharded_is_bit_identical(self, tiny_flow_config):
        serial = generate_table1(
            datasets=["redwine"], config=tiny_flow_config, cache=False
        )
        clear_flow_cache()  # force the sharded run to recompute in workers
        sharded = generate_table1(
            datasets=["redwine"], config=tiny_flow_config, cache=False, jobs=2
        )
        assert [e.model for e in sharded.entries] == [e.model for e in serial.entries]
        assert [e.measured for e in sharded.entries] == [
            e.measured for e in serial.entries
        ]
        assert table1_aggregates(sharded) == table1_aggregates(serial)

    def test_warm_cache_table_is_bit_identical_with_zero_training(
        self, disk_cache, tiny_flow_config
    ):
        cold = generate_table1(
            datasets=["redwine"], config=tiny_flow_config, cache=disk_cache
        )
        clear_flow_cache()
        before = training_run_count()
        warm = generate_table1(
            datasets=["redwine"], config=tiny_flow_config, cache=disk_cache
        )
        assert training_run_count() == before
        assert [e.measured for e in warm.entries] == [e.measured for e in cold.entries]
        assert table1_aggregates(warm) == table1_aggregates(cold)
