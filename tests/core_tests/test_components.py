"""Tests for the architectural components: storage, control, engine, voter."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compute_engine import FoldedComputeEngine
from repro.core.control import SequentialController
from repro.core.storage import CrossbarRomStorage, MuxStorage, storage_bits_for_model
from repro.core.voter import CombinationalArgmaxVoter, SequentialArgmaxVoter


class TestMuxStorage:
    @pytest.fixture()
    def table(self, quantized_ovr):
        return quantized_ovr.stored_coefficients()

    @pytest.fixture()
    def bits(self, quantized_ovr):
        return storage_bits_for_model(
            quantized_ovr.weight_format.total_bits,
            quantized_ovr.n_features,
            quantized_ovr.accumulator_bits,
        )

    def test_geometry(self, table, bits, quantized_ovr):
        storage = MuxStorage(table, bits)
        assert storage.n_words == quantized_ovr.n_classifiers
        assert storage.n_values_per_word == quantized_ovr.n_features + 1
        assert storage.word_bits == sum(bits)
        assert storage.total_bits == storage.n_words * storage.word_bits

    def test_read_returns_stored_word(self, table, bits):
        storage = MuxStorage(table, bits)
        for idx in range(storage.n_words):
            assert np.array_equal(storage.read(idx), table[idx])

    def test_read_out_of_range_rejected(self, table, bits):
        storage = MuxStorage(table, bits)
        with pytest.raises(IndexError):
            storage.read(storage.n_words)
        with pytest.raises(IndexError):
            storage.read(-1)

    def test_select_bits(self, table, bits):
        storage = MuxStorage(table, bits)
        assert storage.select_bits == max(1, int(np.ceil(np.log2(storage.n_words))))

    def test_hardware_nonempty(self, table, bits):
        assert MuxStorage(table, bits).hardware().n_cells() > 0

    def test_mismatched_bits_rejected(self, table):
        with pytest.raises(ValueError):
            MuxStorage(table, [4])

    def test_storage_bits_for_model_layout(self):
        bits = storage_bits_for_model(6, 4, 15)
        assert bits == [6, 6, 6, 6, 15]
        with pytest.raises(ValueError):
            storage_bits_for_model(0, 4, 15)


class TestCrossbarRomStorage:
    def test_crossbar_more_expensive_than_mux(self, quantized_ovr):
        """The paper rejects the crossbar ROM because printed ADCs dominate."""
        table = quantized_ovr.stored_coefficients()
        bits = storage_bits_for_model(
            quantized_ovr.weight_format.total_bits,
            quantized_ovr.n_features,
            quantized_ovr.accumulator_bits,
        )
        from repro.hw.pdk import EGFET_PDK

        mux = MuxStorage(table, bits)
        rom = CrossbarRomStorage(table, bits)
        assert rom.hardware().area_cm2(EGFET_PDK) > mux.hardware().area_cm2(EGFET_PDK)

    def test_crossbar_contains_adcs(self, quantized_ovr):
        table = quantized_ovr.stored_coefficients()
        bits = storage_bits_for_model(
            quantized_ovr.weight_format.total_bits,
            quantized_ovr.n_features,
            quantized_ovr.accumulator_bits,
        )
        rom = CrossbarRomStorage(table, bits)
        assert rom.hardware().counts["ADC1"] == rom.word_bits

    def test_read_matches_mux(self, quantized_ovr):
        table = quantized_ovr.stored_coefficients()
        bits = storage_bits_for_model(
            quantized_ovr.weight_format.total_bits,
            quantized_ovr.n_features,
            quantized_ovr.accumulator_bits,
        )
        rom = CrossbarRomStorage(table, bits)
        mux = MuxStorage(table, bits)
        for idx in range(rom.n_words):
            assert np.array_equal(rom.read(idx), mux.read(idx))


class TestSequentialController:
    @pytest.mark.parametrize("n", [1, 2, 3, 6, 7, 10])
    def test_select_sequence_covers_all_classifiers(self, n):
        controller = SequentialController(n)
        assert controller.run_sequence() == list(range(n))
        assert controller.cycles_per_classification == n

    def test_counter_bits_match_paper_formula(self):
        # The paper: a log2(n)-bit counter for n classifiers.
        assert SequentialController(10).counter_bits == 4
        assert SequentialController(6).counter_bits == 3
        assert SequentialController(3).counter_bits == 2

    def test_done_raised_then_cleared(self):
        controller = SequentialController(3)
        state = controller.reset()
        state = controller.step(state)  # 0 -> 1
        state = controller.step(state)  # 1 -> 2? no: counter 1 -> 2
        state = controller.step(state)  # terminal
        assert state.done
        state = controller.step(state)
        assert not state.done
        assert state.counter == 0

    def test_hardware_is_tiny(self):
        from repro.hw.pdk import EGFET_PDK

        block = SequentialController(10).hardware()
        assert block.area_cm2(EGFET_PDK) < 0.5

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            SequentialController(0)


class TestFoldedComputeEngine:
    def test_one_multiplier_per_feature(self):
        engine = FoldedComputeEngine(21, 4, 6, 20)
        assert engine.n_multipliers == 21

    def test_compute_matches_integer_dot_product(self, rng):
        engine = FoldedComputeEngine(8, 4, 6, 24)
        for _ in range(20):
            x = rng.integers(0, 16, size=8)
            w = rng.integers(-32, 32, size=8)
            b = int(rng.integers(-200, 200))
            assert engine.compute(x, w, b) == int(w @ x) + b

    def test_compute_all_matches_matrix_product(self, rng):
        engine = FoldedComputeEngine(5, 4, 6, 24)
        x = rng.integers(0, 16, size=5)
        W = rng.integers(-32, 32, size=(4, 5))
        b = rng.integers(-100, 100, size=4)
        scores = engine.compute_all(x, W, b)
        assert np.array_equal(scores, W @ x + b)

    def test_overflow_detected(self):
        engine = FoldedComputeEngine(2, 4, 6, 8)
        with pytest.raises(OverflowError):
            engine.compute([15, 15], [31, 31], 1000)

    def test_wrong_operand_count_rejected(self):
        engine = FoldedComputeEngine(4, 4, 6, 20)
        with pytest.raises(ValueError):
            engine.compute([1, 2], [1, 2, 3, 4], 0)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            FoldedComputeEngine(0, 4, 6, 20)
        with pytest.raises(ValueError):
            FoldedComputeEngine(4, 0, 6, 20)

    def test_hardware_scales_with_features(self):
        small = FoldedComputeEngine(5, 4, 6, 20).hardware()
        large = FoldedComputeEngine(20, 4, 6, 22).hardware()
        assert large.n_cells() > 2 * small.n_cells()

    def test_hardware_independent_of_classifier_count(self):
        """Folding: the engine does not grow with the number of classes."""
        engine = FoldedComputeEngine(10, 4, 6, 22)
        assert engine.hardware().n_cells() == FoldedComputeEngine(10, 4, 6, 22).hardware().n_cells()


class TestSequentialVoter:
    def test_decide_matches_argmax(self, rng):
        voter = SequentialArgmaxVoter(score_bits=16, index_bits=3)
        for _ in range(30):
            scores = rng.integers(-1000, 1000, size=6).tolist()
            assert voter.decide(scores) == int(np.argmax(scores))

    def test_tie_goes_to_first(self):
        voter = SequentialArgmaxVoter(score_bits=8, index_bits=2)
        assert voter.decide([5, 5, 5]) == 0
        assert voter.decide([1, 7, 7]) == 1

    def test_all_negative_scores(self):
        voter = SequentialArgmaxVoter(score_bits=8, index_bits=2)
        assert voter.decide([-10, -3, -7]) == 1

    def test_update_is_pure(self):
        voter = SequentialArgmaxVoter(score_bits=8, index_bits=2)
        state = voter.reset()
        new_state = voter.update(state, 5, 0)
        assert state.best_score == 0 and not state.initialized
        assert new_state.best_score == 5 and new_state.initialized

    def test_empty_scores_rejected(self):
        voter = SequentialArgmaxVoter(score_bits=8, index_bits=2)
        with pytest.raises(ValueError):
            voter.decide([])

    def test_hardware_has_exactly_two_registers_and_one_comparator(self):
        """Paper: 'two registers ... and a single comparator'."""
        voter = SequentialArgmaxVoter(score_bits=16, index_bits=4)
        block = voter.hardware()
        assert block.counts["DFF"] == 16 + 4
        assert block.counts["XNOR2"] == 16  # one 16-bit comparator, not a tree

    def test_invalid_widths_rejected(self):
        with pytest.raises(ValueError):
            SequentialArgmaxVoter(score_bits=0, index_bits=2)

    @given(st.lists(st.integers(min_value=-500, max_value=500), min_size=1, max_size=12))
    @settings(max_examples=80, deadline=None)
    def test_voter_equals_argmax_property(self, scores):
        voter = SequentialArgmaxVoter(score_bits=16, index_bits=4)
        assert voter.decide(scores) == int(np.argmax(scores))


class TestCombinationalVoter:
    def test_decide_matches_argmax(self, rng):
        voter = CombinationalArgmaxVoter(5, score_bits=12, index_bits=3)
        for _ in range(20):
            scores = rng.integers(-100, 100, size=5).tolist()
            assert voter.decide(scores) == int(np.argmax(scores))

    def test_wrong_score_count_rejected(self):
        voter = CombinationalArgmaxVoter(4, score_bits=8, index_bits=2)
        with pytest.raises(ValueError):
            voter.decide([1, 2])

    def test_sequential_voter_cheaper_than_combinational_tree(self):
        """The sequential argmax is the area argument of the paper's voter."""
        from repro.hw.pdk import EGFET_PDK

        seq = SequentialArgmaxVoter(score_bits=16, index_bits=4).hardware()
        comb = CombinationalArgmaxVoter(10, score_bits=16, index_bits=4).hardware()
        assert seq.area_cm2(EGFET_PDK) < comb.area_cm2(EGFET_PDK)
