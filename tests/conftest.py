"""Shared fixtures for the test suite.

The fixtures build one small, fast, deterministic classification problem and
derive trained / quantized models and generated designs from it, so the many
tests that need "some trained SVM" or "some sequential design" do not each
pay the training cost.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.design_flow import FlowConfig
from repro.core.sequential_svm import SequentialSVMDesign
from repro.datasets.synthetic import SyntheticSpec, make_classification
from repro.ml.mlp import MLPClassifier
from repro.ml.multiclass import OneVsOneClassifier, OneVsRestClassifier
from repro.ml.preprocessing import prepare_split
from repro.ml.quantization import (
    quantize_linear_classifier,
    quantize_mlp_classifier,
)
from repro.ml.svm import LinearSVC


@pytest.fixture(scope="session")
def small_problem():
    """A small, well-separated 4-class problem (120 samples, 6 features)."""
    spec = SyntheticSpec(
        n_samples=120,
        n_features=6,
        n_classes=4,
        separability=3.5,
        seed=7,
    )
    X, y = make_classification(spec)
    return X, y


@pytest.fixture(scope="session")
def small_split(small_problem):
    """The small problem after the paper's preprocessing pipeline."""
    X, y = small_problem
    return prepare_split(X, y, test_size=0.25, random_state=1)


@pytest.fixture(scope="session")
def trained_ovr(small_split):
    """An OvR linear SVM trained on the small problem."""
    clf = OneVsRestClassifier(LinearSVC(C=1.0, max_iter=60, random_state=0))
    clf.fit(small_split.X_train, small_split.y_train)
    return clf


@pytest.fixture(scope="session")
def trained_ovo(small_split):
    """An OvO linear SVM trained on the small problem."""
    clf = OneVsOneClassifier(LinearSVC(C=1.0, max_iter=60, random_state=0))
    clf.fit(small_split.X_train, small_split.y_train)
    return clf


@pytest.fixture(scope="session")
def trained_mlp(small_split):
    """A small MLP trained on the small problem."""
    clf = MLPClassifier(hidden_layer_sizes=(4,), max_epochs=80, random_state=0)
    clf.fit(small_split.X_train, small_split.y_train)
    return clf


@pytest.fixture(scope="session")
def quantized_ovr(trained_ovr):
    """The OvR SVM quantized to 4-bit inputs / 6-bit weights."""
    return quantize_linear_classifier(trained_ovr, input_bits=4, weight_bits=6)


@pytest.fixture(scope="session")
def quantized_ovo(trained_ovo):
    """The OvO SVM quantized to 4-bit inputs / 6-bit weights."""
    return quantize_linear_classifier(trained_ovo, input_bits=4, weight_bits=6)


@pytest.fixture(scope="session")
def quantized_mlp(trained_mlp):
    """The MLP quantized to 4-bit inputs / 6-bit weights."""
    return quantize_mlp_classifier(trained_mlp, input_bits=4, weight_bits=6)


@pytest.fixture(scope="session")
def sequential_design(quantized_ovr):
    """The sequential SVM circuit generated from the quantized OvR model."""
    return SequentialSVMDesign(quantized_ovr, dataset="small-problem")


@pytest.fixture(scope="session")
def tiny_flow_config():
    """A very small flow configuration used by the end-to-end flow tests."""
    return FlowConfig(
        n_samples=220,
        svm_max_iter=20,
        mlp_max_epochs=25,
        mlp_hidden_neurons=4,
    )


@pytest.fixture()
def rng():
    """A fresh deterministic random generator per test."""
    return np.random.default_rng(1234)
