#!/usr/bin/env python
"""Regenerate ``BENCH_serving.json`` (serving-throughput trajectory).

Usage (from anywhere — output lands at the repository root)::

    PYTHONPATH=src python scripts/bench_serving.py
    PYTHONPATH=src python scripts/bench_serving.py --requests 8192 --batch-sizes 64 256

Records requests/s for one-request-at-a-time serving vs micro-batched
concurrent serving at several ``max_batch_size`` ceilings, next to the
measured batch occupancy and a bit-exactness check against the design's
direct ``run_batch``.  The perf-smoke benchmark
(``pytest benchmarks/test_perf_serving.py``) runs the same measurements and
asserts the >=5x micro-batching floor, so serving regressions surface in CI.
"""

import sys
from pathlib import Path

# Allow running straight from a checkout without installing the package.
sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.serve.bench import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
