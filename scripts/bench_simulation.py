#!/usr/bin/env python
"""Regenerate ``BENCH_simulation.json`` (simulator throughput trajectory).

Usage (from the repo root)::

    PYTHONPATH=src python scripts/bench_simulation.py           # fast config
    PYTHONPATH=src python scripts/bench_simulation.py --full    # larger sweeps
    PYTHONPATH=src python scripts/bench_simulation.py --compare # diff, no write

Records samples/s for the vectorized datapath simulators, gate-evals/s for
every execution engine (``interp`` / ``fused`` / ``codegen``) and a
roofline section relating each engine to the measured memcpy bandwidth,
next to the per-path speedup over the interpreted seed implementation.
The perf-smoke benchmark (``pytest benchmarks/test_perf_simulation.py``)
runs the same measurements and asserts the speedup floors, so simulator
regressions surface in CI.

``--compare [--baseline PATH]`` runs a fresh fast-config benchmark and
prints every tracked metric that dropped more than 10% vs the committed
``BENCH_simulation.json`` (or ``PATH``) instead of overwriting it.  It
always exits 0 — CI runs it non-blocking after the floors, as an advisory
signal only (absolute numbers are machine-dependent).
"""

import sys
from pathlib import Path

# Allow running straight from a checkout without installing the package.
sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.perf.benchmark import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
