#!/usr/bin/env python
"""Regenerate ``BENCH_simulation.json`` (simulator throughput trajectory).

Usage (from the repo root)::

    PYTHONPATH=src python scripts/bench_simulation.py           # fast config
    PYTHONPATH=src python scripts/bench_simulation.py --full    # larger sweeps

Records samples/s for the vectorized datapath simulators and gate-evals/s
for the compiled bit-parallel netlist engine, next to the per-path speedup
over the interpreted seed implementation.  The perf-smoke benchmark
(``pytest benchmarks/test_perf_simulation.py``) runs the same measurements
and asserts the speedup floors, so simulator regressions surface in CI.
"""

import sys
from pathlib import Path

# Allow running straight from a checkout without installing the package.
sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.perf.benchmark import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
