#!/usr/bin/env python
"""Regenerate ``BENCH_flow.json`` (Table I flow-execution trajectory).

Usage (from the repo root)::

    PYTHONPATH=src python scripts/bench_flow.py
    PYTHONPATH=src python scripts/bench_flow.py --datasets redwine --jobs 4

Records rows/s for cold (train-everything), warm (served entirely from the
persistent on-disk flow cache) and process-sharded Table I regeneration,
next to the warm-vs-cold speedup and the number of training calls each run
executed.  The perf-smoke benchmark (``pytest benchmarks/test_perf_flow.py``)
runs the same measurements and asserts the warm-cache floor, so caching
regressions surface in CI.
"""

import sys
from pathlib import Path

# Allow running straight from a checkout without installing the package.
sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.perf.flow_bench import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
