#!/usr/bin/env python
"""Documentation consistency checks (the CI docs job).

Two classes of rot this catches:

1. **Dead links** — every relative markdown link in ``README.md`` and
   ``docs/*.md`` must resolve to an existing file or directory (anchors
   are stripped; absolute ``http(s)://`` / ``mailto:`` links are skipped).
2. **Phantom flags** — every ``--flag`` mentioned in ``docs/cli.md`` must
   be defined in ``src/repro/cli.py``, and every flag ``cli.py`` defines
   must be documented in ``docs/cli.md``, so the CLI reference can never
   drift from the implementation in either direction.

Usage (from anywhere)::

    python scripts/check_docs.py

Exits non-zero listing every problem found.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Set

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Markdown files whose relative links must resolve.
LINKED_DOCS = [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]

#: The flag reference and its implementation.
CLI_DOC = REPO_ROOT / "docs" / "cli.md"
CLI_SOURCE = REPO_ROOT / "src" / "repro" / "cli.py"

#: ``[text](target)`` markdown links (images included via the leading ``!?``).
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
#: Long-option tokens (``--jobs``, ``--max-batch-size``, ...).
_FLAG_RE = re.compile(r"(?<![\w-])--[a-z][a-z0-9]*(?:-[a-z0-9]+)*")
#: Flag definitions inside add_argument calls.
_ARGDEF_RE = re.compile(r"add_argument\(\s*\"(--[a-z0-9-]+)\"")


def check_links(paths: List[Path]) -> List[str]:
    """Every relative link target must exist on disk."""
    problems: List[str] = []
    for path in paths:
        if not path.is_file():
            problems.append(f"{path.relative_to(REPO_ROOT)}: file missing")
            continue
        for line_no, line in enumerate(path.read_text().splitlines(), start=1):
            for target in _LINK_RE.findall(line):
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                resolved = (path.parent / target.split("#", 1)[0]).resolve()
                if not resolved.exists():
                    problems.append(
                        f"{path.relative_to(REPO_ROOT)}:{line_no}: "
                        f"dead link -> {target}"
                    )
    return problems


def documented_flags() -> Set[str]:
    """Every long option mentioned anywhere in the CLI reference."""
    return set(_FLAG_RE.findall(CLI_DOC.read_text()))


def implemented_flags() -> Set[str]:
    """Every long option cli.py defines via add_argument."""
    return set(_ARGDEF_RE.findall(CLI_SOURCE.read_text()))


def check_cli_flags() -> List[str]:
    """The CLI reference and cli.py must agree on the flag set, both ways."""
    problems: List[str] = []
    documented = documented_flags()
    implemented = implemented_flags()
    for flag in sorted(documented - implemented):
        problems.append(
            f"docs/cli.md documents {flag}, but src/repro/cli.py does not "
            "define it"
        )
    for flag in sorted(implemented - documented):
        problems.append(
            f"src/repro/cli.py defines {flag}, but docs/cli.md does not "
            "document it"
        )
    return problems


def main() -> int:
    problems = check_links(LINKED_DOCS) + check_cli_flags()
    if problems:
        print(f"{len(problems)} documentation problem(s):")
        for problem in problems:
            print(f"  {problem}")
        return 1
    n_links = sum(
        len(_LINK_RE.findall(p.read_text())) for p in LINKED_DOCS if p.is_file()
    )
    print(
        f"docs OK: {len(LINKED_DOCS)} files, {n_links} links checked, "
        f"{len(implemented_flags())} CLI flags consistent"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
