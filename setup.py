"""Setuptools shim.

Project metadata lives in ``pyproject.toml``; this file only exists so the
package can be installed editable (``pip install -e .``) in offline
environments whose pip/setuptools combination lacks the ``wheel`` package
required by the PEP 660 editable-install path.
"""

from setuptools import setup

setup()
