"""Compiled, vectorized simulation engine (the repo's performance subsystem).

The verification / evaluation hot path used to be interpreted Python: the
gate-level simulator walked netlists one gate at a time through dict lookups
and both datapath simulators looped sample by sample.  This package replaces
that with a two-stage compile -> bitsim pipeline:

* :mod:`repro.perf.compile` — lowers a
  :class:`~repro.hw.netlist.GateNetlist` into a
  :class:`~repro.perf.compile.CompiledProgram`: flat numpy opcode / operand
  / destination index arrays over a dense net-slot table, in topological
  order, with multi-output cells (HA / FA) expanded into primitive bit ops.
* :mod:`repro.perf.bitsim` — executes a compiled program bit-parallel: 64
  test vectors are packed per ``uint64`` word and every op is one numpy
  bitwise kernel, so a sweep costs ``O(gates * vectors / 64)`` instead of
  ``O(gates * vectors)`` interpreted steps.
* :mod:`repro.perf.engines` — fused and code-generating execution backends
  behind one ``engine='interp'|'fused'|'codegen'|'native'|'auto'``
  selector: ``fused`` levelizes the op stream and executes one
  gather/op/scatter per (layer, opcode) group; ``codegen`` emits the whole
  cone as one generated, ``compile()``d Python function (cached per netlist
  structure) that runs on numpy words or whole-row Python bigints depending
  on batch size.  All are bit-exact vs ``interp``; the selector threads
  through :func:`~repro.perf.bitsim.evaluator_for`, the sequential engine,
  the benchmarks and the ``repro-table1 --engine`` flag.
* :mod:`repro.perf.native` — the ``native`` engine: the same planned kernel
  emitted as C, compiled with the system toolchain (``-O2 -fPIC -shared``)
  into a shared object called through ``ctypes`` (which releases the GIL,
  so large batches shard the word axis across a persistent thread pool),
  cached in memory and on disk under the ``$REPRO_CACHE_DIR`` root.
  Degrades to ``codegen`` with a one-time warning on hosts without a C
  compiler.
* :mod:`repro.perf.seqsim` — the *sequential* engine: clocked netlists
  (real D flip-flops, feedback loops) split at their register boundaries
  into one combinational cone program, then clocked N cycles with packed
  per-flip-flop ``uint64`` state words — 64 vectors advance per word per
  cycle.  ``opt_level`` optimizes the combinational regions between the
  register barriers.  The interpreted per-cycle walk survives as
  :func:`repro.hw.simulate.simulate_sequential_reference` (the oracle).
* :mod:`repro.perf.benchmark` — measures simulation throughput
  (samples/s, gate-evals/s) and records it to ``BENCH_simulation.json`` so
  the performance trajectory is tracked PR over PR.  Run it via
  ``python scripts/bench_simulation.py`` or
  ``pytest benchmarks/test_perf_simulation.py``.
* :mod:`repro.perf.flow_bench` — measures the flow-execution layer above the
  simulators (cold vs warm-from-persistent-cache vs process-sharded Table I
  regeneration, see :mod:`repro.core.flow_executor`) and records rows/s and
  the warm-vs-cold speedup to ``BENCH_flow.json``.  Run it via
  ``python scripts/bench_flow.py`` or ``pytest benchmarks/test_perf_flow.py``.

:func:`repro.hw.simulate.simulate_combinational` and the two datapath
simulators' ``run_batch`` methods are wired onto this engine; the scalar
gate walk survives as :func:`~repro.hw.simulate.simulate_combinational_reference`
and the per-sample :meth:`~repro.hw.simulate.SequentialDatapathSimulator.run`
remains the trace-producing oracle that the vectorized paths are tested
bit-exactly against.

Since PR 3 the compile entry points accept ``opt_level=`` and lower the
:mod:`repro.hw.opt` pass-optimized netlist instead of the raw one (0 = raw,
the oracle).  Since PR 4 the batch serving subsystem (:mod:`repro.serve`)
sits directly on the ``run_batch`` hot paths: its micro-batching queue
coalesces concurrent predict requests into the single-matmul calls this
package vectorizes (throughput tracked in ``BENCH_serving.json``).
"""

from repro.perf.bitsim import (
    BitParallelEvaluator,
    evaluator_for,
    pack_vectors,
    simulate_netlist_batch,
    unpack_vectors,
    words_to_ints,
    words_to_signed_ints,
)
from repro.perf.compile import CompiledProgram, compile_netlist
from repro.perf.engines import (
    ENGINES,
    CodegenEvaluator,
    FusedEvaluator,
    KernelPlan,
    available_engines,
    generate_kernel_source,
    levelize,
    make_evaluator,
    plan_kernel,
    resolve_engine,
)
from repro.perf.flow_bench import run_flow_benchmark
from repro.perf.native import (
    NativeEvaluator,
    find_toolchain,
    generate_c_kernel_source,
    native_available,
)
from repro.perf.seqsim import (
    SequentialEvaluator,
    SequentialProgram,
    compile_sequential,
    sequential_evaluator_for,
    simulate_sequential_batch,
)

__all__ = [
    "run_flow_benchmark",
    "BitParallelEvaluator",
    "CodegenEvaluator",
    "CompiledProgram",
    "ENGINES",
    "FusedEvaluator",
    "KernelPlan",
    "NativeEvaluator",
    "SequentialEvaluator",
    "SequentialProgram",
    "available_engines",
    "compile_netlist",
    "compile_sequential",
    "evaluator_for",
    "find_toolchain",
    "generate_c_kernel_source",
    "generate_kernel_source",
    "levelize",
    "make_evaluator",
    "native_available",
    "pack_vectors",
    "plan_kernel",
    "resolve_engine",
    "sequential_evaluator_for",
    "simulate_netlist_batch",
    "simulate_sequential_batch",
    "unpack_vectors",
    "words_to_ints",
    "words_to_signed_ints",
]
