"""Flow-execution benchmarks: Table I regeneration throughput and caching.

Measures what the :mod:`repro.core.flow_executor` subsystem buys on the most
expensive evaluation surface — regenerating the paper's Table I — and records
the results to ``BENCH_flow.json`` so flow throughput is tracked PR over PR:

* **cold** — every (dataset, kind) pair trained from scratch (the seed
  behaviour), in table rows per second;
* **warm** — the same regeneration served entirely from the persistent
  on-disk cache (in-process caches cleared first), plus the warm-vs-cold
  speedup and the number of training calls the warm run executed (must be 0);
* **sharded** — a cold regeneration fanned out across worker processes via
  ``jobs=`` (informative on multi-core hosts; the result is bit-identical to
  the serial path either way).

Entry points: ``python scripts/bench_flow.py`` (writes the JSON) and
``pytest benchmarks/test_perf_flow.py`` (asserts the warm-cache floor and
refreshes the JSON).  Both use :func:`run_flow_benchmark`.
"""

from __future__ import annotations

import json
import os
import platform
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.design_flow import (
    clear_flow_cache,
    fast_config,
    training_run_count,
)
from repro.core.flow_executor import FlowResultCache
from repro.eval.table1 import generate_table1, table1_aggregates


from repro.core.paths import bench_output_path as _bench_output_path

#: Default location of the recorded benchmark results (repository root,
#: regardless of the directory the benchmark is launched from).
DEFAULT_OUTPUT = _bench_output_path("BENCH_flow.json")

#: Datasets the benchmark regenerates (a representative Table I subset that
#: keeps the cold run to a few seconds with the fast configuration).
DEFAULT_DATASETS = ("redwine", "cardio")


def run_flow_benchmark(
    datasets: Sequence[str] = DEFAULT_DATASETS,
    jobs: Optional[int] = None,
    warm_repeats: int = 3,
) -> Dict:
    """Benchmark cold / warm / sharded Table I regeneration.

    Parameters
    ----------
    datasets:
        Table I datasets to regenerate.
    jobs:
        Worker count of the sharded cold run (default: every core, at least 2
        so the process-pool path is exercised even on one-core hosts).
    warm_repeats:
        The warm measurement is best-of-``warm_repeats`` with the in-process
        caches cleared before each repeat, so it always times the on-disk
        layer rather than the in-memory one.

    Example::

        results = run_flow_benchmark(datasets=("redwine",))
        results["warm"]["speedup_vs_cold"]      # >= 5 on any healthy host
        results["warm"]["training_calls"]       # always 0
    """
    datasets = list(datasets)
    config = fast_config()
    n_jobs = jobs if jobs is not None else max(2, os.cpu_count() or 1)

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        cache = FlowResultCache(tmp)

        clear_flow_cache()
        trainings_before = training_run_count()
        start = time.perf_counter()
        table_cold = generate_table1(datasets=datasets, config=config, cache=cache)
        t_cold = time.perf_counter() - start
        cold_trainings = training_run_count() - trainings_before
        n_rows = len(table_cold.entries)
        aggregates_cold = table1_aggregates(table_cold)

        t_warm = float("inf")
        warm_trainings = 0
        for _ in range(warm_repeats):
            clear_flow_cache()
            trainings_before = training_run_count()
            start = time.perf_counter()
            table_warm = generate_table1(datasets=datasets, config=config, cache=cache)
            t_warm = min(t_warm, time.perf_counter() - start)
            warm_trainings += training_run_count() - trainings_before
        aggregates_warm = table1_aggregates(table_warm)
        identical = aggregates_warm == aggregates_cold and [
            e.measured for e in table_warm.entries
        ] == [e.measured for e in table_cold.entries]

    # Sharded cold run: fresh processes, no persistent layer, jobs workers.
    clear_flow_cache()
    start = time.perf_counter()
    table_sharded = generate_table1(
        datasets=datasets, config=config, cache=False, jobs=n_jobs
    )
    t_sharded = time.perf_counter() - start
    sharded_identical = table1_aggregates(table_sharded) == aggregates_cold and [
        e.measured for e in table_sharded.entries
    ] == [e.measured for e in table_cold.entries]

    return {
        "benchmark": "flow_execution",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": float(os.cpu_count() or 1),
        "datasets": datasets,
        "n_rows": float(n_rows),
        "cold": {
            "seconds": t_cold,
            "rows_per_s": n_rows / t_cold,
            "training_calls": float(cold_trainings),
        },
        "warm": {
            "seconds": t_warm,
            "rows_per_s": n_rows / t_warm,
            "training_calls": float(warm_trainings),
            "speedup_vs_cold": t_cold / t_warm,
            "bit_identical_to_cold": identical,
        },
        "sharded": {
            "jobs": float(n_jobs),
            "seconds": t_sharded,
            "rows_per_s": n_rows / t_sharded,
            "speedup_vs_cold": t_cold / t_sharded,
            "bit_identical_to_cold": sharded_identical,
        },
    }


def write_benchmark(results: Dict, path: Union[str, Path, None] = None) -> Path:
    """Serialize a results document to ``BENCH_flow.json``."""
    path = Path(path) if path is not None else DEFAULT_OUTPUT
    path.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    return path


def main(argv: Optional[List[str]] = None) -> int:
    """CLI used by ``scripts/bench_flow.py``."""
    import argparse

    parser = argparse.ArgumentParser(
        description="Measure Table I flow throughput and record BENCH_flow.json."
    )
    parser.add_argument(
        "--datasets",
        nargs="+",
        default=list(DEFAULT_DATASETS),
        help="Table I datasets to regenerate",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker count of the sharded run (default: all cores, min 2)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"output JSON path (default: {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)
    results = run_flow_benchmark(datasets=args.datasets, jobs=args.jobs)
    path = write_benchmark(results, args.output)
    print(
        f"cold    {results['cold']['rows_per_s']:8.2f} rows/s "
        f"({results['cold']['training_calls']:.0f} trainings)"
    )
    print(
        f"warm    {results['warm']['rows_per_s']:8.2f} rows/s "
        f"({results['warm']['speedup_vs_cold']:.1f}x vs cold, "
        f"{results['warm']['training_calls']:.0f} trainings)"
    )
    print(
        f"sharded {results['sharded']['rows_per_s']:8.2f} rows/s "
        f"(jobs={results['sharded']['jobs']:.0f}, "
        f"{results['sharded']['speedup_vs_cold']:.2f}x vs cold)"
    )
    print(f"results written to {path}")
    return 0
