"""Bit-parallel evaluation of compiled netlist programs.

Classic bit-parallel (a.k.a. "bit-sliced") logic simulation: each net slot
holds a row of ``uint64`` words, with bit ``s`` of word ``w`` carrying the
net's value for test vector ``64*w + s``.  Evaluating one primitive op of a
:class:`~repro.perf.compile.CompiledProgram` with a numpy bitwise operation
therefore advances *64 vectors per word* at once, turning a sweep of ``V``
vectors over ``G`` gates from ``O(G * V)`` interpreted Python into
``O(G * V / 64)`` vectorized kernel work.

Typical use::

    program = compile_netlist(netlist)
    evaluator = BitParallelEvaluator(program)
    out_bits = evaluator.evaluate(input_bits)   # (n_vectors, n_outputs)

or, one level higher, :func:`simulate_netlist_batch` straight from the
netlist.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.hw.cells import CellLibrary
from repro.hw.netlist import GateNetlist
from repro.hw.pdk import EGFET_PDK
from repro.perf.compile import (
    OP_AND2,
    OP_AND3,
    OP_BUF,
    OP_MUX2,
    OP_NAND2,
    OP_NOR2,
    OP_NOT,
    OP_OR2,
    OP_OR3,
    OP_XNOR2,
    OP_XOR2,
    CompiledProgram,
    SLOT_ONE,
    SLOT_ZERO,
    compile_netlist,
)

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)
_BIT_POSITIONS = np.arange(64, dtype=np.uint64)


def pack_vectors(bits: np.ndarray) -> Tuple[np.ndarray, int]:
    """Pack a ``(n_vectors, n_lines)`` 0/1 matrix into ``uint64`` words.

    Returns ``(packed, n_vectors)`` where ``packed`` has shape
    ``(n_lines, n_words)`` and bit ``s`` of ``packed[l, w]`` is
    ``bits[64*w + s, l]``.

    Example::

        packed, n = pack_vectors(np.eye(3, dtype=int))   # 3 vectors, 3 lines
        packed.shape, n                                  # ((3, 1), 3)
    """
    bits = np.asarray(bits)
    if bits.ndim != 2:
        raise ValueError("expected a 2-D (n_vectors, n_lines) bit matrix")
    n_vectors, n_lines = bits.shape
    n_words = max((n_vectors + 63) // 64, 1)
    padded = np.zeros((n_words * 64, n_lines), dtype=np.uint64)
    padded[:n_vectors] = (bits != 0).astype(np.uint64)
    # (n_lines, n_words, 64) -> shift each sample to its bit position, OR up.
    lanes = padded.T.reshape(n_lines, n_words, 64)
    packed = np.bitwise_or.reduce(lanes << _BIT_POSITIONS, axis=2)
    return packed, n_vectors


def unpack_vectors(packed: np.ndarray, n_vectors: int) -> np.ndarray:
    """Inverse of :func:`pack_vectors`: ``(n_lines, n_words)`` -> bit matrix.

    Example::

        bits = np.array([[1, 0, 1], [0, 1, 1]])
        packed, n = pack_vectors(bits)
        assert np.array_equal(unpack_vectors(packed, n), bits)
    """
    packed = np.asarray(packed, dtype=np.uint64)
    bits = (packed[:, :, None] >> _BIT_POSITIONS) & np.uint64(1)
    n_lines = packed.shape[0]
    return bits.reshape(n_lines, -1).T[:n_vectors].astype(np.int64)


class BitParallelEvaluator:
    """Executes a :class:`CompiledProgram` on packed ``uint64`` vector words.

    Example::

        evaluator = BitParallelEvaluator(compile_netlist(netlist))
        out_bits = evaluator.evaluate(input_bits)    # (n_vectors, n_outputs)
    """

    def __init__(self, program: CompiledProgram) -> None:
        self.program = program
        # Pre-materialise the op stream as plain Python ints: the evaluation
        # loop is the hot path and repeated numpy scalar extraction would
        # dominate it.
        self._ops: List[Tuple[int, int, int, int, int]] = [
            (
                int(program.opcodes[k]),
                int(program.operands[k, 0]),
                int(program.operands[k, 1]),
                int(program.operands[k, 2]),
                int(program.dsts[k]),
            )
            for k in range(program.n_ops)
        ]

    # ------------------------------------------------------------------ #
    def evaluate_packed(self, packed_inputs: np.ndarray) -> np.ndarray:
        """Run the program; returns the full slot state ``(n_slots, n_words)``.

        ``packed_inputs`` must have shape ``(n_inputs, n_words)`` with rows in
        ``program.input_names`` order (as produced by :func:`pack_vectors`).
        """
        program = self.program
        packed_inputs = np.asarray(packed_inputs, dtype=np.uint64)
        if packed_inputs.ndim != 2 or packed_inputs.shape[0] != program.n_inputs:
            raise ValueError(
                f"expected packed inputs of shape ({program.n_inputs}, n_words), "
                f"got {packed_inputs.shape}"
            )
        n_words = packed_inputs.shape[1]
        state = np.zeros((program.n_slots, n_words), dtype=np.uint64)
        state[SLOT_ONE] = _ALL_ONES
        if program.n_inputs:
            state[program.input_slots] = packed_inputs

        for op, a, b, c, dst in self._ops:
            if op == OP_AND2:
                state[dst] = state[a] & state[b]
            elif op == OP_XOR2:
                state[dst] = state[a] ^ state[b]
            elif op == OP_OR2:
                state[dst] = state[a] | state[b]
            elif op == OP_NOT:
                state[dst] = ~state[a]
            elif op == OP_BUF:
                state[dst] = state[a]
            elif op == OP_MUX2:
                sel = state[c]
                state[dst] = (state[b] & sel) | (state[a] & ~sel)
            elif op == OP_NAND2:
                state[dst] = ~(state[a] & state[b])
            elif op == OP_NOR2:
                state[dst] = ~(state[a] | state[b])
            elif op == OP_XNOR2:
                state[dst] = ~(state[a] ^ state[b])
            elif op == OP_AND3:
                state[dst] = state[a] & state[b] & state[c]
            elif op == OP_OR3:
                state[dst] = state[a] | state[b] | state[c]
            else:  # pragma: no cover - compiler emits only known opcodes
                raise RuntimeError(f"unknown opcode {op}")
        return state

    # ------------------------------------------------------------------ #
    def evaluate_single(self, input_bits: Sequence[int]) -> List[int]:
        """Run the program for one vector on plain Python ints.

        Numpy kernels only pay off with many vectors per word; for the
        single-vector case (``simulate_combinational``) executing the same
        compiled program on scalars is several times faster than both the
        packed path and the interpreted per-gate walk.  Returns the full
        slot state as a list of 0/1 ints.
        """
        program = self.program
        if len(input_bits) != program.n_inputs:
            raise ValueError(
                f"expected {program.n_inputs} input bits, got {len(input_bits)}"
            )
        state = [0] * program.n_slots
        state[SLOT_ONE] = 1
        for slot, bit in zip(program.input_slots, input_bits):
            state[slot] = 1 if bit else 0

        for op, a, b, c, dst in self._ops:
            if op == OP_AND2:
                state[dst] = state[a] & state[b]
            elif op == OP_XOR2:
                state[dst] = state[a] ^ state[b]
            elif op == OP_OR2:
                state[dst] = state[a] | state[b]
            elif op == OP_NOT:
                state[dst] = 1 - state[a]
            elif op == OP_BUF:
                state[dst] = state[a]
            elif op == OP_MUX2:
                state[dst] = state[b] if state[c] else state[a]
            elif op == OP_NAND2:
                state[dst] = 1 - (state[a] & state[b])
            elif op == OP_NOR2:
                state[dst] = 1 - (state[a] | state[b])
            elif op == OP_XNOR2:
                state[dst] = 1 - (state[a] ^ state[b])
            elif op == OP_AND3:
                state[dst] = state[a] & state[b] & state[c]
            elif op == OP_OR3:
                state[dst] = state[a] | state[b] | state[c]
            else:  # pragma: no cover - compiler emits only known opcodes
                raise RuntimeError(f"unknown opcode {op}")
        return state

    def evaluate_packed_slots(
        self, packed_inputs: np.ndarray, slots: Sequence[int]
    ) -> np.ndarray:
        """Run the program and return only the requested slot rows.

        The narrow-waist API the execution engines specialise: the interp
        engine computes the full state and indexes it, while the codegen
        engine compiles a dedicated kernel per slot tuple that never
        materialises unrequested slots.  ``slots`` may repeat and may name
        constant or input slots (sequential cones do both).

        Example::

            rows = evaluator.evaluate_packed_slots(packed, program.output_slots)
        """
        slots = np.asarray(slots, dtype=np.int64)
        return self.evaluate_packed(packed_inputs)[slots]

    def evaluate(self, input_bits: np.ndarray) -> np.ndarray:
        """Evaluate primary outputs for a ``(n_vectors, n_inputs)`` bit matrix.

        Returns a ``(n_vectors, n_outputs)`` 0/1 matrix with columns in
        ``program.output_names`` order.
        """
        packed, n_vectors = pack_vectors(input_bits)
        rows = self.evaluate_packed_slots(packed, self.program.output_slots)
        return unpack_vectors(rows, n_vectors)

    def evaluate_nets(self, input_bits: np.ndarray) -> Dict[str, np.ndarray]:
        """Evaluate and return the value of every *named* net.

        Returns ``{net: (n_vectors,) 0/1 array}`` covering constants, primary
        inputs and every gate output — the batch analogue of
        :func:`repro.hw.simulate.simulate_combinational`'s result dict.
        """
        packed, n_vectors = pack_vectors(input_bits)
        named = sorted(self.program.net_slots.items(), key=lambda kv: kv[1])
        slots = np.asarray([slot for _, slot in named], dtype=np.int64)
        bits = unpack_vectors(self.evaluate_packed_slots(packed, slots), n_vectors)
        return {net: bits[:, k] for k, (net, _) in enumerate(named)}


def evaluator_for(
    netlist: GateNetlist,
    library: Optional[CellLibrary] = None,
    opt_level: int = 0,
    engine: str = "auto",
) -> BitParallelEvaluator:
    """Compile (cached) and wrap a netlist for bit-parallel evaluation.

    ``opt_level`` selects the :mod:`repro.hw.opt` pipeline level the program
    is compiled at (0 = raw netlist, the oracle); ``engine`` selects the
    execution engine (``'interp'``, ``'fused'``, ``'codegen'`` or
    ``'auto'`` — see :mod:`repro.perf.engines`).  Evaluators are cached per
    compiled program *and* resolved engine, so alternating between levels or
    engines does not rewrap, and any structural mutation of the netlist
    drops the evaluator together with its compiled kernels.

    Example::

        evaluator = evaluator_for(netlist, opt_level=2, engine="codegen")
        evaluator.evaluate(vectors)          # bit-parallel sweep
        evaluator.evaluate_single([0, 1, 1]) # scalar fast path
    """
    from repro.perf.engines import make_evaluator, resolve_engine

    library = library or EGFET_PDK
    program = compile_netlist(netlist, library, opt_level=opt_level)
    resolved = resolve_engine(engine, program)
    cache = getattr(netlist, "_bitsim_evaluator_cache", None)
    if not isinstance(cache, dict):
        cache = {}
        netlist._bitsim_evaluator_cache = cache
    # Same key shape as the compile cache plus the resolved engine; the
    # `is`-check on the program guards against a recycled library id after
    # garbage collection.
    signature = netlist.structural_signature()
    key = (id(library), signature, int(opt_level), resolved)
    cached = cache.get(key)
    if cached is not None and cached[0] is program:
        return cached[1]
    evaluator = make_evaluator(program, resolved)
    # Evaluators wrapped for older structures can never be served again.
    for stale in [k for k in cache if k[1] != signature]:
        del cache[stale]
    cache[key] = (program, evaluator)
    return evaluator


def simulate_netlist_batch(
    netlist: GateNetlist,
    input_bits: np.ndarray,
    library: Optional[CellLibrary] = None,
    opt_level: int = 0,
    engine: str = "auto",
) -> np.ndarray:
    """Bit-parallel sweep of a netlist: outputs for a batch of input vectors.

    ``input_bits`` has shape ``(n_vectors, n_inputs)`` with columns in
    ``netlist.inputs`` order; the result has shape ``(n_vectors, n_outputs)``
    with columns in ``netlist.outputs`` order.  ``opt_level > 0`` evaluates
    the pass-optimized program instead of the raw one (same outputs, fewer
    ops — bit-exactness is enforced by the equivalence suite); ``engine``
    selects the execution backend (see :mod:`repro.perf.engines`).

    Example::

        netlist = build_ripple_adder_netlist(4)
        vectors = rng.integers(0, 2, size=(256, len(netlist.inputs)))
        outputs = simulate_netlist_batch(netlist, vectors, opt_level=2)
    """
    return evaluator_for(
        netlist, library, opt_level=opt_level, engine=engine
    ).evaluate(input_bits)


def words_to_ints(bits: np.ndarray, lanes: Sequence[int]) -> np.ndarray:
    """Assemble integer values from bit columns (LSB-first lane order).

    Convenience for decoding multi-bit buses out of :meth:`evaluate` results:
    ``words_to_ints(out_bits, [i0, i1, ...])`` returns
    ``sum_k out_bits[:, ik] << k`` per vector.

    Example::

        sums = words_to_ints(out_bits, [0, 1, 2, 3])   # 4-bit LSB-first bus
    """
    bits = np.asarray(bits, dtype=np.int64)
    value = np.zeros(bits.shape[0], dtype=np.int64)
    for k, lane in enumerate(lanes):
        value |= bits[:, lane].astype(np.int64) << k
    return value


def words_to_signed_ints(bits: np.ndarray, lanes: Sequence[int]) -> np.ndarray:
    """Like :func:`words_to_ints` but decodes two's complement.

    The last lane is the sign bit: a set MSB subtracts ``2**width``.  Used to
    decode the signed score buses of the gate-level sequential SVM.

    Example::

        scores = words_to_signed_ints(out_bits, range(10))   # 10-bit signed
    """
    lanes = list(lanes)
    value = words_to_ints(bits, lanes)
    width = len(lanes)
    return value - ((value >> (width - 1)) << width)
