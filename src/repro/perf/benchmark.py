"""Simulation-throughput benchmarks for the compiled bit-parallel engine.

Measures the two hot paths the :mod:`repro.perf` subsystem vectorizes and
records the results to ``BENCH_simulation.json`` so simulator throughput is
tracked PR over PR:

* **datapath** — cycle-accurate sequential-SVM and parallel (OvR / OvO)
  batch classification: vectorized ``run_batch`` vs the per-sample scalar
  ``run()`` loop (the seed implementation), in samples/s.
* **gate level** — compiled bit-parallel netlist sweeps vs the interpreted
  per-gate dict-walk reference, in gate-evals/s, over every RTL generator
  family (adder, multiplier, MUX tree, comparator).
* **sequential sim** — the bit-parallel multi-cycle engine
  (:mod:`repro.perf.seqsim`) clocking real flip-flop netlists (the
  gate-level sequential-SVM top, a binary counter) vs the interpreted
  per-cycle walk, in cycle-evals/s, with bit-exactness asserted on every
  run.
* **netlist opt** — gate-count reduction of the :mod:`repro.hw.opt` pass
  pipeline on the hardwired constant-datapath workloads (tied-operand MAC /
  multiplier), plus the simulation speedup of evaluating the optimized
  program and a random-vector equivalence check.
* **roofline** — gate-evals/s of every execution engine (``interp`` /
  ``fused`` / ``codegen`` / ``native`` where a C toolchain exists, see
  :mod:`repro.perf.engines` and :mod:`repro.perf.native`) against a
  measured memcpy-bandwidth baseline, locating each engine between
  dispatch-limited and machine-limited, plus a ``native`` thread-scaling
  curve at 1/2/4 shards over the word axis.

Entry points: ``python scripts/bench_simulation.py`` (writes the JSON;
``--compare`` diffs a fresh run against the committed baseline instead) and
``pytest benchmarks/test_perf_simulation.py`` (asserts the speedup floors
and refreshes the JSON).  Both use :func:`run_simulation_benchmark`.
"""

from __future__ import annotations

import itertools
import json
import os
import platform
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.hw.rtl.adders import build_ripple_adder_netlist
from repro.hw.rtl.comparator import build_comparator_netlist
from repro.hw.rtl.multipliers import (
    build_array_multiplier_netlist,
    build_constant_mac_netlist,
    build_constant_multiplier_netlist,
)
from repro.hw.rtl.mux import build_mux_tree_netlist
from repro.hw.rtl.registers import build_counter_netlist
from repro.hw.rtl.svm_top import build_sequential_svm_netlist
from repro.hw.simulate import (
    ParallelDatapathSimulator,
    SequentialDatapathSimulator,
    simulate_combinational_reference,
    simulate_sequential_reference,
)
from repro.perf.bitsim import evaluator_for
from repro.perf.engines import available_engines
from repro.perf.seqsim import sequential_evaluator_for


def _concrete_engines() -> List[str]:
    """The concrete engines to benchmark on this host, in ENGINES order.

    ``native`` appears only where a C toolchain was found; ``--compare``
    skips metrics present on one side only, so per-host schema drift in the
    recorded document is benign.
    """
    return [e for e in available_engines() if e != "auto"]


from repro.core.paths import bench_output_path as _bench_output_path

#: Default location of the recorded benchmark results.
DEFAULT_OUTPUT = _bench_output_path("BENCH_simulation.json")


def _time(fn, repeats: int = 3) -> float:
    """Best-of-``repeats`` (default and every call site: best-of-3) wall clock.

    One untimed warmup invocation runs before the repeats: first-call costs
    (numpy internal caches, allocator growth, lazily compiled kernels) land
    outside the measurement window, so the perf-smoke floors do not flake on
    cold CI runners.  Both sides of every speedup ratio are then timed with
    the same number of repeats: the vectorized paths finish in well under a
    millisecond where scheduler noise dominates a single sample, and using
    an identical methodology for the scalar baselines keeps the recorded
    ratios unbiased.
    """
    fn()  # warmup, untimed
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# --------------------------------------------------------------------------- #
# Datapath throughput
# --------------------------------------------------------------------------- #
def benchmark_datapath(
    n_classifiers: int = 10,
    n_features: int = 16,
    n_samples: int = 1000,
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Vectorized ``run_batch`` vs the scalar per-sample loop, per simulator."""
    rng = np.random.default_rng(seed)
    X = rng.integers(0, 16, size=(n_samples, n_features), dtype=np.int64)
    results: Dict[str, Dict[str, float]] = {}

    weights = rng.integers(-31, 32, size=(n_classifiers, n_features), dtype=np.int64)
    biases = rng.integers(-100, 100, size=n_classifiers, dtype=np.int64)
    seq = SequentialDatapathSimulator(weights, biases)
    t_scalar = _time(lambda: [seq.run(row).predicted_class for row in X], repeats=3)
    t_batch = _time(lambda: seq.run_batch(X), repeats=3)
    results["sequential_svm"] = _datapath_record(n_samples, t_scalar, t_batch)

    ovr = ParallelDatapathSimulator(weights, biases, strategy="ovr")
    t_scalar = _time(lambda: [ovr.run(row) for row in X], repeats=3)
    t_batch = _time(lambda: ovr.run_batch(X), repeats=3)
    results["parallel_ovr"] = _datapath_record(n_samples, t_scalar, t_batch)

    n_classes = 5
    pairs = list(itertools.combinations(range(n_classes), 2))
    w_ovo = rng.integers(-31, 32, size=(len(pairs), n_features), dtype=np.int64)
    b_ovo = rng.integers(-100, 100, size=len(pairs), dtype=np.int64)
    ovo = ParallelDatapathSimulator(
        w_ovo, b_ovo, strategy="ovo", pairs=pairs, n_classes=n_classes
    )
    t_scalar = _time(lambda: [ovo.run(row) for row in X], repeats=3)
    t_batch = _time(lambda: ovo.run_batch(X), repeats=3)
    results["parallel_ovo"] = _datapath_record(n_samples, t_scalar, t_batch)
    return results


def _datapath_record(n_samples: int, t_scalar: float, t_batch: float) -> Dict[str, float]:
    return {
        "n_samples": float(n_samples),
        "scalar_samples_per_s": n_samples / t_scalar,
        "batch_samples_per_s": n_samples / t_batch,
        "speedup": t_scalar / t_batch,
    }


# --------------------------------------------------------------------------- #
# Gate-level throughput
# --------------------------------------------------------------------------- #
def benchmark_gate_level(
    n_vectors: int = 256, seed: int = 0
) -> Dict[str, Dict[str, float]]:
    """Compiled bit-parallel sweeps vs the interpreted per-gate reference.

    Every concrete execution engine (``interp``, ``fused``, ``codegen``,
    plus ``native`` where a toolchain exists) is timed on each workload and
    checked bit-exact against the interp sweep.  The
    historical ``bitsim_gate_evals_per_s`` / ``speedup`` keys keep their
    meaning (interp engine, full ``evaluate`` including pack/unpack, vs the
    interpreted dict-walk) so the trajectory in ``BENCH_simulation.json``
    stays comparable across PRs; the per-engine keys time the *packed*
    kernel path (``evaluate_packed_slots`` on the output slots) — the
    bit-matrix conversion is identical across engines and is not paid per
    cycle by the sequential engine, so that is where engines actually
    differ.
    """
    netlists = {
        "ripple_adder_16b": build_ripple_adder_netlist(16),
        "array_multiplier_5x5": build_array_multiplier_netlist(5, 5),
        "mux_tree_16": build_mux_tree_netlist(16),
        "comparator_8b": build_comparator_netlist(8),
    }
    rng = np.random.default_rng(seed)
    results: Dict[str, Dict[str, float]] = {}
    for name, netlist in netlists.items():
        vectors = rng.integers(0, 2, size=(n_vectors, len(netlist.inputs)))
        rows = [dict(zip(netlist.inputs, (int(v) for v in vec))) for vec in vectors]

        def _interpreted() -> None:
            for row in rows:
                simulate_combinational_reference(netlist, row)

        # Compile every engine outside the timed region.
        from repro.perf.bitsim import pack_vectors

        engines = _concrete_engines()
        evaluators = {e: evaluator_for(netlist, engine=e) for e in engines}
        reference = evaluators["interp"].evaluate(vectors)
        equivalent = all(
            np.array_equal(ev.evaluate(vectors), reference)
            for ev in evaluators.values()
        )
        packed, _ = pack_vectors(vectors)
        output_slots = evaluators["interp"].program.output_slots
        t_ref = _time(_interpreted, repeats=3)
        t_fast = _time(lambda: evaluators["interp"].evaluate(vectors), repeats=3)
        # The packed kernels run in tens of microseconds; best-of-20 keeps
        # the per-engine ratios (and the perf-smoke engine floor) stable.
        t_engine = {
            e: _time(
                lambda ev=ev: ev.evaluate_packed_slots(packed, output_slots),
                repeats=20,
            )
            for e in engines
            for ev in (evaluators[e],)
        }
        gate_evals = netlist.n_gates() * n_vectors
        record = {
            "n_gates": float(netlist.n_gates()),
            "n_vectors": float(n_vectors),
            "engines_equivalent": 1.0 if equivalent else 0.0,
            "interpreted_gate_evals_per_s": gate_evals / t_ref,
            "bitsim_gate_evals_per_s": gate_evals / t_fast,
            "speedup": t_ref / t_fast,
        }
        for e in engines:
            record[f"{e}_packed_gate_evals_per_s"] = gate_evals / t_engine[e]
            if e != "interp":
                record[f"{e}_speedup_vs_interp"] = t_engine["interp"] / t_engine[e]
        results[name] = record
    return results


# --------------------------------------------------------------------------- #
# Sequential (multi-cycle) gate-level throughput
# --------------------------------------------------------------------------- #
def _sequential_workloads(seed: int) -> Dict[str, "tuple"]:
    """Clocked benchmark netlists: ``name -> (netlist, input_bits, cycles)``."""
    rng = np.random.default_rng(seed)
    n_classifiers, n_features, input_bits = 4, 4, 2
    weights = rng.integers(-7, 8, size=(n_classifiers, n_features))
    biases = rng.integers(-20, 21, size=n_classifiers)
    svm_top, ports = build_sequential_svm_netlist(
        weights, biases, input_bits=input_bits, name="seq_svm_4x4"
    )
    counter = build_counter_netlist(6)
    return {
        "sequential_svm_top_4x4": (svm_top, ports.n_features * input_bits, ports.n_classifiers),
        "counter_6b": (counter, 0, 16),
    }


def benchmark_sequential(
    n_vectors: int = 64, seed: int = 0
) -> Dict[str, Dict[str, float]]:
    """Bit-parallel sequential engine vs the interpreted per-cycle walk.

    For each clocked workload (a small gate-level sequential-SVM top and a
    free-running counter) both sides clock the same ``n_vectors`` input
    vectors for the same number of cycles: the engine through
    :mod:`repro.perf.seqsim` (packed words, one numpy kernel per op per
    cycle), the baseline through
    :func:`~repro.hw.simulate.simulate_sequential_reference` (per-gate dict
    walk, one vector at a time).  Records cycle-evals/s (vectors x cycles
    per second) and the speedup.
    """
    rng = np.random.default_rng(seed)
    results: Dict[str, Dict[str, float]] = {}
    for name, (netlist, n_inputs, cycles) in _sequential_workloads(seed).items():
        vectors = rng.integers(0, 2, size=(n_vectors, n_inputs))
        rows = [dict(zip(netlist.inputs, (int(v) for v in vec))) for vec in vectors]

        def _interpreted() -> None:
            for row in rows:
                simulate_sequential_reference(netlist, row, cycles)

        # Compile every engine (and verify bit-exactness on this workload)
        # outside the timed region, mirroring the combinational benchmark.
        # The headline evaluator uses engine='auto' — the production default
        # — so the recorded seqsim numbers improve as the cone engine does.
        evaluator = sequential_evaluator_for(netlist)
        engine_evaluators = {
            e: sequential_evaluator_for(netlist, engine=e)
            for e in _concrete_engines()
        }
        reference = np.stack(
            [simulate_sequential_reference(netlist, row, cycles) for row in rows],
            axis=1,
        )
        equivalent = bool(
            np.array_equal(evaluator.run(vectors, cycles=cycles), reference)
        )
        engines_equivalent = all(
            np.array_equal(ev.run(vectors, cycles=cycles), reference)
            for ev in engine_evaluators.values()
        )
        t_ref = _time(_interpreted, repeats=3)
        t_fast = _time(lambda: evaluator.run(vectors, cycles=cycles), repeats=3)
        t_engine = {
            e: _time(lambda ev=ev: ev.run(vectors, cycles=cycles), repeats=3)
            for e, ev in engine_evaluators.items()
        }
        cycle_evals = n_vectors * cycles
        record = {
            "n_gates": float(netlist.n_gates()),
            "n_state_bits": float(len(netlist.sequential_gates())),
            "n_vectors": float(n_vectors),
            "cycles": float(cycles),
            "equivalent": 1.0 if equivalent else 0.0,
            "engines_equivalent": 1.0 if engines_equivalent else 0.0,
            "interpreted_cycle_evals_per_s": cycle_evals / t_ref,
            "seqsim_cycle_evals_per_s": cycle_evals / t_fast,
            "speedup": t_ref / t_fast,
        }
        for e in t_engine:
            if e != "interp":
                record[f"{e}_speedup_vs_interp"] = t_engine["interp"] / t_engine[e]
        record["interp_cycle_evals_per_s"] = cycle_evals / t_engine["interp"]
        results[name] = record
        results[name]["auto_engine_is_codegen"] = (
            1.0 if evaluator.engine == "codegen" else 0.0
        )
    return results


# --------------------------------------------------------------------------- #
# Roofline: per-engine throughput vs measured memory bandwidth
# --------------------------------------------------------------------------- #
def measure_memcpy_bandwidth(n_bytes: int = 16 * 1024 * 1024) -> float:
    """Measured ``np.copyto`` bandwidth in bytes/s (read + write counted).

    The machine-roofline baseline: a straight copy of a buffer that outgrows
    the L2 cache is as fast as any 1 byte in / 1 byte out streaming kernel
    can go, which is exactly the shape of a fully fused bitwise op sweep.
    """
    src = np.ones(n_bytes // 8, dtype=np.uint64)
    dst = np.empty_like(src)
    t = _time(lambda: np.copyto(dst, src), repeats=5)
    return 2.0 * src.nbytes / t


def benchmark_roofline(
    n_vectors: int = 8192, seed: int = 0
) -> Dict[str, object]:
    """Gate-evals/s per engine vs the memcpy-bandwidth roofline.

    Each compiled op reads two packed operand rows and writes one, so a
    program of ``n_ops`` ops over ``n_words`` words moves *at least*
    ``n_ops * 3 * n_words * 8`` bytes.  Dividing that floor by the measured
    runtime gives an effective bandwidth per engine; the ratio against the
    measured :func:`measure_memcpy_bandwidth` baseline says how far each
    engine still is from machine-limited execution (dispatch overhead shows
    up as a small fraction).  Workload: the 45-gate 5x5 array multiplier —
    the same netlist the perf-smoke engine floors are asserted on.

    Where the ``native`` engine is available, a ``native_thread_scaling``
    subsection additionally sweeps the same kernel at 1/2/4 forced shards
    over the word axis on a larger batch (the ctypes call releases the GIL,
    so shards run truly in parallel on multi-core hosts; on a 1-core host
    the curve is honestly flat).
    """
    netlist = build_array_multiplier_netlist(5, 5)
    rng = np.random.default_rng(seed)
    vectors = rng.integers(0, 2, size=(n_vectors, len(netlist.inputs)))
    from repro.perf.bitsim import pack_vectors

    packed, _ = pack_vectors(vectors)
    n_words = packed.shape[1]
    memcpy_bytes_per_s = measure_memcpy_bandwidth()
    engines: Dict[str, Dict[str, float]] = {}
    n_ops = None
    for e in _concrete_engines():
        evaluator = evaluator_for(netlist, engine=e)
        n_ops = evaluator.program.n_ops
        slots = evaluator.program.output_slots
        t = _time(lambda: evaluator.evaluate_packed_slots(packed, slots), repeats=3)
        min_bytes = n_ops * 3 * n_words * 8
        engines[e] = {
            "gate_evals_per_s": netlist.n_gates() * n_vectors / t,
            "op_evals_per_s": n_ops * n_vectors / t,
            "effective_bytes_per_s": min_bytes / t,
            "fraction_of_memcpy": (min_bytes / t) / memcpy_bytes_per_s,
        }
    result: Dict[str, object] = {
        "workload": "array_multiplier_5x5",
        "n_gates": float(netlist.n_gates()),
        "n_ops": float(n_ops),
        "n_vectors": float(n_vectors),
        "n_words": float(n_words),
        "memcpy_bytes_per_s": memcpy_bytes_per_s,
        "engines": engines,
    }
    if "native" in engines:
        # Thread-scaling curve on a batch wide enough that one shard's work
        # dwarfs the pool handoff (>= 1024 words per shard at 4 shards).
        scale_vectors = max(n_vectors, 262_144)
        wide = rng.integers(0, 2, size=(scale_vectors, len(netlist.inputs)))
        packed_wide, _ = pack_vectors(wide)
        evaluator = evaluator_for(netlist, engine="native")
        slots = evaluator.program.output_slots
        scaling: Dict[str, Dict[str, float]] = {}
        t_one = None
        try:
            for threads in (1, 2, 4):
                evaluator.threads = threads
                t = _time(
                    lambda: evaluator.evaluate_packed_slots(packed_wide, slots),
                    repeats=3,
                )
                if t_one is None:
                    t_one = t
                scaling[f"threads_{threads}"] = {
                    "gate_evals_per_s": netlist.n_gates() * scale_vectors / t,
                    "scaling_vs_1_thread": t_one / t,
                }
        finally:
            evaluator.threads = None
        result["native_thread_scaling"] = {
            "n_vectors": float(scale_vectors),
            "n_words": float(packed_wide.shape[1]),
            "effective_cpus": float(os.cpu_count() or 1),
            **scaling,
        }
    return result


# --------------------------------------------------------------------------- #
# Netlist optimization (pass pipeline) trajectory
# --------------------------------------------------------------------------- #
#: Coefficient magnitudes of the reference constant-MAC workload: a mix of
#: zero, power-of-two and odd weights, the spread a real hardwired
#: coefficient table shows.
OPT_BENCH_WEIGHTS = (0, 1, 2, 5, 8, 11, 6, 3)


def benchmark_optimization(
    input_bits: int = 4, n_vectors: int = 256, seed: int = 0
) -> Dict[str, Dict[str, float]]:
    """Gate-count reduction and simulation speedup of the pass pipeline.

    For each constant-datapath workload: optimize at level 2, record the
    per-pass removals, check random-vector equivalence, and time the compiled
    bit-parallel sweep on the raw vs the optimized program.
    """
    from repro.hw.opt import check_equivalence, optimize

    netlists = {
        "constant_mac_8x4": build_constant_mac_netlist(
            list(OPT_BENCH_WEIGHTS), input_bits
        ),
        "constant_multiplier_11x5": build_constant_multiplier_netlist(11, 5),
    }
    rng = np.random.default_rng(seed)
    results: Dict[str, Dict[str, float]] = {}
    for name, netlist in netlists.items():
        result = optimize(netlist, level=2)
        stats = result.stats
        equivalent = check_equivalence(netlist, result.netlist, seed=seed)
        vectors = rng.integers(0, 2, size=(n_vectors, len(netlist.inputs)))
        raw_eval = evaluator_for(netlist)  # compile outside the timed region
        opt_eval = evaluator_for(netlist, opt_level=2)
        t_raw = _time(lambda: raw_eval.evaluate(vectors), repeats=3)
        t_opt = _time(lambda: opt_eval.evaluate(vectors), repeats=3)
        record: Dict[str, float] = {
            "gates_raw": float(stats.gates_before),
            "gates_optimized": float(stats.gates_after),
            "gates_removed": float(stats.gates_removed),
            "reduction_percent": stats.reduction_percent,
            "equivalent": 1.0 if equivalent else 0.0,
            "n_vectors": float(n_vectors),
            "raw_eval_s": t_raw,
            "optimized_eval_s": t_opt,
            "eval_speedup": t_raw / t_opt,
        }
        for pass_name, removed in stats.removed_per_pass.items():
            record[f"removed_{pass_name}"] = float(removed)
        # Port buffers reinserted during reconstruction, so the per-pass
        # removals minus this reconcile exactly with gates_removed.
        record["port_buffers_added"] = float(stats.port_buffers_added)
        results[name] = record
    return results


# --------------------------------------------------------------------------- #
# Entry points
# --------------------------------------------------------------------------- #
def run_simulation_benchmark(fast: bool = True, seed: int = 0) -> Dict:
    """Run every throughput benchmark and return the results document.

    ``fast=True`` (the default, used by the perf-smoke pytest run) keeps the
    whole suite under a few seconds; ``fast=False`` scales the workloads up
    for lower-variance numbers.
    """
    if fast:
        datapath = benchmark_datapath(n_samples=1000, seed=seed)
        gates = benchmark_gate_level(n_vectors=256, seed=seed)
        netlist_opt = benchmark_optimization(n_vectors=256, seed=seed)
        sequential = benchmark_sequential(n_vectors=64, seed=seed)
        roofline = benchmark_roofline(n_vectors=8192, seed=seed)
    else:
        datapath = benchmark_datapath(
            n_classifiers=26, n_features=32, n_samples=20000, seed=seed
        )
        gates = benchmark_gate_level(n_vectors=4096, seed=seed)
        netlist_opt = benchmark_optimization(n_vectors=4096, seed=seed)
        sequential = benchmark_sequential(n_vectors=256, seed=seed)
        roofline = benchmark_roofline(n_vectors=65536, seed=seed)
    min_speedups = {
        "datapath_batch": min(r["speedup"] for r in datapath.values()),
        "gate_level_bitsim": min(r["speedup"] for r in gates.values()),
        "sequential_sim": min(r["speedup"] for r in sequential.values()),
        "netlist_opt_reduction_percent": min(
            r["reduction_percent"] for r in netlist_opt.values()
        ),
        "engine_codegen_vs_interp_45g_multiplier": gates[
            "array_multiplier_5x5"
        ]["codegen_speedup_vs_interp"],
    }
    if "native" in roofline["engines"]:
        min_speedups["engine_native_vs_codegen_45g_multiplier"] = (
            roofline["engines"]["native"]["gate_evals_per_s"]
            / roofline["engines"]["codegen"]["gate_evals_per_s"]
        )
    return {
        "benchmark": "simulation_throughput",
        "config": "fast" if fast else "full",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "engines_benchmarked": _concrete_engines(),
        "datapath": datapath,
        "gate_level": gates,
        "sequential_sim": sequential,
        "netlist_opt": netlist_opt,
        "roofline": roofline,
        "min_speedups": min_speedups,
    }


def write_benchmark(
    results: Dict, path: Union[str, Path, None] = None
) -> Path:
    """Serialize a results document to ``BENCH_simulation.json``."""
    path = Path(path) if path is not None else DEFAULT_OUTPUT
    path.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    return path


# The diffing logic lives in repro.core.benchcompare (shared with the
# serving bench); re-exported here because this module is its historic home.
from repro.core.benchcompare import (  # noqa: E402  (re-export)
    COMPARE_METRIC_SUFFIXES as _COMPARE_METRIC_SUFFIXES,
    BenchmarkBaselineError,
    bad_input_exit,
    compare_benchmarks,
    load_baseline,
    metric_leaves as _metric_leaves,
)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI used by ``scripts/bench_simulation.py``."""
    import argparse

    parser = argparse.ArgumentParser(
        description="Measure simulator throughput and record BENCH_simulation.json."
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="run the larger workloads (slower, lower-variance numbers)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"output JSON path (default: {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="diff a fresh run against a baseline JSON instead of writing; "
        "prints per-section regressions, exits 0 when the baseline is usable "
        "(trend signal only) and 2 when it is missing or malformed",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_OUTPUT,
        help="baseline JSON for --compare "
        "(default: the committed BENCH_simulation.json)",
    )
    args = parser.parse_args(argv)
    baseline = None
    if args.compare:
        # Validate before the (expensive) fresh run: a missing or malformed
        # baseline is a usage error, reported in one line, exit code 2.
        try:
            baseline = load_baseline(args.baseline)
        except BenchmarkBaselineError as error:
            return bad_input_exit("bench_simulation --compare", error)
    results = run_simulation_benchmark(fast=not args.full)
    if args.compare:
        compare_benchmarks(results, baseline)
        return 0
    path = write_benchmark(results, args.output)
    for group in ("datapath", "gate_level", "sequential_sim"):
        for name, record in results[group].items():
            print(f"{group:14s} {name:24s} speedup {record['speedup']:8.1f}x")
    for name, record in results["netlist_opt"].items():
        print(
            f"{'opt':10s} {name:22s} "
            f"{int(record['gates_raw']):4d} -> {int(record['gates_optimized']):4d} gates "
            f"({record['reduction_percent']:.1f}% removed, "
            f"eval {record['eval_speedup']:.1f}x)"
        )
    roofline = results["roofline"]
    for engine, record in sorted(roofline["engines"].items()):
        print(
            f"{'roofline':14s} {engine:24s} "
            f"{record['gate_evals_per_s']:.3g} gate-evals/s  "
            f"({100 * record['fraction_of_memcpy']:.1f}% of memcpy bandwidth)"
        )
    scaling = roofline.get("native_thread_scaling")
    if scaling:
        for key in ("threads_1", "threads_2", "threads_4"):
            record = scaling[key]
            print(
                f"{'native-scale':14s} {key:24s} "
                f"{record['gate_evals_per_s']:.3g} gate-evals/s  "
                f"({record['scaling_vs_1_thread']:.2f}x vs 1 thread, "
                f"{int(scaling['effective_cpus'])} cpus)"
            )
    print(f"results written to {path}")
    return 0
