"""Fused and code-generating execution engines for compiled netlist programs.

:class:`~repro.perf.bitsim.BitParallelEvaluator` (the ``interp`` engine)
issues one numpy dispatch per gate op, so the sub-200-gate netlists behind
Table I are dispatch-bound: each ``state[dst] = state[a] & state[b]`` costs
far more in ufunc dispatch than in actual 64-bit word work.  This module
provides drop-in replacements that execute the *same*
:class:`~repro.perf.compile.CompiledProgram` bit-exactly while paying that
overhead once per group — or not at all:

``fused``
    Levelize the flat op stream into topological layers, group each layer by
    opcode, and execute each group as one vectorized gather -> op -> scatter
    over an ``(n_ops_in_group, n_words)`` operand matrix.  Slots are
    renumbered so every group writes one contiguous block of the state
    matrix, letting each group land with ``out=`` into a state slice.  One
    numpy dispatch per (layer, opcode) instead of per op; wins grow with
    netlist width (ops per layer).

``codegen``
    Emit the whole cone as one generated Python function of chained bitwise
    expressions — dead scratch slots collapse into subexpressions, ops feeding
    a single consumer are inlined — then ``compile()`` it once per netlist
    structure.  The generated source is *domain-neutral* (``NOT`` is spelled
    ``x ^ ONE``, ``MUX2`` is decomposed into AND/OR/XOR), so the very same
    kernel runs on two operand domains:

    * **bigint** — each net's whole packed row as one arbitrary-precision
      Python int (``int.from_bytes`` of the row).  Python's bignum kernels
      chew 64-bit limbs in a C loop with *zero* numpy dispatch, which is
      ~an order of magnitude faster than per-op numpy for small word counts.
    * **numpy** — the usual ``(n_words,)`` ``uint64`` rows, used for large
      batches where bignum temporaries would outgrow the cache.

    The evaluator switches domains on ``n_words`` at call time.

``native``
    The C twin of ``codegen`` (:mod:`repro.perf.native`): the same planned
    kernel is emitted as one C function of chained bitwise ops over
    ``uint64_t`` words, compiled with the system toolchain into a shared
    object called through ``ctypes`` — which releases the GIL, so large
    batches shard the word axis across a small persistent thread pool.
    On hosts with no C compiler, ``native`` degrades to ``codegen`` with a
    one-time warning (``auto`` never selects ``native``).

``auto`` picks ``codegen`` for program sizes where one generated function is
compilable and fastest, and falls back to ``fused`` for very large programs
(CPython's compiler and the per-structure compile cost scale with program
size; gather/scatter amortizes better there).

All engines subclass :class:`BitParallelEvaluator`, so the scalar
``evaluate_single`` fast path and the packed API are shared, and all are
validated bit-exact against ``interp`` across the netlist zoo (combinational
and sequential, all opt levels) by ``tests/perf/test_engines.py``.

Typical use goes through the ``engine=`` selector on the public entry
points rather than these classes directly::

    evaluator_for(netlist, engine="codegen").evaluate(vectors)
    simulate_sequential_batch(netlist, stream, engine="auto")
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.perf.bitsim import BitParallelEvaluator, _ALL_ONES
from repro.perf.compile import (
    OP_AND2,
    OP_AND3,
    OP_ARITY,
    OP_BUF,
    OP_MUX2,
    OP_NAND2,
    OP_NOR2,
    OP_NOT,
    OP_OR2,
    OP_OR3,
    OP_XNOR2,
    OP_XOR2,
    CompiledProgram,
    SLOT_ONE,
    SLOT_ZERO,
)

#: The recognised engine names, in documentation order.
ENGINES = ("interp", "fused", "codegen", "native", "auto")


def _env_int(name: str, default: int, minimum: int = 0) -> int:
    """An integer tuning knob from the environment, validated.

    Unset or empty means ``default``.  Anything that is not an integer, or
    an integer below ``minimum``, raises ``ValueError`` naming the variable
    — a silently ignored typo in a roofline experiment is worse than a
    startup crash.
    """
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"environment variable {name}={raw!r} is not an integer"
        ) from None
    if value < minimum:
        raise ValueError(f"environment variable {name}={value} is below {minimum}")
    return value


#: ``auto`` resolves to ``codegen`` up to this many ops, ``fused`` beyond.
#: Generated-function compile time and bytecode size grow linearly with the
#: program; past a few thousand ops the per-structure compile stops paying
#: for itself and gather/scatter fusion amortizes better.  Overridable via
#: ``$REPRO_AUTO_CODEGEN_MAX_OPS`` (read once at import).
AUTO_CODEGEN_MAX_OPS = _env_int("REPRO_AUTO_CODEGEN_MAX_OPS", 20_000, minimum=1)

#: The codegen engine runs on Python bigints (one arbitrary-precision int
#: per net row) up to this many words per row, and on numpy arrays beyond.
#: Measured crossover on the 45-gate array multiplier: bigints win ~10x at
#: 4 words and still ~3x at 128; numpy wins past ~512 words.  Overridable
#: via ``$REPRO_BIGINT_MAX_WORDS`` (read once at import; 0 forces numpy).
BIGINT_MAX_WORDS = _env_int("REPRO_BIGINT_MAX_WORDS", 256, minimum=0)


def resolve_engine(engine: str, program: CompiledProgram) -> str:
    """Resolve an ``engine=`` argument to a concrete engine name.

    ``auto`` picks ``codegen`` for programs up to
    :data:`AUTO_CODEGEN_MAX_OPS` ops and ``fused`` beyond — never
    ``native``, which must be requested explicitly.  ``native`` resolves to
    itself only when a C toolchain is present; otherwise it degrades to
    ``codegen`` with a one-time warning, so the engine-keyed evaluator
    caches naturally share the fallback instance.  The concrete names pass
    through.  Unknown names raise ``ValueError``.

    Example::

        resolve_engine("auto", compile_netlist(netlist))   # 'codegen'
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    if engine == "auto":
        return "codegen" if program.n_ops <= AUTO_CODEGEN_MAX_OPS else "fused"
    if engine == "native":
        from repro.perf import native as native_mod

        if not native_mod.native_available():
            native_mod.warn_toolchain_missing()
            return "codegen"
    return engine


def available_engines() -> Tuple[str, ...]:
    """The engine names usable on this host, in :data:`ENGINES` order.

    ``native`` is listed only when a C toolchain was found (requesting it
    without one still works — it degrades to ``codegen`` — but callers like
    the served-model metadata and the benchmarks want the honest list).
    """
    from repro.perf import native as native_mod

    if native_mod.native_available():
        return ENGINES
    return tuple(e for e in ENGINES if e != "native")


def levelize(program: CompiledProgram) -> List[List[int]]:
    """Topological layers of a program's op stream.

    Returns a list of layers, each a list of op indices whose operands are
    all produced in earlier layers (or are constants / primary inputs).
    Layer ``k`` therefore only depends on layers ``< k``, so all ops inside
    one layer can execute in any order — the basis of super-op fusion.

    Example::

        layers = levelize(compile_netlist(netlist))
        sum(len(l) for l in layers) == compile_netlist(netlist).n_ops
    """
    level_of_slot = [0] * program.n_slots
    opcodes = program.opcodes.tolist()
    operands = program.operands.tolist()
    dsts = program.dsts.tolist()
    layers: List[List[int]] = []
    for k in range(program.n_ops):
        a, b, c = operands[k]
        arity = OP_ARITY[opcodes[k]]
        level = level_of_slot[a]
        if arity > 1 and level_of_slot[b] > level:
            level = level_of_slot[b]
        if arity > 2 and level_of_slot[c] > level:
            level = level_of_slot[c]
        level_of_slot[dsts[k]] = level + 1
        while len(layers) <= level:
            layers.append([])
        layers[level].append(k)
    return layers


# --------------------------------------------------------------------------- #
# Fused gather -> op -> scatter execution
# --------------------------------------------------------------------------- #
class FusedEvaluator(BitParallelEvaluator):
    """Executes a program as one numpy dispatch per (layer, opcode) group.

    Construction levelizes the program, groups each layer by opcode and
    renumbers slots so each group's destinations form one contiguous block:
    execution gathers the group's operands with a single fancy index,
    applies the bitwise op over the whole ``(n_ops_in_group, n_words)``
    matrix and writes straight into the state slice with ``out=``.
    Single-op groups skip the gather and run like the interpreter.

    The state matrix and the per-group gather buffers are *scratch*,
    allocated once per distinct ``n_words`` and reused across calls (every
    destination row is fully rewritten each run, so no zeroing is needed
    between calls; what escapes the evaluator is always a fancy-index copy,
    never a view of the scratch).  Consequence: one ``FusedEvaluator``
    instance is **not safe for concurrent calls from multiple threads** —
    which matches how the evaluator caches hand instances out (one per
    netlist structure, used from the single simulation thread).  Scratch is
    keyed by batch width and bounded to a few widths; evaluator instances
    themselves are retired on structural mutation, taking the scratch along.

    Bit-exact vs the interp engine by construction (same SSA program, only
    the execution schedule changes).

    Example::

        out = FusedEvaluator(compile_netlist(netlist)).evaluate(vectors)
    """

    #: Distinct batch widths whose scratch is kept before the pool resets.
    _MAX_SCRATCH_WIDTHS = 4

    def __init__(self, program: CompiledProgram) -> None:
        super().__init__(program)
        opcodes = program.opcodes.tolist()
        operands = program.operands.tolist()
        dsts = program.dsts.tolist()
        # Renumber: constants keep 0/1, inputs become 2..2+n_inputs-1, then
        # destinations in execution order so each group is contiguous.
        perm = np.full(program.n_slots, -1, dtype=np.int64)
        perm[SLOT_ZERO] = SLOT_ZERO
        perm[SLOT_ONE] = SLOT_ONE
        next_slot = 2
        for s in program.input_slots.tolist():
            perm[s] = next_slot
            next_slot += 1
        plan: List[Tuple[int, List[int]]] = []
        for layer in levelize(program):
            by_opcode: Dict[int, List[int]] = {}
            for k in layer:
                by_opcode.setdefault(opcodes[k], []).append(k)
            for opcode in sorted(by_opcode):
                plan.append((opcode, by_opcode[opcode]))
        for _, ks in plan:
            for k in ks:
                perm[dsts[k]] = next_slot
                next_slot += 1
        assert next_slot == program.n_slots and int(perm.min()) >= 0
        # Each group: (opcode, gather_index|None, n_ops, dst_lo, a, b, c)
        # where a/b/c are the renumbered direct operands of single-op groups.
        groups = []
        for opcode, ks in plan:
            size = len(ks)
            lo = int(perm[dsts[ks[0]]])
            if size == 1:
                a, b, c = operands[ks[0]]
                groups.append(
                    (opcode, None, 1, lo, int(perm[a]), int(perm[b]), int(perm[c]))
                )
            else:
                cols: List[int] = []
                for i in range(OP_ARITY[opcode]):
                    cols.extend(int(perm[operands[k][i]]) for k in ks)
                gather = np.asarray(cols, dtype=np.intp)
                groups.append((opcode, gather, size, lo, 0, 0, 0))
        self._perm = perm
        self._groups = groups
        # n_words -> (state matrix, per-group gather buffers), reused across
        # calls; see the class docstring for the thread-safety contract.
        self._scratch: Dict[int, Tuple[np.ndarray, List[Optional[np.ndarray]]]] = {}

    # ------------------------------------------------------------------ #
    def _run(self, packed_inputs: np.ndarray) -> np.ndarray:
        """Execute all groups; returns the state in *renumbered* slot order."""
        program = self.program
        packed_inputs = np.asarray(packed_inputs, dtype=np.uint64)
        if packed_inputs.ndim != 2 or packed_inputs.shape[0] != program.n_inputs:
            raise ValueError(
                f"expected packed inputs of shape ({program.n_inputs}, n_words), "
                f"got {packed_inputs.shape}"
            )
        n_words = packed_inputs.shape[1]
        scratch = self._scratch.get(n_words)
        if scratch is None:
            if len(self._scratch) >= self._MAX_SCRATCH_WIDTHS:
                self._scratch.clear()
            state = np.zeros((program.n_slots, n_words), dtype=np.uint64)
            state[SLOT_ONE] = _ALL_ONES
            bufs: List[Optional[np.ndarray]] = [
                None
                if gather is None
                else np.empty((gather.size, n_words), dtype=np.uint64)
                for _, gather, *_ in self._groups
            ]
            self._scratch[n_words] = scratch = (state, bufs)
        state, bufs = scratch
        if program.n_inputs:
            state[2 : 2 + program.n_inputs] = packed_inputs
        for group_index, (opcode, gather, size, lo, a, b, c) in enumerate(
            self._groups
        ):
            if size == 1:
                if opcode == OP_AND2:
                    state[lo] = state[a] & state[b]
                elif opcode == OP_XOR2:
                    state[lo] = state[a] ^ state[b]
                elif opcode == OP_OR2:
                    state[lo] = state[a] | state[b]
                elif opcode == OP_NOT:
                    state[lo] = ~state[a]
                elif opcode == OP_BUF:
                    state[lo] = state[a]
                elif opcode == OP_MUX2:
                    sel = state[c]
                    state[lo] = (state[b] & sel) | (state[a] & ~sel)
                elif opcode == OP_NAND2:
                    state[lo] = ~(state[a] & state[b])
                elif opcode == OP_NOR2:
                    state[lo] = ~(state[a] | state[b])
                elif opcode == OP_XNOR2:
                    state[lo] = ~(state[a] ^ state[b])
                elif opcode == OP_AND3:
                    state[lo] = state[a] & state[b] & state[c]
                elif opcode == OP_OR3:
                    state[lo] = state[a] | state[b] | state[c]
                else:  # pragma: no cover - compiler emits only known opcodes
                    raise RuntimeError(f"unknown opcode {opcode}")
                continue
            # Multi-op group: one gather into the group's preallocated
            # scratch buffer (a copy, so out= below can never alias it),
            # one vectorized op, one contiguous store.
            buf = bufs[group_index]
            np.take(state, gather, axis=0, out=buf)
            dst = state[lo : lo + size]
            if opcode == OP_AND2:
                np.bitwise_and(buf[:size], buf[size:], out=dst)
            elif opcode == OP_XOR2:
                np.bitwise_xor(buf[:size], buf[size:], out=dst)
            elif opcode == OP_OR2:
                np.bitwise_or(buf[:size], buf[size:], out=dst)
            elif opcode == OP_NOT:
                np.invert(buf, out=dst)
            elif opcode == OP_BUF:
                np.copyto(dst, buf)
            elif opcode == OP_MUX2:
                av, bv, sel = buf[:size], buf[size : 2 * size], buf[2 * size :]
                np.bitwise_and(bv, sel, out=bv)
                np.invert(sel, out=sel)
                np.bitwise_and(av, sel, out=av)
                np.bitwise_or(bv, av, out=dst)
            elif opcode == OP_NAND2:
                np.bitwise_and(buf[:size], buf[size:], out=dst)
                np.invert(dst, out=dst)
            elif opcode == OP_NOR2:
                np.bitwise_or(buf[:size], buf[size:], out=dst)
                np.invert(dst, out=dst)
            elif opcode == OP_XNOR2:
                np.bitwise_xor(buf[:size], buf[size:], out=dst)
                np.invert(dst, out=dst)
            elif opcode == OP_AND3:
                np.bitwise_and(buf[:size], buf[size : 2 * size], out=dst)
                np.bitwise_and(dst, buf[2 * size :], out=dst)
            elif opcode == OP_OR3:
                np.bitwise_or(buf[:size], buf[size : 2 * size], out=dst)
                np.bitwise_or(dst, buf[2 * size :], out=dst)
            else:  # pragma: no cover - compiler emits only known opcodes
                raise RuntimeError(f"unknown opcode {opcode}")
        return state

    def evaluate_packed(self, packed_inputs: np.ndarray) -> np.ndarray:
        """Full slot state in *original* slot order — same contract as interp."""
        return self._run(packed_inputs)[self._perm]

    def evaluate_packed_slots(
        self, packed_inputs: np.ndarray, slots: Sequence[int]
    ) -> np.ndarray:
        """Packed rows for the requested original-program slots."""
        slots = np.asarray(slots, dtype=np.int64)
        return self._run(packed_inputs)[self._perm[slots]]


# --------------------------------------------------------------------------- #
# Per-structure code generation
# --------------------------------------------------------------------------- #
# Domain-neutral expression templates: complement is spelled `x ^ ONE` and
# MUX2 is decomposed, so a generated kernel is valid both for numpy uint64
# rows (ONE = all-ones array) and for Python bigints (ONE = (1<<bits)-1).
_TEMPLATES = {
    OP_BUF: "{a}",
    OP_NOT: "{a} ^ ONE",
    OP_AND2: "{a} & {b}",
    OP_OR2: "{a} | {b}",
    OP_XOR2: "{a} ^ {b}",
    OP_NAND2: "({a} & {b}) ^ ONE",
    OP_NOR2: "({a} | {b}) ^ ONE",
    OP_XNOR2: "({a} ^ {b}) ^ ONE",
    OP_AND3: "{a} & {b} & {c}",
    OP_OR3: "{a} | {b} | {c}",
    OP_MUX2: "({b} & {c}) | ({a} & ({c} ^ ONE))",
}
# How often each operand position is referenced by its template (MUX2 reads
# its select twice) — drives the inline-vs-local-variable decision.
_TEMPLATE_REFS = {
    OP_BUF: (0,),
    OP_NOT: (0,),
    OP_AND2: (0, 1),
    OP_OR2: (0, 1),
    OP_XOR2: (0, 1),
    OP_NAND2: (0, 1),
    OP_NOR2: (0, 1),
    OP_XNOR2: (0, 1),
    OP_AND3: (0, 1, 2),
    OP_OR3: (0, 1, 2),
    OP_MUX2: (0, 1, 2, 2),
}
# Expressions nested deeper than this become a local variable even when
# single-use: keeps generated sources readable and CPython's parser away
# from its nesting limits on long ripple chains.
_MAX_INLINE_DEPTH = 12


@dataclass(frozen=True)
class KernelPlan:
    """A planned straight-line kernel, ready for a language-specific emitter.

    The expression texts use only names (``i<slot>`` input loads, ``v<slot>``
    locals, ``ZERO``/``ONE`` constants), parentheses and the operators
    ``& | ^`` — whose precedence ordering is identical in Python and C — so
    one plan serves both the Python emitter (:func:`generate_kernel_source`)
    and the C emitter (:func:`repro.perf.native.generate_c_kernel_source`).
    """

    #: ``(slot, input_row)`` pairs to load, in ``program.input_slots`` order
    #: (dead inputs already dropped).
    input_loads: Tuple[Tuple[int, int], ...]
    #: ``(dst_slot, expression_text)`` local-variable assignments, in
    #: execution order.
    statements: Tuple[Tuple[int, str], ...]
    #: One expression text per requested slot, in request order.
    returns: Tuple[str, ...]


def plan_kernel(program: CompiledProgram, slots: Sequence[int]) -> KernelPlan:
    """Liveness/inlining analysis shared by the Python and C code emitters.

    Backward liveness from the requested ``slots`` drops dead ops before any
    text is produced; ops feeding a single consumer are inlined into their
    use site (bounded by :data:`_MAX_INLINE_DEPTH` so parsers survive long
    ripple chains); multi-use ops become ``v<slot>`` locals.

    Example::

        plan = plan_kernel(program, program.output_slots)
        len(plan.returns) == len(program.output_slots)
    """
    slots = [int(s) for s in slots]
    ops = [
        (
            int(program.opcodes[k]),
            int(program.operands[k, 0]),
            int(program.operands[k, 1]),
            int(program.operands[k, 2]),
            int(program.dsts[k]),
        )
        for k in range(program.n_ops)
    ]
    # Backward liveness from the requested slots: ops whose destination is
    # never (transitively) needed are dropped before any source is emitted,
    # so a kernel for a narrow slot tuple computes only that cone.
    live = set(slots)
    keep = [False] * len(ops)
    for k in range(len(ops) - 1, -1, -1):
        opcode, a, b, c, dst = ops[k]
        if dst not in live:
            continue
        keep[k] = True
        operand_by_pos = (a, b, c)
        for pos in _TEMPLATE_REFS[opcode]:
            live.add(operand_by_pos[pos])
    ops = [op for k, op in enumerate(ops) if keep[k]]
    use_count: Dict[int, int] = {}
    for opcode, a, b, c, _ in ops:
        operand_by_pos = (a, b, c)
        for pos in _TEMPLATE_REFS[opcode]:
            s = operand_by_pos[pos]
            use_count[s] = use_count.get(s, 0) + 1
    for s in slots:
        use_count[s] = use_count.get(s, 0) + 1

    # expr[slot] = (text, depth, atomic); atomic == no parens needed on use.
    expr: Dict[int, Tuple[str, int, bool]] = {
        SLOT_ZERO: ("ZERO", 0, True),
        SLOT_ONE: ("ONE", 0, True),
    }
    input_loads: List[Tuple[int, int]] = []
    for row, s in enumerate(program.input_slots.tolist()):
        expr[s] = (f"i{s}", 0, True)
        if use_count.get(s, 0):
            input_loads.append((s, row))

    def ref(s: int) -> Tuple[str, int]:
        text, depth, atomic = expr[s]
        return (text if atomic else f"({text})"), depth

    statements: List[Tuple[int, str]] = []
    for opcode, a, b, c, dst in ops:
        if opcode == OP_BUF:
            expr[dst] = expr[a]
            continue
        ea, da = ref(a)
        arity = OP_ARITY[opcode]
        if arity == 1:
            text, depth = _TEMPLATES[opcode].format(a=ea), da + 1
        elif arity == 2:
            eb, db = ref(b)
            text, depth = _TEMPLATES[opcode].format(a=ea, b=eb), max(da, db) + 1
        else:
            eb, db = ref(b)
            ec, dc = ref(c)
            text = _TEMPLATES[opcode].format(a=ea, b=eb, c=ec)
            depth = max(da, db, dc) + 1
        if use_count.get(dst, 0) > 1 or depth > _MAX_INLINE_DEPTH:
            statements.append((dst, text))
            expr[dst] = (f"v{dst}", 0, True)
        else:
            expr[dst] = (text, depth, False)

    return KernelPlan(
        input_loads=tuple(input_loads),
        statements=tuple(statements),
        returns=tuple(ref(s)[0] for s in slots),
    )


def generate_kernel_source(
    program: CompiledProgram, slots: Sequence[int]
) -> str:
    """Emit Python source computing the packed values of ``slots``.

    The generated function has signature ``_kernel(inp, ZERO, ONE)`` where
    ``inp`` indexes the packed input rows in ``program.input_slots`` order,
    and returns a tuple with one entry per requested slot.  Ops feeding a
    single consumer are inlined into their use site (so dead scratch slots
    vanish entirely); multi-use ops become local variables.  The source is
    domain-neutral: run it on numpy rows or on whole-row bigints.  The
    planning pass is shared with the C emitter (:func:`plan_kernel`).

    Example::

        src = generate_kernel_source(program, program.output_slots)
        print(src)          # inspect what the codegen engine executes
    """
    plan = plan_kernel(program, slots)
    lines = [f"    i{s} = inp[{row}]" for s, row in plan.input_loads]
    lines += [f"    v{dst} = {text}" for dst, text in plan.statements]
    body = "\n".join(lines)
    returns = ", ".join(plan.returns)
    return (
        "def _kernel(inp, ZERO, ONE):\n"
        + (body + "\n" if body else "")
        + f"    return ({returns},)\n"
    )


class CodegenEvaluator(BitParallelEvaluator):
    """Executes a program as one generated, ``compile()``d Python function.

    Kernels are generated lazily per requested slot tuple (the full-state
    compat path, the output slots, a sequential cone's output+next-state
    slots, ...) and cached on the evaluator.  Evaluator instances themselves
    are cached per netlist structure by :func:`~repro.perf.bitsim.
    evaluator_for`, so structural mutation drops the kernels together with
    the evaluator — the same invalidation discipline as every other compiled
    artifact.

    At call time the operand domain is chosen by batch size: whole-row
    Python bigints below :data:`BIGINT_MAX_WORDS` words (zero numpy
    dispatch; Python's bignum loops do the word work in C), numpy ``uint64``
    rows above.

    Example::

        out = CodegenEvaluator(compile_netlist(netlist)).evaluate(vectors)
    """

    def __init__(self, program: CompiledProgram) -> None:
        super().__init__(program)
        self._kernels: Dict[Tuple[int, ...], "object"] = {}
        self._sources: Dict[Tuple[int, ...], str] = {}

    # ------------------------------------------------------------------ #
    def _kernel_for(self, slots: Tuple[int, ...]):
        kernel = self._kernels.get(slots)
        if kernel is None:
            source = generate_kernel_source(self.program, slots)
            namespace: Dict[str, object] = {}
            exec(  # noqa: S102 - source is generated from the program, not user input
                compile(source, f"<codegen:{self.program.name}>", "exec"), namespace
            )
            kernel = namespace["_kernel"]
            self._kernels[slots] = kernel
            self._sources[slots] = source
        return kernel

    def kernel_source(self, slots: Sequence[int]) -> str:
        """The generated source for a slot tuple (compiling it if needed)."""
        slots = tuple(int(s) for s in slots)
        self._kernel_for(slots)
        return self._sources[slots]

    def _call(self, kernel, packed_inputs: np.ndarray) -> np.ndarray:
        program = self.program
        packed_inputs = np.asarray(packed_inputs, dtype=np.uint64)
        if packed_inputs.ndim != 2 or packed_inputs.shape[0] != program.n_inputs:
            raise ValueError(
                f"expected packed inputs of shape ({program.n_inputs}, n_words), "
                f"got {packed_inputs.shape}"
            )
        n_words = packed_inputs.shape[1]
        if n_words <= BIGINT_MAX_WORDS:
            # Bigint domain: one arbitrary-precision int per input row.
            n_bytes = n_words * 8
            raw = np.ascontiguousarray(packed_inputs.astype("<u8", copy=False))
            blob = raw.tobytes()
            rows = [
                int.from_bytes(blob[r * n_bytes : (r + 1) * n_bytes], "little")
                for r in range(program.n_inputs)
            ]
            out = kernel(rows, 0, (1 << (64 * n_words)) - 1)
            if not out:
                return np.zeros((0, n_words), dtype=np.uint64)
            packed_out = b"".join(x.to_bytes(n_bytes, "little") for x in out)
            return (
                np.frombuffer(packed_out, dtype="<u8")
                .reshape(len(out), n_words)
                .astype(np.uint64, copy=False)
            )
        zero = np.zeros(n_words, dtype=np.uint64)
        one = np.full(n_words, _ALL_ONES, dtype=np.uint64)
        out = kernel(packed_inputs, zero, one)
        if not out:
            return np.zeros((0, n_words), dtype=np.uint64)
        return np.stack(out)

    # ------------------------------------------------------------------ #
    def evaluate_packed_slots(
        self, packed_inputs: np.ndarray, slots: Sequence[int]
    ) -> np.ndarray:
        """Packed rows for the requested slots via a per-tuple kernel."""
        slots = tuple(int(s) for s in slots)
        return self._call(self._kernel_for(slots), packed_inputs)

    def evaluate_packed(self, packed_inputs: np.ndarray) -> np.ndarray:
        """Full slot state — compatibility path through an all-slots kernel."""
        all_slots = tuple(range(self.program.n_slots))
        return self._call(self._kernel_for(all_slots), packed_inputs)


# --------------------------------------------------------------------------- #
def make_evaluator(
    program: CompiledProgram, engine: str = "auto"
) -> BitParallelEvaluator:
    """Construct the evaluator class selected by ``engine`` for a program.

    The resolved engine name is recorded on the instance as ``.engine``.

    Example::

        evaluator = make_evaluator(compile_netlist(netlist), engine="fused")
        evaluator.engine                     # 'fused'
    """
    resolved = resolve_engine(engine, program)
    if resolved == "interp":
        evaluator = BitParallelEvaluator(program)
    elif resolved == "fused":
        evaluator = FusedEvaluator(program)
    elif resolved == "native":
        from repro.perf.native import NativeEvaluator

        evaluator = NativeEvaluator(program)
    else:
        evaluator = CodegenEvaluator(program)
    evaluator.engine = resolved
    return evaluator
