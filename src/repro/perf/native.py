"""The ``native`` execution engine: compiled-C kernels called through ctypes.

The ``codegen`` engine (:mod:`repro.perf.engines`) already collapses a whole
compiled cone into one straight-line function of chained bitwise expressions
— but CPython still interprets that function, one bytecode op (or one bignum
limb loop) at a time.  This module emits the *same planned kernel* as C
(:func:`generate_c_kernel_source` is the C twin of
:func:`~repro.perf.engines.generate_kernel_source`; both consume one
:func:`~repro.perf.engines.plan_kernel` pass), compiles it at
evaluator-construction time with the system toolchain
(``cc``/``gcc``/``clang``, ``-O2 -fPIC -shared``) into a shared object, and
calls it through :mod:`ctypes`:

* **ABI** — ``void repro_kernel(const uint64_t *in, uint64_t *out,
  int64_t n_words, int64_t w_lo, int64_t w_hi)``: ``in`` is the packed
  input matrix (``n_inputs`` rows of ``n_words`` words, C-contiguous),
  ``out`` the output matrix (one row per requested slot), and the kernel
  computes only the word columns ``[w_lo, w_hi)``.  The word-range
  arguments make thread sharding free: shards write disjoint columns, so
  no synchronisation is needed.
* **GIL-free parallelism** — ctypes releases the GIL for the duration of
  the call, so :class:`NativeEvaluator` shards the word axis of large
  batches across a small persistent thread pool (below
  :data:`NATIVE_PARALLEL_MIN_WORDS` words it stays single-threaded: a
  kernel call on a few words finishes in microseconds, under the cost of
  waking a worker).
* **caching** — compiled objects are cached in memory per process *and* on
  disk under the PR 2 cache root (``$REPRO_CACHE_DIR`` or
  ``~/.cache/repro``), keyed by the SHA-256 of (toolchain fingerprint +
  kernel source).  Structural netlist mutation produces different source,
  hence a different key — the same invalidation discipline as every other
  compiled artifact.  A second process (or a second run) with the same
  netlist structure loads the ``.so`` without invoking the compiler.
* **degradation** — toolchain detection runs once per process and is
  cached.  With no compiler (or ``$REPRO_NO_NATIVE=1``),
  ``engine='native'`` degrades to ``'codegen'`` with a one-time
  ``RuntimeWarning``, and ``'auto'`` never selects ``native`` — hosts
  without a toolchain keep working, just not faster.

Tuning knobs (all validated at import): ``$REPRO_NATIVE_THREADS`` (shards
per large batch, default ``min(4, cpu_count)``), ``$REPRO_NATIVE_MIN_WORDS``
(single-thread threshold, default 2048 words = 128 Ki vectors),
``$REPRO_NO_NATIVE`` (force the fallback path, used by CI to keep it from
rotting).

Typical use goes through the ``engine=`` selector, not this module::

    evaluator_for(netlist, engine="native").evaluate(vectors)
    simulate_sequential_batch(netlist, stream, engine="native")
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.perf.bitsim import BitParallelEvaluator
from repro.perf.compile import CompiledProgram
from repro.perf.engines import _env_int, plan_kernel

#: Set to ``1``/``true``/``yes`` to pretend no toolchain exists — forces the
#: native -> codegen fallback path (exercised by a CI matrix leg).
NO_NATIVE_ENV = "REPRO_NO_NATIVE"

#: Threads a large batch is sharded across (``$REPRO_NATIVE_THREADS``).
NATIVE_THREADS = _env_int(
    "REPRO_NATIVE_THREADS", min(4, os.cpu_count() or 1), minimum=1
)

#: Batches narrower than this many words run single-threaded
#: (``$REPRO_NATIVE_MIN_WORDS``).  2048 words = 128 Ki vectors: below that
#: a kernel call finishes in microseconds and pool handoff would dominate.
NATIVE_PARALLEL_MIN_WORDS = _env_int("REPRO_NATIVE_MIN_WORDS", 2048, minimum=1)

_U64P = ctypes.POINTER(ctypes.c_uint64)

#: Placeholder passed as ``in`` when the program has no inputs (the kernel
#: never dereferences it, but ctypes needs a valid pointer).
_EMPTY_IN = np.zeros(1, dtype=np.uint64)


# --------------------------------------------------------------------------- #
# Toolchain detection (once per process, cached)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Toolchain:
    """A probed C compiler: absolute path plus its ``--version`` first line."""

    path: str
    version: str

    @property
    def fingerprint(self) -> str:
        """Stable digest of (path, version) — part of the disk-cache key, so
        upgrading or switching compilers invalidates cached objects."""
        return hashlib.sha256(
            f"{self.path}\0{self.version}".encode()
        ).hexdigest()[:16]


_UNPROBED = object()
_TOOLCHAIN: object = _UNPROBED
_TOOLCHAIN_LOCK = threading.Lock()


def _probe_toolchain() -> Optional[Toolchain]:
    if os.environ.get(NO_NATIVE_ENV, "").strip().lower() in ("1", "true", "yes"):
        return None
    candidates: List[str] = []
    cc_env = os.environ.get("CC", "").strip()
    if cc_env:
        candidates.append(cc_env)
    candidates += ["cc", "gcc", "clang"]
    for name in candidates:
        path = shutil.which(name)
        if not path:
            continue
        try:
            proc = subprocess.run(
                [path, "--version"], capture_output=True, text=True, timeout=10
            )
        except (OSError, subprocess.SubprocessError):
            continue
        if proc.returncode == 0 and proc.stdout.strip():
            return Toolchain(path=path, version=proc.stdout.splitlines()[0].strip())
    return None


def find_toolchain(refresh: bool = False) -> Optional[Toolchain]:
    """The system C compiler, probed once per process and cached.

    Honors ``$CC`` first, then ``cc``/``gcc``/``clang`` on ``PATH``; a
    candidate counts only if it answers ``--version``.  Returns ``None``
    when :data:`NO_NATIVE_ENV` is set or nothing usable is found.
    ``refresh=True`` re-probes (tests use it after changing the
    environment).
    """
    global _TOOLCHAIN
    with _TOOLCHAIN_LOCK:
        if _TOOLCHAIN is _UNPROBED or refresh:
            _TOOLCHAIN = _probe_toolchain()
        return _TOOLCHAIN  # type: ignore[return-value]


def native_available() -> bool:
    """Whether ``engine='native'`` would actually run compiled C here."""
    return find_toolchain() is not None


_WARNED_MISSING = False


def warn_toolchain_missing() -> None:
    """One-time ``RuntimeWarning`` that ``native`` degraded to ``codegen``."""
    global _WARNED_MISSING
    if not _WARNED_MISSING:
        _WARNED_MISSING = True
        warnings.warn(
            "no C toolchain found (tried $CC, cc, gcc, clang): "
            "engine='native' degrades to 'codegen' on this host",
            RuntimeWarning,
            stacklevel=3,
        )


# --------------------------------------------------------------------------- #
# C source emission (the C twin of generate_kernel_source)
# --------------------------------------------------------------------------- #
def generate_c_kernel_source(
    program: CompiledProgram, slots: Sequence[int]
) -> str:
    """Emit C source computing the packed values of ``slots``.

    Consumes the same :func:`~repro.perf.engines.plan_kernel` analysis as
    the Python emitter — the planned expression texts are valid in both
    languages (names, parentheses and ``& | ^``, whose precedence ordering
    matches) — and wraps them in one word loop over ``[w_lo, w_hi)``.

    Example::

        src = generate_c_kernel_source(program, program.output_slots)
        print(src)          # inspect what the native engine executes
    """
    slots = [int(s) for s in slots]
    plan = plan_kernel(program, slots)
    lines: List[str] = []
    for s, row in plan.input_loads:
        lines.append(
            f"        const uint64_t i{s} = in[(int64_t){row} * n_words + w];"
        )
    for dst, text in plan.statements:
        lines.append(f"        const uint64_t v{dst} = {text};")
    for j, text in enumerate(plan.returns):
        lines.append(f"        out[(int64_t){j} * n_words + w] = {text};")
    body = "\n".join(lines)
    return (
        "#include <stdint.h>\n"
        "\n"
        f"/* {program.name}: {len(plan.input_loads)} inputs, "
        f"{len(plan.statements)} locals, {len(slots)} outputs */\n"
        "void repro_kernel(const uint64_t *in, uint64_t *out,\n"
        "                  int64_t n_words, int64_t w_lo, int64_t w_hi)\n"
        "{\n"
        "    const uint64_t ZERO = (uint64_t)0;\n"
        "    const uint64_t ONE = ~(uint64_t)0;\n"
        "    (void)ZERO; (void)ONE; (void)in;\n"
        "    for (int64_t w = w_lo; w < w_hi; ++w) {\n"
        + (body + "\n" if body else "")
        + "    }\n"
        "}\n"
    )


# --------------------------------------------------------------------------- #
# Compilation + two-level (memory, disk) kernel cache
# --------------------------------------------------------------------------- #
def kernel_cache_dir() -> Path:
    """Directory of the on-disk shared-object cache.

    Lives under the PR 2 persistent cache root (``$REPRO_CACHE_DIR`` or
    ``~/.cache/repro``), so one knob relocates every cache the repo keeps.
    """
    from repro.core.flow_executor import default_cache_dir

    return default_cache_dir() / "native-kernels"


# digest -> (CDLL, bound function); the CDLL reference keeps the object
# mapped for as long as any evaluator may still hold the function.
_SO_CACHE: Dict[str, Tuple[ctypes.CDLL, object]] = {}
_SO_LOCK = threading.Lock()


def _invoke_compiler(toolchain: Toolchain, c_path: Path, so_path: Path) -> None:
    """Run one compiler invocation (separate function so tests can spy on or
    fail it).  Raises ``RuntimeError`` with the compiler's stderr on failure."""
    proc = subprocess.run(
        [toolchain.path, "-O2", "-fPIC", "-shared", "-o", str(so_path), str(c_path)],
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"native kernel compilation failed ({toolchain.path} exited "
            f"{proc.returncode}):\n{proc.stderr}"
        )


def load_kernel(source: str, toolchain: Toolchain):
    """The compiled ``repro_kernel`` for ``source``, through both caches.

    Memory first, then disk (keyed by SHA-256 of toolchain fingerprint +
    source), compiling only on a double miss.  The object is built in a
    temporary directory and published with an atomic ``os.replace``, so
    concurrent processes racing on the same key both succeed.
    """
    digest = hashlib.sha256(
        (toolchain.fingerprint + "\0" + source).encode()
    ).hexdigest()[:32]
    with _SO_LOCK:
        cached = _SO_CACHE.get(digest)
        if cached is not None:
            return cached[1]
        cache_dir = kernel_cache_dir()
        cache_dir.mkdir(parents=True, exist_ok=True)
        so_path = cache_dir / f"{digest}.so"
        if not so_path.exists():
            with tempfile.TemporaryDirectory(dir=cache_dir) as tmp:
                c_path = Path(tmp) / "kernel.c"
                c_path.write_text(source)
                tmp_so = Path(tmp) / "kernel.so"
                _invoke_compiler(toolchain, c_path, tmp_so)
                os.replace(tmp_so, so_path)
        lib = ctypes.CDLL(str(so_path))
        fn = lib.repro_kernel
        fn.argtypes = [_U64P, _U64P, ctypes.c_int64, ctypes.c_int64, ctypes.c_int64]
        fn.restype = None
        _SO_CACHE[digest] = (lib, fn)
        return fn


# --------------------------------------------------------------------------- #
# Persistent shard pool (shared by every NativeEvaluator in the process)
# --------------------------------------------------------------------------- #
_POOL: Optional[ThreadPoolExecutor] = None
_POOL_LOCK = threading.Lock()


def _shard_pool() -> ThreadPoolExecutor:
    # Sized >= 4 even on small hosts so an explicit `threads=` request (the
    # benchmark's 1/2/4 scaling curve) genuinely shards instead of queueing.
    global _POOL
    with _POOL_LOCK:
        if _POOL is None:
            _POOL = ThreadPoolExecutor(
                max_workers=max(4, NATIVE_THREADS),
                thread_name_prefix="repro-native",
            )
        return _POOL


# --------------------------------------------------------------------------- #
class NativeEvaluator(BitParallelEvaluator):
    """Executes a program as one compiled-C function per requested slot tuple.

    Kernels are generated, compiled and loaded lazily per slot tuple (same
    laziness as :class:`~repro.perf.engines.CodegenEvaluator`) and cached on
    the evaluator; the shared objects additionally persist in the process-
    and disk-level caches (:func:`load_kernel`).  Evaluator instances are
    cached per netlist structure by
    :func:`~repro.perf.bitsim.evaluator_for`, so structural mutation retires
    the evaluator — and its new source hashes to a new disk key.

    ``threads`` controls word-axis sharding: ``None`` (default) picks 1
    below :data:`NATIVE_PARALLEL_MIN_WORDS` words and
    :data:`NATIVE_THREADS` above; an explicit integer forces that shard
    count (the benchmark's thread-scaling curve sets 1/2/4).  Shards write
    disjoint ``[w_lo, w_hi)`` column ranges of the output, so the only
    synchronisation is the final join.

    Example::

        out = NativeEvaluator(compile_netlist(netlist)).evaluate(vectors)
    """

    def __init__(
        self, program: CompiledProgram, toolchain: Optional[Toolchain] = None
    ) -> None:
        super().__init__(program)
        toolchain = toolchain if toolchain is not None else find_toolchain()
        if toolchain is None:
            raise RuntimeError(
                "no C toolchain available — construct evaluators through "
                "make_evaluator(engine='native'), which degrades to codegen"
            )
        self.toolchain = toolchain
        #: ``None`` = automatic (threshold on word count); an int forces it.
        self.threads: Optional[int] = None
        self._kernels: Dict[Tuple[int, ...], object] = {}
        self._sources: Dict[Tuple[int, ...], str] = {}

    # ------------------------------------------------------------------ #
    def _kernel_for(self, slots: Tuple[int, ...]):
        fn = self._kernels.get(slots)
        if fn is None:
            source = generate_c_kernel_source(self.program, slots)
            fn = load_kernel(source, self.toolchain)
            self._kernels[slots] = fn
            self._sources[slots] = source
        return fn

    def kernel_source(self, slots: Sequence[int]) -> str:
        """The generated C source for a slot tuple (compiling it if needed)."""
        slots = tuple(int(s) for s in slots)
        self._kernel_for(slots)
        return self._sources[slots]

    def _call(self, fn, packed_inputs: np.ndarray, n_out: int) -> np.ndarray:
        program = self.program
        packed_inputs = np.ascontiguousarray(
            np.asarray(packed_inputs, dtype=np.uint64)
        )
        if packed_inputs.ndim != 2 or packed_inputs.shape[0] != program.n_inputs:
            raise ValueError(
                f"expected packed inputs of shape ({program.n_inputs}, n_words), "
                f"got {packed_inputs.shape}"
            )
        n_words = packed_inputs.shape[1]
        out = np.empty((n_out, n_words), dtype=np.uint64)
        if n_words == 0 or n_out == 0:
            return out
        in_arr = packed_inputs if program.n_inputs else _EMPTY_IN
        in_ptr = in_arr.ctypes.data_as(_U64P)
        out_ptr = out.ctypes.data_as(_U64P)
        threads = self.threads
        if threads is None:
            threads = 1 if n_words < NATIVE_PARALLEL_MIN_WORDS else NATIVE_THREADS
        threads = max(1, min(int(threads), n_words))
        if threads == 1:
            fn(in_ptr, out_ptr, n_words, 0, n_words)
            return out
        # The ctypes call releases the GIL, so shards run truly in parallel;
        # each writes a disjoint column range of `out`.
        chunk = -(-n_words // threads)
        pool = _shard_pool()
        futures = [
            pool.submit(fn, in_ptr, out_ptr, n_words, lo, min(lo + chunk, n_words))
            for lo in range(0, n_words, chunk)
        ]
        for future in futures:
            future.result()
        return out

    # ------------------------------------------------------------------ #
    def evaluate_packed_slots(
        self, packed_inputs: np.ndarray, slots: Sequence[int]
    ) -> np.ndarray:
        """Packed rows for the requested slots via a per-tuple C kernel."""
        slots = tuple(int(s) for s in slots)
        return self._call(self._kernel_for(slots), packed_inputs, len(slots))

    def evaluate_packed(self, packed_inputs: np.ndarray) -> np.ndarray:
        """Full slot state — compatibility path through an all-slots kernel."""
        all_slots = tuple(range(self.program.n_slots))
        return self._call(
            self._kernel_for(all_slots), packed_inputs, len(all_slots)
        )
