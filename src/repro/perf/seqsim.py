"""Bit-parallel *sequential* (multi-cycle) simulation of clocked netlists.

The combinational engine (:mod:`repro.perf.compile` / :mod:`repro.perf.bitsim`)
lowers a netlist once into a flat numpy program and evaluates 64 packed test
vectors per ``uint64`` word.  This module extends that strategy to netlists
with real D flip-flops (built through the
:meth:`~repro.hw.netlist.GateNetlist.declare_dff` /
:meth:`~repro.hw.netlist.GateNetlist.bind_dff` feedback API):

1. **Register-boundary split** — :func:`compile_sequential` cuts the gate
   graph at the flip-flops: every Q output becomes an extra primary input of
   a purely combinational *cone netlist*, every D input an extra primary
   output.  The cone is compiled by the existing combinational compiler —
   including its ``opt_level`` path, so the :mod:`repro.hw.opt` passes
   optimize exactly the combinational regions between register barriers.
2. **Stateful evaluation** — :class:`SequentialEvaluator` keeps one packed
   ``uint64`` word row per flip-flop and clocks all 64 vectors per word
   through ``N`` cycles: each cycle is one run of the cone program (one
   numpy kernel per op) followed by a vectorized state update
   ``Q <- D``.  Power-on values come from
   :attr:`~repro.hw.netlist.GateNetlist.dff_init` (overridable per run,
   even per vector).

Cycle semantics match the interpreted oracle
(:func:`repro.hw.simulate.simulate_sequential_reference`): the outputs
recorded for cycle ``t`` are the combinational values seen *during* that
cycle (computed from the state after ``t`` clock edges), and the state
update happens at the end of the cycle.

Typical use::

    netlist = build_counter_netlist(4)
    trace = simulate_sequential_batch(netlist, inputs, cycles=10)
    trace.shape                         # (10, n_vectors, n_outputs)

Programs are cached on the netlist per (library, structure version,
opt level) exactly like the combinational ones, so any structural mutation
— growth, :meth:`~repro.hw.netlist.GateNetlist.bind_dff`, or an in-place
rewrite announced via
:meth:`~repro.hw.netlist.GateNetlist.note_structural_change` — recompiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.hw.cells import CellLibrary
from repro.hw.netlist import GateNetlist
from repro.hw.pdk import EGFET_PDK
from repro.perf.bitsim import pack_vectors, unpack_vectors
from repro.perf.compile import CompiledProgram, compile_netlist
from repro.perf.engines import make_evaluator, resolve_engine


@dataclass
class SequentialProgram:
    """A clocked netlist split at its registers and lowered to one cone program.

    Attributes
    ----------
    name:
        Name of the source netlist.
    program:
        The compiled combinational cone: inputs are the primary inputs
        followed by one Q net per flip-flop, outputs the primary outputs.
    input_names / output_names:
        The *primary* ports of the source netlist (the cone's extra state
        ports are internal to the engine).
    state_names:
        Flip-flop instance names, in declaration order — the state vector
        layout every ``init`` argument and state array uses.
    q_nets / d_nets:
        The Q output net and (resolved) D input net of each flip-flop.
    state_slots / next_state_slots:
        Cone-program slots holding each flip-flop's current value (a cone
        input) and next value (the net feeding its D pin).
    init_bits:
        Power-on value per flip-flop from the netlist's ``dff_init``.

    Example::

        seq = compile_sequential(build_counter_netlist(3))
        seq.n_state, seq.program.n_ops      # 3 flip-flops, flat op count
    """

    name: str
    program: CompiledProgram
    input_names: List[str]
    output_names: List[str]
    state_names: List[str]
    q_nets: List[str]
    d_nets: List[str]
    state_slots: np.ndarray
    next_state_slots: np.ndarray
    output_slots: np.ndarray
    init_bits: np.ndarray

    @property
    def n_state(self) -> int:
        return len(self.state_names)

    @property
    def n_inputs(self) -> int:
        return len(self.input_names)

    @property
    def n_outputs(self) -> int:
        return len(self.output_names)


def _build_cone(
    netlist: GateNetlist, library: CellLibrary
) -> "tuple[GateNetlist, list, list, list]":
    """Split a clocked netlist at its registers into a combinational cone.

    Returns ``(cone, state_names, q_nets, d_nets)``.  The cone's inputs are
    the primary inputs plus every Q net; its outputs the primary outputs
    plus every internally-driven D net (so the D slots survive the
    optimization passes, which preserve primary ports by name).
    """
    sequential = netlist.sequential_gates(library)
    unbound = [g.name for g in sequential if not g.inputs]
    if unbound:
        raise ValueError(
            f"netlist {netlist.name!r} has unbound flip-flops {unbound}; "
            "call bind_dff before simulating"
        )
    cone = GateNetlist(name=f"{netlist.name}__cone")
    for net in netlist.inputs:
        cone.add_input(net)
    q_nets: List[str] = []
    d_nets: List[str] = []
    state_names: List[str] = []
    for gate in sequential:
        if len(gate.inputs) != 1 or len(gate.outputs) != 1:
            raise NotImplementedError(
                f"sequential cell {gate.cell!r} with {len(gate.inputs)} inputs "
                "is not supported; only 1-bit D flip-flops clock state"
            )
        state_names.append(gate.name)
        q_nets.append(cone.add_input(gate.outputs[0]))
        d_nets.append(gate.inputs[0])
    sequential_ids = {id(g) for g in sequential}
    for gate in netlist.gates:
        if id(gate) in sequential_ids:
            continue
        cone.add_gate(gate.cell, gate.inputs, outputs=gate.outputs, name=gate.name)
    for net in netlist.outputs:
        cone.mark_output(net)
    # D nets fed by combinational logic must be observable cone outputs so
    # the optimizer cannot fold them away; constants, primary inputs and Q
    # nets always keep a slot of their own.
    for d in d_nets:
        if d in (GateNetlist.CONST_ZERO, GateNetlist.CONST_ONE):
            continue
        if d in cone.inputs or d in cone.outputs:
            continue
        cone.mark_output(d)
    return cone, state_names, q_nets, d_nets


def compile_sequential(
    netlist: GateNetlist,
    library: Optional[CellLibrary] = None,
    opt_level: int = 0,
) -> SequentialProgram:
    """Compile a clocked netlist into a :class:`SequentialProgram` (cached).

    The cache lives on the netlist instance, keyed like the combinational
    compile cache (library identity, structural signature, ``opt_level``),
    so growing the netlist, binding a flip-flop or announcing an in-place
    rewrite recompiles automatically.  ``opt_level > 0`` runs the
    :mod:`repro.hw.opt` pass pipeline over the combinational cone between
    the register barriers (the registers themselves are never touched).

    Example::

        seq = compile_sequential(build_counter_netlist(4), opt_level=2)
        SequentialEvaluator(seq).run(np.zeros((1, 0), dtype=np.int64), 5)
    """
    library = library or EGFET_PDK
    signature = netlist.structural_signature()
    cache = getattr(netlist, "_seqsim_program_cache", None)
    if cache is None:
        cache = {}
        netlist._seqsim_program_cache = cache
    key = (id(library), signature, int(opt_level))
    cached = cache.get(key)
    if cached is not None and cached[0] is library:
        return cached[1]

    cone, state_names, q_nets, d_nets = _build_cone(netlist, library)
    program = compile_netlist(cone, library, opt_level=opt_level)
    slots = program.net_slots
    seq = SequentialProgram(
        name=netlist.name,
        program=program,
        input_names=list(netlist.inputs),
        output_names=list(netlist.outputs),
        state_names=state_names,
        q_nets=q_nets,
        d_nets=d_nets,
        state_slots=np.asarray([slots[q] for q in q_nets], dtype=np.int64),
        next_state_slots=np.asarray([slots[d] for d in d_nets], dtype=np.int64),
        output_slots=np.asarray([slots[n] for n in netlist.outputs], dtype=np.int64),
        init_bits=np.asarray(
            [int(netlist.dff_init.get(name, 0)) & 1 for name in state_names],
            dtype=np.uint64,
        ),
    )
    for stale in [k for k in cache if k[1] != signature]:
        del cache[stale]
    cache[key] = (library, seq)
    return seq


InitSpec = Union[None, Dict[str, int], Sequence[int], np.ndarray]


class SequentialEvaluator:
    """Clocks a :class:`SequentialProgram` over packed ``uint64`` vector words.

    ``engine`` selects the execution backend for the per-cycle cone
    (:mod:`repro.perf.engines`); under ``'auto'`` the cone automatically
    picks up the codegen (or, for very large cones, fused) kernel, which is
    where fusion pays the most — the cone re-runs every clock cycle.

    Example::

        evaluator = sequential_evaluator_for(netlist)
        trace = evaluator.run(input_bits, cycles=8)   # (8, n_vectors, n_outputs)
    """

    def __init__(self, seq: SequentialProgram, engine: str = "auto") -> None:
        self.seq = seq
        self._cone = make_evaluator(seq.program, engine)
        self.engine = resolve_engine(engine, seq.program)
        # One kernel request per cycle: outputs and next state together.
        self._result_slots = tuple(
            int(s) for s in np.concatenate([seq.output_slots, seq.next_state_slots])
        )

    # ------------------------------------------------------------------ #
    def _init_words(self, init: InitSpec, n_vectors: int, n_words: int) -> np.ndarray:
        """Packed ``(n_state, n_words)`` power-on state for a run."""
        seq = self.seq
        bits = seq.init_bits.copy()
        if isinstance(init, dict):
            by_q = dict(zip(seq.q_nets, range(seq.n_state)))
            by_name = dict(zip(seq.state_names, range(seq.n_state)))
            for key, value in init.items():
                index = by_name.get(key, by_q.get(key))
                if index is None:
                    raise KeyError(
                        f"unknown flip-flop {key!r}; use an instance name "
                        f"{seq.state_names} or a Q net {seq.q_nets}"
                    )
                bits[index] = int(value) & 1
        elif init is not None:
            array = np.asarray(init)
            if array.shape == (n_vectors, seq.n_state):
                packed, _ = pack_vectors(array)
                return packed
            if array.shape != (seq.n_state,):
                raise ValueError(
                    f"init must be a dict, a ({seq.n_state},) vector or a "
                    f"({n_vectors}, {seq.n_state}) matrix, got {array.shape}"
                )
            bits = (array != 0).astype(np.uint64)
        # Broadcast one bit per flip-flop across every packed vector lane.
        words = np.zeros((seq.n_state, n_words), dtype=np.uint64)
        words[bits != 0] = np.uint64(0xFFFFFFFFFFFFFFFF)
        return words

    # ------------------------------------------------------------------ #
    def run_packed(
        self,
        packed_inputs: np.ndarray,
        cycles: int,
        state_words: np.ndarray,
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Clock ``cycles`` cycles over packed words; the workhorse kernel.

        ``packed_inputs`` is ``(n_inputs, n_words)`` (held constant over the
        run) or ``(cycles, n_inputs, n_words)`` (a per-cycle stream);
        ``state_words`` is the ``(n_state, n_words)`` starting state.
        Returns ``(trace, final_state)`` where ``trace`` has shape
        ``(cycles, n_outputs, n_words)``.
        """
        seq = self.seq
        packed_inputs = np.asarray(packed_inputs, dtype=np.uint64)
        streamed = packed_inputs.ndim == 3
        n_words = state_words.shape[1] if seq.n_state else packed_inputs.shape[-1]
        trace = np.empty((int(cycles), seq.n_outputs, n_words), dtype=np.uint64)
        state = np.asarray(state_words, dtype=np.uint64)
        n_outputs = seq.n_outputs
        for t in range(int(cycles)):
            rows = packed_inputs[t] if streamed else packed_inputs
            cone_in = np.concatenate([rows, state], axis=0)
            # One engine call per cycle computing outputs and next state
            # together — the codegen engine compiles a dedicated kernel for
            # exactly this slot tuple (dead cone logic never executes).
            result = self._cone.evaluate_packed_slots(cone_in, self._result_slots)
            trace[t] = result[:n_outputs]
            state = result[n_outputs:]
        return trace, state

    def run(
        self,
        input_bits: np.ndarray,
        cycles: Optional[int] = None,
        init: InitSpec = None,
    ) -> np.ndarray:
        """Clock a batch of vectors; returns ``(cycles, n_vectors, n_outputs)``.

        ``input_bits`` is either ``(n_vectors, n_inputs)`` — the same input
        vector held on the pins for the whole run, the sequential-SVM usage —
        or ``(cycles, n_vectors, n_inputs)`` for per-cycle input streams.
        ``cycles`` is mandatory for 2-D inputs and must match (or be omitted)
        for 3-D streams.  ``cycles=0`` returns an empty, well-shaped trace.
        """
        seq = self.seq
        input_bits = np.asarray(input_bits)
        if input_bits.ndim == 2:
            if cycles is None:
                raise ValueError("cycles is required when inputs are held constant")
            n_vectors = input_bits.shape[0]
            if input_bits.shape[1] != seq.n_inputs:
                raise ValueError(
                    f"expected {seq.n_inputs} input columns, got {input_bits.shape}"
                )
            packed, _ = pack_vectors(input_bits)
        elif input_bits.ndim == 3:
            if cycles is None:
                cycles = input_bits.shape[0]
            if input_bits.shape[0] != cycles:
                raise ValueError(
                    f"input stream provides {input_bits.shape[0]} cycles, "
                    f"but cycles={cycles} was requested"
                )
            n_vectors = input_bits.shape[1]
            if input_bits.shape[2] != seq.n_inputs:
                raise ValueError(
                    f"expected {seq.n_inputs} input columns, got {input_bits.shape}"
                )
            per_cycle = [pack_vectors(input_bits[t])[0] for t in range(cycles)]
            packed = (
                np.stack(per_cycle)
                if per_cycle
                else np.zeros((0, seq.n_inputs, max((n_vectors + 63) // 64, 1)))
            )
        else:
            raise ValueError(
                "input_bits must be (n_vectors, n_inputs) or "
                f"(cycles, n_vectors, n_inputs), got shape {input_bits.shape}"
            )
        if cycles < 0:
            raise ValueError("cycles must be >= 0")
        n_words = max((n_vectors + 63) // 64, 1)
        state = self._init_words(init, n_vectors, n_words)
        trace, _ = self.run_packed(packed, cycles, state)
        if cycles == 0:
            return np.zeros((0, n_vectors, seq.n_outputs), dtype=np.int64)
        flat = trace.reshape(int(cycles) * seq.n_outputs, n_words)
        bits = unpack_vectors(flat, n_vectors)  # (n_vectors, cycles*n_outputs)
        return (
            bits.T.reshape(int(cycles), seq.n_outputs, n_vectors)
            .transpose(0, 2, 1)
            .astype(np.int64)
        )

    def final_state(
        self,
        input_bits: np.ndarray,
        cycles: int,
        init: InitSpec = None,
    ) -> np.ndarray:
        """Flip-flop values after ``cycles`` clock edges: ``(n_vectors, n_state)``.

        Example::

            state = evaluator.final_state(inputs, cycles=5)
            dict(zip(evaluator.seq.state_names, state[0]))
        """
        seq = self.seq
        input_bits = np.asarray(input_bits)
        n_vectors = input_bits.shape[-2] if input_bits.ndim == 3 else input_bits.shape[0]
        n_words = max((n_vectors + 63) // 64, 1)
        if input_bits.ndim == 3:
            packed = np.stack(
                [pack_vectors(input_bits[t])[0] for t in range(int(cycles))]
            ) if cycles else np.zeros((0, seq.n_inputs, n_words))
        else:
            packed, _ = pack_vectors(input_bits)
        state = self._init_words(init, n_vectors, n_words)
        _, state = self.run_packed(packed, cycles, state)
        return unpack_vectors(state, n_vectors)


def sequential_evaluator_for(
    netlist: GateNetlist,
    library: Optional[CellLibrary] = None,
    opt_level: int = 0,
    engine: str = "auto",
) -> SequentialEvaluator:
    """Compile (cached) and wrap a clocked netlist for sequential evaluation.

    ``engine`` selects the per-cycle cone's execution backend; evaluators
    are cached per (library, structure version, opt level, resolved engine)
    so mutation invalidates compiled cone kernels along with the program.

    Example::

        evaluator = sequential_evaluator_for(netlist, opt_level=2)
        trace = evaluator.run(vectors, cycles=n_classes)
    """
    library = library or EGFET_PDK
    seq = compile_sequential(netlist, library, opt_level=opt_level)
    resolved = resolve_engine(engine, seq.program)
    cache = getattr(netlist, "_seqsim_evaluator_cache", None)
    if not isinstance(cache, dict):
        cache = {}
        netlist._seqsim_evaluator_cache = cache
    signature = netlist.structural_signature()
    key = (id(library), signature, int(opt_level), resolved)
    cached = cache.get(key)
    if cached is not None and cached[0] is seq:
        return cached[1]
    evaluator = SequentialEvaluator(seq, engine=resolved)
    for stale in [k for k in cache if k[1] != signature]:
        del cache[stale]
    cache[key] = (seq, evaluator)
    return evaluator


def simulate_sequential_batch(
    netlist: GateNetlist,
    input_bits: np.ndarray,
    cycles: Optional[int] = None,
    init: InitSpec = None,
    library: Optional[CellLibrary] = None,
    opt_level: int = 0,
    engine: str = "auto",
) -> np.ndarray:
    """Bit-parallel multi-cycle sweep of a clocked netlist.

    The sequential counterpart of
    :func:`~repro.perf.bitsim.simulate_netlist_batch`: ``input_bits`` is a
    ``(n_vectors, n_inputs)`` matrix held constant over the run (or a
    ``(cycles, n_vectors, n_inputs)`` per-cycle stream), ``init`` overrides
    the netlist's flip-flop power-on values (dict by instance/Q-net name,
    per-flip-flop vector, or per-vector matrix) and the result has shape
    ``(cycles, n_vectors, n_outputs)`` with the cycle-``t`` plane holding
    the combinational output values seen during cycle ``t`` — bit-identical
    to :func:`repro.hw.simulate.simulate_sequential_reference` per cycle.

    Example::

        trace = simulate_sequential_batch(netlist, vectors, cycles=8)
        trace[-1]        # outputs during the final cycle, (n_vectors, n_outputs)
    """
    evaluator = sequential_evaluator_for(
        netlist, library, opt_level=opt_level, engine=engine
    )
    return evaluator.run(input_bits, cycles=cycles, init=init)
