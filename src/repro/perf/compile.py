"""Netlist compiler: lower a :class:`GateNetlist` into a flat bit-op program.

The interpreted gate-level simulator walks a netlist gate by gate through
``Dict[str, int]`` lookups — fine for one vector, hopeless for sweeps.  This
module compiles a netlist *once* into a :class:`CompiledProgram`: a flat,
topologically-ordered sequence of primitive bitwise operations over an array
of *net slots*, expressed as parallel numpy arrays (opcode, operand slot
indices, destination slot).  The program contains no string lookups and no
per-gate cell dispatch; the bit-parallel evaluator
(:mod:`repro.perf.bitsim`) executes it on packed ``uint64`` words, 64 test
vectors at a time.

Lowering rules
--------------
* Simple cells (INV, BUF, AND2, OR2, XOR2, NAND2, NOR2, XNOR2, AND3, OR3,
  MUX2) map to one primitive op each.
* Multi-output arithmetic cells expand into primitive ops: ``HA`` becomes
  XOR + AND, ``FA`` becomes the standard 5-op sum/majority decomposition
  (sharing the ``a ^ b`` term).
* ``DFF`` and ``ADC1`` follow the library's combinationally-transparent
  simulation models (a buffer), matching :func:`simulate_combinational`.
* Any other cell that declares a boolean ``function`` is lowered through its
  truth table (sum of minterms over scratch slots), so custom libraries keep
  working without touching the compiler.

Programs are cached on the netlist instance per (library, structure version,
opt level) and invalidated by any structural mutation — growth through the
builder API or an in-place rewrite announced via
:meth:`~repro.hw.netlist.GateNetlist.note_structural_change` — so repeated
sweeps over the same netlist compile only once.  ``opt_level > 0`` runs the
:mod:`repro.hw.opt` pass pipeline before lowering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.hw.cells import CellLibrary
from repro.hw.netlist import GateNetlist
from repro.hw.pdk import EGFET_PDK

# --------------------------------------------------------------------------- #
# Primitive opcodes
# --------------------------------------------------------------------------- #
OP_BUF = 0   # dst = a
OP_NOT = 1   # dst = ~a
OP_AND2 = 2  # dst = a & b
OP_OR2 = 3   # dst = a | b
OP_XOR2 = 4  # dst = a ^ b
OP_NAND2 = 5  # dst = ~(a & b)
OP_NOR2 = 6   # dst = ~(a | b)
OP_XNOR2 = 7  # dst = ~(a ^ b)
OP_AND3 = 8   # dst = a & b & c
OP_OR3 = 9    # dst = a | b | c
OP_MUX2 = 10  # dst = c ? b : a

OPCODE_NAMES = {
    OP_BUF: "BUF",
    OP_NOT: "NOT",
    OP_AND2: "AND2",
    OP_OR2: "OR2",
    OP_XOR2: "XOR2",
    OP_NAND2: "NAND2",
    OP_NOR2: "NOR2",
    OP_XNOR2: "XNOR2",
    OP_AND3: "AND3",
    OP_OR3: "OR3",
    OP_MUX2: "MUX2",
}

#: Number of operand slots each primitive op actually reads (trailing unused
#: operand columns are always 0 / ``SLOT_ZERO``).  The levelizer, the fused
#: executor and the disassembler all consult this instead of guessing from
#: the operand columns.
OP_ARITY = {
    OP_BUF: 1,
    OP_NOT: 1,
    OP_AND2: 2,
    OP_OR2: 2,
    OP_XOR2: 2,
    OP_NAND2: 2,
    OP_NOR2: 2,
    OP_XNOR2: 2,
    OP_AND3: 3,
    OP_OR3: 3,
    OP_MUX2: 3,
}

#: Cells that lower to exactly one primitive op (operand order preserved).
_DIRECT_LOWERING = {
    "INV": OP_NOT,
    "BUF": OP_BUF,
    "AND2": OP_AND2,
    "OR2": OP_OR2,
    "XOR2": OP_XOR2,
    "NAND2": OP_NAND2,
    "NOR2": OP_NOR2,
    "XNOR2": OP_XNOR2,
    "AND3": OP_AND3,
    "OR3": OP_OR3,
    "MUX2": OP_MUX2,
    # Combinationally-transparent models (see repro.hw.cells).
    "DFF": OP_BUF,
    "ADC1": OP_BUF,
}

#: Canonical boolean behaviour each named lowering assumes.  Before a cell is
#: direct-lowered, its declared ``function`` is checked against this over the
#: full truth table; a library that redefines a standard name with different
#: logic falls back to truth-table lowering instead of being miscompiled.
#: The optimization passes (:mod:`repro.hw.opt`) share this table when
#: matching folded truth tables back onto library cells.
CANONICAL_SEMANTICS = {
    "INV": lambda b: (1 - b[0],),
    "BUF": lambda b: (b[0],),
    "AND2": lambda b: (b[0] & b[1],),
    "OR2": lambda b: (b[0] | b[1],),
    "XOR2": lambda b: (b[0] ^ b[1],),
    "NAND2": lambda b: (1 - (b[0] & b[1]),),
    "NOR2": lambda b: (1 - (b[0] | b[1]),),
    "XNOR2": lambda b: (1 - (b[0] ^ b[1]),),
    "AND3": lambda b: (b[0] & b[1] & b[2],),
    "OR3": lambda b: (b[0] | b[1] | b[2],),
    "MUX2": lambda b: (b[1] if b[2] else b[0],),
    "DFF": lambda b: (b[0],),
    "ADC1": lambda b: (b[0],),
    "HA": lambda b: (b[0] ^ b[1], b[0] & b[1]),
    "FA": lambda b: (
        b[0] ^ b[1] ^ b[2],
        (b[0] & b[1]) | (b[2] & (b[0] ^ b[1])),
    ),
}


def cell_matches_canonical(cell) -> bool:
    """True when the cell's declared function equals the canonical lowering."""
    canonical = CANONICAL_SEMANTICS.get(cell.name)
    if canonical is None:
        return False
    for assignment in range(1 << cell.n_inputs):
        bits = tuple((assignment >> i) & 1 for i in range(cell.n_inputs))
        if tuple(cell.evaluate(bits)) != tuple(canonical(bits)):
            return False
    return True


#: Slot indices reserved for the constant nets.
SLOT_ZERO = 0
SLOT_ONE = 1


@dataclass
class CompiledProgram:
    """A netlist lowered to a flat topological program of primitive bit ops.

    Attributes
    ----------
    name:
        Name of the source netlist.
    n_slots:
        Number of value slots the evaluator must allocate (slot 0 is the
        constant 0, slot 1 the constant 1; primary inputs follow; the rest
        are gate outputs and compiler scratch).
    opcodes / operands / dsts:
        Parallel arrays describing the ops: ``opcodes[k]`` is one of the
        ``OP_*`` constants, ``operands[k]`` the three operand slot indices
        (unused trailing operands are 0) and ``dsts[k]`` the destination
        slot.  Ops are in topological order.
    input_names / input_slots:
        Primary inputs in declaration order and their slots.
    output_names / output_slots:
        Primary outputs in declaration order and their slots.
    net_slots:
        Slot of every *named* net (constants, inputs and gate outputs);
        scratch slots carry no name.

    Example::

        program = compile_netlist(build_ripple_adder_netlist(8))
        program.n_ops, program.n_inputs      # flat op count, port count
        BitParallelEvaluator(program)        # ready for packed evaluation
    """

    name: str
    n_slots: int
    opcodes: np.ndarray
    operands: np.ndarray
    dsts: np.ndarray
    input_names: List[str]
    input_slots: np.ndarray
    output_names: List[str]
    output_slots: np.ndarray
    net_slots: Dict[str, int]

    @property
    def n_ops(self) -> int:
        return int(self.opcodes.shape[0])

    @property
    def n_inputs(self) -> int:
        return len(self.input_names)

    def op_listing(self) -> List[str]:
        """Readable disassembly of the program.

        Arity-aware: each line shows only the operand slots its opcode
        actually reads (``NOT(s5)``, not ``NOT(s5, s0, s0)``), so lowered
        programs disassemble without phantom operands.

        Example::

            compile_netlist(netlist).op_listing()[:2]
            # ['s3 = NOT(s2)', 's4 = AND2(s2, s3)']
        """
        lines = []
        for k in range(self.n_ops):
            opcode = int(self.opcodes[k])
            operands = ", ".join(
                f"s{int(self.operands[k, i])}" for i in range(OP_ARITY[opcode])
            )
            lines.append(
                f"s{int(self.dsts[k])} = {OPCODE_NAMES[opcode]}({operands})"
            )
        return lines


class _ProgramBuilder:
    """Accumulates primitive ops and allocates slots during lowering."""

    def __init__(self) -> None:
        self.opcodes: List[int] = []
        self.operands: List[Tuple[int, int, int]] = []
        self.dsts: List[int] = []
        self.n_slots = 2  # constants occupy slots 0 and 1

    def new_slot(self) -> int:
        slot = self.n_slots
        self.n_slots += 1
        return slot

    def emit(self, opcode: int, a: int, b: int = 0, c: int = 0, dst: Optional[int] = None) -> int:
        if dst is None:
            dst = self.new_slot()
        self.opcodes.append(opcode)
        self.operands.append((a, b, c))
        self.dsts.append(dst)
        return dst


def _lower_truth_table(
    builder: _ProgramBuilder,
    cell,
    in_slots: List[int],
    out_slots: List[int],
) -> None:
    """Lower an arbitrary cell through its truth table (sum of minterms)."""
    n = cell.n_inputs
    if n > 10:
        raise NotImplementedError(
            f"cell {cell.name} has {n} inputs; truth-table lowering is "
            "limited to 10 inputs"
        )
    # Pre-invert each input once; minterm ANDs reuse these literals.
    inv_slots = [builder.emit(OP_NOT, s) for s in in_slots]
    minterms: List[List[int]] = [[] for _ in range(cell.n_outputs)]
    for assignment in range(1 << n):
        bits = tuple((assignment >> i) & 1 for i in range(n))
        outs = cell.evaluate(bits)
        for j, val in enumerate(outs):
            if val:
                minterms[j].append(assignment)
    for j, terms in enumerate(minterms):
        if not terms:
            builder.emit(OP_BUF, SLOT_ZERO, dst=out_slots[j])
            continue
        if len(terms) == 1 << n:
            builder.emit(OP_BUF, SLOT_ONE, dst=out_slots[j])
            continue
        term_slots: List[int] = []
        for assignment in terms:
            literals = [
                in_slots[i] if (assignment >> i) & 1 else inv_slots[i]
                for i in range(n)
            ]
            acc = literals[0]
            for lit in literals[1:]:
                acc = builder.emit(OP_AND2, acc, lit)
            term_slots.append(acc)
        acc = term_slots[0]
        for term in term_slots[1:-1]:
            acc = builder.emit(OP_OR2, acc, term)
        if len(term_slots) > 1:
            builder.emit(OP_OR2, acc, term_slots[-1], dst=out_slots[j])
        else:
            builder.emit(OP_BUF, acc, dst=out_slots[j])


def compile_netlist(
    netlist: GateNetlist,
    library: Optional[CellLibrary] = None,
    opt_level: int = 0,
) -> CompiledProgram:
    """Compile a netlist into a :class:`CompiledProgram` (cached per netlist).

    The cache lives on the netlist instance and is keyed by the library
    *object*, the netlist's structural signature (mutation version plus
    gate / input / output counts) and ``opt_level``, so growing the netlist,
    rewriting it in place (via
    :meth:`~repro.hw.netlist.GateNetlist.note_structural_change`) or
    switching libraries recompiles automatically.

    ``opt_level > 0`` runs the :mod:`repro.hw.opt` pass pipeline first and
    compiles the optimized netlist: the program computes the same primary
    outputs from fewer ops, but internal nets folded away by the passes no
    longer appear in ``net_slots``.  The default (``0``) compiles the raw
    netlist verbatim and remains the oracle the optimized path is checked
    against.

    Example::

        netlist = build_constant_mac_netlist([0, 2, 5], 4)
        raw = compile_netlist(netlist)                 # the oracle program
        opt = compile_netlist(netlist, opt_level=2)    # same outputs, fewer ops
        assert opt.n_ops <= raw.n_ops
    """
    library = library or EGFET_PDK
    signature = netlist.structural_signature()
    cache = getattr(netlist, "_compiled_program_cache", None)
    if cache is None:
        cache = {}
        netlist._compiled_program_cache = cache
    # Key on library *identity*: two libraries may share a name but differ in
    # cell functions, so name equality is not enough to reuse a program.  The
    # library object is kept in the value so its id() cannot be recycled.
    key = (id(library), signature, int(opt_level))
    cached = cache.get(key)
    if cached is not None and cached[0] is library:
        return cached[1]

    source = netlist
    if opt_level > 0:
        from repro.hw.opt.pipeline import optimize

        source = optimize(netlist, level=opt_level, library=library).netlist

    builder = _ProgramBuilder()
    net_slots: Dict[str, int] = {
        GateNetlist.CONST_ZERO: SLOT_ZERO,
        GateNetlist.CONST_ONE: SLOT_ONE,
    }
    for net in source.inputs:
        net_slots[net] = builder.new_slot()

    canonical_cells: Dict[str, bool] = {}
    for gate in source.gates:
        cell = library[gate.cell]
        if cell.function is None:
            raise NotImplementedError(f"cell {cell.name} has no simulation model")
        missing = [pin for pin in gate.inputs if pin not in net_slots]
        if missing or (cell.is_sequential and not gate.inputs):
            # A pin driven only later in the gate list (or an unbound DFF)
            # means the netlist has sequential feedback: it cannot be lowered
            # as a combinational cone.
            raise ValueError(
                f"gate {gate.name!r} of {netlist.name!r} reads nets with no "
                f"combinational driver yet ({missing or 'unbound flip-flop'}); "
                "clocked netlists must be compiled with "
                "repro.perf.seqsim.compile_sequential"
            )
        in_slots = [net_slots[pin] for pin in gate.inputs]
        out_slots = [builder.new_slot() for _ in gate.outputs]
        for net, slot in zip(gate.outputs, out_slots):
            net_slots[net] = slot

        if gate.cell not in canonical_cells:
            canonical_cells[gate.cell] = cell_matches_canonical(cell)
        if not canonical_cells[gate.cell]:
            _lower_truth_table(builder, cell, in_slots, out_slots)
            continue
        opcode = _DIRECT_LOWERING.get(gate.cell)
        if opcode is not None:
            a = in_slots[0]
            b = in_slots[1] if len(in_slots) > 1 else 0
            c = in_slots[2] if len(in_slots) > 2 else 0
            builder.emit(opcode, a, b, c, dst=out_slots[0])
        elif gate.cell == "HA":
            builder.emit(OP_XOR2, in_slots[0], in_slots[1], dst=out_slots[0])
            builder.emit(OP_AND2, in_slots[0], in_slots[1], dst=out_slots[1])
        elif gate.cell == "FA":
            a, b, cin = in_slots
            axb = builder.emit(OP_XOR2, a, b)
            builder.emit(OP_XOR2, axb, cin, dst=out_slots[0])
            ab = builder.emit(OP_AND2, a, b)
            c_axb = builder.emit(OP_AND2, cin, axb)
            builder.emit(OP_OR2, ab, c_axb, dst=out_slots[1])
        else:
            _lower_truth_table(builder, cell, in_slots, out_slots)

    program = CompiledProgram(
        name=source.name,
        n_slots=builder.n_slots,
        opcodes=np.asarray(builder.opcodes, dtype=np.int16),
        operands=np.asarray(builder.operands, dtype=np.int32).reshape(-1, 3),
        dsts=np.asarray(builder.dsts, dtype=np.int32),
        input_names=list(source.inputs),
        input_slots=np.asarray(
            [net_slots[n] for n in source.inputs], dtype=np.int32
        ),
        output_names=list(source.outputs),
        output_slots=np.asarray(
            [net_slots[n] for n in source.outputs], dtype=np.int32
        ),
        net_slots=net_slots,
    )
    # Programs compiled for older structures can never be served again (the
    # version only moves forward), so evict them: the cache holds one entry
    # per (library, opt_level) of the *current* structure.
    for stale in [k for k in cache if k[1] != signature]:
        del cache[stale]
    cache[key] = (library, program)
    return program
