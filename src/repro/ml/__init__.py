"""Machine-learning substrate for printed bespoke classifiers.

This package provides everything the paper's algorithmic flow needs without
relying on scikit-learn:

* :mod:`repro.ml.svm` — binary linear SVM trained with dual coordinate
  descent (liblinear-style) or sub-gradient SGD.
* :mod:`repro.ml.multiclass` — One-vs-Rest and One-vs-One multi-class
  wrappers (the paper selects OvR to minimise stored support vectors).
* :mod:`repro.ml.mlp` — a small fully-connected multilayer perceptron used
  to reproduce the printed-MLP baseline [4].
* :mod:`repro.ml.preprocessing` — min-max normalisation to ``[0, 1]`` and a
  deterministic 80/20 train/test split, as used in the paper's setup.
* :mod:`repro.ml.fixed_point` — fixed-point number formats and rounding.
* :mod:`repro.ml.quantization` — post-training quantization of weights and
  biases and the "lowest precision that retains accuracy" search.
* :mod:`repro.ml.metrics` — accuracy and confusion-matrix helpers.
"""

from repro.ml.fixed_point import FixedPointFormat, quantize_array, dequantize_array
from repro.ml.preprocessing import MinMaxScaler, train_test_split
from repro.ml.metrics import accuracy_score, confusion_matrix
from repro.ml.svm import LinearSVC
from repro.ml.multiclass import OneVsRestClassifier, OneVsOneClassifier
from repro.ml.mlp import MLPClassifier
from repro.ml.quantization import (
    QuantizedLinearModel,
    QuantizedMLPModel,
    quantize_linear_classifier,
    quantize_mlp_classifier,
    search_lowest_precision,
)
from repro.ml.feature_selection import (
    SelectKBest,
    anova_f_scores,
    co_design_sweep,
    mutual_information_scores,
    select_k_best,
)

__all__ = [
    "FixedPointFormat",
    "quantize_array",
    "dequantize_array",
    "MinMaxScaler",
    "train_test_split",
    "accuracy_score",
    "confusion_matrix",
    "LinearSVC",
    "OneVsRestClassifier",
    "OneVsOneClassifier",
    "MLPClassifier",
    "QuantizedLinearModel",
    "QuantizedMLPModel",
    "quantize_linear_classifier",
    "quantize_mlp_classifier",
    "search_lowest_precision",
    "SelectKBest",
    "anova_f_scores",
    "co_design_sweep",
    "mutual_information_scores",
    "select_k_best",
]
