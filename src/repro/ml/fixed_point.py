"""Fixed-point number formats for bespoke printed classifiers.

The paper trains SVMs with *low-precision inputs* and, post training,
quantizes weights and biases "to the lowest precision that can retain
acceptable accuracy".  The resulting integers are what gets hardwired into
the bespoke MUX storage and processed by the compute engine, so the software
model and the hardware model must share one, well-defined fixed-point
semantics.  This module is that single source of truth.

A :class:`FixedPointFormat` describes a two's-complement (or unsigned)
fixed-point number with ``integer_bits`` bits left of the binary point and
``fraction_bits`` bits right of it.  Quantization maps a real value to the
nearest representable value (with configurable rounding and saturation), and
the *integer code* of a value is the underlying integer that the hardware
manipulates::

    value  =  code * 2**(-fraction_bits)

Example
-------
>>> fmt = FixedPointFormat(integer_bits=1, fraction_bits=3, signed=True)
>>> fmt.total_bits
5
>>> fmt.quantize(0.3)
0.25
>>> fmt.to_code(0.3)
2
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Union

import numpy as np

ArrayLike = Union[float, int, Iterable, np.ndarray]

#: Supported rounding modes for :meth:`FixedPointFormat.quantize`.
ROUNDING_MODES = ("nearest", "floor", "ceil", "truncate")


@dataclass(frozen=True)
class FixedPointFormat:
    """A two's-complement or unsigned fixed-point format.

    Parameters
    ----------
    integer_bits:
        Number of bits to the left of the binary point, *excluding* the sign
        bit.  May be negative for purely fractional formats whose range is a
        sub-interval of ``(-1, 1)``.
    fraction_bits:
        Number of bits to the right of the binary point.  May be negative to
        represent coarse integer grids (multiples of ``2**|fraction_bits|``).
    signed:
        Whether a sign bit is present (two's complement).
    rounding:
        One of :data:`ROUNDING_MODES`; applied when a real value is quantized.
    saturate:
        If True (default) out-of-range values clip to the representable
        extremes; if False they raise :class:`OverflowError`.
    """

    integer_bits: int
    fraction_bits: int
    signed: bool = True
    rounding: str = "nearest"
    saturate: bool = True

    def __post_init__(self) -> None:
        if self.rounding not in ROUNDING_MODES:
            raise ValueError(
                f"rounding must be one of {ROUNDING_MODES}, got {self.rounding!r}"
            )
        if self.total_bits < 1:
            raise ValueError(
                "format must have at least one bit "
                f"(integer_bits={self.integer_bits}, fraction_bits={self.fraction_bits})"
            )

    # ------------------------------------------------------------------ #
    # Static properties of the format
    # ------------------------------------------------------------------ #
    @property
    def total_bits(self) -> int:
        """Total storage width in bits (including the sign bit if signed)."""
        return self.integer_bits + self.fraction_bits + (1 if self.signed else 0)

    @property
    def resolution(self) -> float:
        """The value of one least-significant bit."""
        return 2.0 ** (-self.fraction_bits)

    @property
    def max_code(self) -> int:
        """Largest representable integer code."""
        if self.signed:
            return 2 ** (self.total_bits - 1) - 1
        return 2 ** self.total_bits - 1

    @property
    def min_code(self) -> int:
        """Smallest representable integer code."""
        if self.signed:
            return -(2 ** (self.total_bits - 1))
        return 0

    @property
    def max_value(self) -> float:
        """Largest representable real value."""
        return self.max_code * self.resolution

    @property
    def min_value(self) -> float:
        """Smallest representable real value."""
        return self.min_code * self.resolution

    # ------------------------------------------------------------------ #
    # Quantization
    # ------------------------------------------------------------------ #
    def _round_codes(self, scaled: np.ndarray) -> np.ndarray:
        if self.rounding == "nearest":
            # round-half-away-from-zero, matching typical hardware rounding
            codes = np.floor(np.abs(scaled) + 0.5) * np.sign(scaled)
        elif self.rounding == "floor":
            codes = np.floor(scaled)
        elif self.rounding == "ceil":
            codes = np.ceil(scaled)
        else:  # truncate: toward zero
            codes = np.trunc(scaled)
        return codes

    def to_code(self, values: ArrayLike) -> np.ndarray:
        """Map real values to integer codes (the bits the hardware stores)."""
        arr = np.asarray(values, dtype=float)
        scaled = arr * (2.0 ** self.fraction_bits)
        codes = self._round_codes(scaled)
        if self.saturate:
            codes = np.clip(codes, self.min_code, self.max_code)
        else:
            if np.any(codes > self.max_code) or np.any(codes < self.min_code):
                raise OverflowError(
                    f"value out of range for format {self.describe()}"
                )
        out = codes.astype(np.int64)
        if out.shape == ():
            return out[()]
        return out

    def from_code(self, codes: ArrayLike) -> np.ndarray:
        """Map integer codes back to real values."""
        arr = np.asarray(codes, dtype=np.int64)
        values = arr.astype(float) * self.resolution
        if values.shape == ():
            return values[()]
        return values

    def quantize(self, values: ArrayLike) -> np.ndarray:
        """Round real values onto the representable grid (real-valued output)."""
        return self.from_code(self.to_code(values))

    def quantization_error(self, values: ArrayLike) -> np.ndarray:
        """Signed quantization error ``quantize(x) - x``."""
        arr = np.asarray(values, dtype=float)
        return self.quantize(arr) - arr

    def representable(self, value: float, tol: float = 1e-12) -> bool:
        """Whether ``value`` lies exactly on this format's grid and in range."""
        if value > self.max_value + tol or value < self.min_value - tol:
            return False
        scaled = value * (2.0 ** self.fraction_bits)
        return abs(scaled - round(scaled)) <= tol

    # ------------------------------------------------------------------ #
    # Derived formats (for hardware sizing)
    # ------------------------------------------------------------------ #
    def widen(self, extra_integer_bits: int = 0, extra_fraction_bits: int = 0) -> "FixedPointFormat":
        """Return a wider format covering at least the same range/precision."""
        return FixedPointFormat(
            integer_bits=self.integer_bits + extra_integer_bits,
            fraction_bits=self.fraction_bits + extra_fraction_bits,
            signed=self.signed,
            rounding=self.rounding,
            saturate=self.saturate,
        )

    def product_format(self, other: "FixedPointFormat") -> "FixedPointFormat":
        """Format of the full-precision product of two fixed-point numbers.

        This is what the hardware multiplier output bus must carry before any
        truncation: fraction bits add, and the integer field grows so the
        extreme product still fits.
        """
        signed = self.signed or other.signed
        frac = self.fraction_bits + other.fraction_bits
        # Worst-case magnitude of the product in integer-code space.
        max_mag = max(
            abs(self.max_code * other.max_code),
            abs(self.min_code * other.min_code),
            abs(self.max_code * other.min_code),
            abs(self.min_code * other.max_code),
        )
        total = max(1, int(math.ceil(math.log2(max_mag + 1)))) + (1 if signed else 0)
        return FixedPointFormat(
            integer_bits=total - frac - (1 if signed else 0),
            fraction_bits=frac,
            signed=signed,
        )

    def accumulate_format(self, n_terms: int) -> "FixedPointFormat":
        """Format wide enough to sum ``n_terms`` values of this format."""
        if n_terms < 1:
            raise ValueError("n_terms must be >= 1")
        growth = int(math.ceil(math.log2(n_terms))) if n_terms > 1 else 0
        return self.widen(extra_integer_bits=growth)

    def describe(self) -> str:
        """Short human-readable description, e.g. ``sQ1.3 (5b)``."""
        prefix = "s" if self.signed else "u"
        return f"{prefix}Q{self.integer_bits}.{self.fraction_bits} ({self.total_bits}b)"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.describe()


def unsigned_input_format(bits: int) -> FixedPointFormat:
    """Format used for input features normalised to ``[0, 1]``.

    The paper normalises inputs to ``[0, 1]`` and feeds them at low precision;
    an unsigned purely-fractional format with ``bits`` fraction bits covers
    ``[0, 1 - 2**-bits]`` which is the conventional choice for bespoke printed
    classifiers.
    """
    if bits < 1:
        raise ValueError("input format needs at least 1 bit")
    return FixedPointFormat(integer_bits=0, fraction_bits=bits, signed=False)


def signed_coefficient_format(bits: int, integer_bits: int = 1) -> FixedPointFormat:
    """Signed format for SVM/MLP coefficients with ``bits`` total bits."""
    if bits < 2:
        raise ValueError("signed coefficient format needs at least 2 bits")
    fraction = bits - 1 - integer_bits
    return FixedPointFormat(integer_bits=integer_bits, fraction_bits=fraction, signed=True)


def fit_format(
    values: ArrayLike,
    total_bits: int,
    signed: bool = True,
    rounding: str = "nearest",
) -> FixedPointFormat:
    """Choose the binary-point position that best covers ``values``.

    Given a total bit budget, place the binary point so the largest magnitude
    value is representable without saturation while maximising fractional
    resolution.  This mirrors the per-tensor post-training quantization used
    for bespoke classifiers.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot fit a format to an empty array")
    max_abs = float(np.max(np.abs(arr)))
    sign_bits = 1 if signed else 0
    if max_abs == 0.0:
        integer_bits = 0
    else:
        # Smallest integer field such that max_abs fits: need
        # max_abs <= (2**(total-sign) - 1) * 2**-frac  with frac = total - sign - int.
        integer_bits = int(math.floor(math.log2(max_abs))) + 1
        # Guard against boundary cases where rounding up the magnitude would
        # saturate (e.g. max_abs exactly a power of two with nearest rounding).
        while True:
            frac = total_bits - sign_bits - integer_bits
            fmt = FixedPointFormat(
                integer_bits=integer_bits,
                fraction_bits=frac,
                signed=signed,
                rounding=rounding,
            )
            if max_abs <= fmt.max_value + 0.5 * fmt.resolution:
                break
            integer_bits += 1
    fraction_bits = total_bits - sign_bits - integer_bits
    return FixedPointFormat(
        integer_bits=integer_bits,
        fraction_bits=fraction_bits,
        signed=signed,
        rounding=rounding,
    )


def quantize_array(values: ArrayLike, fmt: FixedPointFormat) -> np.ndarray:
    """Quantize an array onto ``fmt``'s grid (convenience wrapper)."""
    return fmt.quantize(values)


def dequantize_array(codes: ArrayLike, fmt: FixedPointFormat) -> np.ndarray:
    """Convert integer codes back to real values (convenience wrapper)."""
    return fmt.from_code(codes)


def required_bits_for_integer(value: int, signed: bool = True) -> int:
    """Minimum number of bits needed to store ``value`` as an integer code."""
    value = int(value)
    if not signed:
        if value < 0:
            raise ValueError("unsigned format cannot store negative values")
        return max(1, value.bit_length())
    if value >= 0:
        return value.bit_length() + 1
    return (-value - 1).bit_length() + 1
