"""Multi-class strategies for linear classifiers: One-vs-Rest and One-vs-One.

The paper compares the two mainstream multi-class reductions:

* **One-vs-One (OvO)** trains ``n (n - 1) / 2`` binary classifiers, one per
  pair of classes, and predicts by majority vote.  This is what the
  fully-parallel state of the art uses.
* **One-vs-Rest (OvR)** trains ``n`` binary classifiers, each separating one
  class from all others, and predicts the argmax of the decision scores.
  The paper selects OvR because fewer classifiers means fewer support
  vectors to store and simpler control, which directly reduces the printed
  hardware cost.

Both wrappers expose the trained hyperplanes in a uniform way
(:attr:`coef_`, :attr:`intercept_`) so the downstream quantization and
hardware-generation stages do not care which strategy produced them.
"""

from __future__ import annotations

import copy
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.ml.svm import LinearSVC


class _BaseMulticlass:
    """Shared plumbing for the OvR / OvO wrappers."""

    def __init__(self, estimator: Optional[LinearSVC] = None) -> None:
        self.estimator = estimator if estimator is not None else LinearSVC()
        self.classes_: Optional[np.ndarray] = None
        self.estimators_: List[LinearSVC] = []

    def _clone_estimator(self) -> LinearSVC:
        return copy.deepcopy(self.estimator)

    def _check_fitted(self) -> None:
        if self.classes_ is None or not self.estimators_:
            raise RuntimeError(f"{type(self).__name__} must be fitted before use")

    @property
    def n_classes_(self) -> int:
        self._check_fitted()
        return int(len(self.classes_))

    @property
    def n_features_(self) -> int:
        self._check_fitted()
        return int(self.estimators_[0].coef_.shape[0])

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy on ``(X, y)``."""
        from repro.ml.metrics import accuracy_score

        return accuracy_score(y, self.predict(X))


class OneVsRestClassifier(_BaseMulticlass):
    """One-vs-Rest reduction: one binary classifier per class.

    For ``n`` classes this stores ``n`` hyperplanes — exactly the ``n``
    "support vectors" the paper's sequential circuit fetches from MUX storage
    over ``n`` cycles.
    """

    def fit(self, X: np.ndarray, y: np.ndarray) -> "OneVsRestClassifier":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        self.classes_ = np.unique(y)
        if len(self.classes_) < 2:
            raise ValueError("need at least two classes")
        self.estimators_ = []
        for cls in self.classes_:
            binary_y = (y == cls).astype(np.int64)
            est = self._clone_estimator()
            est.fit(X, binary_y)
            self.estimators_.append(est)
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Matrix of shape ``(n_samples, n_classes)`` with per-class scores."""
        self._check_fitted()
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        return np.column_stack([est.decision_function(X) for est in self.estimators_])

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Class with the highest one-vs-rest score (the voter's argmax)."""
        scores = self.decision_function(X)
        return self.classes_[np.argmax(scores, axis=1)]

    @property
    def coef_(self) -> np.ndarray:
        """Stacked weight matrix of shape ``(n_classes, n_features)``."""
        self._check_fitted()
        return np.vstack([est.coef_ for est in self.estimators_])

    @property
    def intercept_(self) -> np.ndarray:
        """Bias vector of shape ``(n_classes,)``."""
        self._check_fitted()
        return np.array([est.intercept_ for est in self.estimators_])

    @property
    def n_stored_vectors_(self) -> int:
        """Number of coefficient vectors that bespoke storage must hold."""
        return self.n_classes_


class OneVsOneClassifier(_BaseMulticlass):
    """One-vs-One reduction: one binary classifier per *pair* of classes.

    Used to model the state-of-the-art baselines and the OvR-vs-OvO ablation:
    OvO needs ``n (n - 1) / 2`` hyperplanes, so its storage and control cost
    grows quadratically with the class count.
    """

    def __init__(self, estimator: Optional[LinearSVC] = None) -> None:
        super().__init__(estimator)
        self.pairs_: List[Tuple[int, int]] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "OneVsOneClassifier":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        self.classes_ = np.unique(y)
        n = len(self.classes_)
        if n < 2:
            raise ValueError("need at least two classes")
        self.estimators_ = []
        self.pairs_ = []
        for i in range(n):
            for j in range(i + 1, n):
                ci, cj = self.classes_[i], self.classes_[j]
                mask = (y == ci) | (y == cj)
                # Binary labels: 0 for class i, 1 for class j (so the
                # positive decision score votes for class j).
                binary_y = (y[mask] == cj).astype(np.int64)
                est = self._clone_estimator()
                est.fit(X[mask], binary_y)
                self.estimators_.append(est)
                self.pairs_.append((i, j))
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Pairwise decision scores of shape ``(n_samples, n_pairs)``."""
        self._check_fitted()
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        return np.column_stack([est.decision_function(X) for est in self.estimators_])

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Majority vote over all pairwise classifiers.

        Ties are broken in favour of the class with the larger accumulated
        margin, mirroring scikit-learn's behaviour.
        """
        self._check_fitted()
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        n_samples = X.shape[0]
        n = len(self.classes_)
        votes = np.zeros((n_samples, n), dtype=np.int64)
        margins = np.zeros((n_samples, n), dtype=float)
        for (i, j), est in zip(self.pairs_, self.estimators_):
            scores = est.decision_function(X)
            win_j = scores >= 0.0
            votes[:, j] += win_j.astype(np.int64)
            votes[:, i] += (~win_j).astype(np.int64)
            margins[:, j] += scores
            margins[:, i] -= scores
        # Lexicographic argmax on (votes, margins).
        best = np.zeros(n_samples, dtype=np.int64)
        for s in range(n_samples):
            order = sorted(
                range(n), key=lambda c: (votes[s, c], margins[s, c]), reverse=True
            )
            best[s] = order[0]
        return self.classes_[best]

    @property
    def coef_(self) -> np.ndarray:
        """Stacked weight matrix of shape ``(n_pairs, n_features)``."""
        self._check_fitted()
        return np.vstack([est.coef_ for est in self.estimators_])

    @property
    def intercept_(self) -> np.ndarray:
        """Bias vector of shape ``(n_pairs,)``."""
        self._check_fitted()
        return np.array([est.intercept_ for est in self.estimators_])

    @property
    def n_stored_vectors_(self) -> int:
        """Number of coefficient vectors that bespoke storage must hold."""
        return len(self.estimators_)


def n_ovr_classifiers(n_classes: int) -> int:
    """Number of binary classifiers the OvR strategy needs."""
    if n_classes < 2:
        raise ValueError("need at least two classes")
    return n_classes


def n_ovo_classifiers(n_classes: int) -> int:
    """Number of binary classifiers the OvO strategy needs."""
    if n_classes < 2:
        raise ValueError("need at least two classes")
    return n_classes * (n_classes - 1) // 2


def storage_advantage_ovr(n_classes: int) -> float:
    """Ratio of OvO to OvR stored classifiers (>= 1; grows with class count)."""
    return n_ovo_classifiers(n_classes) / n_ovr_classifiers(n_classes)
