"""Classification metrics used throughout the reproduction.

The paper reports test-set accuracy (percent).  In addition to plain
accuracy this module provides the confusion matrix, per-class precision /
recall / F1 and balanced accuracy, which the examples and ablation studies
use when analysing the imbalanced wine-quality datasets.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np


def _as_labels(y: Sequence) -> np.ndarray:
    arr = np.asarray(y)
    if arr.ndim != 1:
        arr = arr.ravel()
    return arr


def accuracy_score(y_true: Sequence, y_pred: Sequence) -> float:
    """Fraction of correctly classified samples (in ``[0, 1]``)."""
    y_true = _as_labels(y_true)
    y_pred = _as_labels(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ValueError("cannot compute accuracy of empty arrays")
    return float(np.mean(y_true == y_pred))


def accuracy_percent(y_true: Sequence, y_pred: Sequence) -> float:
    """Accuracy expressed in percent, as reported in the paper's Table I."""
    return 100.0 * accuracy_score(y_true, y_pred)


def confusion_matrix(
    y_true: Sequence, y_pred: Sequence, n_classes: Optional[int] = None
) -> np.ndarray:
    """Confusion matrix ``C[i, j]`` = samples of true class i predicted as j."""
    y_true = _as_labels(y_true).astype(np.int64)
    y_pred = _as_labels(y_pred).astype(np.int64)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same length")
    if n_classes is None:
        n_classes = int(max(y_true.max(initial=0), y_pred.max(initial=0))) + 1
    if np.any(y_true < 0) or np.any(y_pred < 0):
        raise ValueError("labels must be non-negative integers")
    if np.any(y_true >= n_classes) or np.any(y_pred >= n_classes):
        raise ValueError("label exceeds n_classes")
    cm = np.zeros((n_classes, n_classes), dtype=np.int64)
    np.add.at(cm, (y_true, y_pred), 1)
    return cm


def per_class_metrics(y_true: Sequence, y_pred: Sequence) -> Dict[str, np.ndarray]:
    """Per-class precision, recall and F1 computed from the confusion matrix.

    Classes absent from both ``y_true`` and ``y_pred`` get zero for all three
    metrics (they carry no information either way).
    """
    cm = confusion_matrix(y_true, y_pred)
    tp = np.diag(cm).astype(float)
    predicted = cm.sum(axis=0).astype(float)
    actual = cm.sum(axis=1).astype(float)
    with np.errstate(divide="ignore", invalid="ignore"):
        precision = np.where(predicted > 0, tp / predicted, 0.0)
        recall = np.where(actual > 0, tp / actual, 0.0)
        denom = precision + recall
        f1 = np.where(denom > 0, 2 * precision * recall / denom, 0.0)
    return {"precision": precision, "recall": recall, "f1": f1}


def balanced_accuracy_score(y_true: Sequence, y_pred: Sequence) -> float:
    """Mean per-class recall; robust to the class imbalance of the wine sets."""
    cm = confusion_matrix(y_true, y_pred)
    actual = cm.sum(axis=1).astype(float)
    present = actual > 0
    if not np.any(present):
        raise ValueError("no samples present")
    recall = np.diag(cm)[present] / actual[present]
    return float(np.mean(recall))


def macro_f1_score(y_true: Sequence, y_pred: Sequence) -> float:
    """Unweighted mean of per-class F1 scores."""
    metrics = per_class_metrics(y_true, y_pred)
    return float(np.mean(metrics["f1"]))


def classification_report(y_true: Sequence, y_pred: Sequence) -> str:
    """Readable multi-line report (accuracy, balanced accuracy, per-class F1)."""
    metrics = per_class_metrics(y_true, y_pred)
    lines = [
        f"accuracy          : {accuracy_percent(y_true, y_pred):6.2f} %",
        f"balanced accuracy : {100.0 * balanced_accuracy_score(y_true, y_pred):6.2f} %",
        f"macro F1          : {macro_f1_score(y_true, y_pred):6.3f}",
        "per-class (precision / recall / f1):",
    ]
    for cls, (p, r, f) in enumerate(
        zip(metrics["precision"], metrics["recall"], metrics["f1"])
    ):
        lines.append(f"  class {cls:2d}: {p:5.3f} / {r:5.3f} / {f:5.3f}")
    return "\n".join(lines)
