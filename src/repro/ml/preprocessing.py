"""Preprocessing utilities matching the paper's experimental setup.

The paper's setup section states:

    "Our SVMs are trained with normalized inputs to [0, 1] and a random
    80%/20% split for training/testing data subsets."

This module provides a :class:`MinMaxScaler` (fit on training data only, so
no test-set leakage) and a deterministic, seedable :func:`train_test_split`,
plus :class:`LabelEncoder` for mapping arbitrary class labels to the
contiguous ``0..n-1`` ids that the hardware voter uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np


class MinMaxScaler:
    """Scale features to a target range (default ``[0, 1]``).

    Mirrors the scikit-learn API subset the flow needs: ``fit``,
    ``transform``, ``fit_transform`` and ``inverse_transform``.  Constant
    features (max == min) are mapped to the lower bound of the range rather
    than producing NaNs.
    """

    def __init__(self, feature_range: Tuple[float, float] = (0.0, 1.0), clip: bool = True):
        lo, hi = feature_range
        if hi <= lo:
            raise ValueError(f"feature_range must be increasing, got {feature_range}")
        self.feature_range = (float(lo), float(hi))
        self.clip = clip
        self.data_min_: Optional[np.ndarray] = None
        self.data_max_: Optional[np.ndarray] = None
        self.scale_: Optional[np.ndarray] = None
        self.min_: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray) -> "MinMaxScaler":
        """Learn per-feature minima and maxima from ``X``."""
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError(f"expected a 2-D array, got shape {X.shape}")
        if X.shape[0] == 0:
            raise ValueError("cannot fit scaler on an empty array")
        self.data_min_ = X.min(axis=0)
        self.data_max_ = X.max(axis=0)
        lo, hi = self.feature_range
        span = self.data_max_ - self.data_min_
        # Constant features: avoid division by zero, map everything to `lo`.
        safe_span = np.where(span == 0.0, 1.0, span)
        self.scale_ = (hi - lo) / safe_span
        self.scale_ = np.where(span == 0.0, 0.0, self.scale_)
        self.min_ = lo - self.data_min_ * self.scale_
        return self

    def _check_fitted(self) -> None:
        if self.scale_ is None:
            raise RuntimeError("MinMaxScaler must be fitted before use")

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Apply the learned scaling to ``X``."""
        self._check_fitted()
        X = np.asarray(X, dtype=float)
        out = X * self.scale_ + self.min_
        if self.clip:
            lo, hi = self.feature_range
            out = np.clip(out, lo, hi)
        return out

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit to ``X`` and return the scaled data."""
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        """Map scaled data back to the original feature space."""
        self._check_fitted()
        X = np.asarray(X, dtype=float)
        safe_scale = np.where(self.scale_ == 0.0, 1.0, self.scale_)
        out = (X - self.min_) / safe_scale
        # Constant features collapse back to their single observed value.
        out = np.where(self.scale_ == 0.0, self.data_min_, out)
        return out


class LabelEncoder:
    """Map arbitrary hashable labels to contiguous integer ids ``0..n-1``.

    The hardware voter identifies classes by the control counter value, so
    every classifier in the flow works on contiguous integer labels.
    """

    def __init__(self) -> None:
        self.classes_: Optional[np.ndarray] = None

    def fit(self, y: Sequence) -> "LabelEncoder":
        self.classes_ = np.unique(np.asarray(y))
        return self

    def transform(self, y: Sequence) -> np.ndarray:
        if self.classes_ is None:
            raise RuntimeError("LabelEncoder must be fitted before use")
        y = np.asarray(y)
        idx = np.searchsorted(self.classes_, y)
        idx = np.clip(idx, 0, len(self.classes_) - 1)
        if not np.array_equal(self.classes_[idx], y):
            unknown = sorted(set(np.asarray(y).tolist()) - set(self.classes_.tolist()))
            raise ValueError(f"labels {unknown} were not seen during fit")
        return idx.astype(np.int64)

    def fit_transform(self, y: Sequence) -> np.ndarray:
        return self.fit(y).transform(y)

    def inverse_transform(self, ids: Sequence[int]) -> np.ndarray:
        if self.classes_ is None:
            raise RuntimeError("LabelEncoder must be fitted before use")
        ids = np.asarray(ids, dtype=np.int64)
        if np.any(ids < 0) or np.any(ids >= len(self.classes_)):
            raise ValueError("class id out of range")
        return self.classes_[ids]


def train_test_split(
    X: np.ndarray,
    y: np.ndarray,
    test_size: float = 0.2,
    random_state: Optional[int] = None,
    stratify: bool = True,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Random (optionally stratified) train/test split.

    Parameters
    ----------
    X, y:
        Feature matrix and label vector (same first dimension).
    test_size:
        Fraction of samples assigned to the test set; the paper uses 0.2.
    random_state:
        Seed for reproducibility.
    stratify:
        If True, split each class independently so class proportions are
        preserved — important for the small, imbalanced UCI datasets the
        paper evaluates.

    Returns
    -------
    (X_train, X_test, y_train, y_test)
    """
    X = np.asarray(X)
    y = np.asarray(y)
    if X.shape[0] != y.shape[0]:
        raise ValueError(
            f"X and y disagree on sample count: {X.shape[0]} vs {y.shape[0]}"
        )
    if not 0.0 < test_size < 1.0:
        raise ValueError(f"test_size must be in (0, 1), got {test_size}")
    rng = np.random.default_rng(random_state)
    n = X.shape[0]

    if stratify:
        test_idx_parts = []
        train_idx_parts = []
        for cls in np.unique(y):
            cls_idx = np.flatnonzero(y == cls)
            rng.shuffle(cls_idx)
            n_test = int(round(len(cls_idx) * test_size))
            # Keep at least one sample on each side when the class allows it.
            if n_test == 0 and len(cls_idx) > 1:
                n_test = 1
            if n_test == len(cls_idx) and len(cls_idx) > 1:
                n_test -= 1
            test_idx_parts.append(cls_idx[:n_test])
            train_idx_parts.append(cls_idx[n_test:])
        test_idx = np.concatenate(test_idx_parts)
        train_idx = np.concatenate(train_idx_parts)
        rng.shuffle(test_idx)
        rng.shuffle(train_idx)
    else:
        perm = rng.permutation(n)
        n_test = int(round(n * test_size))
        n_test = min(max(n_test, 1), n - 1)
        test_idx = perm[:n_test]
        train_idx = perm[n_test:]

    return X[train_idx], X[test_idx], y[train_idx], y[test_idx]


@dataclass
class DatasetSplit:
    """A fully prepared dataset split: scaled features and integer labels."""

    X_train: np.ndarray
    X_test: np.ndarray
    y_train: np.ndarray
    y_test: np.ndarray
    scaler: MinMaxScaler
    label_encoder: LabelEncoder
    feature_names: Sequence[str] = field(default_factory=list)

    @property
    def n_features(self) -> int:
        return self.X_train.shape[1]

    @property
    def n_classes(self) -> int:
        return len(self.label_encoder.classes_)

    @property
    def n_train(self) -> int:
        return self.X_train.shape[0]

    @property
    def n_test(self) -> int:
        return self.X_test.shape[0]


def prepare_split(
    X: np.ndarray,
    y: np.ndarray,
    test_size: float = 0.2,
    random_state: Optional[int] = 0,
    feature_range: Tuple[float, float] = (0.0, 1.0),
    feature_names: Optional[Sequence[str]] = None,
) -> DatasetSplit:
    """Run the paper's preprocessing pipeline on raw data.

    Steps: stratified 80/20 split, min-max scaling fitted on the training set
    only, and label encoding to contiguous ids.
    """
    X_train, X_test, y_train_raw, y_test_raw = train_test_split(
        X, y, test_size=test_size, random_state=random_state, stratify=True
    )
    scaler = MinMaxScaler(feature_range=feature_range)
    X_train_s = scaler.fit_transform(X_train)
    X_test_s = scaler.transform(X_test)
    encoder = LabelEncoder()
    y_train = encoder.fit_transform(y_train_raw)
    y_test = encoder.transform(y_test_raw)
    return DatasetSplit(
        X_train=X_train_s,
        X_test=X_test_s,
        y_train=y_train,
        y_test=y_test,
        scaler=scaler,
        label_encoder=encoder,
        feature_names=list(feature_names) if feature_names is not None else [],
    )
