"""Post-training quantization of trained classifiers for bespoke hardware.

The paper states:

    "We train our SVMs with low-precision inputs and post-training, we
    quantize the SVM weights and biases to the lowest precision that can
    retain acceptable accuracy."

This module turns a trained floating-point classifier (OvR/OvO linear SVM or
MLP) into an *integer-exact* model: every input, weight, bias and
intermediate value is an integer code of a declared
:class:`~repro.ml.fixed_point.FixedPointFormat`.  The integer model is the
golden reference that the generated circuits are verified against
bit-by-bit, and its bit widths drive the hardware cost estimation.

The precision search (:func:`search_lowest_precision`) sweeps the coefficient
bit width downwards and returns the smallest width whose test accuracy stays
within a tolerance of the floating-point accuracy — exactly the procedure
described in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.ml.fixed_point import (
    FixedPointFormat,
    fit_format,
    required_bits_for_integer,
    unsigned_input_format,
)
from repro.ml.metrics import accuracy_score
from repro.ml.mlp import MLPClassifier
from repro.ml.multiclass import OneVsOneClassifier, OneVsRestClassifier

LinearModel = Union[OneVsRestClassifier, OneVsOneClassifier]


# --------------------------------------------------------------------------- #
# Quantized linear (SVM) model
# --------------------------------------------------------------------------- #
@dataclass
class QuantizedLinearModel:
    """An integer-exact multi-class linear classifier.

    Attributes
    ----------
    weight_codes:
        Integer weight codes of shape ``(n_classifiers, n_features)``.
    bias_codes:
        Integer bias codes of shape ``(n_classifiers,)``, already aligned to
        the *product* scale (``input_format.fraction_bits +
        weight_format.fraction_bits``) so that the hardware can add them to
        the accumulated products without any shifting.
    input_format / weight_format:
        Fixed-point formats of the activations and of the coefficients.
    strategy:
        ``"ovr"`` or ``"ovo"`` — decides how raw scores map to a class.
    classes:
        Original class labels, indexed by classifier output id.
    pairs:
        For OvO only: the ``(class_i, class_j)`` index pair of each classifier.
    """

    weight_codes: np.ndarray
    bias_codes: np.ndarray
    input_format: FixedPointFormat
    weight_format: FixedPointFormat
    strategy: str
    classes: np.ndarray
    pairs: Optional[List[Tuple[int, int]]] = None

    def __post_init__(self) -> None:
        self.weight_codes = np.asarray(self.weight_codes, dtype=np.int64)
        self.bias_codes = np.asarray(self.bias_codes, dtype=np.int64)
        if self.weight_codes.ndim != 2:
            raise ValueError("weight_codes must be 2-D")
        if self.bias_codes.shape[0] != self.weight_codes.shape[0]:
            raise ValueError("bias_codes and weight_codes disagree on classifier count")
        if self.strategy not in ("ovr", "ovo"):
            raise ValueError(f"unknown strategy {self.strategy!r}")
        if self.strategy == "ovo" and self.pairs is None:
            raise ValueError("OvO models must carry their class pairs")

    # -- structural properties used by the hardware generators ----------- #
    @property
    def n_classifiers(self) -> int:
        """Number of stored support vectors (rows of MUX storage)."""
        return int(self.weight_codes.shape[0])

    @property
    def n_features(self) -> int:
        """Number of input features ``m`` (multipliers in the compute engine)."""
        return int(self.weight_codes.shape[1])

    @property
    def n_classes(self) -> int:
        return int(len(self.classes))

    @property
    def score_scale_bits(self) -> int:
        """Fraction bits of the integer scores (input + weight fraction bits)."""
        return self.input_format.fraction_bits + self.weight_format.fraction_bits

    @property
    def accumulator_bits(self) -> int:
        """Bit width needed to hold any score without overflow.

        Worst case over the hardwired weights: each product is bounded by
        ``|w_code| * max_input_code``; the accumulator must fit the sum of
        all product magnitudes plus the bias.
        """
        max_in = self.input_format.max_code
        per_classifier = (
            np.sum(np.abs(self.weight_codes), axis=1) * max_in
            + np.abs(self.bias_codes)
        )
        worst = int(np.max(per_classifier)) if per_classifier.size else 0
        return required_bits_for_integer(worst, signed=True)

    # -- integer-exact inference ----------------------------------------- #
    def quantize_inputs(self, X: np.ndarray) -> np.ndarray:
        """Quantize real-valued inputs in ``[0, 1]`` to integer codes."""
        return np.asarray(self.input_format.to_code(X), dtype=np.int64)

    def integer_scores(self, X_codes: np.ndarray) -> np.ndarray:
        """Integer decision scores for pre-quantized inputs.

        This is exactly what the compute engine produces: for classifier
        ``k``, ``sum_i w_codes[k, i] * x_codes[i] + bias_codes[k]``.
        """
        X_codes = np.asarray(X_codes, dtype=np.int64)
        if X_codes.ndim == 1:
            X_codes = X_codes.reshape(1, -1)
        if X_codes.shape[1] != self.n_features:
            raise ValueError(
                f"expected {self.n_features} features, got {X_codes.shape[1]}"
            )
        return X_codes @ self.weight_codes.T + self.bias_codes

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Real-valued scores computed through the integer pipeline."""
        codes = self.quantize_inputs(X)
        scores = self.integer_scores(codes)
        return scores.astype(float) * 2.0 ** (-self.score_scale_bits)

    def predict_ids(self, X: np.ndarray) -> np.ndarray:
        """Predicted class *ids* (0..n_classes-1), matching the hardware voter."""
        codes = self.quantize_inputs(X)
        scores = self.integer_scores(codes)
        if self.strategy == "ovr":
            # Sequential voter semantics: strictly-greater comparison, so the
            # *first* classifier with the maximal score wins ties.
            return np.argmax(scores, axis=1)
        return self._ovo_vote(scores)

    def _ovo_vote(self, scores: np.ndarray) -> np.ndarray:
        n_samples = scores.shape[0]
        n = self.n_classes
        votes = np.zeros((n_samples, n), dtype=np.int64)
        margins = np.zeros((n_samples, n), dtype=np.int64)
        for k, (i, j) in enumerate(self.pairs):
            win_j = scores[:, k] >= 0
            votes[:, j] += win_j.astype(np.int64)
            votes[:, i] += (~win_j).astype(np.int64)
            margins[:, j] += scores[:, k]
            margins[:, i] -= scores[:, k]
        best = np.zeros(n_samples, dtype=np.int64)
        for s in range(n_samples):
            order = sorted(
                range(n), key=lambda c: (votes[s, c], margins[s, c]), reverse=True
            )
            best[s] = order[0]
        return best

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted class labels (original label values)."""
        return self.classes[self.predict_ids(X)]

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Integer-exact test accuracy."""
        return accuracy_score(y, self.predict(X))

    # -- hardware-facing views -------------------------------------------- #
    def stored_coefficients(self) -> np.ndarray:
        """Matrix hardwired into MUX storage: weights and bias per classifier.

        Shape ``(n_classifiers, n_features + 1)`` with the bias in the last
        column, exactly the words the control counter selects one per cycle.
        """
        return np.hstack([self.weight_codes, self.bias_codes.reshape(-1, 1)])


# --------------------------------------------------------------------------- #
# Quantized MLP model
# --------------------------------------------------------------------------- #
@dataclass
class QuantizedMLPModel:
    """Integer-exact MLP with per-layer quantized weights and biases.

    Hidden activations are kept at full accumulator precision and passed
    through integer ReLU; this mirrors bespoke printed MLPs, which do not
    re-quantize between layers (no memory exists — everything is wires).
    """

    weight_codes: List[np.ndarray]
    bias_codes: List[np.ndarray]
    input_format: FixedPointFormat
    weight_formats: List[FixedPointFormat]
    classes: np.ndarray
    activation: str = "relu"

    def __post_init__(self) -> None:
        if len(self.weight_codes) != len(self.bias_codes):
            raise ValueError("weights and biases disagree on layer count")
        if len(self.weight_codes) != len(self.weight_formats):
            raise ValueError("weight formats must match layer count")
        self.weight_codes = [np.asarray(w, dtype=np.int64) for w in self.weight_codes]
        self.bias_codes = [np.asarray(b, dtype=np.int64) for b in self.bias_codes]

    @property
    def n_layers(self) -> int:
        return len(self.weight_codes)

    @property
    def layer_sizes(self) -> Tuple[int, ...]:
        sizes = [self.weight_codes[0].shape[0]]
        sizes.extend(W.shape[1] for W in self.weight_codes)
        return tuple(sizes)

    @property
    def n_features(self) -> int:
        return self.layer_sizes[0]

    @property
    def n_classes(self) -> int:
        return int(len(self.classes))

    @property
    def n_multiplications(self) -> int:
        """Multiplications per inference (dedicated multipliers when parallel)."""
        return int(sum(W.size for W in self.weight_codes))

    def quantize_inputs(self, X: np.ndarray) -> np.ndarray:
        """Quantize real-valued inputs in ``[0, 1]`` to integer codes."""
        return np.asarray(self.input_format.to_code(X), dtype=np.int64)

    def integer_forward(self, X_codes: np.ndarray) -> np.ndarray:
        """Integer output scores for pre-quantized inputs."""
        a = np.asarray(X_codes, dtype=np.int64)
        if a.ndim == 1:
            a = a.reshape(1, -1)
        for layer, (W, b) in enumerate(zip(self.weight_codes, self.bias_codes)):
            z = a @ W + b
            if layer < self.n_layers - 1:
                z = np.maximum(z, 0)
            a = z
        return a

    def predict_ids(self, X: np.ndarray) -> np.ndarray:
        scores = self.integer_forward(self.quantize_inputs(X))
        return np.argmax(scores, axis=1)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.classes[self.predict_ids(X)]

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        return accuracy_score(y, self.predict(X))


# --------------------------------------------------------------------------- #
# Quantization entry points
# --------------------------------------------------------------------------- #
def quantize_linear_classifier(
    model: LinearModel,
    input_bits: int = 4,
    weight_bits: int = 6,
) -> QuantizedLinearModel:
    """Quantize a trained OvR/OvO linear SVM into an integer-exact model.

    Weights are quantized per-model with a format fitted to the coefficient
    range (:func:`~repro.ml.fixed_point.fit_format`).  Biases are quantized
    directly at the *score* scale (input fraction bits + weight fraction
    bits) so the hardware adds them without shifters.
    """
    if input_bits < 1:
        raise ValueError("input_bits must be >= 1")
    if weight_bits < 2:
        raise ValueError("weight_bits must be >= 2")
    coef = np.asarray(model.coef_, dtype=float)
    intercept = np.asarray(model.intercept_, dtype=float)

    input_format = unsigned_input_format(input_bits)
    weight_format = fit_format(coef, total_bits=weight_bits, signed=True)
    weight_codes = np.asarray(weight_format.to_code(coef), dtype=np.int64)

    score_frac = input_format.fraction_bits + weight_format.fraction_bits
    bias_codes = np.round(intercept * 2.0 ** score_frac).astype(np.int64)

    strategy = "ovo" if isinstance(model, OneVsOneClassifier) else "ovr"
    pairs = list(model.pairs_) if strategy == "ovo" else None
    return QuantizedLinearModel(
        weight_codes=weight_codes,
        bias_codes=bias_codes,
        input_format=input_format,
        weight_format=weight_format,
        strategy=strategy,
        classes=np.asarray(model.classes_),
        pairs=pairs,
    )


def quantize_mlp_classifier(
    model: MLPClassifier,
    input_bits: int = 4,
    weight_bits: int = 6,
) -> QuantizedMLPModel:
    """Quantize a trained MLP into an integer-exact model.

    Each layer gets its own fitted weight format.  Layer ``l`` biases are
    scaled to that layer's accumulated fraction bits so additions line up,
    mirroring how bespoke printed MLP datapaths are generated.
    """
    if not model.weights_:
        raise RuntimeError("MLP must be fitted before quantization")
    input_format = unsigned_input_format(input_bits)

    weight_codes: List[np.ndarray] = []
    bias_codes: List[np.ndarray] = []
    weight_formats: List[FixedPointFormat] = []
    # Fraction bits of the activations entering each layer.  Layer outputs are
    # kept at full precision (no re-quantization), so fraction bits accumulate.
    act_frac = input_format.fraction_bits
    for W, b in zip(model.weights_, model.biases_):
        fmt = fit_format(W, total_bits=weight_bits, signed=True)
        weight_formats.append(fmt)
        weight_codes.append(np.asarray(fmt.to_code(W), dtype=np.int64))
        out_frac = act_frac + fmt.fraction_bits
        bias_codes.append(np.round(np.asarray(b) * 2.0 ** out_frac).astype(np.int64))
        act_frac = out_frac

    return QuantizedMLPModel(
        weight_codes=weight_codes,
        bias_codes=bias_codes,
        input_format=input_format,
        weight_formats=weight_formats,
        classes=np.asarray(model.classes_),
    )


@dataclass
class PrecisionSearchResult:
    """Outcome of the lowest-precision search."""

    weight_bits: int
    accuracy: float
    float_accuracy: float
    quantized_model: Union[QuantizedLinearModel, QuantizedMLPModel]
    trace: List[Tuple[int, float]] = field(default_factory=list)

    @property
    def accuracy_drop(self) -> float:
        """Accuracy lost relative to the floating-point model (fraction)."""
        return self.float_accuracy - self.accuracy


def search_lowest_precision(
    model: Union[LinearModel, MLPClassifier],
    X_val: np.ndarray,
    y_val: np.ndarray,
    input_bits: int = 4,
    max_weight_bits: int = 10,
    min_weight_bits: int = 2,
    accuracy_tolerance: float = 0.01,
) -> PrecisionSearchResult:
    """Find the lowest coefficient precision that retains acceptable accuracy.

    Sweeps the weight bit width downwards from ``max_weight_bits`` and keeps
    the smallest width whose validation accuracy is within
    ``accuracy_tolerance`` (absolute, as a fraction) of the floating-point
    accuracy.  This is the paper's post-training quantization procedure.
    """
    if min_weight_bits < 2 or max_weight_bits < min_weight_bits:
        raise ValueError("invalid bit-width search range")
    float_acc = accuracy_score(y_val, model.predict(X_val))

    def _quantize(bits: int):
        if isinstance(model, MLPClassifier):
            return quantize_mlp_classifier(model, input_bits=input_bits, weight_bits=bits)
        return quantize_linear_classifier(model, input_bits=input_bits, weight_bits=bits)

    trace: List[Tuple[int, float]] = []
    best_bits = max_weight_bits
    best_model = _quantize(max_weight_bits)
    best_acc = best_model.score(X_val, y_val)
    trace.append((max_weight_bits, best_acc))

    for bits in range(max_weight_bits - 1, min_weight_bits - 1, -1):
        candidate = _quantize(bits)
        acc = candidate.score(X_val, y_val)
        trace.append((bits, acc))
        if acc + accuracy_tolerance >= float_acc:
            best_bits, best_model, best_acc = bits, candidate, acc
        else:
            # Precision has dropped below the acceptable band; since accuracy
            # is (noisily) monotone in precision, stop the downward sweep.
            break

    return PrecisionSearchResult(
        weight_bits=best_bits,
        accuracy=best_acc,
        float_accuracy=float_acc,
        quantized_model=best_model,
        trace=trace,
    )
