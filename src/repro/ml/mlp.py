"""A small multilayer perceptron, used to reproduce the printed-MLP baseline.

The paper compares its sequential SVMs against bespoke printed MLPs [4]
(Armeniakos et al., "Co-design of approximate multilayer perceptron for
ultra-resource constrained printed circuits").  Those baselines are small
fully-connected networks (one hidden layer of a handful of neurons, ReLU
activations, hardwired quantized weights).  This module trains such networks
with plain NumPy backpropagation so that the baseline circuits we generate
carry realistic coefficient values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit, the activation used by printed bespoke MLPs."""
    return np.maximum(x, 0.0)


def relu_grad(x: np.ndarray) -> np.ndarray:
    """Derivative of ReLU with the convention ``relu'(0) = 0``."""
    return (x > 0.0).astype(float)


def softmax(z: np.ndarray) -> np.ndarray:
    """Numerically stable softmax along the last axis."""
    shifted = z - np.max(z, axis=-1, keepdims=True)
    e = np.exp(shifted)
    return e / np.sum(e, axis=-1, keepdims=True)


def one_hot(y: np.ndarray, n_classes: int) -> np.ndarray:
    """One-hot encode integer labels."""
    y = np.asarray(y, dtype=np.int64)
    if np.any(y < 0) or np.any(y >= n_classes):
        raise ValueError("label out of range for one-hot encoding")
    out = np.zeros((y.shape[0], n_classes), dtype=float)
    out[np.arange(y.shape[0]), y] = 1.0
    return out


@dataclass
class MLPTrainingHistory:
    """Loss / accuracy trajectory recorded during training."""

    losses: List[float] = field(default_factory=list)
    train_accuracies: List[float] = field(default_factory=list)
    n_epochs: int = 0
    converged: bool = False


class MLPClassifier:
    """Fully-connected classifier with ReLU hidden layers and softmax output.

    Parameters
    ----------
    hidden_layer_sizes:
        Sizes of the hidden layers.  Printed MLP baselines are tiny — the
        default single hidden layer of 3 neurons matches the topologies used
        in ultra-resource-constrained printed circuits.
    learning_rate:
        Constant step size for mini-batch gradient descent.
    max_epochs:
        Maximum number of passes over the training data.
    batch_size:
        Mini-batch size; the full dataset is used when larger than the data.
    l2:
        L2 weight-decay coefficient.
    tol:
        Early-stopping tolerance on the training-loss improvement.
    patience:
        Number of epochs without sufficient improvement before stopping.
    random_state:
        Seed for weight initialisation and batch shuffling.
    """

    def __init__(
        self,
        hidden_layer_sizes: Sequence[int] = (3,),
        learning_rate: float = 0.1,
        max_epochs: int = 300,
        batch_size: int = 32,
        l2: float = 1e-4,
        tol: float = 1e-5,
        patience: int = 20,
        random_state: Optional[int] = 0,
    ) -> None:
        if any(h < 1 for h in hidden_layer_sizes):
            raise ValueError("hidden layer sizes must be positive")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if max_epochs < 1:
            raise ValueError("max_epochs must be >= 1")
        self.hidden_layer_sizes = tuple(int(h) for h in hidden_layer_sizes)
        self.learning_rate = float(learning_rate)
        self.max_epochs = int(max_epochs)
        self.batch_size = int(batch_size)
        self.l2 = float(l2)
        self.tol = float(tol)
        self.patience = int(patience)
        self.random_state = random_state

        self.weights_: List[np.ndarray] = []
        self.biases_: List[np.ndarray] = []
        self.classes_: Optional[np.ndarray] = None
        self.history_ = MLPTrainingHistory()

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def _init_params(self, n_features: int, n_classes: int, rng: np.random.Generator) -> None:
        sizes = [n_features, *self.hidden_layer_sizes, n_classes]
        self.weights_ = []
        self.biases_ = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            # He initialisation, appropriate for ReLU hidden layers.
            std = np.sqrt(2.0 / fan_in)
            self.weights_.append(rng.normal(0.0, std, size=(fan_in, fan_out)))
            self.biases_.append(np.zeros(fan_out))

    def _forward(self, X: np.ndarray) -> Tuple[List[np.ndarray], List[np.ndarray]]:
        """Return pre-activations and activations for every layer."""
        pre_acts: List[np.ndarray] = []
        acts: List[np.ndarray] = [X]
        a = X
        n_layers = len(self.weights_)
        for layer, (W, b) in enumerate(zip(self.weights_, self.biases_)):
            z = a @ W + b
            pre_acts.append(z)
            if layer < n_layers - 1:
                a = relu(z)
            else:
                a = softmax(z)
            acts.append(a)
        return pre_acts, acts

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MLPClassifier":
        """Train with mini-batch gradient descent on the cross-entropy loss."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y disagree on the number of samples")
        self.classes_ = np.unique(y)
        n_classes = len(self.classes_)
        if n_classes < 2:
            raise ValueError("need at least two classes")
        class_index = {c: i for i, c in enumerate(self.classes_)}
        y_idx = np.array([class_index[v] for v in y], dtype=np.int64)
        targets = one_hot(y_idx, n_classes)

        rng = np.random.default_rng(self.random_state)
        self._init_params(X.shape[1], n_classes, rng)
        self.history_ = MLPTrainingHistory()

        n = X.shape[0]
        batch = min(self.batch_size, n)
        best_loss = np.inf
        stale = 0
        for epoch in range(1, self.max_epochs + 1):
            order = rng.permutation(n)
            for start in range(0, n, batch):
                idx = order[start : start + batch]
                self._step(X[idx], targets[idx])
            loss = self._loss(X, targets)
            acc = float(np.mean(self.predict(X) == y))
            self.history_.losses.append(loss)
            self.history_.train_accuracies.append(acc)
            self.history_.n_epochs = epoch
            if loss < best_loss - self.tol:
                best_loss = loss
                stale = 0
            else:
                stale += 1
                if stale >= self.patience:
                    self.history_.converged = True
                    break
        return self

    def _step(self, X: np.ndarray, targets: np.ndarray) -> None:
        pre_acts, acts = self._forward(X)
        n = X.shape[0]
        n_layers = len(self.weights_)
        # Softmax + cross-entropy gradient at the output.
        delta = (acts[-1] - targets) / n
        for layer in range(n_layers - 1, -1, -1):
            grad_w = acts[layer].T @ delta + self.l2 * self.weights_[layer]
            grad_b = delta.sum(axis=0)
            if layer > 0:
                delta = (delta @ self.weights_[layer].T) * relu_grad(pre_acts[layer - 1])
            self.weights_[layer] -= self.learning_rate * grad_w
            self.biases_[layer] -= self.learning_rate * grad_b

    def _loss(self, X: np.ndarray, targets: np.ndarray) -> float:
        _, acts = self._forward(X)
        probs = np.clip(acts[-1], 1e-12, 1.0)
        ce = -float(np.mean(np.sum(targets * np.log(probs), axis=1)))
        reg = 0.5 * self.l2 * sum(float(np.sum(W ** 2)) for W in self.weights_)
        return ce + reg

    # ------------------------------------------------------------------ #
    # Inference
    # ------------------------------------------------------------------ #
    def _check_fitted(self) -> None:
        if not self.weights_:
            raise RuntimeError("MLPClassifier must be fitted before use")

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Pre-softmax output scores (what the bespoke circuit's argmax sees)."""
        self._check_fitted()
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        pre_acts, _ = self._forward(X)
        return pre_acts[-1]

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Softmax class probabilities."""
        self._check_fitted()
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        _, acts = self._forward(X)
        return acts[-1]

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted class labels."""
        scores = self.decision_function(X)
        return self.classes_[np.argmax(scores, axis=1)]

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy on ``(X, y)``."""
        from repro.ml.metrics import accuracy_score

        return accuracy_score(y, self.predict(X))

    # ------------------------------------------------------------------ #
    # Structure introspection (used by the hardware generators)
    # ------------------------------------------------------------------ #
    @property
    def layer_sizes_(self) -> Tuple[int, ...]:
        """(n_features, hidden..., n_classes) of the trained network."""
        self._check_fitted()
        sizes = [self.weights_[0].shape[0]]
        sizes.extend(W.shape[1] for W in self.weights_)
        return tuple(sizes)

    @property
    def n_parameters_(self) -> int:
        """Total number of weights and biases (hardwired values in hardware)."""
        self._check_fitted()
        return int(
            sum(W.size for W in self.weights_) + sum(b.size for b in self.biases_)
        )

    @property
    def n_multiplications_(self) -> int:
        """Multiplications per inference — dedicated multipliers in a parallel bespoke MLP."""
        self._check_fitted()
        return int(sum(W.size for W in self.weights_))
