"""Linear Support Vector Machine training.

The paper employs linear-kernel SVMs ("due to their simplicity and reduced
hardware complexity"): every classifier computes ``y = sum_i w_i x_i + b``
and the sign (binary case) or the argmax over classifiers (multi-class case)
decides the class.  Because scikit-learn is not available offline, this
module implements two standard linear-SVM trainers from scratch:

* **Dual coordinate descent** (the liblinear algorithm of Hsieh et al.,
  ICML 2008) for the L2-regularised L1-loss / L2-loss SVM.  This is the
  default: it is deterministic given a seed, fast for the small UCI-sized
  datasets of the paper, and exposes the dual coefficients, i.e. which
  training samples act as support vectors.
* **Sub-gradient SGD** (Pegasos-style) as an alternative optimiser, useful
  for cross-checking and for the property-based tests.

Only the primal weight vector and bias are needed downstream: they are what
gets quantized and hardwired into the bespoke circuits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class SVMTrainingHistory:
    """Convergence diagnostics recorded during training."""

    n_iterations: int = 0
    converged: bool = False
    final_violation: float = float("inf")
    objective: float = float("nan")


class LinearSVC:
    """Binary linear SVM classifier.

    Parameters
    ----------
    C:
        Inverse regularisation strength (larger C = less regularisation).
    loss:
        ``"hinge"`` (L1 loss) or ``"squared_hinge"`` (L2 loss).
    solver:
        ``"dual_cd"`` (dual coordinate descent, default) or ``"sgd"``.
    max_iter:
        Maximum number of passes over the training data.
    tol:
        Convergence tolerance on the maximal projected-gradient violation
        (dual solver) or on the relative weight change (SGD solver).
    fit_intercept:
        If True an (unregularised via augmentation) bias term is learned.
    random_state:
        Seed controlling the permutation order / SGD sampling.

    Attributes
    ----------
    coef_:
        Weight vector of shape ``(n_features,)``.
    intercept_:
        Scalar bias ``b``.
    dual_coef_:
        Dual variables ``alpha`` (only for the dual solver); non-zero entries
        identify the support vectors.
    support_:
        Indices of training samples with non-zero dual coefficient.
    history_:
        :class:`SVMTrainingHistory` with convergence information.

    Notes
    -----
    Labels must be binary.  Internally they are mapped to ``{-1, +1}`` with
    the *larger* original label mapped to ``+1`` so that ``decision_function``
    is positive for that class.
    """

    def __init__(
        self,
        C: float = 1.0,
        loss: str = "squared_hinge",
        solver: str = "dual_cd",
        max_iter: int = 1000,
        tol: float = 1e-4,
        fit_intercept: bool = True,
        intercept_scaling: float = 1.0,
        random_state: Optional[int] = 0,
    ) -> None:
        if C <= 0:
            raise ValueError(f"C must be positive, got {C}")
        if loss not in ("hinge", "squared_hinge"):
            raise ValueError(f"unknown loss {loss!r}")
        if solver not in ("dual_cd", "sgd"):
            raise ValueError(f"unknown solver {solver!r}")
        if max_iter < 1:
            raise ValueError("max_iter must be >= 1")
        self.C = float(C)
        self.loss = loss
        self.solver = solver
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.fit_intercept = bool(fit_intercept)
        self.intercept_scaling = float(intercept_scaling)
        self.random_state = random_state

        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0
        self.dual_coef_: Optional[np.ndarray] = None
        self.support_: Optional[np.ndarray] = None
        self.classes_: Optional[np.ndarray] = None
        self.history_ = SVMTrainingHistory()

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #
    def fit(self, X: np.ndarray, y: np.ndarray, sample_weight: Optional[np.ndarray] = None) -> "LinearSVC":
        """Train on a binary-labelled dataset."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y disagree on the number of samples")
        classes = np.unique(y)
        if len(classes) != 2:
            raise ValueError(
                f"LinearSVC is a binary classifier; got {len(classes)} classes. "
                "Use OneVsRestClassifier / OneVsOneClassifier for multi-class."
            )
        self.classes_ = classes
        # Map to {-1, +1}: larger label -> +1.
        y_signed = np.where(y == classes[1], 1.0, -1.0)

        if sample_weight is None:
            sample_weight = np.ones(X.shape[0], dtype=float)
        else:
            sample_weight = np.asarray(sample_weight, dtype=float)
            if sample_weight.shape[0] != X.shape[0]:
                raise ValueError("sample_weight length mismatch")
            if np.any(sample_weight < 0):
                raise ValueError("sample_weight entries must be non-negative")

        if self.fit_intercept:
            X_aug = np.hstack(
                [X, np.full((X.shape[0], 1), self.intercept_scaling, dtype=float)]
            )
        else:
            X_aug = X

        if self.solver == "dual_cd":
            w_aug = self._fit_dual_cd(X_aug, y_signed, sample_weight)
        else:
            w_aug = self._fit_sgd(X_aug, y_signed, sample_weight)

        if self.fit_intercept:
            self.coef_ = w_aug[:-1].copy()
            self.intercept_ = float(w_aug[-1] * self.intercept_scaling)
        else:
            self.coef_ = w_aug.copy()
            self.intercept_ = 0.0
        return self

    def _fit_dual_cd(
        self, X: np.ndarray, y: np.ndarray, sample_weight: np.ndarray
    ) -> np.ndarray:
        """Dual coordinate descent for L1/L2-loss linear SVM (Hsieh et al.)."""
        n_samples, n_features = X.shape
        rng = np.random.default_rng(self.random_state)

        if self.loss == "hinge":
            # L1 loss: 0 <= alpha_i <= C_i, diagonal term D_ii = 0
            upper = self.C * sample_weight
            diag = np.zeros(n_samples)
        else:
            # L2 loss: 0 <= alpha_i < inf, D_ii = 1 / (2 C_i)
            upper = np.full(n_samples, np.inf)
            with np.errstate(divide="ignore"):
                diag = np.where(
                    sample_weight > 0, 1.0 / (2.0 * self.C * sample_weight), np.inf
                )

        alpha = np.zeros(n_samples)
        w = np.zeros(n_features)
        # Q_ii = x_i . x_i + D_ii
        q_diag = np.einsum("ij,ij->i", X, X) + diag

        converged = False
        iteration = 0
        max_violation = float("inf")
        active = np.arange(n_samples)
        for iteration in range(1, self.max_iter + 1):
            rng.shuffle(active)
            max_violation = 0.0
            for i in active:
                if sample_weight[i] == 0:
                    continue
                g = y[i] * float(X[i] @ w) - 1.0 + diag[i] * alpha[i]
                # Projected gradient
                if alpha[i] <= 0.0:
                    pg = min(g, 0.0)
                elif alpha[i] >= upper[i]:
                    pg = max(g, 0.0)
                else:
                    pg = g
                max_violation = max(max_violation, abs(pg))
                if abs(pg) > 1e-14:
                    if q_diag[i] <= 0:
                        continue
                    alpha_old = alpha[i]
                    alpha[i] = min(max(alpha[i] - g / q_diag[i], 0.0), upper[i])
                    delta = (alpha[i] - alpha_old) * y[i]
                    if delta != 0.0:
                        w += delta * X[i]
            if max_violation < self.tol:
                converged = True
                break

        self.dual_coef_ = alpha
        self.support_ = np.flatnonzero(alpha > 1e-12)
        self.history_ = SVMTrainingHistory(
            n_iterations=iteration,
            converged=converged,
            final_violation=max_violation,
            objective=self._primal_objective(X, y, w, sample_weight),
        )
        return w

    def _fit_sgd(
        self, X: np.ndarray, y: np.ndarray, sample_weight: np.ndarray
    ) -> np.ndarray:
        """Pegasos-style sub-gradient descent on the primal objective."""
        n_samples, n_features = X.shape
        rng = np.random.default_rng(self.random_state)
        lam = 1.0 / (self.C * max(1, n_samples))
        w = np.zeros(n_features)
        t = 0
        converged = False
        iteration = 0
        for iteration in range(1, self.max_iter + 1):
            order = rng.permutation(n_samples)
            w_before = w.copy()
            for i in order:
                t += 1
                eta = 1.0 / (lam * t)
                margin = y[i] * float(X[i] @ w)
                w *= 1.0 - eta * lam
                if self.loss == "hinge":
                    if margin < 1.0:
                        w += eta * sample_weight[i] * y[i] * X[i] / n_samples * self.C * lam * n_samples
                else:
                    if margin < 1.0:
                        w += eta * sample_weight[i] * 2.0 * (1.0 - margin) * y[i] * X[i] / n_samples * self.C * lam * n_samples
            change = float(np.linalg.norm(w - w_before))
            scale = float(np.linalg.norm(w)) + 1e-12
            if change / scale < self.tol:
                converged = True
                break
        self.dual_coef_ = None
        self.support_ = None
        self.history_ = SVMTrainingHistory(
            n_iterations=iteration,
            converged=converged,
            final_violation=float("nan"),
            objective=self._primal_objective(X, y, w, sample_weight),
        )
        return w

    def _primal_objective(
        self, X: np.ndarray, y: np.ndarray, w: np.ndarray, sample_weight: np.ndarray
    ) -> float:
        margins = 1.0 - y * (X @ w)
        hinge = np.maximum(margins, 0.0)
        if self.loss == "squared_hinge":
            loss = np.sum(sample_weight * hinge ** 2)
        else:
            loss = np.sum(sample_weight * hinge)
        return 0.5 * float(w @ w) + self.C * float(loss)

    # ------------------------------------------------------------------ #
    # Inference
    # ------------------------------------------------------------------ #
    def _check_fitted(self) -> None:
        if self.coef_ is None:
            raise RuntimeError("LinearSVC must be fitted before use")

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Signed distance-like score ``w.x + b`` for each sample."""
        self._check_fitted()
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        if X.shape[1] != self.coef_.shape[0]:
            raise ValueError(
                f"expected {self.coef_.shape[0]} features, got {X.shape[1]}"
            )
        return X @ self.coef_ + self.intercept_

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted class labels (the original labels passed to ``fit``)."""
        self._check_fitted()
        scores = self.decision_function(X)
        return np.where(scores >= 0.0, self.classes_[1], self.classes_[0])

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy on ``(X, y)``."""
        from repro.ml.metrics import accuracy_score

        return accuracy_score(y, self.predict(X))

    @property
    def n_support_(self) -> int:
        """Number of support vectors (dual solver only)."""
        if self.support_ is None:
            raise RuntimeError("support vectors are only tracked by the dual solver")
        return int(len(self.support_))
