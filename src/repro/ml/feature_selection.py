"""Feature selection for hardware/accuracy co-design.

Every input feature of a bespoke printed classifier costs real silver ink:
one multiplier in the sequential compute engine (or one constant multiplier
per classifier in the parallel baselines), one column of MUX storage, and
one sensor interface.  Dropping weakly-informative features is therefore a
standard co-design lever in the printed-ML literature, and a natural
extension of the paper's flow (its future-work direction of pushing the
energy envelope further).

Two simple, training-free rankers are provided (ANOVA-F and mutual
information on discretised features) plus :func:`select_k_best`, a
scikit-learn-style transformer, and :func:`co_design_sweep`, which couples
feature count with the sequential-SVM hardware cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np


def anova_f_scores(X: np.ndarray, y: np.ndarray) -> np.ndarray:
    """One-way ANOVA F statistic of every feature against the class label.

    Large values mean the feature's class-conditional means differ strongly
    relative to the within-class variance — exactly the property a linear
    classifier can exploit.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y)
    if X.ndim != 2 or X.shape[0] != y.shape[0]:
        raise ValueError("X must be 2-D and aligned with y")
    classes = np.unique(y)
    if len(classes) < 2:
        raise ValueError("need at least two classes")
    n_samples, n_features = X.shape
    overall_mean = X.mean(axis=0)
    between = np.zeros(n_features)
    within = np.zeros(n_features)
    for cls in classes:
        Xc = X[y == cls]
        if Xc.shape[0] == 0:
            continue
        class_mean = Xc.mean(axis=0)
        between += Xc.shape[0] * (class_mean - overall_mean) ** 2
        within += ((Xc - class_mean) ** 2).sum(axis=0)
    df_between = len(classes) - 1
    df_within = max(n_samples - len(classes), 1)
    ms_between = between / df_between
    ms_within = within / df_within
    with np.errstate(divide="ignore", invalid="ignore"):
        scores = np.where(ms_within > 0, ms_between / ms_within, np.inf)
    # Constant features carry no information at all.
    scores = np.where((ms_within == 0) & (ms_between == 0), 0.0, scores)
    return scores


def mutual_information_scores(
    X: np.ndarray, y: np.ndarray, n_bins: int = 8
) -> np.ndarray:
    """Mutual information between each (discretised) feature and the label.

    Features are bucketed into ``n_bins`` equal-width bins — which matches how
    the hardware sees them after low-precision input quantization — and the
    plug-in MI estimate is computed per feature.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y)
    if X.ndim != 2 or X.shape[0] != y.shape[0]:
        raise ValueError("X must be 2-D and aligned with y")
    if n_bins < 2:
        raise ValueError("need at least two bins")
    n_samples, n_features = X.shape
    classes, y_idx = np.unique(y, return_inverse=True)
    p_y = np.bincount(y_idx).astype(float) / n_samples

    scores = np.zeros(n_features)
    for f in range(n_features):
        column = X[:, f]
        lo, hi = column.min(), column.max()
        if hi <= lo:
            scores[f] = 0.0
            continue
        bins = np.clip(
            ((column - lo) / (hi - lo) * n_bins).astype(int), 0, n_bins - 1
        )
        joint = np.zeros((n_bins, len(classes)))
        np.add.at(joint, (bins, y_idx), 1.0)
        joint /= n_samples
        p_x = joint.sum(axis=1)
        mi = 0.0
        for b in range(n_bins):
            for c in range(len(classes)):
                if joint[b, c] > 0 and p_x[b] > 0 and p_y[c] > 0:
                    mi += joint[b, c] * np.log(joint[b, c] / (p_x[b] * p_y[c]))
        scores[f] = max(mi, 0.0)
    return scores


SCORERS: Dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "anova_f": anova_f_scores,
    "mutual_information": mutual_information_scores,
}


class SelectKBest:
    """Keep the ``k`` highest-scoring features (scikit-learn-style API)."""

    def __init__(self, k: int, scorer: str = "anova_f") -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        if scorer not in SCORERS:
            raise ValueError(f"unknown scorer {scorer!r}; available: {sorted(SCORERS)}")
        self.k = int(k)
        self.scorer = scorer
        self.scores_: Optional[np.ndarray] = None
        self.selected_indices_: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "SelectKBest":
        X = np.asarray(X, dtype=float)
        if self.k > X.shape[1]:
            raise ValueError(f"k={self.k} exceeds the {X.shape[1]} available features")
        self.scores_ = SCORERS[self.scorer](X, y)
        order = np.argsort(self.scores_)[::-1]
        self.selected_indices_ = np.sort(order[: self.k])
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.selected_indices_ is None:
            raise RuntimeError("SelectKBest must be fitted before use")
        X = np.asarray(X, dtype=float)
        return X[:, self.selected_indices_]

    def fit_transform(self, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        return self.fit(X, y).transform(X)


def select_k_best(
    X_train: np.ndarray,
    y_train: np.ndarray,
    X_test: np.ndarray,
    k: int,
    scorer: str = "anova_f",
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Convenience wrapper: returns (X_train_k, X_test_k, selected_indices)."""
    selector = SelectKBest(k, scorer=scorer).fit(X_train, y_train)
    return (
        selector.transform(X_train),
        selector.transform(X_test),
        selector.selected_indices_,
    )


@dataclass
class CoDesignPoint:
    """One feature-count point of the co-design sweep."""

    n_features: int
    selected_indices: np.ndarray
    accuracy_percent: float
    area_cm2: float
    power_mw: float
    energy_mj: float


@dataclass
class CoDesignSweep:
    """Accuracy / hardware trade-off as the feature count shrinks."""

    dataset: str
    points: List[CoDesignPoint] = field(default_factory=list)

    def best_within_accuracy_drop(self, max_drop_percent: float) -> CoDesignPoint:
        """Cheapest point whose accuracy is within ``max_drop_percent`` of the
        full-feature design."""
        if not self.points:
            raise ValueError("empty sweep")
        full = max(self.points, key=lambda p: p.n_features)
        eligible = [
            p
            for p in self.points
            if p.accuracy_percent >= full.accuracy_percent - max_drop_percent
        ]
        return min(eligible, key=lambda p: p.energy_mj)


def co_design_sweep(
    split,
    feature_counts: Sequence[int],
    input_bits: int = 4,
    weight_bits: int = 6,
    svm_max_iter: int = 60,
    dataset: str = "",
    scorer: str = "anova_f",
) -> CoDesignSweep:
    """Sweep the feature count and price the sequential SVM at each point.

    ``split`` is a :class:`~repro.ml.preprocessing.DatasetSplit` whose inputs
    are already normalised to [0, 1].
    """
    from repro.core.sequential_svm import SequentialSVMDesign
    from repro.ml.multiclass import OneVsRestClassifier
    from repro.ml.quantization import quantize_linear_classifier
    from repro.ml.svm import LinearSVC

    sweep = CoDesignSweep(dataset=dataset)
    for k in sorted(set(int(k) for k in feature_counts), reverse=True):
        X_train_k, X_test_k, indices = select_k_best(
            split.X_train, split.y_train, split.X_test, k, scorer=scorer
        )
        classifier = OneVsRestClassifier(LinearSVC(max_iter=svm_max_iter, random_state=0))
        classifier.fit(X_train_k, split.y_train)
        quantized = quantize_linear_classifier(
            classifier, input_bits=input_bits, weight_bits=weight_bits
        )
        design = SequentialSVMDesign(quantized, dataset=dataset)
        report = design.evaluate(X_test_k, split.y_test)
        sweep.points.append(
            CoDesignPoint(
                n_features=k,
                selected_indices=indices,
                accuracy_percent=report.accuracy_percent,
                area_cm2=report.area_cm2,
                power_mw=report.power_mw,
                energy_mj=report.energy_mj,
            )
        )
    return sweep
