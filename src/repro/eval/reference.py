"""Published reference numbers from the paper (Table I and text claims).

These values are transcribed verbatim from the paper and are used (a) as the
comparison target recorded in ``EXPERIMENTS.md`` and (b) by the benchmark
harness to check that the *shape* of the reproduction (who wins, by roughly
what factor) matches the publication.  They are never fed back into the
estimation flow itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class ReferenceRow:
    """One row of the paper's Table I."""

    dataset: str
    model: str
    accuracy_percent: float
    area_cm2: float
    power_mw: float
    frequency_hz: float
    latency_ms: float
    energy_mj: float
    approximate: bool = False

    @property
    def is_proposed(self) -> bool:
        """Whether this row is the paper's own design ("Ours")."""
        return self.model == "ours"


#: Model identifiers used for the reference rows.
MODEL_SVM_2 = "svm[2]"
MODEL_SVM_3 = "svm[3]"
MODEL_MLP_4 = "mlp[4]"
MODEL_OURS = "ours"

#: Mapping from reference model ids to the flow's model kinds.
MODEL_TO_KIND: Dict[str, str] = {
    MODEL_SVM_2: "svm_parallel_exact",
    MODEL_SVM_3: "svm_parallel_approx",
    MODEL_MLP_4: "mlp_parallel",
    MODEL_OURS: "ours",
}

#: The paper's Table I, transcribed row by row.
TABLE1_REFERENCE: Tuple[ReferenceRow, ...] = (
    # Cardio
    ReferenceRow("cardio", MODEL_SVM_2, 90.0, 15.1, 57.4, 13, 75, 4.31),
    ReferenceRow("cardio", MODEL_SVM_3, 89.0, 17.0, 48.9, 13, 75, 3.67, approximate=True),
    ReferenceRow("cardio", MODEL_MLP_4, 87.0, 6.1, 20.8, 5, 200, 4.16, approximate=True),
    ReferenceRow("cardio", MODEL_OURS, 93.4, 17.1, 17.6, 38, 78, 1.373),
    # Dermatology
    ReferenceRow("dermatology", MODEL_SVM_2, 97.2, 60.4, 182.9, 8, 120, 21.95),
    ReferenceRow("dermatology", MODEL_OURS, 98.6, 13.9, 14.3, 38, 156, 2.231),
    # PenDigits
    ReferenceRow("pendigits", MODEL_SVM_2, 97.8, 123.8, 364.4, 4, 250, 91.1),
    ReferenceRow("pendigits", MODEL_SVM_3, 97.0, 97.0, 183.7, 4, 250, 45.92, approximate=True),
    ReferenceRow("pendigits", MODEL_MLP_4, 93.0, 32.7, 99.2, 4, 250, 24.8, approximate=True),
    ReferenceRow("pendigits", MODEL_OURS, 93.1, 22.9, 22.9, 35, 280, 6.41),
    # RedWine
    ReferenceRow("redwine", MODEL_SVM_2, 57.0, 23.5, 92.8, 15, 66, 6.12),
    ReferenceRow("redwine", MODEL_SVM_3, 56.0, 11.7, 21.3, 15, 66, 1.41, approximate=True),
    ReferenceRow("redwine", MODEL_MLP_4, 56.0, 1.1, 3.9, 5, 200, 0.79, approximate=True),
    ReferenceRow("redwine", MODEL_OURS, 64.0, 6.2, 6.7, 42, 144, 0.965),
    # WhiteWine
    ReferenceRow("whitewine", MODEL_SVM_2, 53.0, 28.3, 112.4, 17, 60, 6.74),
    ReferenceRow("whitewine", MODEL_SVM_3, 52.0, 11.0, 34.7, 17, 60, 2.08, approximate=True),
    ReferenceRow("whitewine", MODEL_MLP_4, 53.0, 6.5, 21.3, 5, 200, 4.26, approximate=True),
    ReferenceRow("whitewine", MODEL_OURS, 56.0, 6.0, 6.4, 34, 203, 1.299),
)

#: Aggregate claims made in the paper's text (Sec. III).
PAPER_CLAIMS: Dict[str, float] = {
    # Average energy improvement of the proposed design over each baseline.
    "energy_improvement_vs_svm2": 10.6,
    "energy_improvement_vs_svm3": 5.4,
    "energy_improvement_vs_mlp4": 3.46,
    "energy_improvement_average": 6.5,
    # Average accuracy improvement (percentage points) over each baseline.
    "accuracy_gain_vs_svm2": 2.02,
    "accuracy_gain_vs_svm3": 3.13,
    "accuracy_gain_vs_mlp4": 4.38,
    # Power statistics of the proposed designs.
    "peak_power_mw": 22.9,
    "average_power_mw": 13.58,
    "average_energy_mj": 2.46,
    # Printed battery budget the designs must satisfy.
    "battery_budget_mw": 30.0,
}

#: Datasets in the order Table I lists them.
TABLE1_DATASETS: Tuple[str, ...] = (
    "cardio",
    "dermatology",
    "pendigits",
    "redwine",
    "whitewine",
)


def reference_rows(
    dataset: Optional[str] = None, model: Optional[str] = None
) -> List[ReferenceRow]:
    """Filter the published Table I by dataset and/or model id."""
    rows = list(TABLE1_REFERENCE)
    if dataset is not None:
        rows = [r for r in rows if r.dataset == dataset]
    if model is not None:
        rows = [r for r in rows if r.model == model]
    return rows


def reference_row(dataset: str, model: str) -> ReferenceRow:
    """Exactly one published row; raises if the paper did not report it."""
    rows = reference_rows(dataset=dataset, model=model)
    if not rows:
        raise KeyError(f"the paper reports no {model!r} row for dataset {dataset!r}")
    return rows[0]


def models_reported_for(dataset: str) -> List[str]:
    """Model ids the paper reports for a dataset (Dermatology only has two)."""
    return [r.model for r in reference_rows(dataset=dataset)]
