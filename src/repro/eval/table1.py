"""Regeneration of the paper's Table I.

:func:`generate_table1` runs the full design flow for every (dataset, model)
pair the paper reports and returns the measured rows;
:func:`format_table1` renders them in the paper's column layout, optionally
side by side with the published values; :func:`table1_aggregates` computes
the headline aggregates (energy improvements, accuracy gains, power
statistics) used by the claims benchmark and by ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.design_flow import FlowConfig, FlowResult
from repro.core.flow_executor import CacheSpec, execute_flow_grid
from repro.core.report import ClassifierHardwareReport
from repro.eval.comparison import (
    ImprovementSummary,
    compare_against_baseline,
    overall_energy_improvement,
    power_statistics,
)
from repro.eval.reference import (
    MODEL_TO_KIND,
    TABLE1_DATASETS,
    models_reported_for,
    reference_row,
)


@dataclass
class Table1Entry:
    """One measured Table I row, paired with its published reference."""

    dataset: str
    model: str
    measured: ClassifierHardwareReport
    reference: Optional[object] = None
    flow_result: Optional[FlowResult] = None
    #: Result of the cycle-accurate hardware-vs-model check (None = not run /
    #: not applicable for this model kind).
    hardware_verified: Optional[bool] = None
    #: Result of the gate-level sequential check: the proposed design's
    #: explicit clocked netlist simulated cycle by cycle on the bit-parallel
    #: engine and compared against the behavioural oracle trace (None = not
    #: run / not applicable for this model kind).
    sequential_verified: Optional[bool] = None
    #: Netlist-optimizer statistics for this design's hardwired constant-MAC
    #: datapath (None = ``opt_level`` not requested / model has no linear
    #: coefficient table).  ``opt_stats.gates_before`` is the raw explicit
    #: gate count, ``opt_stats.gates_after`` the pass-optimized one.
    opt_stats: Optional[object] = None


@dataclass
class Table1:
    """The regenerated table plus its aggregates."""

    entries: List[Table1Entry] = field(default_factory=list)

    def rows_for_model(self, model: str) -> List[ClassifierHardwareReport]:
        """Measured rows of one model id (e.g. ``"ours"``), dataset-ordered."""
        return [e.measured for e in self.entries if e.model == model]

    def row(self, dataset: str, model: str) -> Table1Entry:
        """One specific entry; raises if the pair was not generated."""
        for entry in self.entries:
            if entry.dataset == dataset and entry.model == model:
                return entry
        raise KeyError(f"no entry for ({dataset!r}, {model!r})")

    def datasets(self) -> List[str]:
        """Datasets present in the table, in first-seen order."""
        seen: List[str] = []
        for entry in self.entries:
            if entry.dataset not in seen:
                seen.append(entry.dataset)
        return seen


def design_mac_netlist(design: object):
    """Explicit constant-MAC datapath netlist of a linear design, or None.

    Builds the naive (unoptimized) hardwired multiply-accumulate datapath of
    the design's *first* classifier — one tied-operand multiplier per
    coefficient magnitude plus ripple accumulation — which is what the
    :mod:`repro.hw.opt` pass pipeline consumes for the optimized-vs-raw gate
    counts surfaced in the Table I report.  Designs without a linear
    coefficient table (the MLP baseline) return None.
    """
    from repro.hw.rtl.multipliers import build_constant_mac_netlist

    model = getattr(design, "model", None)
    weight_codes = getattr(model, "weight_codes", None)
    input_format = getattr(model, "input_format", None)
    # The MLP baseline stores per-layer weight lists, not one linear table.
    if (
        input_format is None
        or not isinstance(weight_codes, np.ndarray)
        or weight_codes.ndim != 2
        or weight_codes.shape[0] < 1
    ):
        return None
    weights = [int(w) for w in weight_codes[0]]
    return build_constant_mac_netlist(
        weights,
        int(input_format.total_bits),
        name=f"mac_{getattr(design, 'dataset', 'design') or 'design'}",
    )


def _attach_opt_stats(entry: Table1Entry, opt_level: int) -> None:
    """Optimize the entry's constant-MAC datapath and record the stats."""
    from repro.hw.opt import optimize

    netlist = design_mac_netlist(entry.flow_result.design)
    if netlist is None:
        return
    entry.opt_stats = optimize(netlist, level=opt_level).stats


def generate_table1(
    datasets: Optional[Sequence[str]] = None,
    config: Optional[FlowConfig] = None,
    include_reference: bool = True,
    models: Optional[Sequence[str]] = None,
    verify_hardware: bool = False,
    verify_sequential: bool = False,
    jobs: Optional[int] = None,
    cache: CacheSpec = None,
    opt_level: Optional[int] = None,
    engine: str = "auto",
) -> Table1:
    """Run the flow for every (dataset, model) pair the paper reports.

    Parameters
    ----------
    datasets:
        Datasets to include (defaults to all five of Table I).
    config:
        Flow configuration; pass :func:`repro.core.design_flow.fast_config`
        for quick runs.
    include_reference:
        Attach the published row to each measured row when the paper reports
        one.
    models:
        Restrict to a subset of model ids (``"ours"``, ``"svm[2]"``, ...).
    verify_hardware:
        Additionally run the cycle-accurate datapath simulator over every
        proposed-design test set and record bit-exact agreement with the
        integer model in :attr:`Table1Entry.hardware_verified`.  Cheap since
        the batch simulation path is vectorized (see :mod:`repro.perf`).
    verify_sequential:
        Additionally clock every proposed design's explicit gate-level
        netlist (counter + MUX storage + MAC + voter,
        :meth:`~repro.core.sequential_svm.SequentialSVMDesign.gate_netlist`)
        over its test set on the bit-parallel sequential engine
        (:mod:`repro.perf.seqsim`) and record per-cycle bit-exact agreement
        with the behavioural oracle trace in
        :attr:`Table1Entry.sequential_verified`.
    jobs:
        Shard flow runs across this many worker processes (``None``/1 =
        serial, 0 = all cores).  Training seeds are fixed, so the sharded
        table is bit-identical to the serial one.
    cache:
        Persistent result cache: ``None`` uses the default on-disk layer
        (``~/.cache/repro`` keyed by config + code fingerprint), ``False``
        disables it, or pass an explicit
        :class:`~repro.core.flow_executor.FlowResultCache`.
    opt_level:
        When set, run the :mod:`repro.hw.opt` netlist pass pipeline at this
        level over each design's hardwired constant-MAC datapath and attach
        the optimized-vs-raw gate counts to :attr:`Table1Entry.opt_stats`
        (rendered by :func:`format_table1_optimization`).
    engine:
        Bit-parallel execution engine used by the gate-level verification
        sweeps (``'interp'``, ``'fused'``, ``'codegen'``, ``'native'`` or
        ``'auto'`` — see :mod:`repro.perf.engines`; ``'native'`` degrades
        to ``'codegen'`` on hosts without a C toolchain).  All engines are
        bit-exact; this only trades verification wall-clock.
    """
    datasets = list(datasets) if datasets is not None else list(TABLE1_DATASETS)
    rows: List[tuple] = []
    for dataset in datasets:
        for model in models_reported_for(dataset):
            if models is not None and model not in models:
                continue
            rows.append((dataset, model, MODEL_TO_KIND[model]))

    results = execute_flow_grid(
        [(dataset, kind) for dataset, _, kind in rows],
        config=config,
        jobs=jobs,
        cache=cache,
    )

    table = Table1()
    for dataset, model, kind in rows:
        result = results[(dataset, kind)]
        reference = reference_row(dataset, model) if include_reference else None
        verified: Optional[bool] = None
        if verify_hardware and kind == "ours":
            verified = bool(result.design.verify_against_model(result.split.X_test))
        seq_verified: Optional[bool] = None
        if verify_sequential and kind == "ours":
            seq_verified = bool(
                result.design.verify_gate_level(result.split.X_test, engine=engine)
            )
        entry = Table1Entry(
            dataset=dataset,
            model=model,
            measured=result.report,
            reference=reference,
            flow_result=result,
            hardware_verified=verified,
            sequential_verified=seq_verified,
        )
        if opt_level is not None:
            _attach_opt_stats(entry, opt_level)
        table.entries.append(entry)
    return table


def report_from_store_record(record: Dict) -> ClassifierHardwareReport:
    """Rebuild a Table-I-shaped report from one ``repro.jobs`` store record.

    Store records carry the rounded Table I columns (``row``) plus the
    cycle count — enough to rebuild the report the table formatters and the
    Pareto helpers consume.  Breakdowns (static/dynamic power, cell counts)
    are not persisted and come back as their defaults.

    Example::

        report = report_from_store_record(store.query(dataset="redwine")[0])
        report.energy_mj
    """
    row = record["row"]
    return ClassifierHardwareReport(
        dataset=row["dataset"],
        model=row["model"],
        accuracy_percent=float(row["accuracy_percent"]),
        area_cm2=float(row["area_cm2"]),
        power_mw=float(row["power_mw"]),
        frequency_hz=float(row["frequency_hz"]),
        latency_ms=float(row["latency_ms"]),
        energy_mj=float(row["energy_mj"]),
        cycles_per_classification=int(record.get("cycles_per_classification", 1)),
        notes=f"rebuilt from job store record {record.get('id', '?')}",
    )


def table1_from_store(
    store,
    datasets: Optional[Sequence[str]] = None,
    models: Optional[Sequence[str]] = None,
    include_reference: bool = True,
) -> Table1:
    """Assemble a :class:`Table1` from a ``repro.jobs`` result store.

    The read-side counterpart of :func:`generate_table1`: no flows run —
    every entry is rebuilt from the store's persisted records (one grid run
    by ``repro-jobs`` serves every later table/front/report query).  Rows
    are rounded exactly as ``ClassifierHardwareReport.as_row`` rounds them,
    so a store-built table formats identically to a freshly generated one.

    Example::

        store = ResultStore(run_dir / "results.jsonl")
        print(format_table1(table1_from_store(store)))
    """
    table = Table1()
    for record in store.records():
        if datasets is not None and record.get("dataset") not in datasets:
            continue
        measured = report_from_store_record(record)
        if models is not None and measured.model not in models:
            continue
        reference = None
        if include_reference:
            try:
                reference = reference_row(measured.dataset, measured.model)
            except (KeyError, ValueError):
                reference = None
        table.entries.append(
            Table1Entry(
                dataset=measured.dataset,
                model=measured.model,
                measured=measured,
                reference=reference,
            )
        )
    return table


def format_table1(table: Table1, show_reference: bool = True) -> str:
    """Render the regenerated table in the paper's column layout."""
    header = (
        f"{'Dataset':12s} {'Model':10s} "
        f"{'Acc(%)':>8s} {'Area(cm2)':>10s} {'Power(mW)':>10s} "
        f"{'Freq(Hz)':>9s} {'Lat(ms)':>9s} {'Energy(mJ)':>11s}"
    )
    lines = [header, "-" * len(header)]
    for entry in table.entries:
        m = entry.measured
        lines.append(
            f"{entry.dataset:12s} {entry.model:10s} "
            f"{m.accuracy_percent:8.1f} {m.area_cm2:10.2f} {m.power_mw:10.2f} "
            f"{m.frequency_hz:9.1f} {m.latency_ms:9.1f} {m.energy_mj:11.3f}"
        )
        if show_reference and entry.reference is not None:
            r = entry.reference
            lines.append(
                f"{'':12s} {'(paper)':10s} "
                f"{r.accuracy_percent:8.1f} {r.area_cm2:10.2f} {r.power_mw:10.2f} "
                f"{r.frequency_hz:9.1f} {r.latency_ms:9.1f} {r.energy_mj:11.3f}"
            )
    return "\n".join(lines)


def format_table1_optimization(table: Table1) -> str:
    """Render the optimized-vs-raw netlist gate counts attached to a table.

    One line per entry that carries :attr:`Table1Entry.opt_stats`; empty
    string when ``generate_table1`` ran without ``opt_level``.
    """
    lines: List[str] = []
    for entry in table.entries:
        stats = entry.opt_stats
        if stats is None:
            continue
        if not lines:
            lines.append(
                f"Constant-MAC datapath netlists "
                f"(pass pipeline level {stats.level}, classifier 0):"
            )
        lines.append(
            f"  {entry.dataset:12s} {entry.model:10s} "
            f"{stats.gates_before:5d} gates raw -> {stats.gates_after:5d} optimized "
            f"({stats.reduction_percent:5.1f}% removed)"
        )
    return "\n".join(lines)


def table1_aggregates(table: Table1) -> Dict[str, float]:
    """The paper's headline aggregates computed from a regenerated table."""
    ours = table.rows_for_model("ours")
    if not ours:
        raise ValueError("the table contains no proposed-design rows")
    summaries: List[ImprovementSummary] = []
    aggregates: Dict[str, float] = {}
    for model, claim_suffix in (
        ("svm[2]", "svm2"),
        ("svm[3]", "svm3"),
        ("mlp[4]", "mlp4"),
    ):
        baseline_rows = table.rows_for_model(model)
        if not baseline_rows:
            continue
        summary = compare_against_baseline(ours, baseline_rows, baseline_name=model)
        summaries.append(summary)
        # The paper's headline figures are ratios of average energies; the
        # per-dataset-ratio mean is kept as a secondary key for analysis.
        aggregates[f"energy_improvement_vs_{claim_suffix}"] = (
            summary.energy_improvement_of_averages
        )
        aggregates[f"energy_ratio_mean_vs_{claim_suffix}"] = summary.mean_energy_improvement
        aggregates[f"accuracy_gain_vs_{claim_suffix}"] = summary.mean_accuracy_gain
    if summaries:
        aggregates["energy_improvement_average"] = overall_energy_improvement(summaries)
    aggregates.update(power_statistics(ours))
    return aggregates
