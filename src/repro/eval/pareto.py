"""Pareto analysis of accuracy / energy / area trade-offs.

The paper argues its designs "feature the most favorable accuracy-energy
trade-off among related approaches".  These helpers identify the Pareto
front over any two objectives (one to maximise, one to minimise) so the
design-space-exploration example and the ablation benchmarks can report
dominance relations rather than single numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from repro.core.report import ClassifierHardwareReport


@dataclass(frozen=True)
class TradeoffPoint:
    """One design in a 2-D (maximise, minimise) trade-off space."""

    label: str
    maximise_value: float
    minimise_value: float

    def dominates(self, other: "TradeoffPoint") -> bool:
        """Strict Pareto dominance: at least as good on both, better on one."""
        at_least_as_good = (
            self.maximise_value >= other.maximise_value
            and self.minimise_value <= other.minimise_value
        )
        strictly_better = (
            self.maximise_value > other.maximise_value
            or self.minimise_value < other.minimise_value
        )
        return at_least_as_good and strictly_better


def accuracy_energy_points(
    reports: Sequence[ClassifierHardwareReport],
) -> List[TradeoffPoint]:
    """Accuracy (maximise) vs energy (minimise) points for a set of designs."""
    return [
        TradeoffPoint(
            label=f"{r.dataset}/{r.model}",
            maximise_value=r.accuracy_percent,
            minimise_value=r.energy_mj,
        )
        for r in reports
    ]


def accuracy_area_points(
    reports: Sequence[ClassifierHardwareReport],
) -> List[TradeoffPoint]:
    """Accuracy (maximise) vs area (minimise) points for a set of designs."""
    return [
        TradeoffPoint(
            label=f"{r.dataset}/{r.model}",
            maximise_value=r.accuracy_percent,
            minimise_value=r.area_cm2,
        )
        for r in reports
    ]


def tradeoff_points_from_rows(
    rows: Sequence[dict],
    maximise: str = "accuracy_percent",
    minimise: str = "energy_mj",
) -> List[TradeoffPoint]:
    """Trade-off points from Table-I-shaped row dicts.

    The row shape is the one :meth:`ClassifierHardwareReport.as_row`
    produces and the ``repro.jobs`` result store persists (``record["row"]``),
    so a store query feeds straight into :func:`pareto_front`:

        rows = [r["row"] for r in store.query(dataset="redwine")]
        front = pareto_front(tradeoff_points_from_rows(rows))
    """
    return [
        TradeoffPoint(
            label=f"{row['dataset']}/{row['model']}",
            maximise_value=float(row[maximise]),
            minimise_value=float(row[minimise]),
        )
        for row in rows
    ]


def pareto_front(points: Sequence[TradeoffPoint]) -> List[TradeoffPoint]:
    """Non-dominated subset of the given points (stable order)."""
    front: List[TradeoffPoint] = []
    for candidate in points:
        if not any(other.dominates(candidate) for other in points if other is not candidate):
            front.append(candidate)
    return front


def is_on_front(point: TradeoffPoint, points: Sequence[TradeoffPoint]) -> bool:
    """Whether ``point`` is non-dominated within ``points``."""
    return not any(
        other.dominates(point) for other in points if other is not point
    )


def dominance_count(point: TradeoffPoint, points: Sequence[TradeoffPoint]) -> int:
    """How many of the given points ``point`` strictly dominates."""
    return sum(1 for other in points if point.dominates(other))


def hypervolume_2d(
    points: Sequence[TradeoffPoint],
    reference: Tuple[float, float],
) -> float:
    """2-D hypervolume (area dominated w.r.t. a reference point).

    ``reference`` is ``(maximise_ref, minimise_ref)`` — a point worse than
    every candidate (lower maximise value, higher minimise value).  Larger is
    better; used to compare whole fronts in the exploration example.
    """
    front = pareto_front(points)
    ref_max, ref_min = reference
    usable = [
        p for p in front if p.maximise_value >= ref_max and p.minimise_value <= ref_min
    ]
    if not usable:
        return 0.0
    # Sweep from the best maximise value downwards; on a Pareto front the
    # minimise values are then non-increasing, so the rectangles below are
    # disjoint in the maximise dimension and exactly tile the dominated area.
    ordered = sorted(usable, key=lambda p: p.maximise_value, reverse=True)
    volume = 0.0
    for index, point in enumerate(ordered):
        next_max = ordered[index + 1].maximise_value if index + 1 < len(ordered) else ref_max
        width = point.maximise_value - next_max
        height = ref_min - point.minimise_value
        if width > 0 and height > 0:
            volume += width * height
    return volume
