"""PDK-sensitivity analysis: do the paper's conclusions survive calibration error?

The hardware numbers in this reproduction rest on a calibrated stand-in for
the EGFET PDK (DESIGN.md, "Calibration policy").  A fair question is whether
the qualitative conclusions — the sequential design wins energy, fits the
printed battery, clocks faster — depend on the precise calibration values.

:func:`sweep_pdk_parameters` re-prices already-generated designs under
perturbed cell libraries (scaled area, static power, switching energy and
delay) *without retraining anything*, and reports whether each conclusion
holds at every perturbation.  This is the printed-electronics equivalent of
corner analysis: if a conclusion only holds at the nominal corner it is not
a robust conclusion.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.parallel_mlp import ParallelMLPDesign
from repro.core.parallel_svm import ParallelSVMDesign
from repro.core.report import ClassifierHardwareReport
from repro.core.sequential_svm import SequentialSVMDesign
from repro.hw.pdk import DEFAULT_PDK_PARAMETERS, PDKParameters, build_printed_library


@dataclass(frozen=True)
class PDKCorner:
    """One perturbed calibration point (multiplicative scale factors)."""

    name: str
    area_scale: float = 1.0
    static_power_scale: float = 1.0
    switch_energy_scale: float = 1.0
    delay_scale: float = 1.0

    def apply(self, base: PDKParameters = DEFAULT_PDK_PARAMETERS) -> PDKParameters:
        """Scaled PDK parameters for this corner."""
        for factor in (
            self.area_scale,
            self.static_power_scale,
            self.switch_energy_scale,
            self.delay_scale,
        ):
            if factor <= 0:
                raise ValueError("corner scale factors must be positive")
        return replace(
            base,
            nand2_area_cm2=base.nand2_area_cm2 * self.area_scale,
            nand2_static_power_mw=base.nand2_static_power_mw * self.static_power_scale,
            nand2_switch_energy_mj=base.nand2_switch_energy_mj * self.switch_energy_scale,
        )

    @property
    def delay_factor(self) -> float:
        """Delay scaling is applied through the library's cell delays."""
        return self.delay_scale


#: Default corner set: nominal, each parameter +/-30 %, and combined corners.
DEFAULT_CORNERS: tuple = (
    PDKCorner("nominal"),
    PDKCorner("area+30%", area_scale=1.3),
    PDKCorner("area-30%", area_scale=0.7),
    PDKCorner("static+30%", static_power_scale=1.3),
    PDKCorner("static-30%", static_power_scale=0.7),
    PDKCorner("switch+30%", switch_energy_scale=1.3),
    PDKCorner("switch-30%", switch_energy_scale=0.7),
    PDKCorner("delay+30%", delay_scale=1.3),
    PDKCorner("delay-30%", delay_scale=0.7),
    PDKCorner("slow-hungry", static_power_scale=1.3, switch_energy_scale=1.3, delay_scale=1.3),
    PDKCorner("fast-frugal", static_power_scale=0.7, switch_energy_scale=0.7, delay_scale=0.7),
)


def build_corner_library(corner: PDKCorner):
    """Cell library for a corner (delay scaling applied per cell)."""
    params = corner.apply()
    library = build_printed_library(params, name=f"EGFET[{corner.name}]")
    if corner.delay_factor != 1.0:
        # Rebuild with scaled delays: CellType is frozen, so construct a new
        # library with every cell's delay scaled.
        from repro.hw.cells import CellLibrary, CellType

        scaled_cells = [
            CellType(
                name=cell.name,
                n_inputs=cell.n_inputs,
                n_outputs=cell.n_outputs,
                area_cm2=cell.area_cm2,
                static_power_mw=cell.static_power_mw,
                switch_energy_mj=cell.switch_energy_mj,
                delay_ms=cell.delay_ms * corner.delay_factor,
                is_sequential=cell.is_sequential,
                description=cell.description,
                function=cell.function,
            )
            for cell in (library[name] for name in library.cell_names())
        ]
        library = CellLibrary(
            name=library.name,
            cells=scaled_cells,
            supply_voltage=library.supply_voltage,
            clock_power_overhead=library.clock_power_overhead,
            wire_delay_factor=library.wire_delay_factor,
            description=library.description,
        )
    return library


@dataclass
class CornerResult:
    """Reports of every design of one dataset under one PDK corner."""

    corner: PDKCorner
    dataset: str
    reports: Dict[str, ClassifierHardwareReport]

    def conclusion_energy_win(self) -> bool:
        """Proposed design uses less energy than both parallel SVM baselines."""
        ours = self.reports["ours"]
        return all(
            ours.energy_mj < self.reports[kind].energy_mj
            for kind in ("svm_parallel_exact", "svm_parallel_approx")
            if kind in self.reports
        )

    def conclusion_battery_fit(self, budget_mw: float = 30.0) -> bool:
        """Proposed design stays within the printed-battery power budget."""
        return self.reports["ours"].power_mw <= budget_mw

    def conclusion_faster_clock(self) -> bool:
        """Proposed design clocks faster than the exact parallel baseline."""
        if "svm_parallel_exact" not in self.reports:
            return True
        return (
            self.reports["ours"].frequency_hz
            > self.reports["svm_parallel_exact"].frequency_hz
        )


@dataclass
class SensitivityReport:
    """Outcome of the full corner sweep for one dataset."""

    dataset: str
    corners: List[CornerResult] = field(default_factory=list)

    def conclusion_holds_everywhere(self, conclusion: str, **kwargs) -> bool:
        """Whether a named conclusion holds at every swept corner."""
        checker = {
            "energy_win": lambda c: c.conclusion_energy_win(),
            "battery_fit": lambda c: c.conclusion_battery_fit(**kwargs),
            "faster_clock": lambda c: c.conclusion_faster_clock(),
        }[conclusion]
        return all(checker(corner) for corner in self.corners)

    def energy_improvement_range(self) -> tuple:
        """(min, max) energy improvement vs the exact parallel SVM across corners."""
        ratios = []
        for corner in self.corners:
            if "svm_parallel_exact" not in corner.reports:
                continue
            ratios.append(
                corner.reports["svm_parallel_exact"].energy_mj
                / corner.reports["ours"].energy_mj
            )
        if not ratios:
            raise ValueError("no exact-baseline reports in the sweep")
        return (min(ratios), max(ratios))

    def summary(self) -> str:
        """Readable per-corner summary."""
        lines = [f"PDK sensitivity sweep for {self.dataset}:"]
        for corner in self.corners:
            ours = corner.reports["ours"]
            lines.append(
                f"  {corner.corner.name:14s} ours: {ours.power_mw:6.1f} mW, "
                f"{ours.energy_mj:6.3f} mJ  "
                f"energy-win={corner.conclusion_energy_win()}  "
                f"battery-fit={corner.conclusion_battery_fit()}"
            )
        return "\n".join(lines)


def _rebuild_design(flow_result, library):
    """Re-instantiate a flow result's design against a different library."""
    kind = flow_result.kind
    design = flow_result.design
    if kind == "ours":
        return SequentialSVMDesign(
            design.model,
            storage_style=design.storage_style,
            library=library,
            dataset=flow_result.dataset,
        )
    if kind in ("svm_parallel_exact", "svm_parallel_approx"):
        rebuilt = ParallelSVMDesign(
            design.model,
            style=design.style,
            approx_drop_bits=0,  # the stored model is already truncated
            library=library,
            dataset=flow_result.dataset,
        )
        return rebuilt
    return ParallelMLPDesign(design.model, library=library, dataset=flow_result.dataset)


#: Flow results of the sweep in progress, inherited by forked pool workers so
#: the (identical, immutable, potentially large) payload is not re-pickled
#: once per corner.  Set by :func:`sweep_pdk_parameters` around the fan-out.
_SWEEP_FLOW_RESULTS: Optional[List] = None


def _price_corner(corner: PDKCorner) -> Dict[str, ClassifierHardwareReport]:
    """Re-price every design of one dataset under one corner (worker body).

    Module-level so the corner sweep can fan out across a process pool; the
    corners are independent (no retraining, shared immutable flow results),
    so any completion order merges back deterministically by corner index.
    """
    flow_results = _SWEEP_FLOW_RESULTS
    library = build_corner_library(corner)
    reports: Dict[str, ClassifierHardwareReport] = {}
    for flow_result in flow_results:
        design = _rebuild_design(flow_result, library)
        reports[flow_result.kind] = design.evaluate(
            flow_result.split.X_test, flow_result.split.y_test
        )
    return reports


def sweep_pdk_parameters(
    flow_results: Sequence,
    corners: Iterable[PDKCorner] = DEFAULT_CORNERS,
    dataset: Optional[str] = None,
    jobs: Optional[int] = None,
) -> SensitivityReport:
    """Re-price a dataset's designs under every PDK corner.

    Parameters
    ----------
    flow_results:
        The :class:`~repro.core.design_flow.FlowResult` objects of one dataset
        (any subset of the four model kinds; must include ``"ours"``).
    corners:
        The PDK corners to sweep (defaults to +/-30 % single- and
        multi-parameter corners).
    dataset:
        Dataset name for the report (inferred from the first result if omitted).
    jobs:
        Shard corners across this many worker processes (``None``/1 = serial,
        0 = all cores).  Corner pricing is deterministic, so the sharded
        report is identical to the serial one.
    """
    flow_results = list(flow_results)
    if not flow_results:
        raise ValueError("no flow results given")
    if not any(r.kind == "ours" for r in flow_results):
        raise ValueError("the sweep needs the proposed design ('ours') to compare against")
    dataset = dataset or flow_results[0].dataset
    corners = list(corners)

    from repro.core.flow_executor import resolve_jobs

    n_jobs = resolve_jobs(jobs)
    global _SWEEP_FLOW_RESULTS
    _SWEEP_FLOW_RESULTS = flow_results
    try:
        if n_jobs > 1 and len(corners) > 1:
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            if multiprocessing.get_start_method() != "fork":
                raise RuntimeError(
                    "sweep_pdk_parameters(jobs>1) needs fork-based worker "
                    "processes (workers inherit the flow results); "
                    "run serially (jobs=1) on this platform"
                )
            with ProcessPoolExecutor(max_workers=min(n_jobs, len(corners))) as pool:
                # Workers fork after _SWEEP_FLOW_RESULTS is set, so only the
                # (tiny) corner objects cross the process boundary.
                priced = list(pool.map(_price_corner, corners))
        else:
            priced = [_price_corner(corner) for corner in corners]
    finally:
        _SWEEP_FLOW_RESULTS = None

    report = SensitivityReport(dataset=dataset)
    for corner, reports in zip(corners, priced):
        report.corners.append(CornerResult(corner=corner, dataset=dataset, reports=reports))
    return report
