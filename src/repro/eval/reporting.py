"""Text report generation (EXPERIMENTS.md style summaries).

These helpers turn the regenerated Table I and its aggregates into the
markdown used by ``EXPERIMENTS.md`` and into compact console summaries used
by the example scripts.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from repro.core.report import ClassifierHardwareReport
from repro.eval.reference import PAPER_CLAIMS
from repro.eval.table1 import Table1, table1_aggregates


def markdown_table1(table: Table1) -> str:
    """The regenerated Table I as a markdown table (measured vs published)."""
    lines = [
        "| Dataset | Model | Acc (%) | Area (cm2) | Power (mW) | Freq (Hz) | Latency (ms) | Energy (mJ) |",
        "|---|---|---|---|---|---|---|---|",
    ]
    for entry in table.entries:
        m = entry.measured
        lines.append(
            f"| {entry.dataset} | {entry.model} | {m.accuracy_percent:.1f} | "
            f"{m.area_cm2:.2f} | {m.power_mw:.2f} | {m.frequency_hz:.1f} | "
            f"{m.latency_ms:.1f} | {m.energy_mj:.3f} |"
        )
        if entry.reference is not None:
            r = entry.reference
            lines.append(
                f"| {entry.dataset} | {entry.model} (paper) | {r.accuracy_percent:.1f} | "
                f"{r.area_cm2:.2f} | {r.power_mw:.2f} | {r.frequency_hz:.1f} | "
                f"{r.latency_ms:.1f} | {r.energy_mj:.3f} |"
            )
    return "\n".join(lines)


def markdown_claims(
    measured_aggregates: Mapping[str, float],
    published: Optional[Mapping[str, float]] = None,
) -> str:
    """Measured vs published aggregate claims as a markdown table."""
    published = published if published is not None else PAPER_CLAIMS
    lines = [
        "| Claim | Paper | Measured |",
        "|---|---|---|",
    ]
    for key in sorted(set(published) | set(measured_aggregates)):
        paper_value = published.get(key)
        measured_value = measured_aggregates.get(key)
        paper_text = f"{paper_value:.2f}" if paper_value is not None else "-"
        measured_text = f"{measured_value:.2f}" if measured_value is not None else "-"
        lines.append(f"| {key} | {paper_text} | {measured_text} |")
    return "\n".join(lines)


def experiments_markdown(table: Table1) -> str:
    """A full EXPERIMENTS.md-style section for a regenerated table."""
    aggregates = table1_aggregates(table)
    parts = [
        "## Table I — measured vs published",
        "",
        markdown_table1(table),
        "",
        "## Aggregate claims",
        "",
        markdown_claims(aggregates),
    ]
    return "\n".join(parts)


def console_summary(rows: Sequence[ClassifierHardwareReport]) -> str:
    """Compact per-row console summary used by the examples."""
    return "\n".join(str(row) for row in rows)


def breakdown_summary(report: ClassifierHardwareReport) -> str:
    """Area breakdown of one design (storage / engine / voter / control)."""
    if not report.area_breakdown_cm2:
        return f"{report.model}: no breakdown recorded"
    lines = [f"{report.model} on {report.dataset}: {report.area_cm2:.2f} cm^2 total"]
    for component, area in sorted(
        report.area_breakdown_cm2.items(), key=lambda item: -item[1]
    ):
        share = 100.0 * area / report.area_cm2 if report.area_cm2 else 0.0
        lines.append(f"  {component:16s} {area:8.3f} cm^2 ({share:4.1f} %)")
    return "\n".join(lines)
