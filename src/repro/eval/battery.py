"""Battery feasibility and lifetime analysis for printed classifiers.

The paper's motivation is battery-powered printed systems: "we design
sequential printed bespoke SVM circuits that adhere to the power constraints
of existing printed batteries while minimizing energy consumption, thereby
boosting battery life."  This module answers the two questions the paper
raises for every design:

* can it be powered by an existing printed source (Molex 30 mW)?
* how much longer does a battery last compared to a baseline design?
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.report import ClassifierHardwareReport
from repro.hw.pdk import MOLEX_30MW, PRINTED_BATTERIES, PrintedBattery


@dataclass
class BatteryAssessment:
    """Feasibility / lifetime of one design on one printed power source."""

    design: str
    dataset: str
    battery: str
    feasible: bool
    power_mw: float
    lifetime_hours: Optional[float]
    classifications_per_charge: Optional[float]

    def __str__(self) -> str:
        status = "OK" if self.feasible else "EXCEEDS BUDGET"
        # "unbounded" is reserved for a genuinely infinite lifetime (power
        # harvesters); an unknown lifetime — in particular an infeasible
        # design the source cannot power at all — renders as "n/a".
        if self.lifetime_hours is None:
            life = "n/a"
        elif math.isinf(self.lifetime_hours):
            life = "unbounded"
        else:
            life = f"{self.lifetime_hours:.1f} h"
        return (
            f"{self.dataset:12s} {self.design:16s} on {self.battery:18s}: {status}, "
            f"{self.power_mw:5.1f} mW, lifetime {life}"
        )


def assess_design(
    report: ClassifierHardwareReport,
    battery: PrintedBattery = MOLEX_30MW,
    duty_cycle: float = 1.0,
) -> BatteryAssessment:
    """Evaluate one design against one printed power source.

    ``duty_cycle`` scales the average power for intermittent operation (the
    circuit is powered only while classifying); the peak-power feasibility
    check still uses the full operating power because the source must sustain
    the instantaneous draw.
    """
    if not 0.0 < duty_cycle <= 1.0:
        raise ValueError("duty_cycle must be in (0, 1]")
    feasible = battery.can_power(report.power_mw)
    average_power = report.power_mw * duty_cycle
    if feasible and average_power > 0:
        lifetime = battery.lifetime_hours(average_power)
        per_charge = battery.classifications_per_charge(report.energy_mj)
    else:
        lifetime = None
        per_charge = None
    return BatteryAssessment(
        design=report.model,
        dataset=report.dataset,
        battery=battery.name,
        feasible=feasible,
        power_mw=report.power_mw,
        lifetime_hours=lifetime,
        classifications_per_charge=per_charge,
    )


def assess_many(
    reports: Sequence[ClassifierHardwareReport],
    battery: PrintedBattery = MOLEX_30MW,
    duty_cycle: float = 1.0,
) -> List[BatteryAssessment]:
    """Assess a collection of designs against one power source.

    ``duty_cycle`` models intermittent operation exactly as in
    :func:`assess_design`: it scales the average power (and so the lifetime)
    while feasibility stays a peak-power check at full operating power.
    """
    return [assess_design(report, battery, duty_cycle=duty_cycle) for report in reports]


def feasible_designs(
    reports: Sequence[ClassifierHardwareReport],
    battery: PrintedBattery = MOLEX_30MW,
    duty_cycle: float = 1.0,
) -> List[ClassifierHardwareReport]:
    """The subset of designs that the given printed source can power.

    Feasibility is a *peak-power* property — the source must sustain the full
    operating draw while the circuit classifies — so duty cycling cannot make
    an infeasible design feasible.  The parameter is still validated and
    routed through :func:`assess_design` so every surface shares one
    feasibility definition.
    """
    assessments = assess_many(reports, battery, duty_cycle=duty_cycle)
    return [r for r, a in zip(reports, assessments) if a.feasible]


def battery_life_extension(
    proposed: ClassifierHardwareReport,
    baseline: ClassifierHardwareReport,
) -> float:
    """Factor by which battery life grows when replacing baseline with proposed.

    At a fixed classification rate the battery drains proportionally to the
    energy per classification, so the extension factor is the energy ratio.
    """
    if proposed.energy_mj <= 0:
        raise ValueError("proposed energy must be positive")
    return baseline.energy_mj / proposed.energy_mj


def best_battery_for(
    report: ClassifierHardwareReport,
    batteries: Sequence[PrintedBattery] = PRINTED_BATTERIES,
) -> Optional[PrintedBattery]:
    """Smallest (lowest max-power) printed source that can power the design."""
    feasible = [b for b in batteries if b.can_power(report.power_mw)]
    if not feasible:
        return None
    return min(feasible, key=lambda b: b.max_power_mw)
