"""Cross-design comparisons: energy improvements, accuracy gains, claims.

The paper's headline results are aggregates over Table I:

* average energy improvement of the proposed design over each baseline
  (10.6x vs [2], 5.4x vs [3], 3.46x vs [4], 6.5x overall);
* average accuracy gains (+2.02 / +3.13 / +4.38 percentage points);
* peak and average power of the proposed designs (22.9 / 13.58 mW) against
  the 30 mW printed-battery budget.

This module computes the same aggregates from any collection of
:class:`~repro.core.report.ClassifierHardwareReport` rows, so the benchmark
harness can compare measured aggregates with the published ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from repro.core.report import ClassifierHardwareReport


@dataclass
class ImprovementSummary:
    """Aggregate improvements of the proposed design over one baseline."""

    baseline: str
    datasets: List[str]
    energy_ratios: List[float]
    accuracy_deltas: List[float]
    proposed_energies: List[float] = None
    baseline_energies: List[float] = None

    @property
    def mean_energy_improvement(self) -> float:
        """Average of the per-dataset (baseline energy) / (proposed energy) ratios."""
        if not self.energy_ratios:
            raise ValueError(f"no shared datasets with baseline {self.baseline!r}")
        return float(np.mean(self.energy_ratios))

    @property
    def energy_improvement_of_averages(self) -> float:
        """Ratio of the *average* energies (the aggregation the paper reports).

        The paper's 10.6x / 5.4x / 3.46x figures are the baseline's mean
        energy over the shared datasets divided by the proposed design's mean
        energy — not the mean of per-dataset ratios (which, computed from the
        published Table I, would give 7.7x / 3.2x / 2.6x instead).
        """
        if not self.baseline_energies or not self.proposed_energies:
            raise ValueError(f"no shared datasets with baseline {self.baseline!r}")
        proposed_mean = float(np.mean(self.proposed_energies))
        if proposed_mean <= 0:
            raise ValueError("proposed energies must be positive")
        return float(np.mean(self.baseline_energies)) / proposed_mean

    @property
    def mean_accuracy_gain(self) -> float:
        """Average accuracy difference (proposed - baseline) in percentage points."""
        if not self.accuracy_deltas:
            raise ValueError(f"no shared datasets with baseline {self.baseline!r}")
        return float(np.mean(self.accuracy_deltas))


def _index_by_dataset(
    rows: Iterable[ClassifierHardwareReport],
) -> Dict[str, ClassifierHardwareReport]:
    indexed: Dict[str, ClassifierHardwareReport] = {}
    for row in rows:
        indexed[row.dataset] = row
    return indexed


def compare_against_baseline(
    proposed: Sequence[ClassifierHardwareReport],
    baseline: Sequence[ClassifierHardwareReport],
    baseline_name: Optional[str] = None,
) -> ImprovementSummary:
    """Per-dataset energy ratios and accuracy deltas of proposed vs baseline.

    Only datasets present in both collections contribute (the paper itself
    omits some baseline rows, e.g. Dermatology only has the SVM [2] baseline).
    """
    prop_idx = _index_by_dataset(proposed)
    base_idx = _index_by_dataset(baseline)
    shared = sorted(set(prop_idx) & set(base_idx))
    energy_ratios: List[float] = []
    accuracy_deltas: List[float] = []
    proposed_energies: List[float] = []
    baseline_energies: List[float] = []
    for dataset in shared:
        p, b = prop_idx[dataset], base_idx[dataset]
        if p.energy_mj <= 0:
            raise ValueError(f"proposed energy for {dataset} must be positive")
        energy_ratios.append(b.energy_mj / p.energy_mj)
        accuracy_deltas.append(p.accuracy_percent - b.accuracy_percent)
        proposed_energies.append(p.energy_mj)
        baseline_energies.append(b.energy_mj)
    name = baseline_name or (baseline[0].model if baseline else "baseline")
    return ImprovementSummary(
        baseline=name,
        datasets=shared,
        energy_ratios=energy_ratios,
        accuracy_deltas=accuracy_deltas,
        proposed_energies=proposed_energies,
        baseline_energies=baseline_energies,
    )


def overall_energy_improvement(
    summaries: Sequence[ImprovementSummary],
) -> float:
    """Average energy improvement across all baselines (the paper's 6.5x).

    The paper averages its three per-baseline figures (10.6, 5.4, 3.46),
    which were themselves computed as ratios of average energies; this
    function follows the same aggregation.
    """
    if not summaries:
        raise ValueError("no comparisons available")
    return float(
        np.mean([summary.energy_improvement_of_averages for summary in summaries])
    )


def power_statistics(proposed: Sequence[ClassifierHardwareReport]) -> Dict[str, float]:
    """Peak/average power and average energy of the proposed designs."""
    if not proposed:
        raise ValueError("no proposed designs given")
    powers = [row.power_mw for row in proposed]
    energies = [row.energy_mj for row in proposed]
    return {
        "peak_power_mw": float(np.max(powers)),
        "average_power_mw": float(np.mean(powers)),
        "average_energy_mj": float(np.mean(energies)),
    }


def battery_feasibility_count(
    rows: Sequence[ClassifierHardwareReport], budget_mw: float = 30.0
) -> int:
    """Number of designs whose power fits within a printed battery budget."""
    return sum(1 for row in rows if row.within_power_budget(budget_mw))


def claim_check(
    measured: Mapping[str, float], published: Mapping[str, float], tolerance: float = 0.5
) -> Dict[str, Dict[str, float]]:
    """Side-by-side record of measured vs published aggregate claims.

    ``tolerance`` is relative (0.5 = within 50 %); the result marks each claim
    as matching in *direction* and whether it falls inside the band.  Used by
    EXPERIMENTS.md generation, not as a hard test gate.
    """
    record: Dict[str, Dict[str, float]] = {}
    for key, published_value in published.items():
        if key not in measured:
            continue
        measured_value = measured[key]
        if published_value == 0:
            within = measured_value == 0
        else:
            within = abs(measured_value - published_value) <= tolerance * abs(published_value)
        record[key] = {
            "published": float(published_value),
            "measured": float(measured_value),
            "within_tolerance": float(bool(within)),
        }
    return record
