"""Command-line entry points.

Four commands, run from a checkout with ``PYTHONPATH=src`` (no
installation required; see ``docs/cli.md`` for the full flag reference):

* ``repro-table1`` — regenerate the paper's Table I (optionally a subset of
  datasets) and print measured-vs-published rows plus the aggregate claims.
* ``repro-flow`` — run the full design flow for one (dataset, model) pair and
  print the detailed report, optionally dumping the generated Verilog.
* ``repro-serve`` (also ``python -m repro.serve``) — load trained designs
  through the persistent flow cache and answer predict requests over an HTTP
  JSON endpoint with micro-batched inference (see ``docs/serving.md``).
* ``repro-jobs`` — the resumable flow-job service: submit a (dataset x
  model) grid into a durable manifest, drain it through pooled workers,
  inspect status, resume after a crash, and query the result store (see
  ``docs/jobs.md``).  Exit codes follow the shared contract: 0 ok, 1 the
  run had failed jobs, 2 bad input (one clear line on stderr).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.core.design_flow import FlowConfig, MODEL_KINDS, fast_config
from repro.core.flow_executor import CacheSpec, FlowResultCache, run_flow_cached
from repro.datasets import available_datasets
from repro.eval.reference import PAPER_CLAIMS
from repro.perf.engines import ENGINES
from repro.eval.reporting import breakdown_summary, markdown_claims
from repro.eval.table1 import (
    design_mac_netlist,
    format_table1,
    format_table1_optimization,
    generate_table1,
    table1_aggregates,
)


def _add_flow_arguments(parser: argparse.ArgumentParser) -> None:
    """Flags selecting the flow configuration (shared by every command)."""
    parser.add_argument(
        "--fast",
        action="store_true",
        help="use the reduced configuration (smaller datasets, fewer training iterations)",
    )
    parser.add_argument(
        "--samples",
        type=int,
        default=None,
        help="override the number of samples generated per dataset",
    )


def _add_cache_arguments(parser: argparse.ArgumentParser) -> None:
    """Flags selecting the persistent flow-result cache."""
    parser.add_argument(
        "--cache-dir",
        type=str,
        default=None,
        help="directory of the persistent flow-result cache "
        "(default: ~/.cache/repro or $REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent flow-result cache (always retrain)",
    )


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    _add_flow_arguments(parser)
    _add_cache_arguments(parser)
    parser.add_argument(
        "--opt-level",
        type=int,
        default=None,
        choices=(0, 1, 2),
        help="run the netlist optimization pass pipeline at this level over "
        "each design's hardwired constant-MAC datapath and report "
        "optimized-vs-raw gate counts (0 = raw, 1 = const-prop + dead-gate, "
        "2 = + buffer collapse and structural hashing)",
    )


def _build_config(args: argparse.Namespace) -> FlowConfig:
    config = fast_config() if args.fast else FlowConfig()
    if args.samples is not None:
        config = FlowConfig(**{**config.__dict__, "n_samples": args.samples})
    return config


def _build_cache(args: argparse.Namespace) -> CacheSpec:
    """The persistent-cache selection implied by the common CLI flags."""
    if args.no_cache:
        return False
    if args.cache_dir is not None:
        return FlowResultCache(args.cache_dir)
    return None


def _report_verification(table, attribute: str, label: str, claim: str) -> int:
    """Print one verification summary block; returns 1 on any mismatch."""
    checked = [e for e in table.entries if getattr(e, attribute) is not None]
    failed = [e for e in checked if not getattr(e, attribute)]
    print()
    print(
        f"{label}: {len(checked) - len(failed)}/{len(checked)} "
        f"proposed designs {claim}."
    )
    for entry in failed:
        print(f"  MISMATCH: {entry.dataset}")
    return 1 if failed else 0


def main_table1(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro-table1``."""
    parser = argparse.ArgumentParser(
        description="Regenerate Table I of the sequential printed SVM paper."
    )
    parser.add_argument(
        "--datasets",
        nargs="+",
        default=None,
        choices=available_datasets(),
        help="datasets to include (default: all five)",
    )
    parser.add_argument(
        "--verify-hardware",
        action="store_true",
        help="also check the cycle-accurate simulation of every proposed "
        "design against its integer model (bit-exact, vectorized)",
    )
    parser.add_argument(
        "--verify-sequential",
        action="store_true",
        help="also clock every proposed design's explicit gate-level netlist "
        "(counter + MUX storage + MAC + voter) over its test set on the "
        "bit-parallel sequential engine and check per-cycle bit-exact "
        "agreement with the behavioural oracle trace",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="shard flow runs across this many worker processes (0 = all cores)",
    )
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default="auto",
        help="bit-parallel execution engine for the gate-level verification "
        "sweeps: interp = one numpy dispatch per gate op, fused = one "
        "gather/op/scatter per (layer, opcode) group, codegen = one "
        "generated+compiled kernel per netlist structure, native = the same "
        "kernel compiled as C and called through ctypes (degrades to codegen "
        "with a warning when no C toolchain exists), auto = pick per "
        "program size (all bit-exact; speed only)",
    )
    _add_common_arguments(parser)
    args = parser.parse_args(argv)
    config = _build_config(args)

    exit_code = 0
    table = generate_table1(
        datasets=args.datasets,
        config=config,
        verify_hardware=args.verify_hardware,
        verify_sequential=args.verify_sequential,
        jobs=args.jobs,
        cache=_build_cache(args),
        opt_level=args.opt_level,
        engine=args.engine,
    )
    print(format_table1(table))
    optimization = format_table1_optimization(table)
    if optimization:
        print()
        print(optimization)
    if args.verify_hardware:
        exit_code |= _report_verification(
            table,
            "hardware_verified",
            "Hardware verification",
            "match their integer model bit-exactly",
        )
    if args.verify_sequential:
        exit_code |= _report_verification(
            table,
            "sequential_verified",
            "Sequential gate-level verification",
            "match the behavioural oracle cycle by cycle",
        )
    print()
    aggregates = table1_aggregates(table)
    print("Aggregate claims (measured vs paper):")
    print(markdown_claims(aggregates, PAPER_CLAIMS))
    return exit_code


def main_flow(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro-flow``."""
    parser = argparse.ArgumentParser(
        description="Run the design flow for one dataset and model kind."
    )
    parser.add_argument("dataset", choices=available_datasets())
    parser.add_argument("kind", choices=list(MODEL_KINDS))
    parser.add_argument(
        "--verilog",
        type=str,
        default=None,
        help="write the generated behavioural Verilog to this path (proposed design only)",
    )
    parser.add_argument(
        "--verify-hardware",
        action="store_true",
        help="run the cycle-accurate datapath simulation over the test set "
        "and check bit-exact agreement with the integer model "
        "(proposed design only)",
    )
    _add_common_arguments(parser)
    args = parser.parse_args(argv)
    config = _build_config(args)

    result = run_flow_cached(args.dataset, args.kind, config, cache=_build_cache(args))
    print(result.report)
    print(breakdown_summary(result.report))
    print(f"float accuracy      : {result.float_accuracy_percent:.2f} %")
    print(f"weight bits used    : {result.weight_bits_used}")

    if args.opt_level is not None:
        from repro.hw.opt import optimize

        netlist = design_mac_netlist(result.design)
        if netlist is None:
            print("netlist optimization: no hardwired linear datapath for this model kind")
        else:
            stats = optimize(netlist, level=args.opt_level).stats
            print(
                f"netlist optimization: {stats.gates_before} gates raw -> "
                f"{stats.gates_after} optimized "
                f"({stats.reduction_percent:.1f}% removed at level {stats.level})"
            )

    if args.verify_hardware:
        design = result.design
        if not hasattr(design, "verify_against_model"):
            print("Hardware verification is only available for the proposed sequential design.")
            return 1
        ok = design.verify_against_model(result.split.X_test)
        n_test = result.split.X_test.shape[0]
        print(
            f"hardware verification: "
            f"{'bit-exact match' if ok else 'MISMATCH'} on {n_test} test samples"
        )
        if not ok:
            return 1

    if args.verilog is not None:
        design = result.design
        if not hasattr(design, "to_verilog"):
            print("Verilog export is only available for the proposed sequential design.")
            return 1
        with open(args.verilog, "w", encoding="utf-8") as handle:
            handle.write(design.to_verilog())
        print(f"Verilog written to {args.verilog}")
    return 0


def main_serve(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro-serve`` (also ``python -m repro.serve``).

    Loads every requested model through the persistent flow cache (training
    only the ones never seen before), then serves the HTTP JSON endpoint
    until interrupted.  Routes: ``POST /predict``, ``GET /stats``,
    ``GET /models``, ``GET /healthz`` — see ``docs/serving.md``.
    """
    parser = argparse.ArgumentParser(
        description="Serve trained designs over an HTTP JSON endpoint with "
        "micro-batched inference."
    )
    parser.add_argument(
        "--models",
        nargs="+",
        default=["redwine/ours"],
        help="models to preload and serve, each '<dataset>/<kind>' "
        "(other models load lazily on first request)",
    )
    parser.add_argument(
        "--host",
        type=str,
        default="127.0.0.1",
        help="interface the HTTP endpoint binds (default: loopback only)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8000,
        help="TCP port of the HTTP endpoint (0 = pick an ephemeral port)",
    )
    parser.add_argument(
        "--max-batch-size",
        type=int,
        default=256,
        help="micro-batch ceiling: concurrent requests coalesce into "
        "vectorized batches of at most this many samples",
    )
    parser.add_argument(
        "--max-latency-ms",
        type=float,
        default=2.0,
        help="how long a partial micro-batch waits for stragglers before "
        "flushing (0 = flush as soon as the queue drains)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="shard cold preload training across this many worker processes "
        "(0 = all cores)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="serving worker processes: 0 serves every model lane in this "
        "process (the bit-exact single-process path), N >= 1 hosts the "
        "lanes in N child processes behind the frontend router",
    )
    parser.add_argument(
        "--lanes-per-worker",
        type=int,
        default=None,
        help="soft cap on model lanes per worker: new models route to the "
        "least-loaded worker under the cap (default: no cap, least-loaded "
        "always)",
    )
    _add_common_arguments(parser)
    args = parser.parse_args(argv)
    config = _build_config(args)

    from repro.serve import ModelRegistry, ModelServer, build_http_server
    from repro.serve.registry import parse_model_name

    try:
        for name in args.models:
            parse_model_name(name)
    except ValueError as error:
        parser.error(str(error))

    if args.workers < 0:
        parser.error("--workers must be >= 0")

    registry = ModelRegistry(
        config=config,
        cache=_build_cache(args),
        jobs=args.jobs,
        opt_level=args.opt_level,
    )
    if args.workers == 0:
        # Train/load up front in this process; the lanes live here too.
        print(f"loading {len(args.models)} model(s): {', '.join(args.models)}")
        registry.preload(args.models)
    server = ModelServer(
        registry,
        max_batch_size=args.max_batch_size,
        max_latency_ms=args.max_latency_ms,
        workers=args.workers,
        lanes_per_worker=args.lanes_per_worker,
    )
    if args.workers:
        # Fleet mode: each model trains/loads inside its assigned worker
        # (frontend preloading would only warm a process the lanes never
        # run in); /healthz reports ready once every worker heartbeats.
        print(
            f"opening {len(args.models)} model lane(s) across "
            f"{args.workers} worker(s): {', '.join(args.models)}"
        )
    for name in args.models:
        server.open_lane(name)  # open a serving lane per requested model

    httpd = build_http_server(server, host=args.host, port=args.port)
    host, port = httpd.server_address[:2]
    workers_note = f", workers={args.workers}" if args.workers else ""
    print(
        f"serving on http://{host}:{port} "
        f"(max_batch_size={args.max_batch_size}, "
        f"max_latency_ms={args.max_latency_ms:g}{workers_note})"
    )
    try:
        httpd.serve_forever()
    except KeyboardInterrupt:
        print("shutting down (draining in-flight requests)")
    finally:
        httpd.server_close()
        server.shutdown(drain=True)
    return 0


# --------------------------------------------------------------------------- #
# repro-jobs
# --------------------------------------------------------------------------- #
def _add_jobs_dir(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dir",
        type=str,
        default="jobs-run",
        help="run directory holding the job manifest (manifest.jsonl) and "
        "the result store (results.jsonl)",
    )


def _add_scheduler_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="flow-worker pool size (one forked worker process per slot)",
    )
    parser.add_argument(
        "--job-timeout",
        type=float,
        default=600.0,
        help="per-job deadline in seconds; a job exceeding it is treated "
        "like a worker crash (the worker is killed and the job retried)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="crash/timeout retries per job beyond the first attempt "
        "(worker-reported failures are permanent and never retried)",
    )


def _jobs_paths(args: argparse.Namespace):
    run_dir = Path(args.dir)
    return run_dir / "manifest.jsonl", run_dir / "results.jsonl"


def _jobs_progress(event: str, record) -> None:
    spec = record.spec
    print(f"[{event}] {spec.dataset}/{spec.kind} ({spec.job_id})")


def _jobs_drain(args: argparse.Namespace, tool: str) -> int:
    """Open the durable pair and drain the pending set; shared exit codes."""
    from repro.core.benchcompare import bad_input_exit
    from repro.jobs import ManifestError, StoreError, run_jobs

    manifest_path, store_path = _jobs_paths(args)
    if not manifest_path.is_file():
        return bad_input_exit(
            tool, FileNotFoundError(f"no job manifest at {manifest_path}")
        )
    try:
        summary = run_jobs(
            manifest_path,
            store_path,
            cache=_build_cache(args),
            workers=args.workers,
            job_timeout_s=args.job_timeout,
            max_retries=args.max_retries,
            progress=_jobs_progress,
        )
    except (ManifestError, StoreError) as error:
        return bad_input_exit(tool, error)
    counts = summary.manifest_counts
    print(
        f"drained: {summary.completed} done this run "
        f"({summary.cache_hits} from cache, {summary.trained} trained), "
        f"{summary.retries} retries, {summary.workers_replaced} workers "
        f"replaced; manifest now {counts.get('done', 0)} done / "
        f"{counts.get('failed', 0)} failed"
    )
    return 1 if summary.failed else 0


def _jobs_submit(args: argparse.Namespace) -> int:
    from repro.core.benchcompare import bad_input_exit
    from repro.jobs import JobManifest, ManifestError, submit_grid

    manifest_path, _ = _jobs_paths(args)
    manifest_path.parent.mkdir(parents=True, exist_ok=True)
    datasets = args.datasets or available_datasets()
    try:
        with JobManifest(manifest_path) as manifest:
            ids = submit_grid(manifest, datasets, args.kinds, _build_config(args))
    except ManifestError as error:
        return bad_input_exit("repro-jobs submit", error)
    print(
        f"submitted {len(ids)} job(s) "
        f"({len(datasets)} dataset(s) x {len(args.kinds)} kind(s)) "
        f"into {manifest_path}"
    )
    if args.no_run:
        return 0
    return _jobs_drain(args, "repro-jobs submit")


def _jobs_status(args: argparse.Namespace) -> int:
    from repro.core.benchcompare import bad_input_exit
    from repro.jobs import ManifestError, replay_journal

    manifest_path, store_path = _jobs_paths(args)
    if not manifest_path.is_file():
        return bad_input_exit(
            "repro-jobs status",
            FileNotFoundError(f"no job manifest at {manifest_path}"),
        )
    try:
        state = replay_journal(manifest_path.read_text())
    except ManifestError as error:
        return bad_input_exit("repro-jobs status", error)
    counts = state.counts()
    print(
        f"{manifest_path}: {len(state.jobs)} job(s) — "
        + ", ".join(f"{counts[s]} {s}" for s in counts)
        + (" (torn final journal line discarded)" if state.discarded_torn_tail else "")
    )
    for record in state.jobs.values():
        spec = record.spec
        extra = ""
        if record.source is not None:
            extra = f" [{record.source}]"
        elif record.error:
            extra = f" [{record.error}]"
        print(
            f"  {record.state:8s} {spec.dataset}/{spec.kind} "
            f"({spec.job_id}, attempts={record.attempts}){extra}"
        )
    if store_path.is_file():
        print(f"result store: {store_path}")
    return 0


def _jobs_query(args: argparse.Namespace) -> int:
    import json as _json

    from repro.core.benchcompare import bad_input_exit
    from repro.jobs import ResultStore, StoreError

    _, store_path = _jobs_paths(args)
    if not store_path.is_file():
        return bad_input_exit(
            "repro-jobs query",
            FileNotFoundError(f"no result store at {store_path}"),
        )
    try:
        store = ResultStore(store_path)
    except StoreError as error:
        return bad_input_exit("repro-jobs query", error)
    records = store.query(
        dataset=args.dataset,
        kind=args.kind,
        min_accuracy_percent=args.min_accuracy,
    )
    if args.table:
        from repro.eval.table1 import format_table1, table1_from_store

        class _Filtered:
            def records(self_inner):
                return records

        print(format_table1(table1_from_store(_Filtered())))
    elif args.pareto:
        from repro.eval.pareto import pareto_front, tradeoff_points_from_rows

        points = tradeoff_points_from_rows([r["row"] for r in records])
        front = {p.label for p in pareto_front(points)}
        for point in points:
            marker = "*" if point.label in front else " "
            print(
                f" {marker} {point.label:28s} acc {point.maximise_value:6.2f}% "
                f"energy {point.minimise_value:8.3f} mJ"
            )
    else:
        for record in records:
            print(_json.dumps(record, sort_keys=True))
    return 0


def main_jobs(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro-jobs`` (``submit``/``status``/``resume``/``query``).

    The CLI face of :mod:`repro.jobs`: grids are journaled into a durable
    manifest, drained through pooled flow workers, and the results land in
    a queryable store — all of it resumable after a crash with
    ``repro-jobs resume``.
    """
    parser = argparse.ArgumentParser(
        prog="repro-jobs",
        description="Resumable distributed flow-job service: submit grids, "
        "drain them through pooled workers, resume after crashes, query "
        "results.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    submit = sub.add_parser(
        "submit", help="journal a (dataset x kind) grid and drain it"
    )
    _add_jobs_dir(submit)
    submit.add_argument(
        "--datasets",
        nargs="+",
        default=None,
        choices=available_datasets(),
        help="datasets of the grid (default: all)",
    )
    submit.add_argument(
        "--kinds",
        nargs="+",
        default=["ours"],
        choices=list(MODEL_KINDS),
        help="model kinds of the grid (default: ours)",
    )
    _add_flow_arguments(submit)
    _add_cache_arguments(submit)
    _add_scheduler_arguments(submit)
    submit.add_argument(
        "--no-run",
        action="store_true",
        help="journal the submissions only; drain later with 'resume'",
    )

    status = sub.add_parser("status", help="replay the manifest and print per-job state")
    _add_jobs_dir(status)

    resume = sub.add_parser(
        "resume", help="drain the pending set left by a previous (crashed) run"
    )
    _add_jobs_dir(resume)
    _add_cache_arguments(resume)
    _add_scheduler_arguments(resume)

    query = sub.add_parser("query", help="query the result store")
    _add_jobs_dir(query)
    query.add_argument(
        "--dataset", type=str, default=None, help="filter results to one dataset"
    )
    query.add_argument(
        "--kind", type=str, default=None, help="filter results to one model kind"
    )
    query.add_argument(
        "--min-accuracy",
        type=float,
        default=None,
        help="only results with at least this accuracy (percent)",
    )
    query.add_argument(
        "--table",
        action="store_true",
        help="render the matching results in the Table I column layout",
    )
    query.add_argument(
        "--pareto",
        action="store_true",
        help="print the accuracy/energy points, marking the Pareto front with *",
    )

    args = parser.parse_args(argv)
    if args.command == "submit":
        return _jobs_submit(args)
    if args.command == "status":
        return _jobs_status(args)
    if args.command == "resume":
        return _jobs_drain(args, "repro-jobs resume")
    return _jobs_query(args)


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    sys.exit(main_table1())
