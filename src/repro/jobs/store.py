"""The queryable result store the job service lands flow results in.

An append-only ``results.jsonl`` file — one canonical JSON object per
completed job — plus an in-memory index for querying.  Two properties make
it the system of record Table I, the Pareto fronts and the served
``/models`` metadata can read from:

* **Determinism.**  A record carries only content derived from the flow
  result (the Table I row, the float accuracy, the precision used) and the
  job's content key — no timestamps, no attempt counts, no provenance.
  Training is seeded, so two runs of the same job produce byte-identical
  records, and :meth:`ResultStore.compact` rewrites the file with records
  de-duplicated and sorted by job id — after which an interrupted-and-
  resumed grid is *bit-identical* on disk to an uninterrupted one (the
  crash-resume test in ``tests/jobs/`` asserts exactly this).
* **Crash tolerance.**  Like the manifest journal, appends are one flushed
  line each; a torn final line is discarded on load, not fatal.

Example::

    store = ResultStore(tmp_path / "results.jsonl")
    store.append(result_record("a1b2", flow_result))
    store.query(dataset="redwine", kind="ours")[0]["row"]["energy_mj"]
    store.compact()                      # canonical on-disk ordering
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.design_flow import FlowResult


class StoreError(ValueError):
    """The results file is corrupt beyond a crash-truncate (non-final line)."""


def result_record(job_id: str, result: FlowResult) -> Dict:
    """The canonical store record for one completed flow job.

    Deliberately *content only* — everything here is a pure function of the
    (seeded) flow result, so records are byte-stable across runs, resumes
    and machines with the same code.

    Example::

        record = result_record(spec.job_id, run_flow("redwine", "ours", cfg))
        record["row"]["accuracy_percent"]
    """
    return {
        "id": job_id,
        "dataset": result.dataset,
        "kind": result.kind,
        "row": result.report.as_row(),
        "float_accuracy_percent": float(result.float_accuracy_percent),
        "weight_bits_used": int(result.weight_bits_used),
        "cycles_per_classification": int(result.report.cycles_per_classification),
    }


def _canonical_line(record: Dict) -> str:
    """One record as its canonical JSON line (sorted keys, no whitespace)."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


class ResultStore:
    """Append-only results file + in-memory index with ``query()``.

    Thread-safe: scheduler worker threads append concurrently; duplicate
    appends of the same job id (a resume replaying a crash window) collapse
    on load and on compaction because records are content-keyed and
    deterministic.

    Example::

        store = ResultStore(tmp_path / "results.jsonl")
        store.append(result_record(job_id, result))
        len(store)                               # 1
        store.query(kind="ours")                 # [record]
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._handle = None
        self._records: Dict[str, Dict] = {}
        if self.path.is_file():
            for record in self._load_lines(self.path.read_text()):
                self._records.setdefault(record["id"], record)

    @staticmethod
    def _load_lines(text: str) -> List[Dict]:
        lines = text.split("\n")
        complete, tail = lines[:-1], lines[-1]
        records: List[Dict] = []
        for index, line in enumerate(complete):
            if not line.strip():
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as error:
                raise StoreError(
                    f"results line {index + 1} is not valid JSON "
                    f"(not the final line, so not a crash-truncate): {error}"
                )
            if not isinstance(doc, dict) or "id" not in doc:
                raise StoreError(f"results line {index + 1} is not a record")
            records.append(doc)
        # A non-empty tail is the torn final write of a killed process:
        # discarded, exactly like the manifest journal's.
        del tail
        return records

    # ------------------------------------------------------------------ #
    def append(self, record: Dict) -> None:
        """Append one record (one flushed line); repeat ids are idempotent."""
        if "id" not in record:
            raise ValueError("a result record needs an 'id' field")
        with self._lock:
            if record["id"] in self._records:
                return
            if self._handle is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = self.path.open("a", encoding="utf-8")
            self._handle.write(_canonical_line(record) + "\n")
            self._handle.flush()
            self._records[record["id"]] = record

    def close(self) -> None:
        """Close the file handle (reopened lazily by the next append)."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __contains__(self, job_id: str) -> bool:
        with self._lock:
            return job_id in self._records

    def get(self, job_id: str) -> Optional[Dict]:
        """The record for one job id, or ``None``."""
        with self._lock:
            return self._records.get(job_id)

    # ------------------------------------------------------------------ #
    def records(self) -> List[Dict]:
        """All records, sorted by job id (the canonical order)."""
        with self._lock:
            return [self._records[k] for k in sorted(self._records)]

    def query(
        self,
        dataset: Optional[str] = None,
        kind: Optional[str] = None,
        weight_bits_used: Optional[int] = None,
        min_accuracy_percent: Optional[float] = None,
    ) -> List[Dict]:
        """Records matching every given filter, in canonical (id) order.

        The query surface Table I regeneration, the Pareto helpers and the
        ``repro-jobs query`` CLI consume.

        Example::

            store.query(dataset="redwine", kind="ours")
            store.query(min_accuracy_percent=80.0)
        """
        out = []
        for record in self.records():
            if dataset is not None and record.get("dataset") != dataset:
                continue
            if kind is not None and record.get("kind") != kind:
                continue
            if (
                weight_bits_used is not None
                and record.get("weight_bits_used") != weight_bits_used
            ):
                continue
            if (
                min_accuracy_percent is not None
                and record.get("row", {}).get("accuracy_percent", 0.0)
                < min_accuracy_percent
            ):
                continue
            out.append(record)
        return out

    # ------------------------------------------------------------------ #
    def canonical_bytes(self) -> bytes:
        """The compacted file content: records de-duplicated, id-sorted.

        Two stores holding the same result set return identical bytes
        regardless of arrival order — the bit-identity the crash-resume
        test asserts.
        """
        lines = [_canonical_line(r) for r in self.records()]
        return ("".join(line + "\n" for line in lines)).encode("utf-8")

    def compact(self) -> Path:
        """Atomically rewrite the file in canonical order; returns the path."""
        payload = self.canonical_bytes()
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=str(self.path.parent), suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(payload)
                os.replace(tmp_name, self.path)
            except BaseException:
                if os.path.exists(tmp_name):
                    os.unlink(tmp_name)
                raise
        return self.path
