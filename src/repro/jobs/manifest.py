"""The job manifest: an append-only JSON-lines journal of flow jobs.

The job service (:mod:`repro.jobs.scheduler`) must survive being killed at
any instant — mid-grid, mid-dispatch, even mid-write — and resume with
exactly the work that was still outstanding.  The mechanism is the same one
databases use: a *journal*.  Every job submission and every state
transition is one JSON object appended as one line to ``manifest.jsonl``;
the current state of the world is never stored, only derived by replaying
the journal from the top.

Jobs are **content-keyed**: a job's identity is a digest of
:meth:`repro.core.design_flow.FlowConfig.cache_key` — the same identity the
persistent flow cache is keyed by (minus the code fingerprint, which the
cache layer adds itself).  Submitting the same (dataset, kind, config)
twice is therefore a no-op, a restarted scheduler resumes exactly the
pending set, and a job whose result the flow cache already holds completes
without retraining.

Journal records (one JSON object per line)::

    {"event": "submit", "id": <job_id>, "job": {"dataset": ..., "kind": ...,
                                                "config": {...}}}
    {"event": "start",  "id": <job_id>, "attempt": N}
    {"event": "retry",  "id": <job_id>, "attempt": N, "error": "..."}
    {"event": "done",   "id": <job_id>, "source": "trained" | "cache"}
    {"event": "failed", "id": <job_id>, "error": "..."}

Crash semantics on replay:

* a **torn final line** (no trailing newline, or not valid JSON) is the
  write the dying process never finished — it is discarded, not fatal;
* a malformed line *before* the final one means the file was corrupted by
  something other than a crash-truncate and raises :class:`ManifestError`;
* a job left in ``running`` state (a ``start`` with no matching ``done`` /
  ``failed`` / ``retry``) was in flight when the scheduler died — replay
  normalises it back to ``pending`` so resume re-dispatches it.

Example::

    manifest = JobManifest(tmp_path / "manifest.jsonl")
    job_id = manifest.submit(JobSpec("redwine", "ours", fast_config()))
    manifest.state.jobs[job_id].state        # 'pending'
    reloaded = JobManifest(manifest.path)    # replays the journal
    reloaded.pending_ids() == [job_id]       # True
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.design_flow import MODEL_KINDS, FlowConfig

#: Job states derivable from the journal.
PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

JOB_STATES = (PENDING, RUNNING, DONE, FAILED)


class ManifestError(ValueError):
    """The journal is corrupt beyond what a crash-truncate can explain.

    Example::

        try:
            manifest = JobManifest(path)
        except ManifestError:
            ...  # a *non-final* line is malformed: refuse to guess
    """


def job_content_key(dataset: str, kind: str, config: FlowConfig) -> str:
    """Content digest identifying one (dataset, kind, config) job.

    The same identity the persistent flow cache derives its entry digests
    from (:func:`repro.core.flow_executor._entry_digest` additionally mixes
    in the code fingerprint; the job's identity deliberately does not, so a
    package edit re-opens the cache misses without orphaning the manifest).

    Example::

        >>> len(job_content_key("redwine", "ours", FlowConfig()))
        16
    """
    payload = repr(config.cache_key(dataset, kind))
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class JobSpec:
    """One flow job: a (dataset, kind, config) triple.

    Example::

        spec = JobSpec("redwine", "ours", fast_config())
        spec.job_id                          # 16-hex content key
    """

    dataset: str
    kind: str
    config: FlowConfig

    @property
    def job_id(self) -> str:
        return job_content_key(self.dataset, self.kind, self.config)

    def to_json(self) -> Dict:
        """JSON-safe representation (inverse of :meth:`from_json`)."""
        return {
            "dataset": self.dataset,
            "kind": self.kind,
            "config": dataclasses.asdict(self.config),
        }

    @classmethod
    def from_json(cls, doc: Dict) -> "JobSpec":
        """Rebuild a spec from its journal representation."""
        return cls(
            dataset=str(doc["dataset"]),
            kind=str(doc["kind"]),
            config=FlowConfig(**doc["config"]),
        )


@dataclass
class JobRecord:
    """The replayed state of one job."""

    spec: JobSpec
    state: str = PENDING
    attempts: int = 0
    error: Optional[str] = None
    #: ``"trained"`` or ``"cache"`` once done.
    source: Optional[str] = None

    @property
    def job_id(self) -> str:
        return self.spec.job_id


@dataclass
class ManifestState:
    """All jobs derived from one journal replay, in submission order."""

    jobs: "Dict[str, JobRecord]" = field(default_factory=dict)
    #: Journal lines replayed (complete lines only; the torn tail excluded).
    replayed_lines: int = 0
    #: Whether the final line was torn (discarded during replay).
    discarded_torn_tail: bool = False

    def by_state(self, state: str) -> List[JobRecord]:
        return [r for r in self.jobs.values() if r.state == state]

    def counts(self) -> Dict[str, int]:
        counts = {state: 0 for state in JOB_STATES}
        for record in self.jobs.values():
            counts[record.state] += 1
        return counts


def _replay_line(state: ManifestState, doc: Dict) -> None:
    """Apply one journal record to a replayed state."""
    event = doc.get("event")
    job_id = doc.get("id")
    if not isinstance(job_id, str) or not job_id:
        raise ManifestError(f"journal record without a job id: {doc!r}")
    if event == "submit":
        if job_id in state.jobs:
            return  # duplicate submit: content-keyed, so a no-op
        try:
            spec = JobSpec.from_json(doc["job"])
        except (KeyError, TypeError, ValueError) as error:
            raise ManifestError(f"unreadable job spec in {doc!r}: {error}")
        if spec.kind not in MODEL_KINDS:
            raise ManifestError(f"journal submits unknown model kind {spec.kind!r}")
        if spec.job_id != job_id:
            raise ManifestError(
                f"journal id {job_id} does not match its spec's content key "
                f"{spec.job_id} (edited journal?)"
            )
        state.jobs[job_id] = JobRecord(spec=spec)
        return
    record = state.jobs.get(job_id)
    if record is None:
        raise ManifestError(
            f"journal {event!r} for job {job_id} before its submit record"
        )
    if event == "start":
        record.state = RUNNING
        record.attempts = int(doc.get("attempt", record.attempts + 1))
    elif event == "retry":
        record.state = PENDING
        record.attempts = int(doc.get("attempt", record.attempts))
        record.error = str(doc.get("error", ""))
    elif event == "done":
        record.state = DONE
        record.error = None
        record.source = str(doc.get("source", "trained"))
    elif event == "failed":
        record.state = FAILED
        record.error = str(doc.get("error", ""))
    # Unknown events are skipped (forward compatibility), not fatal.


def replay_journal(text: str) -> ManifestState:
    """Replay journal text into a :class:`ManifestState`.

    A torn final line (crash mid-write) is discarded; any other malformed
    line raises :class:`ManifestError`.

    Example::

        state = replay_journal(path.read_text())
        [r.spec.dataset for r in state.by_state("pending")]
    """
    state = ManifestState()
    # splitlines() would hide whether the final line was newline-terminated,
    # which is exactly the torn-write signal — split manually instead.
    lines = text.split("\n")
    complete, tail = lines[:-1], lines[-1]
    if tail:
        state.discarded_torn_tail = True  # no trailing newline: torn write
    for index, line in enumerate(complete):
        if not line.strip():
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as error:
            raise ManifestError(
                f"journal line {index + 1} is not valid JSON "
                f"(not the final line, so not a crash-truncate): {error}"
            )
        if not isinstance(doc, dict):
            raise ManifestError(f"journal line {index + 1} is not an object")
        _replay_line(state, doc)
        state.replayed_lines += 1
    return state


class JobManifest:
    """The append-only journal plus its replayed in-memory state.

    Thread-safe: scheduler worker threads append transitions concurrently.
    Every append is written as one line and flushed immediately, so a
    SIGKILL can only ever lose (or tear) the very last record — which is
    exactly what :func:`replay_journal` tolerates.

    Example::

        manifest = JobManifest(tmp_path / "manifest.jsonl")
        job_id = manifest.submit(JobSpec("redwine", "ours", fast_config()))
        manifest.start(job_id, attempt=1)
        manifest.done(job_id, source="trained")
        JobManifest(manifest.path).state.counts()["done"]    # 1
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._handle = None
        if self.path.is_file():
            self.state = replay_journal(self.path.read_text())
        else:
            self.state = ManifestState()

    # ------------------------------------------------------------------ #
    def _write_line(self, text: str) -> None:
        """The single journal write choke point (one line + flush).

        Chaos tests monkeypatch this to simulate dying mid-write; the
        contract every caller relies on is line-at-a-time durability.
        """
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")
        self._handle.write(text + "\n")
        self._handle.flush()

    def _append(self, doc: Dict) -> None:
        with self._lock:
            self._write_line(json.dumps(doc, sort_keys=True))
            _replay_line(self.state, doc)

    def close(self) -> None:
        """Close the journal handle (reopened lazily by the next append)."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "JobManifest":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    def submit(self, spec: JobSpec) -> str:
        """Journal one job submission; duplicate submissions are no-ops.

        Returns the job's content key either way.
        """
        job_id = spec.job_id
        with self._lock:
            known = job_id in self.state.jobs
        if not known:
            self._append({"event": "submit", "id": job_id, "job": spec.to_json()})
        return job_id

    def start(self, job_id: str, attempt: int) -> None:
        """Journal a dispatch (attempt numbers start at 1)."""
        self._append({"event": "start", "id": job_id, "attempt": int(attempt)})

    def retry(self, job_id: str, attempt: int, error: str) -> None:
        """Journal a crashed/timed-out attempt going back to pending."""
        self._append(
            {"event": "retry", "id": job_id, "attempt": int(attempt), "error": error}
        )

    def done(self, job_id: str, source: str) -> None:
        """Journal successful completion (``source``: ``trained``/``cache``)."""
        self._append({"event": "done", "id": job_id, "source": source})

    def failed(self, job_id: str, error: str) -> None:
        """Journal permanent failure (bad spec or retry budget exhausted)."""
        self._append({"event": "failed", "id": job_id, "error": error})

    # ------------------------------------------------------------------ #
    def reload(self) -> ManifestState:
        """Re-replay the journal from disk (crashed ``running`` -> pending).

        The resume entry point: jobs another process left mid-flight come
        back as pending, everything done stays done.
        """
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            if self.path.is_file():
                self.state = replay_journal(self.path.read_text())
            else:
                self.state = ManifestState()
            for record in self.state.jobs.values():
                if record.state == RUNNING:
                    record.state = PENDING
            return self.state

    def pending_ids(self) -> List[str]:
        """Ids of jobs still owed work (pending or orphaned mid-run)."""
        with self._lock:
            return [
                job_id
                for job_id, record in self.state.jobs.items()
                if record.state in (PENDING, RUNNING)
            ]

    def counts(self) -> Dict[str, int]:
        """Jobs per state (``pending``/``running``/``done``/``failed``)."""
        with self._lock:
            return self.state.counts()
