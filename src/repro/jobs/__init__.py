"""The resumable flow-job service: manifest journal, scheduler, store.

The "beaker-shaped" layer on top of the flow executor (ROADMAP item 3):
grids of (dataset, kind, config) flow jobs are journaled into an
append-only manifest, dispatched to pooled forked workers over the serve
frame transport, and landed in a queryable result store that Table I, the
Pareto fronts and the served ``/models`` metadata read from.  Every piece
is built to survive SIGKILL at any instant; ``tests/jobs/`` proves it with
seeded fault injection.

Example::

    from repro.jobs import JobManifest, JobScheduler, ResultStore, submit_grid

    manifest = JobManifest(run_dir / "manifest.jsonl")
    submit_grid(manifest, ["redwine", "cardio"], ["ours"], fast_config())
    store = ResultStore(run_dir / "results.jsonl")
    JobScheduler(manifest, store, workers=2).run()
    store.query(dataset="redwine")
"""

from repro.jobs.manifest import (
    DONE,
    FAILED,
    JOB_STATES,
    PENDING,
    RUNNING,
    JobManifest,
    JobRecord,
    JobSpec,
    ManifestError,
    ManifestState,
    job_content_key,
    replay_journal,
)
from repro.jobs.scheduler import (
    JobScheduler,
    SchedulerSummary,
    run_jobs,
    submit_grid,
)
from repro.jobs.store import ResultStore, StoreError, result_record
from repro.jobs.worker import (
    SOURCE_CACHE,
    SOURCE_TRAINED,
    FlowWorker,
    JobRejected,
    flow_worker_main,
)

__all__ = [
    "DONE",
    "FAILED",
    "JOB_STATES",
    "PENDING",
    "RUNNING",
    "JobManifest",
    "JobRecord",
    "JobScheduler",
    "JobSpec",
    "ManifestError",
    "ManifestState",
    "ResultStore",
    "SchedulerSummary",
    "StoreError",
    "SOURCE_CACHE",
    "SOURCE_TRAINED",
    "FlowWorker",
    "JobRejected",
    "flow_worker_main",
    "job_content_key",
    "replay_journal",
    "result_record",
    "run_jobs",
    "submit_grid",
]
