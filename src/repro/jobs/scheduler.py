"""The resumable job scheduler: manifest in, pooled workers, store out.

:class:`JobScheduler` drains the pending set of a :class:`~repro.jobs.
manifest.JobManifest` by dispatching jobs to a pool of forked flow workers
(:class:`~repro.jobs.worker.FlowWorker`) over the frame transport, landing
every result in a :class:`~repro.jobs.store.ResultStore` and journaling
every transition back into the manifest.  It is built to be killed: at any
instant — including by SIGKILL, including mid-journal-write — the on-disk
manifest + store + flow cache contain everything a fresh scheduler needs to
resume exactly the outstanding work.

The invariants that make resume exact:

* **Cache fast-path first.**  Before spawning anything, jobs whose result
  the flow cache (in-process or on-disk) already holds are completed
  in-parent with ``source="cache"`` — a restarted scheduler never retrains
  what a previous run (or any other tool sharing the cache) already paid
  for.  A store record with no matching ``done`` journal line (the crash
  window between the two appends) is likewise recognised and closed out.
* **Durability ordering.**  On success the scheduler persists the flow
  cache entry, appends the store record, *then* journals ``done``.  A crash
  between any two steps leaves clues that resume re-derives — never a
  ``done`` job whose result is missing.
* **Retry vs reject.**  Crash-ish failures (worker SIGKILL, torn frame,
  per-job timeout, delayed heartbeat) kill the worker and retry the job —
  bounded by ``max_retries``, with exponentially backed-off, capped sleeps.
  Worker-*reported* failures (bad spec, deterministic training error) are
  permanent: the job is journaled ``failed`` on the first attempt.

Chaos seams (used by ``tests/jobs/``): ``connection_wrapper`` wraps each
fresh worker connection (fault injection lives outside the scheduler), and
``progress`` observes every completion (the crash-resume test uses it to
SIGKILL the scheduler at a deterministic point).

Example::

    manifest = JobManifest(run_dir / "manifest.jsonl")
    submit_grid(manifest, ["redwine", "cardio"], ["ours"], fast_config())
    store = ResultStore(run_dir / "results.jsonl")
    summary = JobScheduler(manifest, store, cache=cache, workers=2).run()
    summary.completed, summary.cache_hits
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Iterable, List, Optional, Sequence

from repro.core.design_flow import FlowConfig, cached_flow_result
from repro.core.flow_executor import CacheSpec, resolve_cache
from repro.jobs.manifest import JobManifest, JobRecord, JobSpec
from repro.jobs.store import ResultStore, result_record
from repro.jobs.worker import (
    SOURCE_CACHE,
    SOURCE_TRAINED,
    ConnectionWrapper,
    FlowWorker,
    JobRejected,
)
from repro.serve.transport import WorkerCrashed

#: Completion events handed to the ``progress`` callback.
EVENT_DONE = "done"
EVENT_FAILED = "failed"

ProgressCallback = Callable[[str, JobRecord], None]


def submit_grid(
    manifest: JobManifest,
    datasets: Sequence[str],
    kinds: Sequence[str],
    config: Optional[FlowConfig] = None,
) -> List[str]:
    """Submit the (dataset x kind) grid; returns the job ids in grid order.

    Submission is content-keyed and journaled, so resubmitting the same
    grid — e.g. by re-running ``repro-jobs submit`` after a crash — is a
    no-op for every job already known.

    Example::

        ids = submit_grid(manifest, ["redwine", "cardio"], ["ours", "mlp"])
        len(ids)        # 4
    """
    config = config or FlowConfig()
    return [
        manifest.submit(JobSpec(dataset, kind, config))
        for dataset in datasets
        for kind in kinds
    ]


@dataclass
class SchedulerSummary:
    """What one :meth:`JobScheduler.run` drain accomplished.

    Example::

        summary = scheduler.run()
        assert summary.failed == 0 and summary.trained <= summary.completed
    """

    #: Jobs that reached ``done`` this run (cache fast-path included).
    completed: int = 0
    #: ``done`` jobs whose result came from the flow cache (or store replay).
    cache_hits: int = 0
    #: ``done`` jobs a worker actually trained.
    trained: int = 0
    #: Jobs journaled permanently ``failed``.
    failed: int = 0
    #: Crash-ish attempts sent back to pending.
    retries: int = 0
    #: Workers killed and replaced (crash, timeout, or late heartbeat).
    workers_replaced: int = 0
    #: Final per-state manifest counts after the drain.
    manifest_counts: Dict[str, int] = field(default_factory=dict)


class JobScheduler:
    """Drains a manifest's pending set through a pool of flow workers.

    Parameters
    ----------
    manifest, store:
        The durable pair this run appends to (journal + results).
    cache:
        Flow-cache selection (:data:`~repro.core.flow_executor.CacheSpec`);
        the resolved cache is consulted in-parent for the fast path, passed
        to workers read-only, and written back by the parent on success.
    workers:
        Worker-pool size (one dispatch thread per worker; each worker runs
        one job at a time).
    job_timeout_s:
        Per-job deadline; a job that exceeds it is treated exactly like a
        worker crash (the worker is killed — a timed-out frame stream
        cannot be resynchronised).
    max_retries:
        Crash-ish retries per job beyond the first attempt.
    retry_backoff_s / max_backoff_s:
        Exponential backoff between attempts: ``min(retry_backoff_s *
        2**(attempt-1), max_backoff_s)``.
    heartbeat_timeout_s:
        Deadline on the pre-dispatch ping; a late pong replaces the worker
        without charging the job an attempt.
    connection_wrapper, progress, sleep:
        Test seams: fault-injection wrapper around each new worker
        connection, completion observer, and the backoff sleeper.

    Example::

        summary = JobScheduler(manifest, store, cache=False, workers=2,
                               job_timeout_s=120.0).run()
    """

    def __init__(
        self,
        manifest: JobManifest,
        store: ResultStore,
        cache: CacheSpec = None,
        workers: int = 2,
        job_timeout_s: Optional[float] = 600.0,
        max_retries: int = 2,
        retry_backoff_s: float = 0.05,
        max_backoff_s: float = 2.0,
        heartbeat_timeout_s: Optional[float] = 30.0,
        connection_wrapper: Optional[ConnectionWrapper] = None,
        progress: Optional[ProgressCallback] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.manifest = manifest
        self.store = store
        self.disk = resolve_cache(cache)
        self.workers = workers
        self.job_timeout_s = job_timeout_s
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self.max_backoff_s = max_backoff_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.connection_wrapper = connection_wrapper
        self.progress = progress
        self.sleep = sleep
        self._lock = threading.Lock()
        self._queue: Deque[JobRecord] = deque()
        self._live: Dict[int, FlowWorker] = {}
        self.summary = SchedulerSummary()

    # ------------------------------------------------------------------ #
    def run(self) -> SchedulerSummary:
        """Reload the manifest, drain every pending job, stop the pool.

        Returns the run's :class:`SchedulerSummary`; the manifest and store
        carry the durable outcome.
        """
        state = self.manifest.reload()
        pending = [
            state.jobs[job_id]
            for job_id in state.jobs
            if state.jobs[job_id].state == "pending"
        ]
        remaining = [r for r in pending if not self._finish_from_cache(r)]
        self._queue = deque(remaining)
        if self._queue:
            n_threads = min(self.workers, len(self._queue))
            threads = [
                threading.Thread(
                    target=self._dispatch_loop,
                    args=(index,),
                    name=f"jobs-dispatch-{index}",
                    daemon=True,
                )
                for index in range(n_threads)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        self.summary.manifest_counts = self.manifest.counts()
        return self.summary

    # ------------------------------------------------------------------ #
    def _finish_from_cache(self, record: JobRecord) -> bool:
        """Close out a pending job the cache (or store) already answers."""
        spec = record.spec
        if spec.job_id in self.store:
            # The crash window between the store append and the manifest
            # `done`: the result is durable, only the journal line is owed.
            self.manifest.done(spec.job_id, SOURCE_CACHE)
            self._note_done(record, SOURCE_CACHE)
            return True
        result = cached_flow_result(spec.dataset, spec.kind, spec.config)
        if result is None and self.disk is not None:
            result = self.disk.load(spec.dataset, spec.kind, spec.config)
        if result is None:
            return False
        self.store.append(result_record(spec.job_id, result))
        self.manifest.done(spec.job_id, SOURCE_CACHE)
        self._note_done(record, SOURCE_CACHE)
        return True

    def _note_done(self, record: JobRecord, source: str) -> None:
        with self._lock:
            self.summary.completed += 1
            if source == SOURCE_CACHE:
                self.summary.cache_hits += 1
            else:
                self.summary.trained += 1
        if self.progress is not None:
            self.progress(EVENT_DONE, record)

    def _note_failed(self, record: JobRecord) -> None:
        with self._lock:
            self.summary.failed += 1
        if self.progress is not None:
            self.progress(EVENT_FAILED, record)

    # ------------------------------------------------------------------ #
    def _pop_job(self) -> Optional[JobRecord]:
        with self._lock:
            return self._queue.popleft() if self._queue else None

    def _requeue(self, record: JobRecord, front: bool = False) -> None:
        with self._lock:
            if front:
                self._queue.appendleft(record)
            else:
                self._queue.append(record)

    def _spawn(self, index: int) -> FlowWorker:
        with self._lock:
            siblings = [w.conn for w in self._live.values()]
            cache_dir = str(self.disk.cache_dir) if self.disk is not None else None
            worker = FlowWorker(
                index,
                cache_dir,
                sibling_conns=siblings,
                connection_wrapper=self.connection_wrapper,
            )
            self._live[index] = worker
        return worker

    def _retire(self, index: int, worker: FlowWorker) -> None:
        worker.kill()
        with self._lock:
            if self._live.get(index) is worker:
                del self._live[index]
            self.summary.workers_replaced += 1

    # ------------------------------------------------------------------ #
    def _dispatch_loop(self, index: int) -> None:
        worker: Optional[FlowWorker] = None
        try:
            while True:
                record = self._pop_job()
                if record is None:
                    break
                if worker is None or not worker.alive:
                    worker = self._spawn(index)
                try:
                    worker.ping(self.heartbeat_timeout_s)
                except WorkerCrashed:
                    # Late/lost heartbeat: replace the worker; the job is
                    # not charged an attempt.
                    self._retire(index, worker)
                    worker = None
                    self._requeue(record, front=True)
                    continue
                worker = self._run_one(index, worker, record)
        finally:
            if worker is not None and worker.alive:
                worker.stop()
            with self._lock:
                if self._live.get(index) is not None:
                    del self._live[index]

    def _run_one(
        self, index: int, worker: FlowWorker, record: JobRecord
    ) -> Optional[FlowWorker]:
        """Dispatch one attempt; returns the (possibly replaced) worker."""
        spec = record.spec
        attempt = record.attempts + 1
        self.manifest.start(spec.job_id, attempt)
        try:
            result, source = worker.call(spec.to_json(), self.job_timeout_s)
        except JobRejected as error:
            self.manifest.failed(spec.job_id, str(error))
            self._note_failed(record)
            return worker
        except WorkerCrashed as error:
            self._retire(index, worker)
            if attempt > self.max_retries:
                self.manifest.failed(
                    spec.job_id, f"retry budget exhausted after {attempt} "
                    f"attempts: {error}"
                )
                self._note_failed(record)
            else:
                self.manifest.retry(spec.job_id, attempt, str(error))
                with self._lock:
                    self.summary.retries += 1
                self.sleep(
                    min(
                        self.retry_backoff_s * (2 ** (attempt - 1)),
                        self.max_backoff_s,
                    )
                )
                self._requeue(record)
            return None
        # Durability ordering: cache entry, store record, then the journal
        # line — a crash between any two is re-derived on resume.
        if self.disk is not None and source == SOURCE_TRAINED:
            self.disk.store(result, spec.config)
        self.store.append(result_record(spec.job_id, result))
        self.manifest.done(spec.job_id, source)
        self._note_done(record, source)
        return worker


def run_jobs(
    manifest_path,
    store_path,
    cache: CacheSpec = None,
    workers: int = 2,
    progress: Optional[ProgressCallback] = None,
    **scheduler_kwargs,
) -> SchedulerSummary:
    """Open the durable pair at the given paths and drain the pending set.

    The resume entry point used by ``repro-jobs resume`` (and ``submit``
    with ``--run``): everything is derived from the two files.

    Example::

        summary = run_jobs(run_dir / "manifest.jsonl",
                           run_dir / "results.jsonl", workers=2)
    """
    with JobManifest(manifest_path) as manifest, ResultStore(store_path) as store:
        scheduler = JobScheduler(
            manifest,
            store,
            cache=cache,
            workers=workers,
            progress=progress,
            **scheduler_kwargs,
        )
        return scheduler.run()
