"""Pooled flow workers: child processes that train jobs over the frame wire.

The job scheduler (:mod:`repro.jobs.scheduler`) does not run flows in its
own process — it dispatches them to a small pool of forked workers speaking
the PR 7 frame protocol (:mod:`repro.serve.transport`).  This module holds
both halves:

* :func:`flow_worker_main` — the child: a synchronous receive loop that
  answers ``ping`` control frames immediately and runs one flow job per
  ``MSG_REQUEST`` frame (consulting the in-process and on-disk flow caches
  read-only; the *scheduler* persists results, so the disk cache never has
  concurrent writers);
* :class:`FlowWorker` — the scheduler's handle: spawn, synchronous
  call-with-timeout, heartbeat, kill, graceful stop.

Crash semantics are the transport's own: a worker SIGKILLed mid-job
surfaces as EOF/torn-frame/timeout on the scheduler side and raises
:class:`~repro.serve.transport.WorkerCrashed` — retryable.  An error the
worker *reports* (bad spec, deterministic training failure) arrives as an
``MSG_ERROR`` frame and raises :class:`JobRejected` — permanent, because
retrying a deterministic failure can only fail the same way.

Fd hygiene matters here exactly as in :mod:`repro.serve.worker`: each child
closes the parent-side descriptors it inherited for its *siblings*, so that
when the scheduler dies (even by SIGKILL) every worker sees EOF on its own
connection and exits instead of orphan-training forever.

Example::

    worker = FlowWorker(index=0, cache_dir="/tmp/cache")
    worker.ping(timeout=5.0)
    result, source = worker.call(spec.to_json(), timeout=300.0)
    worker.stop()
"""

from __future__ import annotations

import os
import socket
import time
from itertools import count
from typing import Callable, Iterable, Optional, Tuple

from repro.core.design_flow import FlowResult, cached_flow_result, run_flow
from repro.core.flow_executor import FlowResultCache
from repro.jobs.manifest import JobSpec
from repro.serve.transport import (
    ERROR_INTERNAL,
    ERROR_VALUE,
    MSG_CONTROL,
    MSG_ERROR,
    MSG_REQUEST,
    MSG_RESPONSE,
    MSG_SHUTDOWN,
    FrameConnection,
    TransportError,
    WorkerCrashed,
    connection_pair,
)
from repro.serve.worker import _mp_context

#: ``source`` values a worker reports with each finished job.
SOURCE_TRAINED = "trained"
SOURCE_CACHE = "cache"


class JobRejected(RuntimeError):
    """The worker ran the job and reported a deterministic failure.

    Not retryable: the same spec will fail the same way on any worker.

    Example::

        try:
            worker.call(bad_spec_doc, timeout=30.0)
        except JobRejected:
            ...  # journal the job as permanently failed
    """


# --------------------------------------------------------------------------- #
# Child side
# --------------------------------------------------------------------------- #
def _run_job(spec: JobSpec, disk: Optional[FlowResultCache]) -> Tuple[FlowResult, str]:
    """Run one job in the worker, cheapest layer first (caches read-only)."""
    result = cached_flow_result(spec.dataset, spec.kind, spec.config)
    if result is not None:
        return result, SOURCE_CACHE
    if disk is not None:
        result = disk.load(spec.dataset, spec.kind, spec.config)
        if result is not None:
            return result, SOURCE_CACHE
    return run_flow(spec.dataset, spec.kind, spec.config), SOURCE_TRAINED


def flow_worker_main(
    child_sock: socket.socket,
    cache_dir: Optional[str],
    close_fds: Iterable[int] = (),
) -> None:
    """Child-process entry point: one synchronous job loop over the wire.

    ``close_fds`` are parent-side descriptors inherited over the fork (the
    scheduler's ends of sibling workers' sockets); closing them keeps a
    sibling's — and the scheduler's — death visible as EOF.

    Example::

        flow_worker_main(child_sock, cache_dir=None)
    """
    own = child_sock.fileno()
    for fd in close_fds:
        if fd == own:
            continue  # a recycled number could alias our own socket
        try:
            os.close(fd)
        except OSError:
            pass
    disk = FlowResultCache(cache_dir) if cache_dir is not None else None
    conn = FrameConnection(child_sock)
    try:
        while True:
            try:
                message = conn.recv()
            except TransportError:
                break
            if message is None:
                break  # scheduler gone (EOF): exit, never orphan-train
            kind, body = message
            if kind == MSG_SHUTDOWN:
                break
            if kind == MSG_CONTROL:
                req_id, op, _arg = body
                if op == "ping":
                    _safe_send(conn, MSG_RESPONSE, (req_id, {"pid": os.getpid()}))
                else:
                    _safe_send(
                        conn,
                        MSG_ERROR,
                        (req_id, ERROR_VALUE, f"unknown control op {op!r}"),
                    )
            elif kind == MSG_REQUEST:
                req_id, job_doc = body
                try:
                    spec = JobSpec.from_json(job_doc)
                    result, source = _run_job(spec, disk)
                except (KeyError, TypeError, ValueError) as error:
                    _safe_send(conn, MSG_ERROR, (req_id, ERROR_VALUE, f"{error}"))
                except Exception as error:
                    _safe_send(conn, MSG_ERROR, (req_id, ERROR_INTERNAL, f"{error}"))
                else:
                    _safe_send(conn, MSG_RESPONSE, (req_id, (result, source)))
    finally:
        conn.close()


def _safe_send(conn: FrameConnection, kind: int, body) -> None:
    """Send, swallowing a dead-parent ``OSError`` (the loop exits on recv)."""
    try:
        conn.send(kind, body)
    except OSError:
        pass


# --------------------------------------------------------------------------- #
# Scheduler side
# --------------------------------------------------------------------------- #
#: Signature of the chaos seam: wraps a freshly spawned worker's connection
#: (see ``tests/jobs/chaos.py``'s ``FaultyConnection``).
ConnectionWrapper = Callable[[FrameConnection, object], FrameConnection]


class FlowWorker:
    """The scheduler's handle on one flow-worker process.

    Calls are *synchronous* — the scheduler runs one dedicated thread per
    worker, so there is no reader thread or future plumbing here; a call
    sends one frame and blocks (under ``timeout``) for the matching
    response.  A timeout poisons the stream (part of a frame may have been
    consumed), so the handle must then be killed, never reused — the
    scheduler does exactly that.

    Example::

        worker = FlowWorker(index=0, cache_dir=None)
        worker.ping(timeout=5.0)["pid"] == worker.pid
        worker.stop()
    """

    def __init__(
        self,
        index: int,
        cache_dir: Optional[str],
        sibling_conns: Iterable[FrameConnection] = (),
        connection_wrapper: Optional[ConnectionWrapper] = None,
    ) -> None:
        self.index = index
        self._req_ids = count(1)
        ctx = _mp_context()
        self.conn, child_sock = connection_pair()
        if ctx.get_start_method() == "fork":
            fds = {conn.fileno for conn in sibling_conns} | {self.conn.fileno}
            fds = tuple(fd for fd in fds if fd >= 0)
        else:  # spawn pickles fresh sockets; inherited-fd hygiene is moot
            fds = ()
        self.process = ctx.Process(
            target=flow_worker_main,
            args=(child_sock, cache_dir, fds),
            name=f"repro-jobs-worker-{index}",
            daemon=True,
        )
        self.process.start()
        child_sock.close()
        self.pid = self.process.pid
        if connection_wrapper is not None:
            self.conn = connection_wrapper(self.conn, self.process)

    # ------------------------------------------------------------------ #
    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    def _roundtrip(self, kind: int, body: tuple, timeout: Optional[float]):
        """One framed request/response under a deadline; crash-ish -> raise."""
        req_id = next(self._req_ids)
        deadline = None if timeout is None else time.monotonic() + timeout
        try:
            self.conn.set_timeout(timeout)
            self.conn.send(kind, (req_id,) + body)
            while True:
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise socket.timeout("job deadline elapsed")
                    self.conn.set_timeout(remaining)
                message = self.conn.recv()
                if message is None:
                    raise WorkerCrashed(
                        f"flow worker {self.index} (pid {self.pid}) closed "
                        "its connection"
                    )
                msg_kind, payload = message
                if msg_kind == MSG_RESPONSE:
                    resp_id, value = payload
                    if resp_id == req_id:
                        return value
                elif msg_kind == MSG_ERROR:
                    resp_id, error_kind, text = payload
                    if resp_id == req_id:
                        raise JobRejected(f"[{error_kind}] {text}")
                # Stale ids (shouldn't happen on a synchronous stream) are
                # skipped rather than trusted.
        except (TransportError, OSError) as error:
            raise WorkerCrashed(
                f"flow worker {self.index} (pid {self.pid}) died mid-call: "
                f"{error}"
            )

    def call(self, job_doc: dict, timeout: Optional[float]) -> Tuple[FlowResult, str]:
        """Run one job on this worker; returns ``(result, source)``.

        Raises :class:`WorkerCrashed` for crash/timeout/torn-frame (kill
        this handle and retry the job elsewhere) and :class:`JobRejected`
        for worker-reported failures (permanent).
        """
        return self._roundtrip(MSG_REQUEST, (job_doc,), timeout)

    def ping(self, timeout: Optional[float]) -> dict:
        """Heartbeat; a delayed or lost pong raises :class:`WorkerCrashed`."""
        return self._roundtrip(MSG_CONTROL, ("ping", None), timeout)

    # ------------------------------------------------------------------ #
    def kill(self) -> None:
        """SIGKILL the worker and close the (possibly poisoned) connection."""
        try:
            self.process.kill()
        except Exception:
            pass
        self.process.join(timeout=5.0)
        self.conn.close()

    def stop(self, timeout: float = 5.0) -> None:
        """Graceful exit: shutdown frame, join, escalate only if it lingers."""
        try:
            self.conn.send(MSG_SHUTDOWN, (False,))
        except OSError:
            pass
        self.process.join(timeout=timeout)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=1.0)
        self.conn.close()
