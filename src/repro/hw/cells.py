"""Standard-cell abstraction for the printed (EGFET) technology library.

A :class:`CellType` carries everything the estimation flow needs to know
about one library cell:

* ``area_cm2`` — printed cells are measured in square *centimetres*, not
  square microns; feature sizes of inkjet-printed EGFETs are tens to
  hundreds of micrometres.
* ``static_power_mw`` — printed resistor-load / EGFET logic draws a steady
  cross-current, which dominates total power at the Hz-range operating
  frequencies typical of printed applications.
* ``switch_energy_mj`` — energy drawn per output transition (charging the
  very large gate/wire capacitances of printed nets).
* ``delay_ms`` — propagation delay; printed gates switch in the
  sub-millisecond range, which is why printed classifiers run at a few Hz.
* ``function`` — a boolean function used by the gate-level logic simulator
  to verify generated netlists against the integer behavioural model.

A :class:`CellLibrary` is a named collection of cell types plus a handful of
technology-level constants (supply voltage, clock-tree overhead factors).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Optional, Sequence, Tuple

#: Type of a cell's boolean function: maps an input-bit tuple to output bits.
CellFunction = Callable[[Tuple[int, ...]], Tuple[int, ...]]


@dataclass(frozen=True)
class CellType:
    """One cell of the printed standard-cell library."""

    name: str
    n_inputs: int
    n_outputs: int
    area_cm2: float
    static_power_mw: float
    switch_energy_mj: float
    delay_ms: float
    is_sequential: bool = False
    description: str = ""
    function: Optional[CellFunction] = None

    def __post_init__(self) -> None:
        if self.n_inputs < 0 or self.n_outputs < 1:
            raise ValueError(f"cell {self.name}: invalid pin counts")
        if self.area_cm2 < 0 or self.static_power_mw < 0:
            raise ValueError(f"cell {self.name}: negative physical quantity")
        if self.switch_energy_mj < 0 or self.delay_ms < 0:
            raise ValueError(f"cell {self.name}: negative physical quantity")

    def evaluate(self, inputs: Sequence[int]) -> Tuple[int, ...]:
        """Evaluate the cell's boolean function on 0/1 inputs."""
        if self.function is None:
            raise NotImplementedError(f"cell {self.name} has no simulation model")
        if len(inputs) != self.n_inputs:
            raise ValueError(
                f"cell {self.name} expects {self.n_inputs} inputs, got {len(inputs)}"
            )
        bits = tuple(1 if b else 0 for b in inputs)
        out = self.function(bits)
        if len(out) != self.n_outputs:
            raise RuntimeError(
                f"cell {self.name} simulation model returned {len(out)} outputs, "
                f"expected {self.n_outputs}"
            )
        return tuple(1 if b else 0 for b in out)


class CellLibrary:
    """A collection of :class:`CellType` plus technology constants."""

    def __init__(
        self,
        name: str,
        cells: Iterable[CellType],
        supply_voltage: float = 1.0,
        clock_power_overhead: float = 0.05,
        wire_delay_factor: float = 0.0,
        description: str = "",
    ) -> None:
        self.name = name
        self.supply_voltage = float(supply_voltage)
        #: Fraction of sequential-cell power added to account for the clock network.
        self.clock_power_overhead = float(clock_power_overhead)
        #: Extra delay per logic level as a fraction of the cell delay, modelling
        #: the long printed wires of large designs.
        self.wire_delay_factor = float(wire_delay_factor)
        self.description = description
        self._cells: Dict[str, CellType] = {}
        for cell in cells:
            self.add_cell(cell)

    # ------------------------------------------------------------------ #
    def add_cell(self, cell: CellType) -> None:
        if cell.name in self._cells:
            raise ValueError(f"duplicate cell {cell.name!r} in library {self.name!r}")
        self._cells[cell.name] = cell

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __getitem__(self, name: str) -> CellType:
        try:
            return self._cells[name]
        except KeyError:
            raise KeyError(
                f"cell {name!r} not in library {self.name!r}; "
                f"available: {sorted(self._cells)}"
            ) from None

    def get(self, name: str) -> CellType:
        """Alias of ``__getitem__`` for call sites that prefer a method."""
        return self[name]

    def cell_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._cells))

    def __len__(self) -> int:
        return len(self._cells)

    # -- aggregate lookups used by area/power/timing roll-ups ------------- #
    def area_of(self, counts: Dict[str, int]) -> float:
        """Total area (cm^2) of a bag of cells."""
        return sum(self[name].area_cm2 * count for name, count in counts.items())

    def static_power_of(self, counts: Dict[str, int]) -> float:
        """Total static power (mW) of a bag of cells, incl. clock overhead."""
        total = 0.0
        for name, count in counts.items():
            cell = self[name]
            power = cell.static_power_mw * count
            if cell.is_sequential:
                power *= 1.0 + self.clock_power_overhead
            total += power
        return total

    def delay_of_path(self, path_counts: Dict[str, int]) -> float:
        """Delay (ms) of a path described as cell-type counts along it."""
        raw = sum(self[name].delay_ms * count for name, count in path_counts.items())
        levels = sum(path_counts.values())
        return raw * (1.0 + self.wire_delay_factor) + 0.0 * levels

    def switch_energy_of(self, toggle_counts: Dict[str, float]) -> float:
        """Energy (mJ) of a bag of expected output toggles per cell type."""
        return sum(
            self[name].switch_energy_mj * toggles
            for name, toggles in toggle_counts.items()
        )


# --------------------------------------------------------------------------- #
# Boolean functions for the generic cell set
# --------------------------------------------------------------------------- #
def _f_inv(b: Tuple[int, ...]) -> Tuple[int, ...]:
    return (1 - b[0],)


def _f_buf(b: Tuple[int, ...]) -> Tuple[int, ...]:
    return (b[0],)


def _f_nand2(b: Tuple[int, ...]) -> Tuple[int, ...]:
    return (1 - (b[0] & b[1]),)


def _f_nor2(b: Tuple[int, ...]) -> Tuple[int, ...]:
    return (1 - (b[0] | b[1]),)


def _f_and2(b: Tuple[int, ...]) -> Tuple[int, ...]:
    return (b[0] & b[1],)


def _f_or2(b: Tuple[int, ...]) -> Tuple[int, ...]:
    return (b[0] | b[1],)


def _f_xor2(b: Tuple[int, ...]) -> Tuple[int, ...]:
    return (b[0] ^ b[1],)


def _f_xnor2(b: Tuple[int, ...]) -> Tuple[int, ...]:
    return (1 - (b[0] ^ b[1]),)


def _f_and3(b: Tuple[int, ...]) -> Tuple[int, ...]:
    return (b[0] & b[1] & b[2],)


def _f_or3(b: Tuple[int, ...]) -> Tuple[int, ...]:
    return (b[0] | b[1] | b[2],)


def _f_mux2(b: Tuple[int, ...]) -> Tuple[int, ...]:
    # inputs: (d0, d1, sel)
    return (b[1] if b[2] else b[0],)


def _f_ha(b: Tuple[int, ...]) -> Tuple[int, ...]:
    # inputs: (a, b) -> (sum, carry)
    return (b[0] ^ b[1], b[0] & b[1])


def _f_fa(b: Tuple[int, ...]) -> Tuple[int, ...]:
    # inputs: (a, b, cin) -> (sum, carry)
    s = b[0] ^ b[1] ^ b[2]
    c = (b[0] & b[1]) | (b[2] & (b[0] ^ b[1]))
    return (s, c)


def _f_dff(b: Tuple[int, ...]) -> Tuple[int, ...]:
    # Combinationally transparent model used only by the zero-delay checker;
    # real sequential behaviour is handled by the cycle-accurate simulator.
    return (b[0],)


#: Name -> (n_inputs, n_outputs, function, is_sequential, description)
GENERIC_CELL_SET: Dict[str, Tuple[int, int, CellFunction, bool, str]] = {
    "INV": (1, 1, _f_inv, False, "inverter"),
    "BUF": (1, 1, _f_buf, False, "buffer"),
    "NAND2": (2, 1, _f_nand2, False, "2-input NAND"),
    "NOR2": (2, 1, _f_nor2, False, "2-input NOR"),
    "AND2": (2, 1, _f_and2, False, "2-input AND"),
    "OR2": (2, 1, _f_or2, False, "2-input OR"),
    "XOR2": (2, 1, _f_xor2, False, "2-input XOR"),
    "XNOR2": (2, 1, _f_xnor2, False, "2-input XNOR"),
    "AND3": (3, 1, _f_and3, False, "3-input AND"),
    "OR3": (3, 1, _f_or3, False, "3-input OR"),
    "MUX2": (3, 1, _f_mux2, False, "2-to-1 multiplexer (d0, d1, sel)"),
    "HA": (2, 2, _f_ha, False, "half adder (sum, carry)"),
    "FA": (3, 2, _f_fa, False, "full adder (sum, carry)"),
    "DFF": (1, 1, _f_dff, True, "D flip-flop"),
    "ADC1": (1, 1, _f_buf, False, "per-column analog-to-digital converter slice"),
}
