"""EGFET-like printed process design kit (PDK).

The paper evaluates its circuits with Synopsys Design Compiler / PrimeTime
and the EGFET PDK (inkjet-printed electrolyte-gated FET technology, see
Bleier et al., "Printed microprocessors", ISCA 2020).  That PDK is not
publicly redistributable, so this module provides a *calibrated stand-in*
printed cell library with the defining characteristics of the technology:

* cell areas measured in fractions of a square centimetre (feature sizes of
  tens to hundreds of micrometres),
* millisecond-scale gate delays, hence circuit frequencies of a few Hz to a
  few tens of Hz,
* power dominated by the steady cross-current of resistor-load EGFET logic
  (static power) plus a switching component that matters for large, deep,
  glitch-prone combinational datapaths,
* printed energy sources limited to tens of milliwatts (e.g. the Molex
  30 mW printed battery cited in the paper).

The absolute numbers below were calibrated once against the published
baseline rows of the paper's Table I (see ``DESIGN.md``, "Calibration
policy") and are kept fixed for every experiment in this repository.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.hw.cells import GENERIC_CELL_SET, CellLibrary, CellType

# --------------------------------------------------------------------------- #
# Per-cell physical characterisation
# --------------------------------------------------------------------------- #
#: Gate-equivalent factors (NAND2 = 1.0): how much bigger each cell is.
_GATE_EQUIVALENTS: Dict[str, float] = {
    "INV": 0.6,
    "BUF": 0.7,
    "NAND2": 1.0,
    "NOR2": 1.0,
    "AND2": 1.2,
    "OR2": 1.2,
    "XOR2": 1.8,
    "XNOR2": 1.8,
    "AND3": 1.6,
    "OR3": 1.6,
    "MUX2": 1.9,
    "HA": 2.6,
    "FA": 6.0,
    "DFF": 7.0,
    "ADC1": 40.0,
}

#: Propagation delay of each cell in milliseconds.
_DELAYS_MS: Dict[str, float] = {
    "INV": 0.12,
    "BUF": 0.14,
    "NAND2": 0.16,
    "NOR2": 0.17,
    "AND2": 0.22,
    "OR2": 0.22,
    "XOR2": 0.30,
    "XNOR2": 0.30,
    "AND3": 0.27,
    "OR3": 0.27,
    "MUX2": 0.26,
    "HA": 0.33,
    "FA": 0.52,
    "DFF": 0.65,
    "ADC1": 8.0,
}


@dataclass(frozen=True)
class PDKParameters:
    """Technology-level calibration constants of the printed PDK.

    Attributes
    ----------
    nand2_area_cm2:
        Area of a minimum-size NAND2 gate; other cells scale by their
        gate-equivalent factor.
    nand2_static_power_mw:
        Static (cross-current) power of a NAND2; scales with gate equivalents.
    nand2_switch_energy_mj:
        Energy per output transition of a NAND2 (charging printed nets);
        scales with gate equivalents.
    supply_voltage:
        Nominal supply (V); EGFET logic operates around 1 V.
    clock_power_overhead:
        Fractional power overhead of the clock network applied to
        sequential cells.
    wire_delay_factor:
        Fractional delay increase per logic level modelling long printed wires.
    timing_margin:
        Fraction of the critical-path delay added as guard band when deriving
        the operating frequency (clock uncertainty of printed flip-flops).
    area_wire_delay_per_cm2:
        Additional fractional path delay per square centimetre of printed
        area.  Printed wiring runs at centimetre scale, so the RC load seen by
        the critical path grows with the physical extent of the design; this
        is why the very large fully-parallel baselines run at single-digit Hz
        while small sequential designs reach tens of Hz.
    """

    nand2_area_cm2: float = 0.0030
    nand2_static_power_mw: float = 0.0024
    nand2_switch_energy_mj: float = 2.7e-4
    supply_voltage: float = 1.0
    clock_power_overhead: float = 0.06
    wire_delay_factor: float = 0.04
    timing_margin: float = 0.08
    area_wire_delay_per_cm2: float = 0.015


def build_printed_library(
    params: Optional[PDKParameters] = None, name: str = "EGFET"
) -> CellLibrary:
    """Build the printed cell library from the PDK calibration parameters."""
    params = params or PDKParameters()
    cells = []
    for cell_name, (n_in, n_out, func, is_seq, desc) in GENERIC_CELL_SET.items():
        ge = _GATE_EQUIVALENTS[cell_name]
        cells.append(
            CellType(
                name=cell_name,
                n_inputs=n_in,
                n_outputs=n_out,
                area_cm2=params.nand2_area_cm2 * ge,
                static_power_mw=params.nand2_static_power_mw * ge,
                switch_energy_mj=params.nand2_switch_energy_mj * ge,
                delay_ms=_DELAYS_MS[cell_name],
                is_sequential=is_seq,
                description=desc,
                function=func,
            )
        )
    return CellLibrary(
        name=name,
        cells=cells,
        supply_voltage=params.supply_voltage,
        clock_power_overhead=params.clock_power_overhead,
        wire_delay_factor=params.wire_delay_factor,
        description=(
            "Calibrated stand-in for the EGFET printed PDK used in the paper; "
            "see DESIGN.md for the calibration policy."
        ),
    )


#: Module-level default library and parameters, shared by the whole flow.
DEFAULT_PDK_PARAMETERS = PDKParameters()
EGFET_PDK = build_printed_library(DEFAULT_PDK_PARAMETERS)


# --------------------------------------------------------------------------- #
# Printed energy sources
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class PrintedBattery:
    """A printed/flexible battery or energy harvester.

    Attributes
    ----------
    name:
        Product or family name.
    max_power_mw:
        Maximum continuous power the source can deliver.  A circuit is
        *feasible* on this source if its total power stays below this value.
    capacity_mwh:
        Energy capacity; ``None`` for harvesters that deliver power
        indefinitely but cannot exceed ``max_power_mw``.
    """

    name: str
    max_power_mw: float
    capacity_mwh: Optional[float] = None

    def can_power(self, power_mw: float) -> bool:
        """Whether a circuit drawing ``power_mw`` can run from this source."""
        if power_mw < 0:
            raise ValueError("power must be non-negative")
        return power_mw <= self.max_power_mw

    def lifetime_hours(self, power_mw: float) -> float:
        """Battery lifetime (hours) at a constant draw of ``power_mw``.

        Returns ``inf`` for harvesters (no capacity limit) and raises if the
        draw exceeds the maximum deliverable power.
        """
        if not self.can_power(power_mw):
            raise ValueError(
                f"{self.name} cannot deliver {power_mw:.2f} mW "
                f"(max {self.max_power_mw:.2f} mW)"
            )
        if self.capacity_mwh is None:
            return float("inf")
        if power_mw == 0:
            return float("inf")
        return self.capacity_mwh / power_mw

    def classifications_per_charge(self, energy_mj: float) -> float:
        """How many classifications one full charge sustains."""
        if energy_mj <= 0:
            raise ValueError("energy per classification must be positive")
        if self.capacity_mwh is None:
            return float("inf")
        capacity_mj = self.capacity_mwh * 3600.0
        return capacity_mj / energy_mj


#: The printed power source the paper cites as its feasibility threshold.
MOLEX_30MW = PrintedBattery(name="Molex 30 mW", max_power_mw=30.0, capacity_mwh=90.0)

#: Additional printed sources used by the battery-life example and ablations.
ZINERGY_15MW = PrintedBattery(name="Zinergy 15 mW", max_power_mw=15.0, capacity_mwh=27.0)
BLUESPARK_10MW = PrintedBattery(name="Blue Spark 10 mW", max_power_mw=10.0, capacity_mwh=18.0)
PRINTED_SOLAR_5MW = PrintedBattery(name="Printed solar 5 mW", max_power_mw=5.0, capacity_mwh=None)

PRINTED_BATTERIES: Tuple[PrintedBattery, ...] = (
    MOLEX_30MW,
    ZINERGY_15MW,
    BLUESPARK_10MW,
    PRINTED_SOLAR_5MW,
)


def gate_equivalents(cell_name: str) -> float:
    """Gate-equivalent (NAND2-relative) size factor of a library cell."""
    try:
        return _GATE_EQUIVALENTS[cell_name]
    except KeyError:
        raise KeyError(f"unknown cell {cell_name!r}") from None
