"""Printed floorplanning and fabrication-yield estimation.

Printed classifiers are fabricated on flexible foils whose usable width is
limited (typical sheet-fed and roll-to-roll printers handle 10-30 cm webs),
so a design's *shape* matters as much as its area: a 120 cm^2 baseline that
needs a 14 cm x 9 cm rectangle may simply not fit the label it is meant to
be part of.  Printed processes also have per-area defect densities orders of
magnitude above silicon, so large designs pay twice — in foil and in yield.

This module provides a deliberately simple but quantitative model:

* :class:`Floorplanner` places the major blocks of a design in area-balanced
  rows under a maximum-width constraint and reports the bounding box,
  aspect ratio and an estimate of total wire length (semi-perimeter model);
* :func:`fabrication_yield` applies the standard Poisson/Murphy yield model
  with a printed-scale defect density;
* :func:`cost_per_working_unit` combines area and yield into the figure that
  actually matters for disposable printed applications: foil cost per
  *working* classifier.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hw.cells import CellLibrary
from repro.hw.netlist import HardwareBlock
from repro.hw.pdk import EGFET_PDK

#: Usable web width of a typical sheet-fed printed-electronics line (cm).
DEFAULT_MAX_WIDTH_CM = 20.0

#: Defect density of inkjet-printed EGFET processes (defects per cm^2).
#: Printed lines/vias fail far more often than photolithographic ones.
DEFAULT_DEFECT_DENSITY_PER_CM2 = 0.01

#: Foil + ink + curing cost per printed square centimetre (arbitrary currency
#: units); printed electronics' selling point is that this is *tiny*.
DEFAULT_COST_PER_CM2 = 0.002


@dataclass
class PlacedBlock:
    """One block of the floorplan with its position and dimensions (cm)."""

    name: str
    x_cm: float
    y_cm: float
    width_cm: float
    height_cm: float
    area_cm2: float

    @property
    def center(self) -> Tuple[float, float]:
        return (self.x_cm + self.width_cm / 2.0, self.y_cm + self.height_cm / 2.0)


@dataclass
class Floorplan:
    """Result of placing a design's blocks on the printed foil."""

    design_name: str
    placed: List[PlacedBlock] = field(default_factory=list)
    width_cm: float = 0.0
    height_cm: float = 0.0

    @property
    def bounding_area_cm2(self) -> float:
        """Area of the bounding rectangle (what must be printed and diced)."""
        return self.width_cm * self.height_cm

    @property
    def cell_area_cm2(self) -> float:
        """Sum of the placed blocks' areas (excludes row fragmentation)."""
        return sum(block.area_cm2 for block in self.placed)

    @property
    def utilization(self) -> float:
        """Cell area over bounding area (1.0 = perfectly packed rows)."""
        if self.bounding_area_cm2 == 0:
            return 0.0
        return self.cell_area_cm2 / self.bounding_area_cm2

    @property
    def aspect_ratio(self) -> float:
        """Width over height of the bounding box (>= 1 reported)."""
        if self.height_cm == 0 or self.width_cm == 0:
            return 0.0
        ratio = self.width_cm / self.height_cm
        return ratio if ratio >= 1.0 else 1.0 / ratio

    def fits(self, width_cm: float, height_cm: float) -> bool:
        """Whether the floorplan fits a given label/foil rectangle."""
        return (self.width_cm <= width_cm and self.height_cm <= height_cm) or (
            self.width_cm <= height_cm and self.height_cm <= width_cm
        )

    def estimated_wire_length_cm(self) -> float:
        """Half-perimeter wire-length estimate over consecutive blocks.

        The sequential datapath is a pipeline storage -> engine -> voter, so
        the dominant nets run between consecutive blocks; the HPWL between
        their centres is the standard first-order estimate.
        """
        if len(self.placed) < 2:
            return 0.0
        total = 0.0
        for a, b in zip(self.placed, self.placed[1:]):
            (ax, ay), (bx, by) = a.center, b.center
            total += abs(ax - bx) + abs(ay - by)
        return total

    def summary(self) -> str:
        """Readable floorplan report."""
        lines = [
            f"Floorplan of {self.design_name}: "
            f"{self.width_cm:.1f} cm x {self.height_cm:.1f} cm "
            f"({self.bounding_area_cm2:.1f} cm^2, utilization {100 * self.utilization:.0f} %)"
        ]
        for block in self.placed:
            lines.append(
                f"  {block.name:20s} {block.width_cm:5.1f} x {block.height_cm:4.1f} cm "
                f"at ({block.x_cm:5.1f}, {block.y_cm:5.1f})"
            )
        return "\n".join(lines)


class Floorplanner:
    """Row-based placement of a design's top-level blocks.

    Blocks are assumed to be reshapeable (standard-cell rows of printed
    gates), so each block is given a rectangle of the correct area whose
    width is capped by the foil width; blocks are stacked left-to-right into
    rows, opening a new row when the web width would be exceeded.
    """

    def __init__(
        self,
        max_width_cm: float = DEFAULT_MAX_WIDTH_CM,
        row_height_cm: float = 1.0,
        library: Optional[CellLibrary] = None,
    ) -> None:
        if max_width_cm <= 0 or row_height_cm <= 0:
            raise ValueError("floorplan dimensions must be positive")
        self.max_width_cm = float(max_width_cm)
        self.row_height_cm = float(row_height_cm)
        self.library = library or EGFET_PDK

    def floorplan(self, design: HardwareBlock) -> Floorplan:
        """Place the design's immediate children (or the design itself)."""
        blocks = design.children if design.children else [design]
        plan = Floorplan(design_name=design.name)
        cursor_x = 0.0
        cursor_y = 0.0
        row_height = self.row_height_cm
        max_x = 0.0
        for child in self._flatten(blocks):
            area = child.area_cm2(self.library)
            if area <= 0:
                continue
            width = min(area / row_height, self.max_width_cm)
            height = area / width
            if cursor_x > 0 and cursor_x + width > self.max_width_cm:
                cursor_x = 0.0
                cursor_y += row_height
            # Tall blocks stretch their row.
            row_height = max(self.row_height_cm, height)
            plan.placed.append(
                PlacedBlock(
                    name=child.name,
                    x_cm=cursor_x,
                    y_cm=cursor_y,
                    width_cm=width,
                    height_cm=height,
                    area_cm2=area,
                )
            )
            cursor_x += width
            max_x = max(max_x, cursor_x)
        plan.width_cm = max_x
        plan.height_cm = cursor_y + row_height if plan.placed else 0.0
        return plan

    @staticmethod
    def _flatten(blocks: Sequence[HardwareBlock]) -> List[HardwareBlock]:
        """One level of flattening: composite wrappers expose their children."""
        flat: List[HardwareBlock] = []
        for block in blocks:
            if block.children and block.counts and len(block.children) > 1:
                flat.extend(block.children)
            else:
                flat.append(block)
        return flat


def fabrication_yield(
    area_cm2: float,
    defect_density_per_cm2: float = DEFAULT_DEFECT_DENSITY_PER_CM2,
    model: str = "murphy",
) -> float:
    """Fraction of printed instances that work, as a function of area.

    ``"poisson"`` uses ``exp(-A * D)``; ``"murphy"`` (default) uses Murphy's
    integral approximation ``((1 - exp(-A D)) / (A D))^2`` which is the usual
    choice for moderately clustered printing defects.
    """
    if area_cm2 < 0 or defect_density_per_cm2 < 0:
        raise ValueError("area and defect density must be non-negative")
    ad = area_cm2 * defect_density_per_cm2
    if ad == 0:
        return 1.0
    if model == "poisson":
        return math.exp(-ad)
    if model == "murphy":
        return ((1.0 - math.exp(-ad)) / ad) ** 2
    raise ValueError(f"unknown yield model {model!r}")


def cost_per_working_unit(
    area_cm2: float,
    defect_density_per_cm2: float = DEFAULT_DEFECT_DENSITY_PER_CM2,
    cost_per_cm2: float = DEFAULT_COST_PER_CM2,
    model: str = "murphy",
) -> float:
    """Printing cost divided by yield: the cost of one *working* classifier."""
    if cost_per_cm2 < 0:
        raise ValueError("cost per cm^2 must be non-negative")
    y = fabrication_yield(area_cm2, defect_density_per_cm2, model=model)
    if y <= 0:
        return math.inf
    return area_cm2 * cost_per_cm2 / y


def compare_manufacturability(
    reports: Dict[str, float],
    defect_density_per_cm2: float = DEFAULT_DEFECT_DENSITY_PER_CM2,
) -> Dict[str, Dict[str, float]]:
    """Yield and unit cost for a set of named design areas (cm^2)."""
    out: Dict[str, Dict[str, float]] = {}
    for name, area in reports.items():
        out[name] = {
            "area_cm2": float(area),
            "yield": fabrication_yield(area, defect_density_per_cm2),
            "cost_per_working_unit": cost_per_working_unit(area, defect_density_per_cm2),
        }
    return out
