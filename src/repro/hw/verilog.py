"""Structural and behavioural Verilog emission.

Bespoke printed classifiers are ultimately taped out from RTL, so the flow
can export:

* structural Verilog of any explicit :class:`~repro.hw.netlist.GateNetlist`
  (gate-level, one instance per library cell), and
* a behavioural Verilog module of the sequential SVM architecture with the
  support-vector coefficients hardwired as localparams — the human-readable
  artefact a designer would hand to a printed-PDK synthesis flow.

The emitted text is plain Verilog-2001; no external tool is invoked.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.hw.netlist import GateNetlist

#: Mapping from library cells to Verilog primitive expressions.
_CELL_EXPRESSIONS = {
    "INV": "assign {out0} = ~{in0};",
    "BUF": "assign {out0} = {in0};",
    "NAND2": "assign {out0} = ~({in0} & {in1});",
    "NOR2": "assign {out0} = ~({in0} | {in1});",
    "AND2": "assign {out0} = {in0} & {in1};",
    "OR2": "assign {out0} = {in0} | {in1};",
    "XOR2": "assign {out0} = {in0} ^ {in1};",
    "XNOR2": "assign {out0} = ~({in0} ^ {in1});",
    "AND3": "assign {out0} = {in0} & {in1} & {in2};",
    "OR3": "assign {out0} = {in0} | {in1} | {in2};",
    "MUX2": "assign {out0} = {in2} ? {in1} : {in0};",
    "HA": "assign {out0} = {in0} ^ {in1};\n  assign {out1} = {in0} & {in1};",
    "FA": (
        "assign {out0} = {in0} ^ {in1} ^ {in2};\n"
        "  assign {out1} = ({in0} & {in1}) | ({in2} & ({in0} ^ {in1}));"
    ),
}


def _sanitize(net: str) -> str:
    """Make a net name a legal Verilog identifier."""
    if net == GateNetlist.CONST_ZERO:
        return "1'b0"
    if net == GateNetlist.CONST_ONE:
        return "1'b1"
    return (
        net.replace("[", "_").replace("]", "").replace(".", "_").replace("-", "_")
    )


def netlist_to_verilog(netlist: GateNetlist, opt_level: int = 0) -> str:
    """Emit a structural (assign-per-gate) Verilog module for a netlist.

    ``opt_level > 0`` runs the :mod:`repro.hw.opt` pass pipeline first and
    emits the optimized netlist; the module interface (port names and order)
    is identical at every level, only the internal gate structure shrinks.

    Clocked netlists (``DFF`` cells, including feedback built through the
    ``declare_dff``/``bind_dff`` API) gain a ``clk`` input port; every
    flip-flop becomes a ``reg`` updated in its own ``always @(posedge
    clk)`` block, with the power-on value from
    :attr:`~repro.hw.netlist.GateNetlist.dff_init` as the ``initial``
    state.
    """
    if opt_level:
        from repro.hw.opt.pipeline import optimize

        netlist = optimize(netlist, level=opt_level).netlist
    flops = [g for g in netlist.gates if g.cell == "DFF" and g.inputs]
    flop_ids = {id(g) for g in flops}
    reg_nets = {_sanitize(g.outputs[0]) for g in flops}
    inputs = [_sanitize(n) for n in netlist.inputs]
    outputs = [_sanitize(n) for n in netlist.outputs]
    ports = (["clk"] if flops else []) + inputs + outputs
    lines: List[str] = [
        f"// Auto-generated structural netlist: {netlist.name}",
        f"module {netlist.name} (",
        "  " + ",\n  ".join(ports),
        ");",
    ]
    if flops:
        lines.append("  input  clk;")
    for name in inputs:
        lines.append(f"  input  {name};")
    for name in outputs:
        lines.append(f"  output {name};")
    for net in sorted(reg_nets):
        lines.append(f"  reg    {net};")

    declared = set(inputs) | set(outputs) | reg_nets
    for gate in netlist.gates:
        for out in gate.outputs:
            sanitized = _sanitize(out)
            if sanitized not in declared:
                lines.append(f"  wire {sanitized};")
                declared.add(sanitized)

    for gate in netlist.gates:
        if id(gate) in flop_ids:
            q = _sanitize(gate.outputs[0])
            d = _sanitize(gate.inputs[0])
            init = int(netlist.dff_init.get(gate.name, 0)) & 1
            lines.append("  // " + gate.name + " (DFF)")
            lines.append(f"  initial {q} = 1'b{init};")
            lines.append(f"  always @(posedge clk) {q} <= {d};")
            continue
        template = _CELL_EXPRESSIONS.get(gate.cell)
        if template is None:
            raise ValueError(f"no Verilog template for cell {gate.cell!r}")
        mapping = {}
        for idx, pin in enumerate(gate.inputs):
            mapping[f"in{idx}"] = _sanitize(pin)
        for idx, pin in enumerate(gate.outputs):
            mapping[f"out{idx}"] = _sanitize(pin)
        lines.append("  // " + gate.name + " (" + gate.cell + ")")
        lines.append("  " + template.format(**mapping))
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def sequential_svm_to_verilog(
    weight_codes: np.ndarray,
    bias_codes: np.ndarray,
    input_bits: int,
    weight_bits: int,
    score_bits: int,
    module_name: str = "sequential_svm",
) -> str:
    """Emit a behavioural Verilog module of the sequential SVM architecture.

    The module follows Fig. 1 of the paper: a counter-driven control process,
    MUX-based storage holding the hardwired coefficients (emitted as a
    ``case`` over the counter), the folded multiply-accumulate engine and the
    sequential argmax voter.
    """
    weight_codes = np.asarray(weight_codes, dtype=np.int64)
    bias_codes = np.asarray(bias_codes, dtype=np.int64)
    n_classifiers, n_features = weight_codes.shape
    counter_bits = max(1, int(np.ceil(np.log2(max(n_classifiers, 2)))))

    lines: List[str] = [
        f"// Auto-generated bespoke sequential SVM ({n_classifiers} classifiers,",
        f"// {n_features} features, {input_bits}-bit inputs, {weight_bits}-bit weights).",
        f"module {module_name} (",
        "  input  wire clk,",
        "  input  wire rst,",
        "  input  wire start,",
        f"  input  wire [{n_features * input_bits - 1}:0] features,",
        f"  output reg  [{counter_bits - 1}:0] predicted_class,",
        "  output reg  done",
        ");",
        "",
        f"  localparam integer N_CLASSIFIERS = {n_classifiers};",
        f"  localparam integer N_FEATURES    = {n_features};",
        "",
        f"  reg  [{counter_bits - 1}:0] sv_counter;",
        f"  reg  signed [{score_bits - 1}:0] best_score;",
        f"  wire signed [{score_bits - 1}:0] score;",
        "",
    ]

    # Storage: hardwired coefficient selection (bespoke MUX storage).
    lines.append("  // Bespoke MUX-based storage: coefficients hardwired per counter value.")
    for f in range(n_features):
        lines.append(f"  reg signed [{weight_bits - 1}:0] w{f};")
    lines.append(f"  reg signed [{score_bits - 1}:0] bias;")
    lines.append("  always @(*) begin")
    lines.append("    case (sv_counter)")
    for k in range(n_classifiers):
        assigns = " ".join(
            f"w{f} = {weight_bits}'sd{int(weight_codes[k, f])};".replace("'sd-", "'sd0 - ")
            for f in range(n_features)
        )
        bias_txt = f"bias = {score_bits}'sd{int(bias_codes[k])};".replace("'sd-", "'sd0 - ")
        lines.append(f"      {counter_bits}'d{k}: begin {assigns} {bias_txt} end")
    default_assigns = " ".join(f"w{f} = 0;" for f in range(n_features)) + " bias = 0;"
    lines.append(f"      default: begin {default_assigns} end")
    lines.append("    endcase")
    lines.append("  end")
    lines.append("")

    # Compute engine: folded multiply-accumulate over the selected support vector.
    lines.append("  // Folded compute engine: m multipliers + multi-operand adder.")
    terms = []
    for f in range(n_features):
        lines.append(
            f"  wire [{input_bits - 1}:0] x{f} = "
            f"features[{(f + 1) * input_bits - 1}:{f * input_bits}];"
        )
        terms.append(f"$signed({{1'b0, x{f}}}) * w{f}")
    lines.append(
        "  assign score = " + "\n               + ".join(terms) + "\n               + bias;"
    )
    lines.append("")

    # Control + voter.
    lines.extend(
        [
            "  // Control counter and sequential argmax voter.",
            "  always @(posedge clk) begin",
            "    if (rst) begin",
            "      sv_counter      <= 0;",
            "      best_score      <= 0;",
            "      predicted_class <= 0;",
            "      done            <= 1'b0;",
            "    end else if (start || sv_counter != 0) begin",
            "      if (sv_counter == 0 || score > best_score) begin",
            "        best_score      <= score;",
            "        predicted_class <= sv_counter;",
            "      end",
            "      if (sv_counter == N_CLASSIFIERS - 1) begin",
            "        sv_counter <= 0;",
            "        done       <= 1'b1;",
            "      end else begin",
            "        sv_counter <= sv_counter + 1'b1;",
            "        done       <= 1'b0;",
            "      end",
            "    end",
            "  end",
            "",
            "endmodule",
        ]
    )
    return "\n".join(lines) + "\n"
