"""Simulation support: gate-level logic simulation and cycle-accurate
execution of the sequential SVM architecture.

Three simulators live here:

* :func:`simulate_sequential_reference` — interpreted per-cycle walk of a
  *clocked* netlist (real D flip-flops built through the
  :meth:`~repro.hw.netlist.GateNetlist.declare_dff` /
  :meth:`~repro.hw.netlist.GateNetlist.bind_dff` feedback API).  It is the
  oracle the bit-parallel sequential engine
  (:mod:`repro.perf.seqsim`) is verified against and the baseline its
  benchmarks measure speedups over.
* :func:`simulate_combinational` — zero-delay event-free evaluation of an
  explicit :class:`~repro.hw.netlist.GateNetlist`.  Used by the verification
  tests to prove that the generated adder / multiplier / MUX / comparator
  netlists compute exactly what the integer behavioural model says they
  should.  Evaluation runs through the compiled bit-parallel engine of
  :mod:`repro.perf` (the program is compiled once per netlist and cached);
  the original interpreted gate walk is kept as
  :func:`simulate_combinational_reference` and serves as the oracle the
  compiled engine is verified against.
* :class:`SequentialDatapathSimulator` — a cycle-by-cycle model of the
  paper's sequential SVM (Fig. 1): every cycle the control counter selects a
  support vector, the compute engine produces its weighted sum, and the voter
  updates its best-score / best-class registers.  The trace it produces is
  compared bit-exactly against the quantized software model.  The scalar
  :meth:`~SequentialDatapathSimulator.run` is the trace-producing reference;
  :meth:`~SequentialDatapathSimulator.run_batch` computes the same
  predictions for whole batches with one matmul plus a first-max-wins argmax
  that preserves the strict ``A > B`` comparator semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.hw.cells import CellLibrary
from repro.hw.netlist import GateNetlist
from repro.hw.pdk import EGFET_PDK


def simulate_combinational(
    netlist: GateNetlist,
    input_values: Dict[str, int],
    library: Optional[CellLibrary] = None,
) -> Dict[str, int]:
    """Evaluate a combinational netlist for one input vector.

    ``input_values`` maps every primary-input net to 0/1.  Returns the value
    of every net (inputs, internal nets and outputs).  The netlist is
    compiled to a flat bit-op program on first use (cached on the netlist)
    and evaluated by the bit-parallel engine; results are bit-identical to
    :func:`simulate_combinational_reference`.
    """
    from repro.perf.bitsim import evaluator_for

    library = library or EGFET_PDK
    missing = [net for net in netlist.inputs if net not in input_values]
    if missing:
        raise ValueError(f"missing values for primary inputs: {missing}")
    evaluator = evaluator_for(netlist, library)
    state = evaluator.evaluate_single(
        [input_values[net] for net in netlist.inputs]
    )
    return {net: state[slot] for net, slot in evaluator.program.net_slots.items()}


def simulate_combinational_batch(
    netlist: GateNetlist,
    input_bits: np.ndarray,
    library: Optional[CellLibrary] = None,
    opt_level: int = 0,
    engine: str = "auto",
) -> np.ndarray:
    """Bit-parallel sweep: primary-output values for a batch of input vectors.

    ``input_bits`` has shape ``(n_vectors, n_inputs)`` with columns in
    ``netlist.inputs`` order; returns ``(n_vectors, n_outputs)`` 0/1 values
    with columns in ``netlist.outputs`` order.  64 vectors are evaluated per
    ``uint64`` word — this is the fast path for randomized verification
    sweeps (see :mod:`repro.perf`).  ``opt_level > 0`` evaluates the
    :mod:`repro.hw.opt` pass-optimized program instead of the raw one (same
    outputs, fewer ops; 0 = raw, the oracle); ``engine`` selects the
    execution backend (see :mod:`repro.perf.engines`).
    """
    from repro.perf.bitsim import simulate_netlist_batch

    return simulate_netlist_batch(
        netlist, input_bits, library, opt_level=opt_level, engine=engine
    )


def simulate_combinational_reference(
    netlist: GateNetlist,
    input_values: Dict[str, int],
    library: Optional[CellLibrary] = None,
) -> Dict[str, int]:
    """Interpreted per-gate evaluation (the original dict-walk simulator).

    Kept as the oracle for the compiled engine and as the baseline the
    throughput benchmarks measure speedups against.  Gates are evaluated in
    creation order, which the :class:`GateNetlist` builder guarantees to be
    topological.
    """
    library = library or EGFET_PDK
    values: Dict[str, int] = {
        GateNetlist.CONST_ZERO: 0,
        GateNetlist.CONST_ONE: 1,
    }
    missing = [net for net in netlist.inputs if net not in input_values]
    if missing:
        raise ValueError(f"missing values for primary inputs: {missing}")
    for net in netlist.inputs:
        values[net] = 1 if input_values[net] else 0

    for gate in netlist.gates:
        cell = library[gate.cell]
        ins = tuple(values[pin] for pin in gate.inputs)
        outs = cell.evaluate(ins)
        for net, val in zip(gate.outputs, outs):
            values[net] = val
    return values


def simulate_sequential_reference(
    netlist: GateNetlist,
    input_values: Dict[str, int],
    cycles: int,
    init: Optional[Dict[str, int]] = None,
    library: Optional[CellLibrary] = None,
) -> np.ndarray:
    """Interpreted per-cycle walk of a clocked netlist (one input vector).

    The sequential analogue of :func:`simulate_combinational_reference` and
    the oracle the bit-parallel engine (:mod:`repro.perf.seqsim`) is
    verified against: every cycle the combinational gates are evaluated one
    by one with the current flip-flop values, the primary-output values seen
    *during* the cycle are recorded, and the registers then load their D
    inputs.  Flip-flops power on to
    :attr:`~repro.hw.netlist.GateNetlist.dff_init` (``init`` overrides per
    instance name or Q net).  Returns a ``(cycles, n_outputs)`` 0/1 matrix
    in ``netlist.outputs`` column order.
    """
    library = library or EGFET_PDK
    sequential = netlist.sequential_gates(library)
    unbound = [g.name for g in sequential if not g.inputs]
    if unbound:
        raise ValueError(
            f"netlist {netlist.name!r} has unbound flip-flops {unbound}; "
            "call bind_dff before simulating"
        )
    sequential_ids = {id(g) for g in sequential}
    missing = [net for net in netlist.inputs if net not in input_values]
    if missing:
        raise ValueError(f"missing values for primary inputs: {missing}")
    state: Dict[str, int] = {
        g.name: int(netlist.dff_init.get(g.name, 0)) & 1 for g in sequential
    }
    if init:
        by_q = {g.outputs[0]: g.name for g in sequential}
        for key, value in init.items():
            name = key if key in state else by_q.get(key)
            if name is None:
                raise KeyError(f"unknown flip-flop {key!r}")
            state[name] = int(value) & 1

    trace = np.zeros((int(cycles), len(netlist.outputs)), dtype=np.int64)
    for t in range(int(cycles)):
        values: Dict[str, int] = {
            GateNetlist.CONST_ZERO: 0,
            GateNetlist.CONST_ONE: 1,
        }
        for net in netlist.inputs:
            values[net] = 1 if input_values[net] else 0
        for gate in sequential:
            values[gate.outputs[0]] = state[gate.name]
        for gate in netlist.gates:
            if id(gate) in sequential_ids:
                continue
            cell = library[gate.cell]
            ins = tuple(values[pin] for pin in gate.inputs)
            outs = cell.evaluate(ins)
            for net, val in zip(gate.outputs, outs):
                values[net] = val
        trace[t] = [values[net] for net in netlist.outputs]
        for gate in sequential:
            state[gate.name] = values[gate.inputs[0]]
    return trace


def _validate_batch_codes(input_codes: np.ndarray, n_features: int) -> np.ndarray:
    """Normalize a batch of quantized input vectors to ``(n, n_features)`` int64.

    Shared by both simulators' ``run_batch``: 1-D inputs are treated as a
    single sample, feature-count mismatches raise like the scalar ``run()``
    does, and an empty batch stays a well-typed ``(0, n_features)`` array.
    """
    input_codes = np.asarray(input_codes, dtype=np.int64)
    if input_codes.ndim == 1:
        input_codes = input_codes.reshape(1, -1)
    if input_codes.ndim != 2 or input_codes.shape[1] != n_features:
        raise ValueError(
            f"expected batches of {n_features} input codes, "
            f"got shape {input_codes.shape}"
        )
    return input_codes


@dataclass
class CycleTrace:
    """State of the sequential SVM datapath after one cycle."""

    cycle: int
    selected_classifier: int
    weights: np.ndarray
    bias: int
    score: int
    best_score: int
    best_class: int
    comparator_fired: bool


@dataclass
class SimulationResult:
    """Full multi-cycle execution record for one input sample."""

    predicted_class: int
    n_cycles: int
    trace: List[CycleTrace] = field(default_factory=list)

    def scores(self) -> List[int]:
        """Per-classifier integer scores in evaluation order."""
        return [step.score for step in self.trace]


class SequentialDatapathSimulator:
    """Cycle-accurate model of the proposed sequential SVM circuit.

    Parameters
    ----------
    weight_codes:
        Integer weight codes, shape ``(n_classifiers, n_features)`` — the
        values hardwired into MUX storage.
    bias_codes:
        Integer bias codes, shape ``(n_classifiers,)``.

    The simulator reproduces the exact register-transfer behaviour described
    in the paper:

    * cycle ``k``: the control counter value ``k`` selects support vector
      ``k`` from storage; the compute engine produces
      ``score_k = sum_i w[k, i] * x[i] + b[k]``;
    * the voter compares ``score_k`` against the stored best score with a
      strict ``A > B`` comparator and, when it fires, loads the new score and
      the counter value into its two registers;
    * after ``n_classifiers`` cycles the best-class register holds the
      prediction and the controller terminates.

    Cycle 0 initialises the registers with the first classifier's result, as
    the hardware reset strategy prescribes.
    """

    def __init__(self, weight_codes: np.ndarray, bias_codes: np.ndarray) -> None:
        self.weight_codes = np.asarray(weight_codes, dtype=np.int64)
        self.bias_codes = np.asarray(bias_codes, dtype=np.int64)
        if self.weight_codes.ndim != 2:
            raise ValueError("weight_codes must be 2-D")
        if self.bias_codes.shape[0] != self.weight_codes.shape[0]:
            raise ValueError("bias_codes and weight_codes disagree on classifier count")

    @property
    def n_classifiers(self) -> int:
        return int(self.weight_codes.shape[0])

    @property
    def n_features(self) -> int:
        return int(self.weight_codes.shape[1])

    def run(self, input_codes: Sequence[int]) -> SimulationResult:
        """Simulate the classification of one quantized input vector."""
        x = np.asarray(input_codes, dtype=np.int64)
        if x.ndim != 1 or x.shape[0] != self.n_features:
            raise ValueError(
                f"expected {self.n_features} input codes, got shape {x.shape}"
            )
        trace: List[CycleTrace] = []
        best_score = 0
        best_class = 0
        for cycle in range(self.n_classifiers):
            weights = self.weight_codes[cycle]
            bias = int(self.bias_codes[cycle])
            score = int(weights @ x) + bias
            if cycle == 0:
                fired = True
            else:
                fired = score > best_score
            if fired:
                best_score = score
                best_class = cycle
            trace.append(
                CycleTrace(
                    cycle=cycle,
                    selected_classifier=cycle,
                    weights=weights.copy(),
                    bias=bias,
                    score=score,
                    best_score=best_score,
                    best_class=best_class,
                    comparator_fired=fired,
                )
            )
        return SimulationResult(
            predicted_class=best_class, n_cycles=self.n_classifiers, trace=trace
        )

    def run_batch(self, input_codes: np.ndarray) -> np.ndarray:
        """Predicted class ids for a batch of quantized input vectors.

        Vectorized equivalent of running :meth:`run` per sample: one
        ``codes @ W.T + b`` matmul produces every classifier score, and
        ``argmax`` — which returns the *first* maximal index — reproduces the
        strict ``A > B`` comparator exactly (a later classifier only replaces
        the stored best when strictly greater, so ties keep the earlier id).
        Bit-identical to the scalar oracle; see the equivalence tests.
        """
        input_codes = _validate_batch_codes(input_codes, self.n_features)
        if input_codes.shape[0] == 0:
            return np.zeros(0, dtype=np.int64)
        scores = input_codes @ self.weight_codes.T + self.bias_codes
        return np.argmax(scores, axis=1).astype(np.int64)


class ParallelDatapathSimulator:
    """Behavioural model of a fully-parallel bespoke classifier.

    All classifier scores are produced combinationally in one evaluation; an
    argmax (OvR) or a pairwise vote (OvO) resolves the class.  Used to verify
    the baseline architectures against their quantized software models.
    """

    def __init__(
        self,
        weight_codes: np.ndarray,
        bias_codes: np.ndarray,
        strategy: str = "ovr",
        pairs: Optional[Sequence[tuple]] = None,
        n_classes: Optional[int] = None,
    ) -> None:
        if strategy not in ("ovr", "ovo"):
            raise ValueError(f"unknown strategy {strategy!r}")
        if strategy == "ovo" and pairs is None:
            raise ValueError("OvO simulation needs the classifier pairs")
        self.weight_codes = np.asarray(weight_codes, dtype=np.int64)
        self.bias_codes = np.asarray(bias_codes, dtype=np.int64)
        self.strategy = strategy
        self.pairs = list(pairs) if pairs is not None else None
        if n_classes is None:
            if strategy == "ovr":
                n_classes = self.weight_codes.shape[0]
            else:
                n_classes = max(max(p) for p in self.pairs) + 1
        self.n_classes = int(n_classes)
        if strategy == "ovo":
            # Pair-incidence matrix P[k, j]=+1, P[k, i]=-1 for pair k=(i, j):
            # batch votes and margins then reduce to single matmuls.
            self._pair_matrix = np.zeros(
                (len(self.pairs), self.n_classes), dtype=np.int64
            )
            self._base_votes = np.zeros(self.n_classes, dtype=np.int64)
            for k, (i, j) in enumerate(self.pairs):
                self._pair_matrix[k, j] = 1
                self._pair_matrix[k, i] = -1
                self._base_votes[i] += 1

    def run(self, input_codes: Sequence[int]) -> int:
        """Classify one quantized input vector; returns the class id."""
        x = np.asarray(input_codes, dtype=np.int64)
        scores = self.weight_codes @ x + self.bias_codes
        if self.strategy == "ovr":
            return int(np.argmax(scores))
        votes = np.zeros(self.n_classes, dtype=np.int64)
        margins = np.zeros(self.n_classes, dtype=np.int64)
        for k, (i, j) in enumerate(self.pairs):
            if scores[k] >= 0:
                votes[j] += 1
            else:
                votes[i] += 1
            margins[j] += scores[k]
            margins[i] -= scores[k]
        order = sorted(
            range(self.n_classes), key=lambda c: (votes[c], margins[c]), reverse=True
        )
        return int(order[0])

    def run_batch(self, input_codes: np.ndarray) -> np.ndarray:
        """Predicted class ids for a batch of quantized input vectors.

        Vectorized equivalent of :meth:`run` per sample.  OvR resolves with a
        first-max-wins argmax; OvO accumulates votes and signed margins per
        class and resolves lexicographically by ``(votes, margins)`` with
        ties going to the lowest class id — exactly the scalar stable-sort
        semantics.  Bit-identical to the scalar oracle.
        """
        input_codes = _validate_batch_codes(
            input_codes, int(self.weight_codes.shape[1])
        )
        if input_codes.shape[0] == 0:
            return np.zeros(0, dtype=np.int64)
        scores = input_codes @ self.weight_codes.T + self.bias_codes
        if self.strategy == "ovr":
            return np.argmax(scores, axis=1).astype(np.int64)

        # Pair k=(i, j): j gains a vote when score_k >= 0, i otherwise, and
        # the margin moves by +-score_k.  With P[k, j]=+1 / P[k, i]=-1 the
        # whole tally is wins @ P (plus i's guaranteed vote per lost pair,
        # precomputed in _base_votes) and scores @ P.
        votes = (scores >= 0).astype(np.int64) @ self._pair_matrix + self._base_votes
        margins = scores @ self._pair_matrix
        # Lexicographic first-max: among classes with maximal votes, take the
        # maximal margin; among those, argmax picks the lowest class id.
        best_votes = votes.max(axis=1, keepdims=True)
        candidate = votes == best_votes
        masked = np.where(candidate, margins, np.iinfo(np.int64).min)
        best_margin = masked.max(axis=1, keepdims=True)
        return np.argmax(candidate & (masked == best_margin), axis=1).astype(np.int64)
