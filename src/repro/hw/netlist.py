"""Netlist abstractions for the printed-hardware estimation flow.

Two levels of structural detail coexist:

* :class:`HardwareBlock` — the workhorse of the cost-estimation flow.  A
  block is characterised by its cell inventory (``counts``), the cell types
  along its critical path (``path``) and its expected switching activity per
  evaluation (``toggles``).  Blocks compose hierarchically (series /
  parallel), so a whole classifier design is itself one block whose area,
  delay and energy roll up from its children.  This keeps cost estimation of
  designs with 10^5 cells instantaneous while remaining faithful to the
  structural description (exact per-cell-type counts derived from the
  generator formulas).

* :class:`GateNetlist` — an explicit gate-level netlist (cells + nets with
  full connectivity).  The RTL generators can emit these for concrete
  instances; they are used by the gate-level logic simulator
  (:mod:`repro.hw.simulate`) to verify generated arithmetic against the
  integer behavioural model, and by the Verilog writer
  (:mod:`repro.hw.verilog`).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.hw.cells import CellLibrary


# --------------------------------------------------------------------------- #
# Aggregate (macro) hardware blocks
# --------------------------------------------------------------------------- #
class HardwareBlock:
    """A hardware component characterised by counts, critical path and activity.

    Parameters
    ----------
    name:
        Hierarchical instance name (used in reports).
    counts:
        Total number of cells per cell type in the block.
    path:
        Number of cells of each type along the block's critical path.  The
        block delay is the sum of those cells' delays.
    toggles:
        Expected number of output transitions per *evaluation* of the block,
        per cell type (fractional values allowed — they are expectations).
        Includes glitching.
    children:
        Sub-blocks this block was composed from (kept for reporting).
    """

    def __init__(
        self,
        name: str,
        counts: Optional[Dict[str, int]] = None,
        path: Optional[Dict[str, int]] = None,
        toggles: Optional[Dict[str, float]] = None,
        children: Optional[Sequence["HardwareBlock"]] = None,
    ) -> None:
        self.name = name
        self.counts: Counter = Counter(counts or {})
        self.path: Counter = Counter(path or {})
        self.toggles: Dict[str, float] = dict(toggles or {})
        self.children: List[HardwareBlock] = list(children or [])

    # -- composition ------------------------------------------------------ #
    def add(self, other: "HardwareBlock", in_series: bool = False) -> "HardwareBlock":
        """Merge ``other`` into this block.

        ``in_series=True`` means ``other`` is on the same combinational path
        (its path cells extend this block's critical path); ``False`` means
        it operates in parallel (the critical path is the longer of the two).
        """
        self.counts.update(other.counts)
        for cell, t in other.toggles.items():
            self.toggles[cell] = self.toggles.get(cell, 0.0) + t
        if in_series:
            self.path.update(other.path)
        else:
            # Parallel composition: keep whichever path is worse.  Delay
            # comparison needs a library, so approximate with the FA-heavy
            # heuristic: compare weighted level counts.  The precise delay is
            # always recomputed from `path` with the library at report time,
            # so only the *choice* of the representative path is heuristic.
            if _path_weight(other.path) > _path_weight(self.path):
                self.path = Counter(other.path)
        self.children.append(other)
        return self

    def scaled(self, factor: int, name: Optional[str] = None) -> "HardwareBlock":
        """Return ``factor`` parallel copies of this block as a new block."""
        if factor < 1:
            raise ValueError("factor must be >= 1")
        counts = Counter({c: n * factor for c, n in self.counts.items()})
        toggles = {c: t * factor for c, t in self.toggles.items()}
        return HardwareBlock(
            name=name or f"{self.name}_x{factor}",
            counts=counts,
            path=Counter(self.path),
            toggles=toggles,
            children=[self],
        )

    # -- physical roll-ups ------------------------------------------------ #
    def n_cells(self) -> int:
        """Total number of cells in the block."""
        return int(sum(self.counts.values()))

    def area_cm2(self, library: CellLibrary) -> float:
        """Total printed area of the block."""
        return library.area_of(self.counts)

    def static_power_mw(self, library: CellLibrary) -> float:
        """Static (cross-current) power of the block."""
        return library.static_power_of(self.counts)

    def critical_path_delay_ms(self, library: CellLibrary) -> float:
        """Delay along the recorded critical path."""
        return library.delay_of_path(self.path)

    def logic_depth(self) -> int:
        """Number of cells along the critical path."""
        return int(sum(self.path.values()))

    def switching_energy_mj(self, library: CellLibrary) -> float:
        """Expected switching energy per evaluation of the block."""
        return library.switch_energy_of(self.toggles)

    # -- reporting --------------------------------------------------------- #
    def cell_report(self) -> Dict[str, int]:
        """Cell inventory as a plain dictionary (sorted by cell name)."""
        return {name: int(self.counts[name]) for name in sorted(self.counts)}

    def hierarchy_report(self, library: CellLibrary, indent: int = 0) -> str:
        """Readable area/cell breakdown of the block hierarchy."""
        pad = "  " * indent
        lines = [
            f"{pad}{self.name}: {self.n_cells()} cells, "
            f"{self.area_cm2(library):.3f} cm^2, depth {self.logic_depth()}"
        ]
        for child in self.children:
            lines.append(child.hierarchy_report(library, indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HardwareBlock({self.name!r}, cells={self.n_cells()})"


def _path_weight(path: Counter) -> float:
    """Heuristic path weight used only to pick the longer of two paths."""
    # FA and DFF are the slowest common cells; weight by typical delay ratios.
    weights = {"FA": 3.2, "DFF": 4.0, "XOR2": 1.9, "XNOR2": 1.9, "HA": 2.0, "ADC1": 53.0}
    return sum(weights.get(cell, 1.0) * n for cell, n in path.items())


def series(name: str, blocks: Iterable[HardwareBlock]) -> HardwareBlock:
    """Compose blocks whose critical paths are concatenated (cascade)."""
    result = HardwareBlock(name)
    for block in blocks:
        result.add(block, in_series=True)
    return result


def parallel(name: str, blocks: Iterable[HardwareBlock]) -> HardwareBlock:
    """Compose blocks that operate side by side (critical path = worst child)."""
    result = HardwareBlock(name)
    for block in blocks:
        result.add(block, in_series=False)
    return result


def empty_block(name: str = "empty") -> HardwareBlock:
    """A block with no hardware (used as a neutral element in folds)."""
    return HardwareBlock(name)


# --------------------------------------------------------------------------- #
# Explicit gate-level netlists
# --------------------------------------------------------------------------- #
@dataclass
class GateInstance:
    """One cell instance in a :class:`GateNetlist`."""

    name: str
    cell: str
    inputs: Tuple[str, ...]
    outputs: Tuple[str, ...]


@dataclass
class GateNetlist:
    """An explicit structural netlist of library cells.

    Nets are identified by string names.  Primary inputs/outputs are declared
    explicitly; constant nets ``"1'b0"`` and ``"1'b1"`` are always available.

    Clocked netlists use the two-phase flip-flop API: :meth:`declare_dff`
    announces a register output (so combinational logic may read it before
    the data input exists) and :meth:`bind_dff` closes the feedback loop —
    the only way to express e.g. a counter whose increment logic reads its
    own state.  Power-on values live in :attr:`dff_init` (per instance,
    default 0); the sequential engine (:mod:`repro.perf.seqsim`) and the
    interpreted reference walk both honour them.
    """

    name: str
    inputs: List[str] = field(default_factory=list)
    outputs: List[str] = field(default_factory=list)
    gates: List[GateInstance] = field(default_factory=list)
    #: Power-on value (0/1) of each flip-flop, keyed by instance name.
    #: Instances absent from the map reset to 0.
    dff_init: Dict[str, int] = field(default_factory=dict)
    _net_drivers: Dict[str, str] = field(default_factory=dict)
    _instance_names: set = field(default_factory=set)
    #: Lazily-built (signature, gate-by-name map, fanout counter) caches so
    #: driver_of / fanout_of are O(1) instead of scanning every gate.
    _index_cache: Optional[tuple] = field(
        default=None, init=False, repr=False, compare=False
    )
    #: Monotonic counter bumped by every structural mutation.  Derived caches
    #: (the index maps here, the compiled programs of :mod:`repro.perf` and
    #: the optimized netlists of :mod:`repro.hw.opt`) key on it, so *any*
    #: rewrite — not just growth — invalidates them.
    _structure_version: int = field(default=0, init=False, repr=False, compare=False)

    CONST_ZERO = "1'b0"
    CONST_ONE = "1'b1"

    # -- construction ------------------------------------------------------ #
    def add_input(self, net: str) -> str:
        if net in self.inputs:
            raise ValueError(f"duplicate primary input {net!r}")
        if net in self._net_drivers:
            raise ValueError(f"net {net!r} already driven by {self._net_drivers[net]!r}")
        self.inputs.append(net)
        self._net_drivers[net] = "<primary-input>"
        self._structure_version += 1
        return net

    def add_inputs(self, prefix: str, width: int) -> List[str]:
        """Declare a bus of primary inputs ``prefix[0] .. prefix[width-1]``."""
        return [self.add_input(f"{prefix}[{i}]") for i in range(width)]

    def mark_output(self, net: str) -> None:
        if net not in self._net_drivers and net not in (self.CONST_ZERO, self.CONST_ONE):
            raise ValueError(f"cannot mark undriven net {net!r} as output")
        if net not in self.outputs:
            self.outputs.append(net)
            self._structure_version += 1

    def add_gate(
        self,
        cell: str,
        inputs: Sequence[str],
        outputs: Optional[Sequence[str]] = None,
        name: Optional[str] = None,
    ) -> Tuple[str, ...]:
        """Instantiate a cell; returns the names of its output nets."""
        index = len(self.gates)
        inst_name = name or f"u{index}"
        if inst_name in self._instance_names:
            raise ValueError(f"duplicate instance name {inst_name!r}")
        for net in inputs:
            if net not in self._net_drivers and net not in (
                self.CONST_ZERO,
                self.CONST_ONE,
            ):
                raise ValueError(f"gate {inst_name!r} reads undriven net {net!r}")
        if outputs is None:
            outputs = [f"{inst_name}_o{k}" for k in range(self._n_outputs_of(cell))]
        for net in outputs:
            if net in self._net_drivers:
                raise ValueError(
                    f"net {net!r} already driven by {self._net_drivers[net]!r}"
                )
            self._net_drivers[net] = inst_name
        gate = GateInstance(
            name=inst_name, cell=cell, inputs=tuple(inputs), outputs=tuple(outputs)
        )
        self.gates.append(gate)
        self._instance_names.add(inst_name)
        self._structure_version += 1
        return gate.outputs

    # -- sequential construction ------------------------------------------- #
    def declare_dff(
        self,
        q: str,
        name: Optional[str] = None,
        cell: str = "DFF",
        init: int = 0,
    ) -> str:
        """Declare a flip-flop output ``q`` with its data input still open.

        The returned net is immediately readable by combinational logic,
        which is what makes feedback loops (counter increment, accumulator
        update) expressible in the append-only builder.  The instance stays
        *unbound* until :meth:`bind_dff` connects its D pin; compiling or
        simulating a netlist with unbound flip-flops raises.
        """
        index = len(self.gates)
        inst_name = name or f"u{index}"
        if inst_name in self._instance_names:
            raise ValueError(f"duplicate instance name {inst_name!r}")
        if q in self._net_drivers:
            raise ValueError(f"net {q!r} already driven by {self._net_drivers[q]!r}")
        self._net_drivers[q] = inst_name
        gate = GateInstance(name=inst_name, cell=cell, inputs=(), outputs=(q,))
        self.gates.append(gate)
        self._instance_names.add(inst_name)
        if init:
            self.dff_init[inst_name] = 1
        self._structure_version += 1
        return q

    def bind_dff(self, q: str, d: str) -> None:
        """Connect the data input of the flip-flop driving ``q`` to net ``d``."""
        driver = self._net_drivers.get(q)
        if driver in (None, "<primary-input>"):
            raise ValueError(f"net {q!r} is not driven by a flip-flop")
        gate_by_name, _ = self._indices()
        gate = gate_by_name[driver]
        if gate.inputs:
            raise ValueError(f"flip-flop {gate.name!r} is already bound")
        if d not in self._net_drivers and d not in (self.CONST_ZERO, self.CONST_ONE):
            raise ValueError(f"flip-flop {gate.name!r} reads undriven net {d!r}")
        gate.inputs = (d,)
        self._structure_version += 1
        self._index_cache = None

    def add_dff(
        self, d: str, q: str, name: Optional[str] = None, init: int = 0
    ) -> str:
        """One-call flip-flop for the feed-forward case (``d`` already driven)."""
        self.declare_dff(q, name=name, init=init)
        self.bind_dff(q, d)
        return q

    def sequential_gates(self, library: Optional[CellLibrary] = None) -> List[GateInstance]:
        """Flip-flop instances, in declaration order.

        With a library, any cell whose :attr:`~repro.hw.cells.CellType.is_sequential`
        flag is set counts; without one, the generic ``DFF`` name is used.
        """
        if library is None:
            return [g for g in self.gates if g.cell == "DFF"]
        return [g for g in self.gates if library[g.cell].is_sequential]

    def unbound_dffs(self) -> List[str]:
        """Names of flip-flops declared but never bound (must be empty to run)."""
        return [g.name for g in self.gates if not g.inputs and g.cell == "DFF"]

    def note_structural_change(self) -> None:
        """Declare an in-place structural rewrite of the netlist.

        The builder API only ever appends, but optimization passes (and any
        external tooling) may rewrite ``gates`` / ``outputs`` directly —
        replacing a gate's cell, rewiring pins, dropping gates.  Calling this
        afterwards rebuilds the derived driver/instance maps from the current
        structure and bumps the structure version, which invalidates every
        version-keyed cache (index maps, compiled programs, optimized
        netlists) even when the mutation left all the counts unchanged.
        """
        self._structure_version += 1
        self._index_cache = None
        drivers: Dict[str, str] = {net: "<primary-input>" for net in self.inputs}
        for gate in self.gates:
            for net in gate.outputs:
                drivers[net] = gate.name
        self._net_drivers = drivers
        self._instance_names = {gate.name for gate in self.gates}

    @staticmethod
    def _n_outputs_of(cell: str) -> int:
        # HA/FA produce (sum, carry); everything else in the generic set is 1-output.
        return 2 if cell in ("HA", "FA") else 1

    # -- queries ----------------------------------------------------------- #
    def cell_counts(self) -> Counter:
        """Number of instances per cell type."""
        return Counter(g.cell for g in self.gates)

    def n_gates(self) -> int:
        return len(self.gates)

    def nets(self) -> List[str]:
        """All declared nets (inputs plus every gate output)."""
        nets = list(self.inputs)
        for gate in self.gates:
            nets.extend(gate.outputs)
        return nets

    def structural_signature(self) -> tuple:
        """Cheap signature identifying the current netlist structure.

        Combines the mutation version with the gate/input/output counts:
        growth through the builder API and in-place rewrites announced via
        :meth:`note_structural_change` both change it, so any cache keyed on
        it is invalidated by every structural mutation.
        """
        return (
            self._structure_version,
            len(self.gates),
            len(self.inputs),
            len(self.outputs),
        )

    def _indices(self) -> tuple:
        """Precomputed (gate-by-name, fanout-count) maps, version-invalidated."""
        signature = self.structural_signature()
        if self._index_cache is not None and self._index_cache[0] == signature:
            return self._index_cache[1], self._index_cache[2]
        gate_by_name = {gate.name: gate for gate in self.gates}
        fanout: Counter = Counter()
        for gate in self.gates:
            fanout.update(gate.inputs)
        for net in self.outputs:
            fanout[net] += 1
        self._index_cache = (signature, gate_by_name, fanout)
        return gate_by_name, fanout

    def driver_of(self, net: str) -> Optional[GateInstance]:
        """The gate driving ``net`` (None for primary inputs / constants)."""
        driver = self._net_drivers.get(net)
        if driver in (None, "<primary-input>"):
            return None
        gate_by_name, _ = self._indices()
        return gate_by_name.get(driver)

    def fanout_of(self, net: str) -> int:
        """Number of gate inputs the net drives (plus 1 if it is an output)."""
        _, fanout = self._indices()
        return int(fanout.get(net, 0))

    def to_block(self, name: Optional[str] = None, library: Optional[CellLibrary] = None) -> HardwareBlock:
        """Collapse the explicit netlist into a :class:`HardwareBlock`.

        The critical path is extracted by longest-path analysis over the
        gate graph (unit = one cell of the gate's type); activity defaults to
        0.5 toggles per gate per evaluation, which the caller may override.
        :func:`repro.hw.opt.netlist_to_block` is the same lowering with an
        optional optimization level applied first.
        """
        from repro.hw.opt.lowering import netlist_to_block

        return netlist_to_block(self, name=name, library=library)
