"""Printed-hardware modelling substrate.

This package replaces the commercial flow the paper uses (Synopsys Design
Compiler + PrimeTime with the EGFET PDK) with a self-contained estimation
flow:

* :mod:`repro.hw.cells` / :mod:`repro.hw.pdk` — the printed (EGFET-like)
  standard-cell library and the printed-battery models.
* :mod:`repro.hw.netlist` — macro-level :class:`HardwareBlock` aggregation
  and explicit gate-level :class:`GateNetlist` structures.
* :mod:`repro.hw.rtl` — generators for adders, multipliers, MUX storage,
  comparators, registers and counters.
* :mod:`repro.hw.synthesis` — datapath assembly (folded and bespoke MACs).
* :mod:`repro.hw.timing` / :mod:`repro.hw.power` / :mod:`repro.hw.area` —
  static timing, power/energy and area roll-ups.
* :mod:`repro.hw.simulate` — gate-level logic simulation and the
  cycle-accurate sequential-SVM simulator.
* :mod:`repro.hw.verilog` — structural / behavioural Verilog export.
"""

from repro.hw.cells import CellLibrary, CellType
from repro.hw.netlist import GateNetlist, HardwareBlock, parallel, series
from repro.hw.pdk import (
    DEFAULT_PDK_PARAMETERS,
    EGFET_PDK,
    MOLEX_30MW,
    PDKParameters,
    PRINTED_BATTERIES,
    PrintedBattery,
    build_printed_library,
)
from repro.hw.area import AreaReport, analyze_area
from repro.hw.floorplan import (
    Floorplan,
    Floorplanner,
    compare_manufacturability,
    cost_per_working_unit,
    fabrication_yield,
)
from repro.hw.power import PowerReport, analyze_power
from repro.hw.timing import TimingReport, analyze_timing
from repro.hw.simulate import (
    ParallelDatapathSimulator,
    SequentialDatapathSimulator,
    simulate_combinational,
    simulate_combinational_batch,
    simulate_combinational_reference,
)

__all__ = [
    "CellLibrary",
    "CellType",
    "GateNetlist",
    "HardwareBlock",
    "parallel",
    "series",
    "DEFAULT_PDK_PARAMETERS",
    "EGFET_PDK",
    "MOLEX_30MW",
    "PDKParameters",
    "PRINTED_BATTERIES",
    "PrintedBattery",
    "build_printed_library",
    "AreaReport",
    "analyze_area",
    "Floorplan",
    "Floorplanner",
    "compare_manufacturability",
    "cost_per_working_unit",
    "fabrication_yield",
    "PowerReport",
    "analyze_power",
    "TimingReport",
    "analyze_timing",
    "ParallelDatapathSimulator",
    "SequentialDatapathSimulator",
    "simulate_combinational",
    "simulate_combinational_batch",
    "simulate_combinational_reference",
]
