"""Power and energy estimation for printed designs.

Printed EGFET logic draws a steady cross-current, so *static* power scales
with the cell inventory and dominates for small or mostly-idle designs (such
as hardwired MUX storage).  *Dynamic* power is the switching energy spent per
evaluation times the evaluation rate; for the deep fully-parallel baselines
this component is substantial because every multiplier and adder toggles (and
glitches) on every evaluation, while the folded sequential design only
activates one classifier's worth of arithmetic per cycle.

The total power and the per-classification energy computed here are the
quantities reported in the paper's Table I (Power in mW, Energy in mJ).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.hw.cells import CellLibrary
from repro.hw.netlist import GateNetlist, HardwareBlock
from repro.hw.pdk import EGFET_PDK


@dataclass
class PowerReport:
    """Breakdown of a design's power and per-classification energy."""

    static_mw: float
    dynamic_mw: float
    frequency_hz: float
    cycles_per_classification: int
    switching_energy_per_cycle_mj: float

    @property
    def total_mw(self) -> float:
        """Total average power (what Table I reports as "Power")."""
        return self.static_mw + self.dynamic_mw

    @property
    def latency_ms(self) -> float:
        """Time to produce one classification."""
        return 1000.0 * self.cycles_per_classification / self.frequency_hz

    @property
    def energy_per_classification_mj(self) -> float:
        """Energy per classification (what Table I reports as "Energy")."""
        return self.total_mw * self.latency_ms / 1000.0

    def __str__(self) -> str:  # pragma: no cover - formatting helper
        return (
            f"power {self.total_mw:.2f} mW "
            f"(static {self.static_mw:.2f} + dynamic {self.dynamic_mw:.2f}), "
            f"latency {self.latency_ms:.1f} ms, "
            f"energy {self.energy_per_classification_mj:.3f} mJ"
        )


class PowerAnalyzer:
    """Estimate power and per-classification energy of a design."""

    def __init__(self, library: Optional[CellLibrary] = None) -> None:
        self.library = library or EGFET_PDK

    def analyze(
        self,
        block: HardwareBlock,
        frequency_hz: float,
        cycles_per_classification: int = 1,
        duty_cycle: float = 1.0,
    ) -> PowerReport:
        """Compute the power report of a design.

        Parameters
        ----------
        block:
            The design; its ``toggles`` field holds the expected output
            transitions per cycle, per cell type.
        frequency_hz:
            Clock (or evaluation) frequency from the timing analysis.
        cycles_per_classification:
            Number of cycles a classification takes: 1 for the fully-parallel
            baselines, ``n_classifiers`` for the sequential architecture.
        duty_cycle:
            Fraction of time the circuit is active.  The paper reports power
            while classifying continuously (duty cycle 1.0); the battery-life
            example explores lower duty cycles.
        """
        if frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        if cycles_per_classification < 1:
            raise ValueError("cycles_per_classification must be >= 1")
        if not 0.0 < duty_cycle <= 1.0:
            raise ValueError("duty_cycle must be in (0, 1]")

        static_mw = block.static_power_mw(self.library)
        energy_per_cycle_mj = block.switching_energy_mj(self.library)
        # mJ per cycle * cycles per second = mW
        dynamic_mw = energy_per_cycle_mj * frequency_hz * duty_cycle
        return PowerReport(
            static_mw=static_mw,
            dynamic_mw=dynamic_mw,
            frequency_hz=frequency_hz,
            cycles_per_classification=cycles_per_classification,
            switching_energy_per_cycle_mj=energy_per_cycle_mj,
        )


def analyze_power(
    block: HardwareBlock,
    frequency_hz: float,
    cycles_per_classification: int = 1,
    library: Optional[CellLibrary] = None,
) -> PowerReport:
    """Convenience wrapper around :class:`PowerAnalyzer`."""
    return PowerAnalyzer(library=library).analyze(
        block, frequency_hz, cycles_per_classification
    )


def analyze_netlist_power(
    netlist: GateNetlist,
    frequency_hz: float,
    cycles_per_classification: int = 1,
    library: Optional[CellLibrary] = None,
    opt_level: Optional[int] = None,
) -> PowerReport:
    """Power report computed from exact gate counts of an explicit netlist.

    ``opt_level`` optionally runs the :mod:`repro.hw.opt` pass pipeline
    first, so static power and switching energy reflect the optimized cell
    inventory — the exact-count companion to the formula-based
    :func:`analyze_power` estimates.
    """
    from repro.hw.opt.lowering import netlist_to_block

    block = netlist_to_block(netlist, library=library, level=opt_level)
    return PowerAnalyzer(library=library).analyze(
        block, frequency_hz, cycles_per_classification
    )
