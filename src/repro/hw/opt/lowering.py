"""Lowering an explicit netlist to a priced :class:`HardwareBlock`.

:func:`netlist_to_block` is the bridge between the optimizer and the
cost-estimation flow: it collapses a (optionally pass-optimized) gate-level
netlist into a :class:`~repro.hw.netlist.HardwareBlock` with *exact* per-cell
counts and a longest-path-extracted critical path, so
:mod:`repro.hw.area` / :mod:`repro.hw.power` / :mod:`repro.hw.timing` can
price the optimized structure right next to their formula-based estimates.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.hw.cells import CellLibrary
from repro.hw.netlist import GateNetlist, HardwareBlock
from repro.hw.opt.passes import DEFAULT_OPAQUE_CELLS
from repro.hw.opt.pipeline import optimize


def netlist_to_block(
    netlist: GateNetlist,
    name: Optional[str] = None,
    library: Optional[CellLibrary] = None,
    level: Optional[int] = None,
    opaque_cells: Iterable[str] = DEFAULT_OPAQUE_CELLS,
) -> HardwareBlock:
    """Collapse a netlist into a :class:`HardwareBlock` with exact gate counts.

    ``level`` optionally runs the :func:`~repro.hw.opt.pipeline.optimize`
    pass pipeline first (None/0 = price the raw netlist).  The critical path
    is extracted by longest-path analysis over the gate graph; activity
    defaults to 0.5 toggles per gate per evaluation (the same convention as
    :meth:`GateNetlist.to_block`), which the caller may override.

    Example::

        block = netlist_to_block(netlist, level=2)     # exact optimized counts
        area = AreaAnalyzer(EGFET_PDK).analyze(block)  # priced like any block
    """
    from repro.hw.timing import longest_path_cells

    if level:
        netlist = optimize(
            netlist, level=level, library=library, opaque_cells=opaque_cells
        ).netlist
    counts = netlist.cell_counts()
    path = longest_path_cells(netlist, library)
    toggles = {cell: 0.5 * n for cell, n in counts.items()}
    return HardwareBlock(
        name=name or netlist.name, counts=counts, path=path, toggles=toggles
    )
