"""Netlist optimization: a pass pipeline over explicit gate-level netlists.

The RTL generators emit netlists verbatim — including logic whose inputs are
tied-off constants (hardwired-coefficient multipliers with zero or
power-of-two weights being the canonical case).  This package optimizes such
netlists through a small pass manager before any downstream layer consumes
them:

* :func:`optimize` — run the pipeline at a given level; returns an
  :class:`OptResult` (optimized :class:`~repro.hw.netlist.GateNetlist` +
  :class:`OptStats` with per-pass removal counts).
* passes — constant propagation, buffer/double-inverter collapsing,
  structural hashing (CSE) and dead-gate elimination
  (:mod:`repro.hw.opt.passes`).
* :func:`check_equivalence` — random-vector bit-parallel equivalence of raw
  vs optimized netlists (the correctness contract of the whole package).
* :func:`netlist_to_block` — lower a (optionally optimized) netlist to a
  priced :class:`~repro.hw.netlist.HardwareBlock` for exact area / power /
  timing next to the formula-based estimates.

Consumers: ``compile_netlist(..., opt_level=...)`` (compiled simulation),
``netlist_to_verilog(..., opt_level=...)`` (export),
``analyze_netlist_timing`` / ``analyze_netlist_area`` /
``analyze_netlist_power`` (pricing) and the Table I ``--opt-level`` report.
"""

from repro.hw.opt.ir import IRGate, IRNetlist
from repro.hw.opt.lowering import netlist_to_block
from repro.hw.opt.passes import (
    COMMUTATIVE_CELLS,
    DEFAULT_OPAQUE_CELLS,
    PASS_FUNCTIONS,
    PassContext,
    buffer_collapse,
    constant_propagation,
    dead_gate_elimination,
    structural_hashing,
)
from repro.hw.opt.pipeline import (
    LEVEL_PASSES,
    MAX_OPT_LEVEL,
    OptimizationError,
    OptResult,
    OptStats,
    check_equivalence,
    optimize,
)

__all__ = [
    "IRGate",
    "IRNetlist",
    "netlist_to_block",
    "COMMUTATIVE_CELLS",
    "DEFAULT_OPAQUE_CELLS",
    "PASS_FUNCTIONS",
    "PassContext",
    "buffer_collapse",
    "constant_propagation",
    "dead_gate_elimination",
    "structural_hashing",
    "LEVEL_PASSES",
    "MAX_OPT_LEVEL",
    "OptimizationError",
    "OptResult",
    "OptStats",
    "check_equivalence",
    "optimize",
]
