"""The netlist optimization passes.

Every pass has the same shape: ``pass_fn(ctx, ir) -> int`` where ``ctx`` is a
:class:`PassContext` (library + per-cell memos), ``ir`` the mutable
:class:`~repro.hw.opt.ir.IRNetlist`, and the return value the number of gates
the pass rewrote or removed (0 = fixpoint reached for this pass).

* **constant propagation** — for every gate fed by tied-off constants (or
  duplicate nets), restrict the cell's truth table to its live support and
  fold the gate: each output becomes a constant, a wire, or a strictly
  smaller library cell (``AND2(a, 1)`` -> wire, ``FA(a, b, 0)`` -> ``HA``,
  ``MUX2(d, d, s)`` -> wire, ...).
* **buffer collapse** — ``BUF`` gates and double-inverter chains become net
  aliases.
* **structural hashing** — classic CSE: gates with the same cell type and
  the same (resolved) input nets are merged, with input order canonicalised
  for commutative cells.
* **dead-gate elimination** — reverse reachability from the primary outputs;
  everything unreachable is dropped.

Sequential cells, cells without a simulation model and the caller's *opaque*
cells (physical primitives such as the ADC slice whose logic function is a
stand-in, not an identity to optimize through) are never folded, collapsed or
merged — only dead-gate elimination may remove them, and only when nothing
observable depends on them.
"""

from __future__ import annotations

from itertools import permutations
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.hw.cells import CellLibrary
from repro.hw.opt.ir import CONST_ONE, CONST_ZERO, IRGate, IRNetlist
from repro.perf.compile import CANONICAL_SEMANTICS, cell_matches_canonical

#: Cells whose output is invariant under any permutation of their inputs
#: (``FA`` is fully symmetric: sum = parity, carry = majority).
COMMUTATIVE_CELLS = frozenset(
    {"AND2", "OR2", "XOR2", "XNOR2", "NAND2", "NOR2", "AND3", "OR3", "HA", "FA"}
)

#: Cells constant folding may *instantiate*, by (n_inputs, n_outputs).
_REWRITE_CANDIDATES: Dict[Tuple[int, int], Tuple[str, ...]] = {
    (2, 1): ("AND2", "OR2", "XOR2", "XNOR2", "NAND2", "NOR2"),
    (3, 1): ("AND3", "OR3", "MUX2"),
    (2, 2): ("HA",),
    (3, 2): ("FA",),
}

#: Cells treated as opaque physical primitives by default: their ``function``
#: exists only so the logic simulator can pass values through, it does not
#: license replacing the cell with wiring.
DEFAULT_OPAQUE_CELLS = frozenset({"ADC1"})


class PassContext:
    """Shared pass state: the cell library plus memoized per-cell facts.

    ``protected_nets`` holds nets the passes must never alias away (their
    driving gate must survive).  The pipeline protects the primary outputs
    with it when the library has no canonical ``BUF`` cell, because
    reconstructing an aliased-away output then has no port buffer to fall
    back on.

    Example::

        ctx = PassContext(EGFET_PDK, opaque_cells=DEFAULT_OPAQUE_CELLS)
        removed = constant_propagation(ctx, ir)   # passes share one context
    """

    def __init__(
        self,
        library: CellLibrary,
        opaque_cells: Iterable[str] = DEFAULT_OPAQUE_CELLS,
        protected_nets: Iterable[str] = (),
    ) -> None:
        self.library = library
        self.opaque = frozenset(opaque_cells)
        self.protected = frozenset(protected_nets)
        self._canonical: Dict[str, bool] = {}

    def is_canonical(self, cell_name: str) -> bool:
        """Whether the library has ``cell_name`` with its canonical function."""
        memo = self._canonical.get(cell_name)
        if memo is None:
            memo = cell_name in self.library and cell_matches_canonical(
                self.library[cell_name]
            )
            self._canonical[cell_name] = memo
        return memo

    def is_rewritable(self, cell_name: str) -> bool:
        """Whether a pass may fold/merge/collapse gates of this cell type."""
        if cell_name in self.opaque:
            return False
        cell = self.library[cell_name]
        return not cell.is_sequential and cell.function is not None


# --------------------------------------------------------------------------- #
# Constant propagation
# --------------------------------------------------------------------------- #
def _support_of(table: Sequence[int], n_vars: int) -> List[int]:
    """Variables the truth table actually depends on."""
    support = []
    for v in range(n_vars):
        bit = 1 << v
        if any(table[a] != table[a ^ bit] for a in range(1 << n_vars)):
            support.append(v)
    return support


def _restrict_table(table: Sequence[int], support: Sequence[int]) -> List[int]:
    """Project a truth table onto its support variables (others held at 0)."""
    reduced = []
    for a in range(1 << len(support)):
        full = 0
        for i, v in enumerate(support):
            full |= ((a >> i) & 1) << v
        reduced.append(table[full])
    return reduced


def _match_cell_order(
    tables: Sequence[Sequence[int]], n_vars: int, function, n_outputs: int
) -> Optional[Tuple[int, ...]]:
    """Input ordering under which ``function`` reproduces ``tables``, if any.

    Returns a tuple ``order`` such that wiring candidate input pin ``i`` to
    variable ``order[i]`` makes the candidate compute every output table.
    """
    for order in permutations(range(n_vars)):
        for a in range(1 << n_vars):
            bits = tuple((a >> order[i]) & 1 for i in range(n_vars))
            out = function(bits)
            if any(out[j] != tables[j][a] for j in range(n_outputs)):
                break
        else:
            return order
    return None


def _classify_output(
    ctx: PassContext, table: Sequence[int], n_vars: int, nets: Sequence[str]
) -> Optional[tuple]:
    """Fold one output truth table to a constant, a wire or a smaller cell.

    Returns ``("const", net)``, ``("wire", net)``, ``("gate", cell, pins)``
    or None when the function stays too complex to re-express.
    """
    support = _support_of(table, n_vars)
    reduced = _restrict_table(table, support)
    m = len(support)
    live = [nets[v] for v in support]
    if m == 0:
        return ("const", CONST_ONE if reduced[0] else CONST_ZERO)
    if m == 1:
        if reduced == [0, 1]:
            return ("wire", live[0])
        if ctx.is_canonical("INV"):
            return ("gate", "INV", (live[0],))
        return None
    for name in _REWRITE_CANDIDATES.get((m, 1), ()):
        if not ctx.is_canonical(name):
            continue
        order = _match_cell_order([reduced], m, CANONICAL_SEMANTICS[name], 1)
        if order is not None:
            return ("gate", name, tuple(live[i] for i in order))
    return None


def _fold_plan(
    ctx: PassContext, cell, resolved_inputs: Sequence[str], known: Sequence[Optional[int]]
) -> Optional[list]:
    """Compute the replacement plan for one foldable gate (None = keep)."""
    distinct: List[str] = []
    index_of: Dict[str, int] = {}
    for net, value in zip(resolved_inputs, known):
        if value is None and net not in index_of:
            index_of[net] = len(distinct)
            distinct.append(net)
    n = len(distinct)
    if n > 6:
        return None
    tables: List[List[int]] = [[0] * (1 << n) for _ in range(cell.n_outputs)]
    for assignment in range(1 << n):
        bits = tuple(
            value if value is not None else (assignment >> index_of[net]) & 1
            for net, value in zip(resolved_inputs, known)
        )
        outs = cell.evaluate(bits)
        for j, v in enumerate(outs):
            tables[j][assignment] = v

    # Whole-gate match first: e.g. FA with a tied carry-in is exactly a HA.
    if cell.n_outputs > 1:
        union: List[int] = sorted(
            {v for table in tables for v in _support_of(table, n)}
        )
        m = len(union)
        reduced = [_restrict_table(table, union) for table in tables]
        live = [distinct[v] for v in union]
        for name in _REWRITE_CANDIDATES.get((m, cell.n_outputs), ()):
            if not ctx.is_canonical(name):
                continue
            order = _match_cell_order(
                reduced, m, CANONICAL_SEMANTICS[name], cell.n_outputs
            )
            if order is not None:
                return [("multi", name, tuple(live[i] for i in order))]

    plan = []
    for table in tables:
        action = _classify_output(ctx, table, n, distinct)
        if action is None:
            return None
        plan.append(action)
    return plan


def constant_propagation(ctx: PassContext, ir: IRNetlist) -> int:
    """Fold gates fed by constants (or duplicate nets) through truth tables.

    Returns the net number of gates removed (a fold that decomposes a cell
    into smaller ones can make this negative for a single call).

    Example::

        # AND2(a, 0) folds to constant 0; FA(a, b, 0) shrinks to HA(a, b).
        changed = constant_propagation(ctx, IRNetlist.from_netlist(netlist))
    """
    changes = 0
    kept: List[IRGate] = []
    for gate in ir.gates:
        if not ctx.is_rewritable(gate.cell):
            kept.append(gate)
            continue
        resolved = ir.resolved_inputs(gate)
        known = [
            0 if net == CONST_ZERO else 1 if net == CONST_ONE else None
            for net in resolved
        ]
        unknown = [net for net, value in zip(resolved, known) if value is None]
        if all(value is None for value in known) and len(set(unknown)) == len(unknown):
            kept.append(gate)
            continue
        plan = _fold_plan(ctx, ctx.library[gate.cell], resolved, known)
        if plan is None:
            kept.append(gate)
            continue
        if plan[0][0] != "multi" and any(
            action in ("const", "wire") and gate.outputs[j] in ctx.protected
            for j, (action, *_) in enumerate(plan)
        ):
            kept.append(gate)  # aliasing a protected output is not allowed
            continue
        if (
            len(plan) == 1
            and plan[0][0] == "multi"
            and plan[0][1] == gate.cell
            and plan[0][2] == tuple(resolved)
        ):
            kept.append(gate)  # no actual simplification
            continue
        changes += 1
        if plan[0][0] == "multi":
            _, name, pins = plan[0]
            kept.append(
                IRGate(name=gate.name, cell=name, inputs=list(pins), outputs=list(gate.outputs))
            )
            continue
        for j, (action, *detail) in enumerate(plan):
            out_net = gate.outputs[j]
            if action in ("const", "wire"):
                ir.add_alias(out_net, detail[0])
            else:  # ("gate", cell, pins)
                name, pins = detail
                kept.append(
                    IRGate(
                        name=f"{gate.name}__cp{j}",
                        cell=name,
                        inputs=list(pins),
                        outputs=[out_net],
                    )
                )
    ir.gates = kept
    return changes


# --------------------------------------------------------------------------- #
# Buffer / double-inverter collapsing
# --------------------------------------------------------------------------- #
def buffer_collapse(ctx: PassContext, ir: IRNetlist) -> int:
    """Alias away BUF gates and the second inverter of INV-INV chains.

    Returns the number of gates removed.

    Example::

        # y = BUF(x) disappears; INV(INV(x)) rewires consumers back to x.
        removed = buffer_collapse(ctx, ir)
    """
    changes = 0
    kept: List[IRGate] = []
    drivers = ir.driver_map()
    for gate in ir.gates:
        if gate.outputs[0] in ctx.protected:
            kept.append(gate)
            continue
        if gate.cell == "BUF" and ctx.is_canonical("BUF") and ctx.is_rewritable("BUF"):
            ir.add_alias(gate.outputs[0], ir.resolve(gate.inputs[0]))
            changes += 1
            continue
        if gate.cell == "INV" and ctx.is_canonical("INV") and ctx.is_rewritable("INV"):
            # resolve() never returns an aliased-away net, so a hit in the
            # start-of-pass driver map is always a still-alive inverter.
            source = ir.resolve(gate.inputs[0])
            driver = drivers.get(source)
            if driver is not None and driver.cell == "INV":
                ir.add_alias(gate.outputs[0], ir.resolve(driver.inputs[0]))
                changes += 1
                continue
        kept.append(gate)
    ir.gates = kept
    return changes


# --------------------------------------------------------------------------- #
# Structural hashing (common-subexpression elimination)
# --------------------------------------------------------------------------- #
def structural_hashing(ctx: PassContext, ir: IRNetlist) -> int:
    """Merge gates with identical cell type and (resolved) input nets.

    Commutative cells (:data:`COMMUTATIVE_CELLS`) canonicalise their input
    order first, so ``AND2(a, b)`` and ``AND2(b, a)`` merge.  Returns the
    number of gates removed.

    Example::

        removed = structural_hashing(ctx, ir)   # classic CSE over the IR
    """
    changes = 0
    kept: List[IRGate] = []
    seen: Dict[tuple, IRGate] = {}
    for gate in ir.gates:
        if not ctx.is_rewritable(gate.cell) or any(
            net in ctx.protected for net in gate.outputs
        ):
            kept.append(gate)
            continue
        pins = tuple(ir.resolved_inputs(gate))
        if gate.cell in COMMUTATIVE_CELLS and ctx.is_canonical(gate.cell):
            key = (gate.cell, tuple(sorted(pins)))
        else:
            key = (gate.cell, pins)
        representative = seen.get(key)
        if representative is None:
            seen[key] = gate
            kept.append(gate)
            continue
        for mine, theirs in zip(gate.outputs, representative.outputs):
            ir.add_alias(mine, theirs)
        changes += 1
    ir.gates = kept
    return changes


# --------------------------------------------------------------------------- #
# Dead-gate elimination
# --------------------------------------------------------------------------- #
def dead_gate_elimination(ctx: PassContext, ir: IRNetlist) -> int:
    """Drop every gate not reverse-reachable from a primary output.

    Liveness is computed with a worklist over the driver map rather than a
    single reverse sweep, so the result is independent of gate order — in a
    clocked netlist a flip-flop legally *precedes* the logic driving its D
    pin (feedback), and a live register must keep its whole next-state cone
    alive.  Returns the number of gates removed.

    Example::

        removed = dead_gate_elimination(ctx, ir)   # run last in every level
    """
    drivers = ir.driver_map()
    live_nets = {ir.resolve(out) for out in ir.outputs}
    live_gates: set = set()
    worklist = list(live_nets)
    while worklist:
        net = worklist.pop()
        gate = drivers.get(net)
        if gate is None or id(gate) in live_gates:
            continue
        live_gates.add(id(gate))
        for pin in gate.inputs:
            resolved = ir.resolve(pin)
            if resolved not in live_nets:
                live_nets.add(resolved)
                worklist.append(resolved)
    kept = [gate for gate in ir.gates if id(gate) in live_gates]
    changes = len(ir.gates) - len(kept)
    ir.gates = kept
    return changes


#: Registry used by the pass manager; insertion order is the run order.
PASS_FUNCTIONS = {
    "const_prop": constant_propagation,
    "buffer_collapse": buffer_collapse,
    "structural_hash": structural_hashing,
    "dead_gate": dead_gate_elimination,
}
