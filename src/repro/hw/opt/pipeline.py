"""Pass manager: run the optimization passes to a fixpoint.

:func:`optimize` is the single entry point every consumer uses — the netlist
compiler (``compile_netlist(..., opt_level=...)``), the Verilog writer, the
timing/area/power netlist lowerings and the Table I reporting all sit on top
of it.  Results are cached on the netlist instance per (library, structural
signature, level), so a netlist is optimized at most once per structure.

Levels
------
* ``0`` — no optimization; the raw netlist is returned untouched.  This is
  the oracle every higher level is checked against.
* ``1`` — constant propagation + dead-gate elimination (the tied-off-logic
  cleanup ROADMAP.md named).
* ``2`` (default, and the maximum) — adds buffer/double-inverter collapsing
  and structural hashing, iterating all four passes until none changes
  anything.

Correctness
-----------
The optimized netlist preserves the primary input *and* output names and
order, so it is a drop-in replacement.  :func:`check_equivalence` sweeps raw
and optimized netlists with random vectors through the bit-parallel engine
(:mod:`repro.perf.bitsim`) and compares all outputs bit-exactly;
``optimize(..., verify=True)`` runs it inline and raises
:class:`OptimizationError` on any mismatch.  The test suite enforces it for
every RTL generator family.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from repro.hw.cells import CellLibrary
from repro.hw.netlist import GateNetlist
from repro.hw.opt.ir import IRNetlist
from repro.hw.opt.passes import DEFAULT_OPAQUE_CELLS, PASS_FUNCTIONS, PassContext
from repro.hw.pdk import EGFET_PDK

#: Pass schedule per optimization level (insertion order = run order).
LEVEL_PASSES: Dict[int, Tuple[str, ...]] = {
    0: (),
    1: ("const_prop", "dead_gate"),
    2: ("const_prop", "buffer_collapse", "structural_hash", "dead_gate"),
}

#: Highest distinct level; higher requested levels clamp to it.
MAX_OPT_LEVEL = 2


class OptimizationError(RuntimeError):
    """The optimized netlist failed the random-vector equivalence check.

    Example::

        try:
            optimize(netlist, level=2, verify=True)
        except OptimizationError:
            ...  # optimized outputs diverged from the raw oracle
    """


@dataclass
class OptStats:
    """What the pass pipeline did to one netlist.

    Example::

        stats = optimize(netlist, level=2).stats
        print(f"{stats.gates_before} -> {stats.gates_after} gates "
              f"({stats.reduction_percent:.0f}% removed)")
    """

    netlist: str
    level: int
    gates_before: int
    gates_after: int
    iterations: int
    #: Net gates removed per pass, accumulated over every iteration.  A
    #: constant-fold that decomposes a big cell into smaller ones (one FA
    #: into XNOR2 + OR2) can make its own entry negative, and reconstruction
    #: may re-add :attr:`port_buffers_added` buffers no pass accounts for, so
    #: ``sum(removed_per_pass.values()) - port_buffers_added ==
    #: gates_removed`` — the pipeline total is what matters.
    removed_per_pass: Dict[str, int]
    #: Buffers inserted while rebuilding the netlist to keep primary-output
    #: nets alive (outputs aliased to constants, inputs or other outputs).
    port_buffers_added: int = 0

    @property
    def gates_removed(self) -> int:
        return self.gates_before - self.gates_after

    @property
    def reduction_percent(self) -> float:
        if self.gates_before == 0:
            return 0.0
        return 100.0 * self.gates_removed / self.gates_before

    def to_dict(self) -> Dict:
        """JSON-serializable record (used by the benchmark trajectory)."""
        return {
            "netlist": self.netlist,
            "level": self.level,
            "gates_before": self.gates_before,
            "gates_after": self.gates_after,
            "gates_removed": self.gates_removed,
            "reduction_percent": self.reduction_percent,
            "iterations": self.iterations,
            "removed_per_pass": dict(self.removed_per_pass),
            "port_buffers_added": self.port_buffers_added,
        }

    def __str__(self) -> str:  # pragma: no cover - formatting helper
        per_pass = ", ".join(f"{k}: {v}" for k, v in self.removed_per_pass.items())
        return (
            f"opt[{self.netlist}] level {self.level}: "
            f"{self.gates_before} -> {self.gates_after} gates "
            f"({self.reduction_percent:.1f}% removed; {per_pass})"
        )


@dataclass
class OptResult:
    """Optimized netlist plus the per-pass statistics.

    Example::

        optimized, stats = optimize(netlist, level=1)   # tuple-unpackable
    """

    netlist: GateNetlist
    stats: OptStats

    def __iter__(self):
        """Allow ``netlist, stats = optimize(...)`` unpacking."""
        yield self.netlist
        yield self.stats


def optimize(
    netlist: GateNetlist,
    level: int = 2,
    library: Optional[CellLibrary] = None,
    opaque_cells: Iterable[str] = DEFAULT_OPAQUE_CELLS,
    verify: bool = False,
    max_iterations: int = 10,
) -> OptResult:
    """Run the pass pipeline over a netlist (cached per structure + level).

    Parameters
    ----------
    netlist:
        The raw netlist; it is never mutated.
    level:
        Optimization level (see module docstring); values above
        :data:`MAX_OPT_LEVEL` clamp.
    library:
        Cell library providing the boolean functions the passes fold
        through; defaults to the EGFET PDK.
    opaque_cells:
        Cell types the passes must treat as physical primitives (never
        folded, collapsed or merged).
    verify:
        Additionally sweep raw-vs-optimized with random vectors and raise
        :class:`OptimizationError` on any output mismatch.
    max_iterations:
        Safety bound on the fixpoint iteration (each iteration runs every
        pass of the level once; convergence is typically 2-3 iterations).

    Example::

        result = optimize(build_constant_mac_netlist([0, 2, 5], 4), level=2)
        result.netlist                       # optimized, same port interface
        result.stats.reduction_percent       # > 0 on constant-fed logic
    """
    if level < 0:
        raise ValueError("optimization level must be >= 0")
    if max_iterations < 1:
        raise ValueError("need at least one pass iteration")
    library = library or EGFET_PDK
    level = min(int(level), MAX_OPT_LEVEL)
    pass_names = LEVEL_PASSES[level]
    opaque: FrozenSet[str] = frozenset(opaque_cells)

    if level == 0 or not netlist.gates:
        stats = OptStats(
            netlist=netlist.name,
            level=level,
            gates_before=netlist.n_gates(),
            gates_after=netlist.n_gates(),
            iterations=0,
            removed_per_pass={name: 0 for name in pass_names},
        )
        return OptResult(netlist=netlist, stats=stats)

    cache = getattr(netlist, "_opt_result_cache", None)
    if cache is None:
        cache = {}
        netlist._opt_result_cache = cache
    key = (id(library), netlist.structural_signature(), level, tuple(sorted(opaque)))
    cached = cache.get(key)
    if cached is not None and cached[0] is library:
        result = cached[1]
        # The cached result shares its (mutable) netlist with every caller:
        # if someone grew or rewrote it since, its own structure version
        # moved and the entry is poisoned — drop it and re-optimize.
        if result.netlist.structural_signature() == cached[2]:
            if verify:
                _verify_or_raise(netlist, result.netlist, library)
            return result
        del cache[key]

    ctx = PassContext(library, opaque)
    # Without a canonical BUF cell in the library there is no port buffer to
    # recover an aliased-away primary output with, so protect the outputs
    # from ever being aliased (their drivers must survive).
    if not ctx.is_canonical("BUF"):
        ctx = PassContext(library, opaque, protected_nets=netlist.outputs)
    sequential_cells = frozenset(
        gate.cell
        for gate in netlist.gates
        if gate.cell in library and library[gate.cell].is_sequential
    )
    ir = IRNetlist.from_netlist(netlist, sequential_cells=sequential_cells or None)
    gates_before = ir.n_gates()
    removed = {name: 0 for name in pass_names}
    iterations = 0
    for _ in range(max_iterations):
        iterations += 1
        any_change = False
        for name in pass_names:
            before = ir.n_gates()
            changes = PASS_FUNCTIONS[name](ctx, ir)
            removed[name] += before - ir.n_gates()
            any_change = any_change or changes > 0
        if not any_change:
            break

    optimized = ir.to_netlist()
    stats = OptStats(
        netlist=netlist.name,
        level=level,
        gates_before=gates_before,
        gates_after=optimized.n_gates(),
        iterations=iterations,
        removed_per_pass=removed,
        port_buffers_added=optimized.n_gates() - ir.n_gates(),
    )
    result = OptResult(netlist=optimized, stats=stats)
    if verify:
        _verify_or_raise(netlist, optimized, library)
    # Results for older structures can never be served again (the version
    # only moves forward), so evict them on insert.  The optimized netlist's
    # own signature rides along so a later hit can detect that a caller
    # mutated the shared result.
    for stale in [k for k in cache if k[1] != key[1]]:
        del cache[stale]
    cache[key] = (library, result, optimized.structural_signature())
    return result


def check_equivalence(
    raw: GateNetlist,
    optimized: GateNetlist,
    library: Optional[CellLibrary] = None,
    n_vectors: int = 256,
    seed: int = 0,
    n_cycles: int = 8,
) -> bool:
    """Random-vector equivalence of two netlists with identical interfaces.

    Sweeps ``n_vectors`` random input vectors through both netlists on the
    bit-parallel engine and compares every primary output bit-exactly.  The
    interfaces (input and output names, in order) must match — the optimizer
    guarantees this for its own results.  Clocked netlists (any sequential
    cell present) are swept through the *sequential* engine instead: both
    sides are clocked for ``n_cycles`` cycles from their power-on state and
    every per-cycle output plane must match.

    Example::

        raw = build_constant_multiplier_netlist(11, 5)
        assert check_equivalence(raw, optimize(raw, level=2).netlist)
    """
    import numpy as np

    from repro.perf.bitsim import simulate_netlist_batch

    if raw.inputs != optimized.inputs or raw.outputs != optimized.outputs:
        return False
    rng = np.random.default_rng(seed)
    vectors = rng.integers(0, 2, size=(n_vectors, len(raw.inputs)))
    resolved = library or EGFET_PDK
    if raw.sequential_gates(resolved):
        from repro.perf.seqsim import simulate_sequential_batch

        trace_raw = simulate_sequential_batch(
            raw, vectors, cycles=n_cycles, library=library
        )
        trace_opt = simulate_sequential_batch(
            optimized, vectors, cycles=n_cycles, library=library
        )
        return bool(np.array_equal(trace_raw, trace_opt))
    out_raw = simulate_netlist_batch(raw, vectors, library)
    out_opt = simulate_netlist_batch(optimized, vectors, library)
    return bool(np.array_equal(out_raw, out_opt))


def _verify_or_raise(
    raw: GateNetlist, optimized: GateNetlist, library: CellLibrary
) -> None:
    if not check_equivalence(raw, optimized, library=library):
        raise OptimizationError(
            f"optimized netlist {optimized.name!r} is not equivalent to the "
            f"raw netlist on random vectors"
        )
