"""Mutable intermediate representation the optimization passes operate on.

A :class:`GateNetlist` is append-only by design (the builder API validates
drivers as gates are added), which makes it a poor substrate for rewriting.
The passes therefore work on an :class:`IRNetlist`: a plain list of mutable
:class:`IRGate` records in topological order plus a *net alias map*.  Removing
a gate never patches its fanout — the gate's output nets are aliased to their
replacement (a constant, another net) and every consumer resolves aliases
lazily through :meth:`IRNetlist.resolve`.  This keeps each pass O(gates)
instead of O(gates * fanout).

:meth:`IRNetlist.to_netlist` reconstructs a valid :class:`GateNetlist`:

* alias chains are fully resolved into the surviving gates' input pins;
* primary inputs and the primary-output *names and order* are preserved
  verbatim, so the optimized netlist is a drop-in replacement for the raw one
  (same simulation interface, same Verilog ports);
* a primary output whose driver was optimized away is recovered either by
  renaming the surviving net it aliases to (free) or, when that net is a
  constant / primary input / another primary output, by inserting one
  port buffer;
* flip-flops (any cell in :attr:`IRNetlist.sequential_cells`) are rebuilt
  through the :meth:`~repro.hw.netlist.GateNetlist.declare_dff` /
  :meth:`~repro.hw.netlist.GateNetlist.bind_dff` two-phase API with their
  power-on values carried over, so clocked netlists with feedback loops
  round-trip through the optimizer — the passes then optimize each
  combinational region between the register barriers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.hw.netlist import GateNetlist

CONST_ZERO = GateNetlist.CONST_ZERO
CONST_ONE = GateNetlist.CONST_ONE
CONSTANTS = (CONST_ZERO, CONST_ONE)


@dataclass
class IRGate:
    """One mutable cell instance; ``inputs`` may hold unresolved aliases.

    Example::

        IRGate(name="u1", cell="AND2", inputs=["a", "b"], outputs=["y"])
    """

    name: str
    cell: str
    inputs: List[str]
    outputs: List[str]


@dataclass
class IRNetlist:
    """Gate list + alias map the passes rewrite in place.

    Example::

        ir = IRNetlist.from_netlist(netlist)    # snapshot -> mutable view
        constant_propagation(ctx, ir)           # passes rewrite ir in place
        optimized = ir.to_netlist()             # back to a GateNetlist
    """

    name: str
    inputs: List[str]
    outputs: List[str]
    gates: List[IRGate]
    alias: Dict[str, str] = field(default_factory=dict)
    #: Cell types reconstructed as flip-flops (declare/bind, feedback legal).
    sequential_cells: frozenset = frozenset({"DFF"})
    #: Flip-flop power-on values by instance name (carried through untouched).
    dff_init: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_netlist(
        cls,
        netlist: GateNetlist,
        sequential_cells: Optional[frozenset] = None,
    ) -> "IRNetlist":
        return cls(
            name=netlist.name,
            inputs=list(netlist.inputs),
            outputs=list(netlist.outputs),
            gates=[
                IRGate(
                    name=gate.name,
                    cell=gate.cell,
                    inputs=list(gate.inputs),
                    outputs=list(gate.outputs),
                )
                for gate in netlist.gates
            ],
            sequential_cells=(
                frozenset(sequential_cells)
                if sequential_cells is not None
                else frozenset({"DFF"})
            ),
            dff_init=dict(netlist.dff_init),
        )

    # ------------------------------------------------------------------ #
    def resolve(self, net: str) -> str:
        """Final replacement of ``net`` after alias chains (path-compressed)."""
        target = self.alias.get(net)
        if target is None:
            return net
        chain = [net]
        while target in self.alias:
            chain.append(target)
            target = self.alias[target]
        for link in chain:
            self.alias[link] = target
        return target

    def add_alias(self, net: str, replacement: str) -> None:
        """Redirect every consumer of ``net`` to ``replacement``."""
        replacement = self.resolve(replacement)
        if replacement == net:
            raise ValueError(f"cannot alias net {net!r} to itself")
        self.alias[net] = replacement

    def resolved_inputs(self, gate: IRGate) -> List[str]:
        return [self.resolve(pin) for pin in gate.inputs]

    def driver_map(self) -> Dict[str, IRGate]:
        """Output net -> driving gate, over the current (alive) gate list."""
        drivers: Dict[str, IRGate] = {}
        for gate in self.gates:
            for net in gate.outputs:
                drivers[net] = gate
        return drivers

    def n_gates(self) -> int:
        return len(self.gates)

    # ------------------------------------------------------------------ #
    def to_netlist(self) -> GateNetlist:
        """Reconstruct a valid :class:`GateNetlist` from the rewritten IR."""
        # Primary outputs whose driver was removed alias to a surviving net.
        # Prefer renaming that net back to the output name (free); fall back
        # to a port buffer when the net is a constant, a primary input,
        # another primary output, or already renamed for a different output.
        input_set = set(self.inputs)
        output_set = set(self.outputs)
        rename: Dict[str, str] = {}
        for out in self.outputs:
            target = self.resolve(out)
            if (
                target != out
                and target not in CONSTANTS
                and target not in input_set
                and target not in output_set
                and target not in rename
            ):
                rename[target] = out

        def final(net: str) -> str:
            net = self.resolve(net)
            return rename.get(net, net)

        netlist = GateNetlist(name=self.name)
        for net in self.inputs:
            netlist.add_input(net)
        # Flip-flops are emitted at their original position via declare (so a
        # Q read by logic that precedes its D driver stays legal) and bound
        # after every combinational driver exists.
        pending_binds: List[Tuple[str, str]] = []
        for gate in self.gates:
            if gate.cell in self.sequential_cells:
                if len(gate.outputs) != 1 or len(gate.inputs) != 1:
                    raise NotImplementedError(
                        f"sequential cell {gate.cell!r} must be a 1-bit "
                        "flip-flop to survive optimization"
                    )
                q = rename.get(gate.outputs[0], gate.outputs[0])
                netlist.declare_dff(
                    q,
                    name=gate.name,
                    cell=gate.cell,
                    init=self.dff_init.get(gate.name, 0),
                )
                pending_binds.append((q, gate.inputs[0]))
                continue
            netlist.add_gate(
                gate.cell,
                [final(pin) for pin in gate.inputs],
                outputs=[rename.get(net, net) for net in gate.outputs],
                name=gate.name,
            )
        for q, d in pending_binds:
            netlist.bind_dff(q, final(d))
        existing_names = {gate.name for gate in self.gates}
        n_buffers = 0
        for out in self.outputs:
            if final(out) != out:
                # Constant, primary input or a net shared with another
                # primary output: keep the port name alive with one buffer.
                buf_name = f"obuf{n_buffers}"
                while buf_name in existing_names:
                    n_buffers += 1
                    buf_name = f"obuf{n_buffers}"
                existing_names.add(buf_name)
                n_buffers += 1
                netlist.add_gate("BUF", [final(out)], outputs=[out], name=buf_name)
            netlist.mark_output(out)
        return netlist
