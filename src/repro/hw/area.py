"""Area estimation and printed-area feasibility checks.

Printed classifiers must fit on the flexible substrate of the target
application (labels, smart packaging, wearables).  The paper states that its
designs, "despite showing small area overheads in some cases ... manage to
stay within acceptable area ranges, satisfying the constraints of typical
printed applications" — the commonly used bound in the printed-ML literature
is on the order of 100 cm^2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.hw.cells import CellLibrary
from repro.hw.netlist import GateNetlist, HardwareBlock
from repro.hw.pdk import EGFET_PDK

#: Area bound (cm^2) commonly assumed for printed classifier substrates.
TYPICAL_PRINTED_AREA_LIMIT_CM2 = 100.0


@dataclass
class AreaReport:
    """Total area and per-child breakdown of a design."""

    total_cm2: float
    breakdown_cm2: Dict[str, float]
    n_cells: int
    limit_cm2: float = TYPICAL_PRINTED_AREA_LIMIT_CM2

    @property
    def within_limit(self) -> bool:
        """Whether the design fits the typical printed-substrate area budget."""
        return self.total_cm2 <= self.limit_cm2

    @property
    def utilization(self) -> float:
        """Fraction of the area budget the design consumes."""
        return self.total_cm2 / self.limit_cm2

    def __str__(self) -> str:  # pragma: no cover - formatting helper
        parts = ", ".join(f"{k}: {v:.2f}" for k, v in self.breakdown_cm2.items())
        return f"area {self.total_cm2:.2f} cm^2 ({parts})"


class AreaAnalyzer:
    """Roll up the printed area of a design and its major sub-blocks."""

    def __init__(
        self,
        library: Optional[CellLibrary] = None,
        limit_cm2: float = TYPICAL_PRINTED_AREA_LIMIT_CM2,
    ) -> None:
        self.library = library or EGFET_PDK
        self.limit_cm2 = float(limit_cm2)

    def analyze(self, block: HardwareBlock) -> AreaReport:
        """Compute the area report of a design."""
        total = block.area_cm2(self.library)
        breakdown = {
            child.name: child.area_cm2(self.library) for child in block.children
        }
        return AreaReport(
            total_cm2=total,
            breakdown_cm2=breakdown,
            n_cells=block.n_cells(),
            limit_cm2=self.limit_cm2,
        )


def analyze_area(block: HardwareBlock, library: Optional[CellLibrary] = None) -> AreaReport:
    """Convenience wrapper around :class:`AreaAnalyzer`."""
    return AreaAnalyzer(library=library).analyze(block)


def analyze_netlist_area(
    netlist: GateNetlist,
    library: Optional[CellLibrary] = None,
    opt_level: Optional[int] = None,
    limit_cm2: float = TYPICAL_PRINTED_AREA_LIMIT_CM2,
) -> AreaReport:
    """Area report computed from exact gate counts of an explicit netlist.

    ``opt_level`` optionally runs the :mod:`repro.hw.opt` pass pipeline
    first, so the report prices the optimized structure — the exact-count
    companion to the formula-based :func:`analyze_area` estimates.
    """
    from repro.hw.opt.lowering import netlist_to_block

    block = netlist_to_block(netlist, library=library, level=opt_level)
    return AreaAnalyzer(library=library, limit_cm2=limit_cm2).analyze(block)
