"""Datapath synthesis helpers.

These functions assemble the arithmetic macro-blocks that the classifier
architectures in :mod:`repro.core` are built from:

* :func:`synthesize_folded_mac` — the paper's compute engine: ``m`` generic
  array multipliers (coefficients arrive from storage at run time) feeding a
  multi-operand adder plus the bias addition.  One instance serves *all*
  classifiers, one per cycle.
* :func:`synthesize_constant_mac` — a fully-parallel bespoke weighted sum for
  one classifier: one hardwired-constant multiplier per coefficient (zero
  weights cost nothing, powers of two are free) feeding an adder tree.  The
  state-of-the-art parallel designs instantiate one of these per classifier.

Both return a :class:`~repro.hw.netlist.HardwareBlock` plus the output bit
width, which downstream voters and registers need for sizing.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np

from repro.hw.netlist import HardwareBlock, series
from repro.hw.rtl.adders import adder_tree, adder_tree_output_width, ripple_carry_adder
from repro.hw.rtl.multipliers import (
    array_multiplier,
    array_multiplier_output_bits,
    constant_multiplier,
    constant_multiplier_output_bits,
)


def accumulator_width(max_abs_score: int) -> int:
    """Two's-complement width needed to hold a score of magnitude ``max_abs_score``."""
    from repro.ml.fixed_point import required_bits_for_integer

    return required_bits_for_integer(int(max_abs_score), signed=True)


def synthesize_folded_mac(
    n_features: int,
    input_bits: int,
    weight_bits: int,
    score_bits: int,
    name: str = "compute_engine",
) -> Tuple[HardwareBlock, int]:
    """The folded compute engine of the sequential SVM.

    ``m = n_features`` array multipliers (``input_bits x weight_bits``,
    unsigned-by-signed) operate in parallel on the currently selected support
    vector; their products are summed by a multi-operand adder tree and the
    bias (already at score scale) is added by one final ripple-carry adder.

    Returns ``(block, output_width)`` where ``output_width`` is the width of
    the signed score delivered to the voter (``score_bits``).
    """
    if n_features < 1:
        raise ValueError("need at least one feature")
    product_bits = array_multiplier_output_bits(input_bits, weight_bits, signed=True)

    multipliers = HardwareBlock(name=f"{name}.multipliers")
    single = array_multiplier(input_bits, weight_bits, signed=True, name="mult")
    merged = single.scaled(n_features, name=f"{name}.multipliers")
    # All multipliers operate in parallel: critical path is one multiplier.
    merged.path = single.path
    multipliers = merged

    tree = adder_tree(n_features, product_bits, name=f"{name}.adder_tree")
    sum_bits = adder_tree_output_width(n_features, product_bits)
    bias_adder = ripple_carry_adder(max(score_bits, sum_bits), name=f"{name}.bias_adder")

    block = series(name, [multipliers, tree, bias_adder])
    return block, max(score_bits, sum_bits)


def synthesize_constant_mac(
    weight_codes: Sequence[int],
    bias_code: int,
    input_bits: int,
    score_bits: int,
    name: str = "bespoke_mac",
) -> Tuple[HardwareBlock, int]:
    """A fully-parallel bespoke weighted sum for one classifier.

    Every non-trivial coefficient becomes a hardwired constant multiplier;
    the shifted/added terms are reduced by an adder tree sized by the number
    of non-zero coefficients; the (hardwired) bias costs one more adder only
    if it is non-zero.
    """
    weight_codes = [int(w) for w in weight_codes]
    bias_code = int(bias_code)

    multipliers = HardwareBlock(name=f"{name}.const_mults")
    product_widths = []
    worst_path = None
    n_nonzero = 0
    for idx, code in enumerate(weight_codes):
        if code == 0:
            continue
        n_nonzero += 1
        cm = constant_multiplier(code, input_bits, name=f"cmul{idx}")
        product_widths.append(constant_multiplier_output_bits(code, input_bits))
        multipliers.counts.update(cm.counts)
        for cell, t in cm.toggles.items():
            multipliers.toggles[cell] = multipliers.toggles.get(cell, 0.0) + t
        if worst_path is None or sum(cm.path.values()) > sum(worst_path.values()):
            worst_path = cm.path
    if worst_path is not None:
        multipliers.path = worst_path

    if n_nonzero == 0:
        # Degenerate classifier: score is just the bias (pure wiring).
        return HardwareBlock(name=name), max(score_bits, 1)

    operand_width = max(product_widths)
    tree = adder_tree(n_nonzero, operand_width, name=f"{name}.adder_tree")
    sum_bits = adder_tree_output_width(n_nonzero, operand_width)

    blocks = [multipliers, tree]
    if bias_code != 0:
        blocks.append(ripple_carry_adder(max(score_bits, sum_bits), name=f"{name}.bias_adder"))
    block = series(name, blocks)
    return block, max(score_bits, sum_bits)


def estimate_classifier_score_bound(
    weight_codes: np.ndarray, bias_codes: np.ndarray, max_input_code: int
) -> int:
    """Worst-case score magnitude over all classifiers of a quantized model."""
    weight_codes = np.asarray(weight_codes, dtype=np.int64)
    bias_codes = np.asarray(bias_codes, dtype=np.int64)
    per_classifier = (
        np.sum(np.abs(weight_codes), axis=1) * int(max_input_code)
        + np.abs(bias_codes)
    )
    return int(np.max(per_classifier)) if per_classifier.size else 0


def gate_equivalent_count(block: HardwareBlock) -> float:
    """Size of a block in NAND2 gate equivalents (synthesis-report style)."""
    from repro.hw.pdk import gate_equivalents

    return sum(gate_equivalents(cell) * n for cell, n in block.counts.items())
