"""Static timing analysis for printed designs.

Two entry points:

* :func:`longest_path_cells` — topological longest-path extraction over an
  explicit :class:`~repro.hw.netlist.GateNetlist`; returns the multiset of
  cell types along the critical path so the delay can be priced with any
  cell library.
* :class:`TimingAnalyzer` / :func:`analyze_timing` — computes the critical
  path delay, the guard-banded clock period and the resulting operating
  frequency of a :class:`~repro.hw.netlist.HardwareBlock`, mirroring what
  PrimeTime reports for the paper's circuits (frequencies in the Hz range).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Optional

from repro.hw.cells import CellLibrary
from repro.hw.netlist import GateNetlist, HardwareBlock
from repro.hw.pdk import DEFAULT_PDK_PARAMETERS, EGFET_PDK, PDKParameters


def longest_path_cells(netlist: GateNetlist, library: Optional[CellLibrary] = None) -> Counter:
    """Cells along the delay-critical path of a netlist.

    Combinational netlists are traversed in topological order (gates are
    stored in creation order, and the :class:`GateNetlist` builder only
    allows reading already-driven nets, so creation order *is* a topological
    order).  For each net we track the accumulated worst delay and the cell
    multiset that produced it; the result is the multiset of the overall
    worst output.

    Clocked netlists (any sequential cell present) get the register-aware
    analysis instead: every flip-flop Q output is a *launch* point (arrival
    zero — the clock-to-Q/setup overhead is priced separately by
    :class:`TimingAnalyzer`), every flip-flop D input and every primary
    output is a *capture* point, and the result is the cell multiset of the
    critical register-to-register (or input-to-register / register-to-output)
    path — the path that actually limits the clock of the multi-cycle
    architecture.
    """
    library = library or EGFET_PDK
    sequential = netlist.sequential_gates(library)
    sequential_ids = {id(g) for g in sequential}
    # arrival[net] = (delay_ms, Counter of cells along the path)
    arrival: Dict[str, tuple] = {}
    for net in netlist.inputs:
        arrival[net] = (0.0, Counter())
    arrival[GateNetlist.CONST_ZERO] = (0.0, Counter())
    arrival[GateNetlist.CONST_ONE] = (0.0, Counter())
    for gate in sequential:
        # Q launches a fresh path at the clock edge.
        for out in gate.outputs:
            arrival[out] = (0.0, Counter())

    worst_delay = 0.0
    worst_cells: Counter = Counter()
    for gate in netlist.gates:
        if id(gate) in sequential_ids:
            continue
        in_delay = 0.0
        in_cells: Counter = Counter()
        for pin in gate.inputs:
            delay, cells = arrival.get(pin, (0.0, Counter()))
            if delay >= in_delay:
                in_delay = delay
                in_cells = cells
        cell_delay = library[gate.cell].delay_ms
        out_delay = in_delay + cell_delay
        out_cells = in_cells + Counter({gate.cell: 1})
        for out in gate.outputs:
            arrival[out] = (out_delay, out_cells)
        if out_delay > worst_delay:
            worst_delay = out_delay
            worst_cells = out_cells
    # Capture points: the D pin of every register ends a path there.
    for gate in sequential:
        for pin in gate.inputs:
            delay, cells = arrival.get(pin, (0.0, Counter()))
            if delay > worst_delay:
                worst_delay = delay
                worst_cells = cells
    return worst_cells


@dataclass
class TimingReport:
    """Result of static timing analysis on one design."""

    critical_path_ms: float
    clock_period_ms: float
    frequency_hz: float
    logic_depth: int
    limited_by: str = "datapath"

    def __str__(self) -> str:  # pragma: no cover - formatting helper
        return (
            f"critical path {self.critical_path_ms:.2f} ms, "
            f"clock {self.clock_period_ms:.2f} ms ({self.frequency_hz:.1f} Hz), "
            f"depth {self.logic_depth} ({self.limited_by})"
        )


class TimingAnalyzer:
    """Static timing analysis of :class:`HardwareBlock` designs.

    The operating frequency is ``1 / (critical path * (1 + margin))`` with a
    register overhead (clock-to-Q plus setup of the printed flip-flops) added
    for sequential designs.
    """

    def __init__(
        self,
        library: Optional[CellLibrary] = None,
        params: Optional[PDKParameters] = None,
    ) -> None:
        self.library = library or EGFET_PDK
        self.params = params or DEFAULT_PDK_PARAMETERS

    def analyze(
        self,
        block: HardwareBlock,
        sequential: bool = True,
        min_period_ms: float = 0.0,
    ) -> TimingReport:
        """Compute the timing report of a design.

        Parameters
        ----------
        block:
            The design to analyse (its ``path`` holds the critical path cells).
        sequential:
            Whether the design is clocked.  Clocked designs pay one register
            clock-to-Q + setup on top of the combinational path; purely
            combinational designs (the parallel baselines) are "clocked" at
            their evaluation rate, i.e. the period is simply the path delay.
        min_period_ms:
            Optional lower bound on the clock period (e.g. imposed by an
            external sensor interface).
        """
        path_delay = block.critical_path_delay_ms(self.library)
        # Printed wiring spans the full physical extent of the design, so the
        # RC load on the critical path grows with the printed area (this is
        # what pushes very large fully-parallel designs to single-digit Hz).
        area_factor = 1.0 + self.params.area_wire_delay_per_cm2 * block.area_cm2(
            self.library
        )
        path_delay = path_delay * area_factor
        register_overhead = self.library["DFF"].delay_ms if sequential else 0.0
        raw_period = path_delay + register_overhead
        period = raw_period * (1.0 + self.params.timing_margin)
        limited_by = "datapath"
        if period < min_period_ms:
            period = min_period_ms
            limited_by = "external-constraint"
        if period <= 0.0:
            raise ValueError("design has an empty critical path; cannot derive a clock")
        frequency_hz = 1000.0 / period
        return TimingReport(
            critical_path_ms=path_delay,
            clock_period_ms=period,
            frequency_hz=frequency_hz,
            logic_depth=block.logic_depth(),
            limited_by=limited_by,
        )


def analyze_timing(
    block: HardwareBlock,
    sequential: bool = True,
    library: Optional[CellLibrary] = None,
) -> TimingReport:
    """Convenience wrapper around :class:`TimingAnalyzer`."""
    return TimingAnalyzer(library=library).analyze(block, sequential=sequential)


def analyze_netlist_timing(
    netlist: GateNetlist,
    sequential: Optional[bool] = None,
    library: Optional[CellLibrary] = None,
    params: Optional[PDKParameters] = None,
    opt_level: Optional[int] = None,
) -> TimingReport:
    """Static timing analysis straight from an explicit gate-level netlist.

    The netlist is lowered to a :class:`HardwareBlock` with exact cell counts
    and a longest-path-extracted critical path
    (:func:`repro.hw.opt.netlist_to_block`); ``opt_level`` optionally runs
    the :mod:`repro.hw.opt` pass pipeline first, so the report prices the
    *optimized* structure.  ``sequential`` defaults to auto-detection: a
    netlist containing flip-flops is clocked — its critical path is the
    register-to-register path :func:`longest_path_cells` extracts, and the
    clock period pays the flip-flop overhead on top — while the purely
    combinational netlists of :mod:`repro.hw.rtl` are priced at their
    evaluation rate.
    """
    from repro.hw.opt.lowering import netlist_to_block

    if sequential is None:
        resolved = library or EGFET_PDK
        sequential = bool(netlist.sequential_gates(resolved))
    block = netlist_to_block(netlist, library=library, level=opt_level)
    return TimingAnalyzer(library=library, params=params).analyze(
        block, sequential=sequential
    )
