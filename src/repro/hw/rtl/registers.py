"""Sequential elements: register banks and binary counters.

The sequential SVM needs very little state: the control counter
(``log2(n)`` bits), the voter's best-score register and best-class-id
register, and optionally an output register.  These generators price that
state in printed D flip-flops plus the small amount of surrounding logic
(enable MUXes, increment logic, terminal-count detection).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import List

from repro.hw.activity import control_toggles, register_toggles
from repro.hw.netlist import GateNetlist, HardwareBlock


def register_bank(width: int, with_enable: bool = True, name: str = "reg") -> HardwareBlock:
    """A ``width``-bit register, optionally with a load-enable MUX per bit."""
    if width < 1:
        raise ValueError("register width must be >= 1")
    counts = Counter({"DFF": width})
    if with_enable:
        counts.update({"MUX2": width})
    path = Counter({"DFF": 1})
    if with_enable:
        path.update({"MUX2": 1})
    return HardwareBlock(
        name=name,
        counts=counts,
        path=path,
        toggles=register_toggles(counts),
    )


def binary_counter(n_states: int, name: str = "counter") -> HardwareBlock:
    """A binary up-counter able to count ``n_states`` states.

    This is the paper's control element: "A log2(n)-bit counter is employed
    for control, responsible for accessing the stored support vectors and
    terminating the multi-cycle process once all classifiers have been
    computed."  Structure: one DFF per bit, a half adder per bit for the
    increment, and an AND-reduce for terminal-count detection.
    """
    if n_states < 1:
        raise ValueError("counter must have at least one state")
    bits = counter_bits(n_states)
    counts = Counter({"DFF": bits, "HA": bits, "AND2": max(bits - 1, 0)})
    path = Counter({"DFF": 1, "HA": bits})
    return HardwareBlock(
        name=name,
        counts=counts,
        path=path,
        toggles=control_toggles(counts),
    )


def build_counter_netlist(bits: int, name: str = "counter") -> GateNetlist:
    """Explicit free-running binary up-counter netlist (for clocked simulation).

    The structure :func:`binary_counter` prices: one D flip-flop per bit and
    a half-adder increment chain seeded with constant 1, closed through the
    :meth:`~repro.hw.netlist.GateNetlist.declare_dff` /
    :meth:`~repro.hw.netlist.GateNetlist.bind_dff` feedback API.  No primary
    inputs; primary outputs ``q[bits]`` (the register values) and ``tc``
    (terminal count, high when every bit is 1).  Counts ``0, 1, 2, ...``
    modulo ``2**bits`` — cycle ``t`` of a sequential simulation shows the
    value ``t``.
    """
    if bits < 1:
        raise ValueError("counter needs at least one bit")
    netlist = GateNetlist(name=name)
    q: List[str] = [
        netlist.declare_dff(f"q[{b}]", name=f"dff{b}") for b in range(bits)
    ]
    carry = GateNetlist.CONST_ONE
    for b in range(bits):
        s, carry = netlist.add_gate(
            "HA", [q[b], carry], outputs=[f"inc[{b}]", f"cy[{b}]"]
        )
        netlist.bind_dff(q[b], s)
    tc = q[0]
    for b in range(1, bits):
        out = "tc" if b == bits - 1 else f"tc{b}"
        tc = netlist.add_gate("AND2", [tc, q[b]], outputs=[out])[0]
    if bits == 1:
        # q[0] is already an output; one buffer gives tc its own net.
        tc = netlist.add_gate("BUF", [tc], outputs=["tc"])[0]
    for b in range(bits):
        netlist.mark_output(q[b])
    netlist.mark_output(tc)
    return netlist


def counter_bits(n_states: int) -> int:
    """Number of counter bits needed to enumerate ``n_states`` states."""
    if n_states < 1:
        raise ValueError("counter must have at least one state")
    if n_states == 1:
        return 1
    return int(math.ceil(math.log2(n_states)))
