"""Sequential elements: register banks and binary counters.

The sequential SVM needs very little state: the control counter
(``log2(n)`` bits), the voter's best-score register and best-class-id
register, and optionally an output register.  These generators price that
state in printed D flip-flops plus the small amount of surrounding logic
(enable MUXes, increment logic, terminal-count detection).
"""

from __future__ import annotations

import math
from collections import Counter

from repro.hw.activity import control_toggles, register_toggles
from repro.hw.netlist import HardwareBlock


def register_bank(width: int, with_enable: bool = True, name: str = "reg") -> HardwareBlock:
    """A ``width``-bit register, optionally with a load-enable MUX per bit."""
    if width < 1:
        raise ValueError("register width must be >= 1")
    counts = Counter({"DFF": width})
    if with_enable:
        counts.update({"MUX2": width})
    path = Counter({"DFF": 1})
    if with_enable:
        path.update({"MUX2": 1})
    return HardwareBlock(
        name=name,
        counts=counts,
        path=path,
        toggles=register_toggles(counts),
    )


def binary_counter(n_states: int, name: str = "counter") -> HardwareBlock:
    """A binary up-counter able to count ``n_states`` states.

    This is the paper's control element: "A log2(n)-bit counter is employed
    for control, responsible for accessing the stored support vectors and
    terminating the multi-cycle process once all classifiers have been
    computed."  Structure: one DFF per bit, a half adder per bit for the
    increment, and an AND-reduce for terminal-count detection.
    """
    if n_states < 1:
        raise ValueError("counter must have at least one state")
    bits = counter_bits(n_states)
    counts = Counter({"DFF": bits, "HA": bits, "AND2": max(bits - 1, 0)})
    path = Counter({"DFF": 1, "HA": bits})
    return HardwareBlock(
        name=name,
        counts=counts,
        path=path,
        toggles=control_toggles(counts),
    )


def counter_bits(n_states: int) -> int:
    """Number of counter bits needed to enumerate ``n_states`` states."""
    if n_states < 1:
        raise ValueError("counter must have at least one state")
    if n_states == 1:
        return 1
    return int(math.ceil(math.log2(n_states)))
