"""Magnitude comparators.

The paper's voter is "essentially a sequential argmax" and "requires only
two registers (for score and classifier id) and a single comparator": every
cycle the freshly computed score is compared against the best score seen so
far (``A > B ?`` in Fig. 1).  The parallel baselines instead need a
comparator *tree* to find the argmax of all classifier outputs at once.
"""

from __future__ import annotations

from collections import Counter
from typing import List

from repro.hw.activity import datapath_toggles
from repro.hw.netlist import GateNetlist, HardwareBlock


def magnitude_comparator(width: int, signed: bool = True, name: str = "cmp") -> HardwareBlock:
    """A ``width``-bit greater-than comparator.

    Structure (ripple comparator, the area-cheapest form): per bit one XNOR
    (equality), one AND (greater-at-this-bit gated by equality above) and one
    OR (accumulate), plus sign handling for signed operands.  Critical path:
    the ripple through all bit positions.
    """
    if width < 1:
        raise ValueError("comparator width must be >= 1")
    counts = Counter({"XNOR2": width, "AND2": width, "OR2": width - 1, "INV": width})
    if signed:
        # Sign-bit handling: one XOR to detect differing signs and one MUX to
        # pick between the sign decision and the magnitude decision.
        counts.update({"XOR2": 1, "MUX2": 1})
    path = Counter({"XNOR2": 1, "AND2": width, "OR2": max(width - 1, 0)})
    if signed:
        path.update({"MUX2": 1})
    depth = 2 * width + (1 if signed else 0)
    return HardwareBlock(
        name=name,
        counts=counts,
        path=path,
        toggles=datapath_toggles(counts, depth),
    )


def argmax_comparator_tree(
    n_values: int, width: int, index_bits: int, name: str = "argmax_tree"
) -> HardwareBlock:
    """Combinational argmax over ``n_values`` scores (parallel baselines).

    A binary tree of comparators; each tree node also needs MUXes to forward
    the winning score and the winning index to the next level.
    """
    if n_values < 1:
        raise ValueError("need at least one value")
    if n_values == 1:
        return HardwareBlock(name=name)
    import math

    levels = int(math.ceil(math.log2(n_values)))
    counts = Counter()
    n_nodes = n_values - 1
    node_cmp = magnitude_comparator(width, signed=True)
    counts.update({c: n * n_nodes for c, n in node_cmp.counts.items()})
    # Score + index forwarding MUXes per node.
    counts.update({"MUX2": n_nodes * (width + index_bits)})

    path = Counter()
    for _ in range(levels):
        path.update(node_cmp.path)
        path.update({"MUX2": 1})
    depth = sum(path.values())
    return HardwareBlock(
        name=name,
        counts=counts,
        path=path,
        toggles=datapath_toggles(counts, depth),
    )


def build_comparator_netlist(width: int, name: str = "cmp") -> GateNetlist:
    """Explicit unsigned greater-than comparator netlist (``a > b``).

    Ripple structure from MSB to LSB: ``gt = gt_above OR (eq_above AND a AND !b)``.
    Primary inputs ``a[width]``, ``b[width]``; primary output ``gt``.
    """
    if width < 1:
        raise ValueError("comparator width must be >= 1")
    netlist = GateNetlist(name=name)
    a = netlist.add_inputs("a", width)
    b = netlist.add_inputs("b", width)

    gt = GateNetlist.CONST_ZERO
    eq = GateNetlist.CONST_ONE
    # Walk from the most significant bit down.
    for i in range(width - 1, -1, -1):
        not_b = netlist.add_gate("INV", [b[i]], outputs=[f"nb{i}"])[0]
        a_gt_b = netlist.add_gate("AND2", [a[i], not_b], outputs=[f"agb{i}"])[0]
        here = netlist.add_gate("AND2", [eq, a_gt_b], outputs=[f"here{i}"])[0]
        gt = netlist.add_gate("OR2", [gt, here], outputs=[f"gt{i}"])[0]
        bit_eq = netlist.add_gate("XNOR2", [a[i], b[i]], outputs=[f"eq{i}"])[0]
        eq = netlist.add_gate("AND2", [eq, bit_eq], outputs=[f"eqacc{i}"])[0]
    netlist.mark_output(gt)
    return netlist


def simulate_comparator(netlist: GateNetlist, a_value: int, b_value: int, width: int) -> int:
    """Drive a gate-level comparator netlist; returns 1 when ``a > b``."""
    from repro.hw.simulate import simulate_combinational

    values = {}
    for i in range(width):
        values[f"a[{i}]"] = (a_value >> i) & 1
        values[f"b[{i}]"] = (b_value >> i) & 1
    out = simulate_combinational(netlist, values)
    return out[netlist.outputs[0]]
