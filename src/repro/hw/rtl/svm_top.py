"""Gate-level top of the paper's sequential SVM (Fig. 1), as a clocked netlist.

Until now the sequential architecture existed at two removes from gates: the
:class:`~repro.hw.netlist.HardwareBlock` composition priced cell *counts*,
and :class:`~repro.hw.simulate.SequentialDatapathSimulator` modelled the
register-transfer behaviour in integers.  This builder closes the gap: it
emits the complete multi-cycle datapath as an explicit
:class:`~repro.hw.netlist.GateNetlist` of library cells —

* **control counter** — one D flip-flop per select bit with a half-adder
  increment chain (the feedback loop uses
  :meth:`~repro.hw.netlist.GateNetlist.declare_dff` /
  :meth:`~repro.hw.netlist.GateNetlist.bind_dff`);
* **bespoke MUX storage** — per weight bit a 2:1-MUX tree over the
  *hardwired* coefficient constants, selected by the counter (emitted
  naively; the :mod:`repro.hw.opt` passes collapse constant-fed trees);
* **compute engine** — per feature one unsigned array multiplier
  (``|w| * x``, variable coefficient from storage), a sign-magnitude
  conditional negation, and a ripple accumulation tree, all in
  ``score_bits``-wide two's complement;
* **sequential argmax voter** — a signed magnitude comparator against the
  best-score register, ``fired = (counter == 0) OR (score > best)``, and
  the best-score / best-class registers behind load-enable MUXes.

Weights are stored sign-magnitude (``|w|`` plus a sign bit), so the
multiplier array stays unsigned exactly like the verification multipliers
of :mod:`repro.hw.rtl.multipliers`; the negation stage folds the sign back
in (two's complement: ``(p XOR s) + s``).

Primary inputs: ``x{f}[input_bits]`` per feature (unsigned codes, the
format :meth:`~repro.ml.quantization.QuantizedLinearModel.quantize_inputs`
produces).  Primary outputs per cycle ``k``: ``score`` (the classifier-k
score), ``best_next`` / ``pred`` (the D values of the voter registers,
i.e. best score / best class *after* cycle ``k``'s clock edge) and
``fired`` — each bit-comparable against the corresponding
:class:`~repro.hw.simulate.CycleTrace` field of the behavioural oracle,
which :func:`verify_sequential_svm_netlist` automates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.hw.netlist import GateNetlist
from repro.hw.rtl.multipliers import _emit_array_product
from repro.hw.rtl.registers import counter_bits


# --------------------------------------------------------------------------- #
# Emission helpers
# --------------------------------------------------------------------------- #
def _const_net(bit: int) -> str:
    return GateNetlist.CONST_ONE if bit else GateNetlist.CONST_ZERO


def _emit_constant_mux(
    netlist: GateNetlist,
    column: Sequence[int],
    sel: Sequence[str],
    prefix: str,
) -> str:
    """A 2:1-MUX tree selecting one hardwired constant bit per select value.

    ``column[w]`` is the bit stored for select value ``w``; values beyond
    ``len(column)`` read as 0.  Emitted naively (every tree node a MUX2 over
    possibly-constant nets) — exactly what a generator producing bespoke
    storage emits before optimization; the pass pipeline collapses the
    constant-fed nodes.  Returns the root net (possibly a constant net).
    """
    n_words = 1 << len(sel)
    level: List[str] = [
        _const_net(column[w] if w < len(column) else 0) for w in range(n_words)
    ]
    for depth, select in enumerate(sel):
        next_level: List[str] = []
        for i in range(0, len(level), 2):
            lo, hi = level[i], level[i + 1]
            if lo == hi:
                next_level.append(lo)
                continue
            out = netlist.add_gate(
                "MUX2", [lo, hi, select], outputs=[f"{prefix}m{depth}_{i // 2}"]
            )[0]
            next_level.append(out)
        level = next_level
    return level[0]


def _emit_carry_chain_add(
    netlist: GateNetlist,
    x_nets: Sequence[str],
    y_nets: Sequence[str],
    carry_in: str,
    width: int,
    prefix: str,
) -> List[str]:
    """``width``-bit add modulo ``2**width`` with an explicit carry-in net.

    Operands shorter than ``width`` are zero-padded with the constant net;
    the final carry out is dropped (two's-complement accumulation at a width
    proven to never overflow).  Emitted as naive full adders — the pass
    pipeline shrinks the tied positions.
    """
    carry = carry_in
    sums: List[str] = []
    for i in range(width):
        x = x_nets[i] if i < len(x_nets) else GateNetlist.CONST_ZERO
        y = y_nets[i] if i < len(y_nets) else GateNetlist.CONST_ZERO
        s, carry = netlist.add_gate(
            "FA", [x, y, carry], outputs=[f"{prefix}s{i}", f"{prefix}c{i}"]
        )
        sums.append(s)
    return sums


def _emit_conditional_negate(
    netlist: GateNetlist,
    value_nets: Sequence[str],
    sign: str,
    width: int,
    prefix: str,
) -> List[str]:
    """Two's-complement conditional negation: ``sign ? -value : value``.

    ``value`` is unsigned and zero-extended to ``width`` bits; the result is
    ``(value XOR sign) + sign`` modulo ``2**width``.
    """
    xored: List[str] = []
    for i in range(width):
        v = value_nets[i] if i < len(value_nets) else GateNetlist.CONST_ZERO
        if v == GateNetlist.CONST_ZERO:
            xored.append(sign)
            continue
        xored.append(
            netlist.add_gate("XOR2", [v, sign], outputs=[f"{prefix}x{i}"])[0]
        )
    return _emit_carry_chain_add(
        netlist, xored, [], carry_in=sign, width=width, prefix=f"{prefix}n"
    )


def _emit_signed_gt(
    netlist: GateNetlist,
    a_nets: Sequence[str],
    b_nets: Sequence[str],
    prefix: str,
) -> str:
    """Signed two's-complement ``a > b``: the voter's ``A > B`` comparator.

    Ripple structure from MSB to LSB over the magnitude bits (valid when the
    signs agree), plus one XOR / MUX pair resolving differing signs — the
    gate-level form of :func:`repro.hw.rtl.comparator.magnitude_comparator`'s
    signed cost model.
    """
    width = len(a_nets)
    gt = GateNetlist.CONST_ZERO
    eq = GateNetlist.CONST_ONE
    for i in range(width - 1, -1, -1):
        not_b = netlist.add_gate("INV", [b_nets[i]], outputs=[f"{prefix}nb{i}"])[0]
        a_gt_b = netlist.add_gate(
            "AND2", [a_nets[i], not_b], outputs=[f"{prefix}agb{i}"]
        )[0]
        here = netlist.add_gate("AND2", [eq, a_gt_b], outputs=[f"{prefix}here{i}"])[0]
        gt = netlist.add_gate("OR2", [gt, here], outputs=[f"{prefix}gt{i}"])[0]
        bit_eq = netlist.add_gate(
            "XNOR2", [a_nets[i], b_nets[i]], outputs=[f"{prefix}eq{i}"]
        )[0]
        eq = netlist.add_gate("AND2", [eq, bit_eq], outputs=[f"{prefix}eqacc{i}"])[0]
    a_sign, b_sign = a_nets[-1], b_nets[-1]
    signs_differ = netlist.add_gate(
        "XOR2", [a_sign, b_sign], outputs=[f"{prefix}sd"]
    )[0]
    a_positive = netlist.add_gate("INV", [a_sign], outputs=[f"{prefix}ap"])[0]
    return netlist.add_gate(
        "MUX2", [gt, a_positive, signs_differ], outputs=[f"{prefix}sgt"]
    )[0]


# --------------------------------------------------------------------------- #
# The sequential SVM top
# --------------------------------------------------------------------------- #
@dataclass
class SequentialSVMPorts:
    """Port map of a generated sequential-SVM top (bus widths and orders)."""

    n_classifiers: int
    n_features: int
    input_bits: int
    weight_mag_bits: int
    score_bits: int
    counter_bits: int

    def input_nets(self) -> List[str]:
        """Primary inputs, in declaration order: ``x{f}[b]`` LSB-first."""
        return [
            f"x{f}[{b}]"
            for f in range(self.n_features)
            for b in range(self.input_bits)
        ]

    def input_matrix(self, codes: np.ndarray) -> np.ndarray:
        """Expand quantized input codes into the top's primary-input columns.

        ``codes`` has shape ``(n_samples, n_features)`` of unsigned input
        codes; returns the ``(n_samples, n_features * input_bits)`` 0/1
        matrix in primary-input order, ready for
        :func:`repro.perf.seqsim.simulate_sequential_batch`.
        """
        codes = np.asarray(codes, dtype=np.int64)
        if codes.ndim != 2 or codes.shape[1] != self.n_features:
            raise ValueError(
                f"expected (n_samples, {self.n_features}) codes, got {codes.shape}"
            )
        if codes.size and (codes.min() < 0 or codes.max() >= 1 << self.input_bits):
            raise ValueError(f"input codes out of {self.input_bits}-bit range")
        shifts = np.arange(self.input_bits, dtype=np.int64)
        bits = (codes[:, :, None] >> shifts) & 1
        return bits.reshape(codes.shape[0], -1)

    # Output column ranges (in ``netlist.outputs`` order).
    def score_lanes(self) -> range:
        return range(0, self.score_bits)

    def best_next_lanes(self) -> range:
        return range(self.score_bits, 2 * self.score_bits)

    def pred_lanes(self) -> range:
        return range(2 * self.score_bits, 2 * self.score_bits + self.counter_bits)

    def fired_lane(self) -> int:
        return 2 * self.score_bits + self.counter_bits


def sequential_svm_score_bits(
    weight_codes: np.ndarray, bias_codes: np.ndarray, input_bits: int
) -> int:
    """Two's-complement width that exactly holds every partial MAC sum.

    Any partial sum's magnitude is bounded by the worst classifier's
    ``sum_i |w_i| * x_max + |b|``, so this width makes the modulo arithmetic
    of the gate-level accumulator exact — scores decode to the same integers
    the behavioural oracle computes.
    """
    weight_codes = np.asarray(weight_codes, dtype=np.int64)
    bias_codes = np.asarray(bias_codes, dtype=np.int64)
    x_max = (1 << int(input_bits)) - 1
    bound = int(
        (np.abs(weight_codes).sum(axis=1) * x_max + np.abs(bias_codes)).max()
    )
    return max(int(bound).bit_length() + 1, 2)


def build_sequential_svm_netlist(
    weight_codes: np.ndarray,
    bias_codes: np.ndarray,
    input_bits: int,
    name: str = "sequential_svm",
) -> "tuple[GateNetlist, SequentialSVMPorts]":
    """Emit the full clocked sequential-SVM netlist plus its port map.

    One classification takes ``n_classifiers`` cycles with the input codes
    held constant on the ``x{f}`` pins; cycle ``k`` streams classifier ``k``
    through the shared MAC and updates the voter registers.  Returns the
    netlist and a :class:`SequentialSVMPorts` describing the buses.

    Example::

        top, ports = build_sequential_svm_netlist(W, b, input_bits=4)
        trace = simulate_sequential_batch(top, ports.input_matrix(codes),
                                          cycles=W.shape[0])
    """
    weight_codes = np.asarray(weight_codes, dtype=np.int64)
    bias_codes = np.asarray(bias_codes, dtype=np.int64)
    if weight_codes.ndim != 2:
        raise ValueError("weight_codes must be 2-D")
    if bias_codes.shape != (weight_codes.shape[0],):
        raise ValueError("bias_codes and weight_codes disagree on classifier count")
    if input_bits < 1:
        raise ValueError("input width must be >= 1")
    n_classifiers, n_features = weight_codes.shape
    c_bits = counter_bits(n_classifiers)
    w_mag = int(np.abs(weight_codes).max())
    w_bits = max(int(w_mag).bit_length(), 1)
    b_mag = int(np.abs(bias_codes).max())
    b_bits = max(int(b_mag).bit_length(), 1)
    a_bits = max(
        sequential_svm_score_bits(weight_codes, bias_codes, input_bits),
        input_bits + w_bits + 1,
        b_bits + 1,
    )

    netlist = GateNetlist(name=name)
    x_nets = [netlist.add_inputs(f"x{f}", input_bits) for f in range(n_features)]

    # -- control: free-running counter selecting the support vector --------- #
    sel = [netlist.declare_dff(f"cnt[{b}]", name=f"cnt{b}") for b in range(c_bits)]
    carry = GateNetlist.CONST_ONE
    for b in range(c_bits):
        s, carry = netlist.add_gate(
            "HA", [sel[b], carry], outputs=[f"cnt_inc[{b}]", f"cnt_cy[{b}]"]
        )
        netlist.bind_dff(sel[b], s)
    not_sel = [
        netlist.add_gate("INV", [sel[b]], outputs=[f"cnt_n[{b}]"])[0]
        for b in range(c_bits)
    ]
    is_zero = not_sel[0]
    for b in range(1, c_bits):
        is_zero = netlist.add_gate(
            "AND2", [is_zero, not_sel[b]], outputs=[f"is_zero{b}"]
        )[0]

    # -- storage + compute engine: one shared MAC over MUX-selected weights - #
    magnitudes = np.abs(weight_codes)
    signs = (weight_codes < 0).astype(np.int64)
    acc: Optional[List[str]] = None
    for f in range(n_features):
        mag_nets = [
            _emit_constant_mux(
                netlist,
                [(int(magnitudes[k, f]) >> b) & 1 for k in range(n_classifiers)],
                sel,
                prefix=f"w{f}b{b}_",
            )
            for b in range(w_bits)
        ]
        sign_net = _emit_constant_mux(
            netlist,
            [int(signs[k, f]) for k in range(n_classifiers)],
            sel,
            prefix=f"w{f}s_",
        )
        product = _emit_array_product(netlist, x_nets[f], mag_nets, prefix=f"p{f}_")
        term = _emit_conditional_negate(
            netlist, product, sign_net, width=a_bits, prefix=f"t{f}_"
        )
        acc = term if acc is None else _emit_carry_chain_add(
            netlist, acc, term, GateNetlist.CONST_ZERO, a_bits, prefix=f"a{f}_"
        )

    bias_mag_nets = [
        _emit_constant_mux(
            netlist,
            [(int(abs(bias_codes[k])) >> b) & 1 for k in range(n_classifiers)],
            sel,
            prefix=f"bb{b}_",
        )
        for b in range(b_bits)
    ]
    bias_sign = _emit_constant_mux(
        netlist,
        [int(bias_codes[k] < 0) for k in range(n_classifiers)],
        sel,
        prefix="bs_",
    )
    bias_term = _emit_conditional_negate(
        netlist, bias_mag_nets, bias_sign, width=a_bits, prefix="tb_"
    )
    acc = _emit_carry_chain_add(
        netlist, acc, bias_term, GateNetlist.CONST_ZERO, a_bits, prefix="ab_"
    )
    score = [
        netlist.add_gate("BUF", [acc[b]], outputs=[f"score[{b}]"])[0]
        for b in range(a_bits)
    ]

    # -- voter: strict A > B comparator + best (score, class) registers ----- #
    best_q = [
        netlist.declare_dff(f"best[{b}]", name=f"best{b}") for b in range(a_bits)
    ]
    class_q = [
        netlist.declare_dff(f"cls[{b}]", name=f"cls{b}") for b in range(c_bits)
    ]
    gt = _emit_signed_gt(netlist, score, best_q, prefix="cmp_")
    fired = netlist.add_gate("OR2", [is_zero, gt], outputs=["fired"])[0]
    best_next = []
    for b in range(a_bits):
        d = netlist.add_gate(
            "MUX2", [best_q[b], score[b], fired], outputs=[f"best_next[{b}]"]
        )[0]
        netlist.bind_dff(best_q[b], d)
        best_next.append(d)
    pred = []
    for b in range(c_bits):
        d = netlist.add_gate(
            "MUX2", [class_q[b], sel[b], fired], outputs=[f"pred[{b}]"]
        )[0]
        netlist.bind_dff(class_q[b], d)
        pred.append(d)

    for net in score:
        netlist.mark_output(net)
    for net in best_next:
        netlist.mark_output(net)
    for net in pred:
        netlist.mark_output(net)
    netlist.mark_output(fired)

    ports = SequentialSVMPorts(
        n_classifiers=n_classifiers,
        n_features=n_features,
        input_bits=input_bits,
        weight_mag_bits=w_bits,
        score_bits=a_bits,
        counter_bits=c_bits,
    )
    return netlist, ports


def verify_sequential_svm_netlist(
    netlist: GateNetlist,
    ports: SequentialSVMPorts,
    codes: np.ndarray,
    oracle=None,
    library=None,
    opt_level: int = 0,
    engine: str = "auto",
) -> bool:
    """Assert the gate-level top bit-exact against the behavioural oracle.

    Runs the clocked netlist for ``n_classifiers`` cycles on every sample of
    ``codes`` (quantized input codes) through the bit-parallel engine,
    decodes the score / best-score / best-class / fired buses per cycle, and
    compares each against the corresponding
    :class:`~repro.hw.simulate.CycleTrace` field of
    :meth:`~repro.hw.simulate.SequentialDatapathSimulator.run` for the same
    sample.  Returns True when every field of every cycle of every sample
    matches.

    Example::

        top, ports = build_sequential_svm_netlist(W, b, input_bits=4)
        oracle = SequentialDatapathSimulator(W, b)
        assert verify_sequential_svm_netlist(top, ports, codes, oracle)
    """
    from repro.hw.simulate import SequentialDatapathSimulator
    from repro.perf.bitsim import words_to_ints, words_to_signed_ints
    from repro.perf.seqsim import simulate_sequential_batch

    codes = np.asarray(codes, dtype=np.int64)
    if codes.ndim == 1:
        codes = codes.reshape(1, -1)
    if oracle is None:
        raise ValueError("verification needs the behavioural oracle simulator")
    if not isinstance(oracle, SequentialDatapathSimulator):
        raise TypeError("oracle must be a SequentialDatapathSimulator")
    cycles = ports.n_classifiers
    n_samples = codes.shape[0]
    trace = simulate_sequential_batch(
        netlist,
        ports.input_matrix(codes),
        cycles=cycles,
        library=library,
        opt_level=opt_level,
        engine=engine,
    )
    # Stack the oracle traces into (cycles, n_samples) planes once, then
    # decode each cycle's buses for the whole batch in one vectorized call.
    expected = np.zeros((4, cycles, n_samples), dtype=np.int64)
    for s in range(n_samples):
        for t, step in enumerate(oracle.run(codes[s]).trace):
            expected[:, t, s] = (
                step.score,
                step.best_score,
                step.best_class,
                int(step.comparator_fired),
            )
    for t in range(cycles):
        plane = trace[t]
        if not (
            np.array_equal(
                words_to_signed_ints(plane, ports.score_lanes()), expected[0, t]
            )
            and np.array_equal(
                words_to_signed_ints(plane, ports.best_next_lanes()), expected[1, t]
            )
            and np.array_equal(
                words_to_ints(plane, ports.pred_lanes()), expected[2, t]
            )
            and np.array_equal(plane[:, ports.fired_lane()], expected[3, t])
        ):
            return False
    return True
