"""Multiplier generators: generic array multipliers and hardwired-constant
multipliers.

Two kinds of multiplier appear in printed bespoke classifiers:

* **Array multipliers** with two variable operands.  The paper's sequential
  compute engine needs these, because the coefficient arrives from MUX
  storage at run time (a different support vector every cycle).
* **Constant (bespoke) multipliers** where one operand is hardwired.  The
  fully-parallel baselines [2], [3] instantiate one of these per coefficient;
  they reduce to a few shift-and-add/subtract stages determined by the
  canonical signed digit (CSD) recoding of the constant, and vanish entirely
  for zero or power-of-two coefficients.  This is the key reason bespoke
  parallel designs are smaller per-multiplier but need many more multipliers.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import List, Optional, Tuple

from repro.hw.activity import datapath_toggles
from repro.hw.netlist import GateNetlist, HardwareBlock


# --------------------------------------------------------------------------- #
# Canonical signed-digit recoding (for constant multipliers)
# --------------------------------------------------------------------------- #
def csd_digits(value: int) -> List[int]:
    """Canonical signed-digit representation of an integer.

    Returns a list of digits in ``{-1, 0, +1}``, least-significant first,
    such that ``value == sum(d * 2**i)`` and no two consecutive digits are
    non-zero.  The CSD form minimises the number of add/subtract stages of a
    shift-and-add constant multiplier.
    """
    value = int(value)
    negative = value < 0
    magnitude = -value if negative else value
    digits: List[int] = []
    while magnitude > 0:
        if magnitude & 1:
            # Remainder modulo 4 decides whether to emit +1 or -1.
            if magnitude & 2:
                digits.append(-1)
                magnitude += 1
            else:
                digits.append(1)
                magnitude -= 1
        else:
            digits.append(0)
        magnitude >>= 1
    if not digits:
        digits = []
    if negative:
        digits = [-d for d in digits]
    return digits


def csd_nonzero_count(value: int) -> int:
    """Number of non-zero CSD digits (add/subtract terms) of a constant."""
    return sum(1 for d in csd_digits(value) if d != 0)


def csd_value(digits: List[int]) -> int:
    """Reconstruct the integer encoded by a CSD digit list (LSB first)."""
    return sum(d << i for i, d in enumerate(digits))


# --------------------------------------------------------------------------- #
# Generic array multiplier (two variable operands)
# --------------------------------------------------------------------------- #
def array_multiplier(
    a_bits: int,
    b_bits: int,
    signed: bool = True,
    name: str = "mult",
) -> HardwareBlock:
    """A carry-save array multiplier for ``a_bits`` x ``b_bits`` operands.

    Cost model (standard array structure):

    * partial-product generation: ``a_bits * b_bits`` AND gates;
    * reduction plus final ripple: ``(b_bits - 1)`` rows, each with
      ``a_bits - 1`` full adders and one half adder;
    * signed (Baugh-Wooley) handling adds one inverter per operand bit and a
      final correction half adder per operand.

    Critical path: roughly ``a_bits + b_bits - 2`` adder positions (carry
    propagation through one row plus down the array) preceded by one AND.
    """
    if a_bits < 1 or b_bits < 1:
        raise ValueError("multiplier operand widths must be >= 1")
    counts: Counter = Counter({"AND2": a_bits * b_bits})
    if b_bits > 1:
        counts.update(
            {
                "FA": (b_bits - 1) * max(a_bits - 1, 0),
                "HA": (b_bits - 1),
            }
        )
    if signed:
        counts.update({"INV": a_bits + b_bits, "HA": 2})

    path_fa = max(a_bits + b_bits - 2, 0)
    path = Counter({"AND2": 1})
    if path_fa > 0:
        path.update({"FA": path_fa})
    depth = 1 + path_fa
    return HardwareBlock(
        name=name,
        counts=counts,
        path=path,
        toggles=datapath_toggles(counts, depth),
    )


def array_multiplier_output_bits(a_bits: int, b_bits: int, signed: bool = True) -> int:
    """Width of the full product of an ``a_bits`` x ``b_bits`` multiplication."""
    if a_bits < 1 or b_bits < 1:
        raise ValueError("multiplier operand widths must be >= 1")
    return a_bits + b_bits


# --------------------------------------------------------------------------- #
# Hardwired-constant multiplier (bespoke)
# --------------------------------------------------------------------------- #
def constant_multiplier(
    constant_code: int,
    input_bits: int,
    name: Optional[str] = None,
) -> HardwareBlock:
    """A bespoke multiplier computing ``constant_code * x`` for an unsigned input.

    The constant is recoded in CSD form; each non-zero digit contributes one
    shifted copy of the input, and the copies are combined with a tree of
    ripple-carry adders / subtractors.  Special cases:

    * ``constant == 0`` — no hardware at all (output tied to 0);
    * a single non-zero digit (power of two, possibly negated) — pure wiring
      (plus a small negation stage when the digit is -1).
    """
    constant_code = int(constant_code)
    name = name or f"cmul_{constant_code}"
    digits = csd_digits(constant_code)
    nonzero = [(i, d) for i, d in enumerate(digits) if d != 0]

    if not nonzero:
        return HardwareBlock(name=name)

    if len(nonzero) == 1:
        shift, digit = nonzero[0]
        if digit > 0:
            # Pure shift: wiring only.
            return HardwareBlock(name=name)
        # Negated power of two: two's-complement negation of the input.
        counts = Counter({"INV": input_bits, "HA": input_bits})
        path = Counter({"INV": 1, "HA": input_bits})
        return HardwareBlock(
            name=name, counts=counts, path=path, toggles=datapath_toggles(counts, input_bits + 1)
        )

    # General case: combine the shifted terms pairwise with a balanced tree.
    counts = Counter()
    n_terms = len(nonzero)
    max_shift = max(i for i, _ in nonzero)
    # Width of intermediate sums: input width plus the largest shift plus tree growth.
    base_width = input_bits + max_shift
    n_adders = n_terms - 1
    n_subtractors = sum(1 for _, d in nonzero if d < 0)
    n_plain_adders = max(n_adders - n_subtractors, 0)
    n_sub_stages = min(n_subtractors, n_adders)

    counts.update({"FA": n_plain_adders * base_width})
    counts.update({"FA": n_sub_stages * base_width, "INV": n_sub_stages * input_bits})

    levels = int(math.ceil(math.log2(n_terms)))
    path_fa = base_width + 2 * max(levels - 1, 0)
    path = Counter({"FA": path_fa})
    depth = path_fa
    return HardwareBlock(
        name=name,
        counts=counts,
        path=path,
        toggles=datapath_toggles(counts, depth),
    )


def constant_multiplier_output_bits(constant_code: int, input_bits: int) -> int:
    """Width of the product of an ``input_bits`` unsigned input and a constant."""
    constant_code = int(constant_code)
    if constant_code == 0:
        return 1
    magnitude_bits = int(abs(constant_code)).bit_length()
    sign_bit = 1 if constant_code < 0 else 0
    return input_bits + magnitude_bits + sign_bit


# --------------------------------------------------------------------------- #
# Explicit gate-level construction (small instances, for verification)
# --------------------------------------------------------------------------- #
def _emit_array_product(
    netlist: GateNetlist,
    a_nets: List[str],
    b_nets: List[str],
    prefix: str = "",
) -> List[str]:
    """Emit the textbook unsigned array-multiplier structure into a netlist.

    ``a_nets`` / ``b_nets`` are existing nets of ``netlist`` (constant nets
    allowed — that is how the naive hardwired-constant multipliers below tie
    one operand off).  Returns the product nets, LSB first; entries may be
    constant nets when whole rows vanish.
    """
    a_bits, b_bits = len(a_nets), len(b_nets)
    # Partial products pp[j][i] = a[i] & b[j]
    pp = [
        [
            netlist.add_gate(
                "AND2", [a_nets[i], b_nets[j]], outputs=[f"{prefix}pp{j}_{i}"]
            )[0]
            for i in range(a_bits)
        ]
        for j in range(b_bits)
    ]

    # Row-by-row ripple accumulation.
    acc: List[str] = list(pp[0])  # running sum bits, LSB first (length grows)
    outputs: List[str] = [acc[0]]
    acc = acc[1:]
    for j in range(1, b_bits):
        row = pp[j]
        carry = GateNetlist.CONST_ZERO
        new_acc: List[str] = []
        for i in range(a_bits):
            acc_bit = acc[i] if i < len(acc) else GateNetlist.CONST_ZERO
            s, carry = netlist.add_gate(
                "FA",
                [row[i], acc_bit, carry],
                outputs=[f"{prefix}s{j}_{i}", f"{prefix}c{j}_{i}"],
            )
            new_acc.append(s)
        new_acc.append(carry)
        outputs.append(new_acc[0])
        acc = new_acc[1:]
    outputs.extend(acc)
    return outputs


def _emit_ripple_add(
    netlist: GateNetlist, x_nets: List[str], y_nets: List[str], prefix: str
) -> List[str]:
    """Emit a naive ripple adder over two (possibly unequal-width) operands.

    Shorter operands are zero-padded with the constant net; every position
    uses a full adder with the carry chain seeded at constant 0 — deliberately
    unoptimized, the pass pipeline's constant propagation folds the tied
    positions (``FA(a, b, 0)`` -> ``HA`` etc.).  Returns sum nets plus the
    final carry, LSB first.
    """
    width = max(len(x_nets), len(y_nets))
    carry = GateNetlist.CONST_ZERO
    sums: List[str] = []
    for i in range(width):
        x = x_nets[i] if i < len(x_nets) else GateNetlist.CONST_ZERO
        y = y_nets[i] if i < len(y_nets) else GateNetlist.CONST_ZERO
        s, carry = netlist.add_gate(
            "FA", [x, y, carry], outputs=[f"{prefix}s{i}", f"{prefix}c{i}"]
        )
        sums.append(s)
    sums.append(carry)
    return sums


def _constant_operand_nets(magnitude: int) -> List[str]:
    """Constant nets encoding an unsigned magnitude as a tied-off operand."""
    b_bits = max(int(magnitude).bit_length(), 1)
    return [
        GateNetlist.CONST_ONE if (magnitude >> j) & 1 else GateNetlist.CONST_ZERO
        for j in range(b_bits)
    ]


def _mark_bus_outputs(netlist: GateNetlist, nets: List[str], tie_prefix: str = "pz") -> None:
    """Mark product nets as outputs, buffering constant bits to observe them."""
    for k, net in enumerate(nets):
        if net in (GateNetlist.CONST_ZERO, GateNetlist.CONST_ONE):
            # Tie constant product bits through a buffer so they are observable.
            net = netlist.add_gate("BUF", [net], outputs=[f"{tie_prefix}{k}"])[0]
        netlist.mark_output(net)


def build_array_multiplier_netlist(
    a_bits: int, b_bits: int, name: str = "mult"
) -> GateNetlist:
    """Explicit unsigned array multiplier netlist (for logic-level checks).

    Implements the textbook unsigned array: AND partial products reduced with
    ripple rows.  Primary inputs ``a[a_bits]``, ``b[b_bits]``; outputs
    ``p[a_bits + b_bits]``.
    """
    if a_bits < 1 or b_bits < 1:
        raise ValueError("multiplier operand widths must be >= 1")
    netlist = GateNetlist(name=name)
    a = netlist.add_inputs("a", a_bits)
    b = netlist.add_inputs("b", b_bits)
    outputs = _emit_array_product(netlist, a, b)
    _mark_bus_outputs(netlist, outputs)
    return netlist


def build_constant_multiplier_netlist(
    constant_code: int, input_bits: int, name: Optional[str] = None
) -> GateNetlist:
    """Naive hardwired-constant multiplier netlist: ``|constant| * a``.

    The same array structure as :func:`build_array_multiplier_netlist` with
    the ``b`` operand *tied off* to the constant's magnitude bits — exactly
    what a generator emitting "one multiplier per coefficient" produces
    before optimization.  Rows of AND gates fed by ``1'b0`` and full adders
    with constant operands are emitted verbatim; the :mod:`repro.hw.opt`
    pass pipeline is what folds them away (the cost model already prices
    zero / power-of-two constants at zero — see :func:`constant_multiplier`).

    The sign of a negative constant is ignored (magnitude multiplier); the
    negation stage is priced separately, as in :func:`constant_multiplier`.
    Primary inputs ``a[input_bits]``; outputs are the product bits of
    ``magnitude * a``, LSB first.
    """
    if input_bits < 1:
        raise ValueError("multiplier input width must be >= 1")
    magnitude = abs(int(constant_code))
    name = name or f"cmul{magnitude}_{input_bits}b"
    netlist = GateNetlist(name=name)
    a = netlist.add_inputs("a", input_bits)
    outputs = _emit_array_product(netlist, a, _constant_operand_nets(magnitude))
    _mark_bus_outputs(netlist, outputs)
    return netlist


def build_constant_mac_netlist(
    weight_codes: List[int], input_bits: int, name: Optional[str] = None
) -> GateNetlist:
    """Naive constant-MAC datapath: one tied-operand multiplier per weight.

    The fully-parallel baselines instantiate one hardwired multiplier per
    coefficient and sum the products; this builder emits that datapath
    *unoptimized* — tied-off array multipliers (see
    :func:`build_constant_multiplier_netlist`) chained through naive ripple
    adders seeded with constant carries.  It is the reference workload for
    the :mod:`repro.hw.opt` pass pipeline: zero weights leave whole dead
    multipliers behind, power-of-two weights reduce to wiring, and shared
    partial products hash together.

    Weights enter as magnitudes (``|w|``); sign handling lives in the
    subtract/negate stages the cost model prices separately.  Primary inputs
    ``x{f}[input_bits]`` per feature ``f``; outputs are the accumulated sum
    bits, LSB first.
    """
    weights = [abs(int(w)) for w in weight_codes]
    if not weights:
        raise ValueError("need at least one weight")
    if input_bits < 1:
        raise ValueError("input width must be >= 1")
    netlist = GateNetlist(name=name or f"cmac_{len(weights)}x{input_bits}b")
    acc: Optional[List[str]] = None
    for f, magnitude in enumerate(weights):
        x = netlist.add_inputs(f"x{f}", input_bits)
        product = _emit_array_product(
            netlist, x, _constant_operand_nets(magnitude), prefix=f"m{f}_"
        )
        acc = product if acc is None else _emit_ripple_add(
            netlist, acc, product, prefix=f"acc{f}_"
        )
    _mark_bus_outputs(netlist, acc)
    return netlist


def simulate_array_multiplier(netlist: GateNetlist, a_value: int, b_value: int, a_bits: int, b_bits: int) -> int:
    """Drive a gate-level multiplier netlist and decode the product."""
    from repro.hw.simulate import simulate_combinational

    if a_value < 0 or b_value < 0:
        raise ValueError("operands must be non-negative")
    values = {}
    for i in range(a_bits):
        values[f"a[{i}]"] = (a_value >> i) & 1
    for j in range(b_bits):
        values[f"b[{j}]"] = (b_value >> j) & 1
    out = simulate_combinational(netlist, values)
    product = 0
    for k, net in enumerate(netlist.outputs):
        product |= out[net] << k
    return product
