"""Multiplexer-based bespoke storage.

The paper stores the support-vector coefficients in "bespoke MUX-based
storage units, i.e. the inputs of the MUX (excluding the control signal) are
hardwired to the parameters of the support vectors", selected by the control
counter.  Because the data inputs are constants, synthesis collapses large
parts of the MUX tree:

* a bit column whose value is identical for every word needs *no* logic;
* a column equal to (the complement of) a select bit collapses to a wire
  (an inverter);
* only columns that genuinely depend on several select bits keep MUX cells.

:func:`constant_mux_storage` performs that collapse column by column on the
actual hardwired coefficient table, so the storage cost is data dependent —
exactly the property that makes bespoke printed storage so much cheaper than
a generic ROM/crossbar.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import List, Optional, Sequence

import numpy as np

from repro.hw.activity import storage_toggles
from repro.hw.netlist import GateNetlist, HardwareBlock


def mux_tree(n_inputs: int, width: int = 1, name: str = "mux") -> HardwareBlock:
    """A generic (non-hardwired) ``n_inputs``-to-1 MUX for ``width``-bit words.

    Built as a binary tree of 2:1 MUX cells: ``n_inputs - 1`` cells per bit,
    with a depth of ``ceil(log2(n_inputs))`` levels.
    """
    if n_inputs < 1 or width < 1:
        raise ValueError("invalid mux shape")
    if n_inputs == 1:
        return HardwareBlock(name=name)
    counts = Counter({"MUX2": (n_inputs - 1) * width})
    depth = int(math.ceil(math.log2(n_inputs)))
    path = Counter({"MUX2": depth})
    return HardwareBlock(
        name=name,
        counts=counts,
        path=path,
        toggles=storage_toggles(counts),
    )


# --------------------------------------------------------------------------- #
# Hardwired-constant storage with column-wise logic collapse
# --------------------------------------------------------------------------- #
def _column_cost(column: Sequence[int]) -> Counter:
    """Cells needed to produce one output bit from hardwired constants.

    ``column[w]`` is the bit value stored for select value ``w``.  The cost
    is computed by recursively building a 2:1-MUX tree over the constants and
    simplifying:

    * both halves constant and equal -> constant (no cells);
    * halves are constant 0/1 -> the select bit itself or its inverse
      (at most one inverter);
    * one half constant -> the MUX degenerates to an AND/OR with the
      recursive result;
    * otherwise -> a MUX2 plus the cost of both halves.

    The recursion returns ``(kind, cells)`` where ``kind`` is "const0",
    "const1", "wire" or "logic"; only the cells matter to the caller.
    """

    def reduce(bits: Sequence[int]) -> tuple:
        n = len(bits)
        if all(b == 0 for b in bits):
            return "const0", Counter()
        if all(b == 1 for b in bits):
            return "const1", Counter()
        if n == 1:
            return ("const1", Counter()) if bits[0] else ("const0", Counter())
        if n == 2:
            # Depends on exactly one select bit: a wire or an inverter.
            if bits == (0, 1) or list(bits) == [0, 1]:
                return "wire", Counter()
            return "wire", Counter({"INV": 1})
        half = 1 << (int(math.ceil(math.log2(n))) - 1)
        lo_kind, lo_cells = reduce(bits[:half])
        hi_kind, hi_cells = reduce(list(bits[half:]) + [0] * (2 * half - n))
        cells = lo_cells + hi_cells
        kinds = {lo_kind, hi_kind}
        if kinds == {"const0"}:
            return "const0", cells
        if kinds == {"const1"}:
            return "const1", cells
        if kinds <= {"const0", "const1"}:
            # Output equals (possibly inverted) top select bit.
            return "wire", cells + Counter({"INV": 1 if lo_kind == "const1" else 0})
        if lo_kind == "const0":
            return "logic", cells + Counter({"AND2": 1})
        if hi_kind == "const0":
            return "logic", cells + Counter({"AND2": 1, "INV": 1})
        if lo_kind == "const1":
            return "logic", cells + Counter({"OR2": 1, "INV": 1})
        if hi_kind == "const1":
            return "logic", cells + Counter({"OR2": 1})
        return "logic", cells + Counter({"MUX2": 1})

    _, cells = reduce(list(int(b) & 1 for b in column))
    return cells


def storage_table_bits(coefficients: np.ndarray, bits_per_value: Sequence[int]) -> np.ndarray:
    """Expand a table of signed integer codes into a bit matrix.

    ``coefficients`` has shape ``(n_words, n_values)``; column ``v`` of every
    word is stored with ``bits_per_value[v]`` bits (two's complement).  The
    result has shape ``(n_words, sum(bits_per_value))`` with LSB-first bit
    ordering per value.
    """
    coefficients = np.asarray(coefficients, dtype=np.int64)
    if coefficients.ndim != 2:
        raise ValueError("coefficient table must be 2-D")
    n_words, n_values = coefficients.shape
    if len(bits_per_value) != n_values:
        raise ValueError("bits_per_value length must match the number of columns")
    columns: List[np.ndarray] = []
    for v in range(n_values):
        width = int(bits_per_value[v])
        if width < 1:
            raise ValueError("every stored value needs at least one bit")
        codes = coefficients[:, v]
        lo, hi = -(1 << (width - 1)), (1 << (width - 1)) - 1
        if np.any(codes < lo) or np.any(codes > hi):
            raise ValueError(
                f"column {v}: code out of range for {width}-bit two's complement"
            )
        unsigned = np.where(codes < 0, codes + (1 << width), codes)
        for bit in range(width):
            columns.append(((unsigned >> bit) & 1).astype(np.int8))
    return np.column_stack(columns)


def constant_mux_storage(
    coefficients: np.ndarray,
    bits_per_value: Sequence[int],
    name: str = "mux_storage",
) -> HardwareBlock:
    """Bespoke MUX storage for a hardwired coefficient table.

    Parameters
    ----------
    coefficients:
        Integer codes of shape ``(n_words, n_values)`` — one word per support
        vector, one value per coefficient (weights and bias).
    bits_per_value:
        Storage width of each value column.

    The cell cost is obtained by collapsing every output-bit column against
    the constants actually stored (see module docstring), so sparse or
    repetitive coefficient tables genuinely cost less — the property bespoke
    printed classifiers exploit.
    """
    coefficients = np.asarray(coefficients, dtype=np.int64)
    n_words = coefficients.shape[0]
    bit_matrix = storage_table_bits(coefficients, bits_per_value)
    counts: Counter = Counter()
    for col in range(bit_matrix.shape[1]):
        counts.update(_column_cost(tuple(int(b) for b in bit_matrix[:, col])))

    if n_words <= 1:
        depth_levels = 0
        path: Counter = Counter()
    else:
        depth_levels = int(math.ceil(math.log2(n_words)))
        path = Counter({"MUX2": depth_levels})
    return HardwareBlock(
        name=name,
        counts=counts,
        path=path,
        toggles=storage_toggles(counts),
    )


def build_mux_tree_netlist(n_inputs: int, name: str = "mux") -> GateNetlist:
    """Explicit 1-bit ``n_inputs``-to-1 MUX tree netlist (for verification).

    Primary inputs: ``d[n_inputs]`` and ``sel[ceil(log2 n_inputs)]``.
    Primary output: ``y``.
    """
    if n_inputs < 2:
        raise ValueError("mux needs at least two inputs")
    n_sel = int(math.ceil(math.log2(n_inputs)))
    netlist = GateNetlist(name=name)
    data = netlist.add_inputs("d", n_inputs)
    sel = netlist.add_inputs("sel", n_sel)

    level_nets = list(data)
    for level in range(n_sel):
        next_nets: List[str] = []
        for i in range(0, len(level_nets), 2):
            if i + 1 < len(level_nets):
                out = netlist.add_gate(
                    "MUX2",
                    [level_nets[i], level_nets[i + 1], sel[level]],
                    outputs=[f"m{level}_{i // 2}"],
                )[0]
            else:
                out = level_nets[i]
            next_nets.append(out)
        level_nets = next_nets
    if level_nets[0] in (GateNetlist.CONST_ZERO, GateNetlist.CONST_ONE):
        level_nets[0] = netlist.add_gate("BUF", [level_nets[0]], outputs=["y"])[0]
    netlist.mark_output(level_nets[0])
    return netlist
