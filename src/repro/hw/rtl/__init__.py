"""RTL component generators for bespoke printed datapaths.

Each generator returns a :class:`~repro.hw.netlist.HardwareBlock` describing
the component's cell inventory, critical path and switching activity; the
small building blocks additionally offer explicit gate-level constructors
(:class:`~repro.hw.netlist.GateNetlist`) used for logic-level verification
and Verilog export.
"""

from repro.hw.rtl.adders import (
    adder_tree,
    build_ripple_adder_netlist,
    ripple_carry_adder,
)
from repro.hw.rtl.multipliers import (
    array_multiplier,
    build_array_multiplier_netlist,
    build_constant_mac_netlist,
    build_constant_multiplier_netlist,
    constant_multiplier,
    csd_digits,
    csd_nonzero_count,
)
from repro.hw.rtl.mux import (
    constant_mux_storage,
    mux_tree,
    storage_table_bits,
)
from repro.hw.rtl.comparator import build_comparator_netlist, magnitude_comparator
from repro.hw.rtl.registers import (
    binary_counter,
    build_counter_netlist,
    register_bank,
)
from repro.hw.rtl.svm_top import (
    build_sequential_svm_netlist,
    verify_sequential_svm_netlist,
)

__all__ = [
    "ripple_carry_adder",
    "adder_tree",
    "build_ripple_adder_netlist",
    "array_multiplier",
    "constant_multiplier",
    "build_array_multiplier_netlist",
    "build_constant_mac_netlist",
    "build_constant_multiplier_netlist",
    "csd_digits",
    "csd_nonzero_count",
    "mux_tree",
    "constant_mux_storage",
    "storage_table_bits",
    "magnitude_comparator",
    "build_comparator_netlist",
    "register_bank",
    "binary_counter",
    "build_counter_netlist",
    "build_sequential_svm_netlist",
    "verify_sequential_svm_netlist",
]
