"""Adder generators: ripple-carry adders and multi-operand adder trees.

Printed bespoke datapaths use ripple-carry adders (the area-cheapest choice,
and speed is not the limiting concern at Hz-range frequencies) and balanced
binary trees of them for multi-operand accumulation — the "multi-operand
adder" of the paper's compute engine.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import List, Optional, Tuple

from repro.hw.activity import datapath_toggles
from repro.hw.netlist import GateNetlist, HardwareBlock


def ripple_carry_adder(width: int, name: str = "rca") -> HardwareBlock:
    """A ``width``-bit ripple-carry adder (two operands, carry out).

    Structure: one half adder at the least-significant position and full
    adders elsewhere.  Critical path: the carry chain through every position.
    """
    if width < 1:
        raise ValueError("adder width must be >= 1")
    counts = Counter({"HA": 1, "FA": width - 1}) if width > 1 else Counter({"HA": 1})
    path = Counter(counts)
    depth = width
    return HardwareBlock(
        name=name,
        counts=counts,
        path=path,
        toggles=datapath_toggles(counts, depth),
    )


def ripple_carry_subtractor(width: int, name: str = "rcs") -> HardwareBlock:
    """A two's-complement subtractor: an RCA plus one inverter per bit."""
    if width < 1:
        raise ValueError("subtractor width must be >= 1")
    counts = Counter({"FA": width, "INV": width})
    path = Counter({"FA": width, "INV": 1})
    depth = width + 1
    return HardwareBlock(
        name=name,
        counts=counts,
        path=path,
        toggles=datapath_toggles(counts, depth),
    )


def adder_tree(
    n_operands: int,
    operand_width: int,
    name: str = "adder_tree",
) -> HardwareBlock:
    """Balanced binary tree of ripple-carry adders summing ``n_operands`` values.

    Each tree level widens its adders by one bit to hold the growing sum.
    The critical path of a tree of ripple-carry adders is approximately one
    full ``operand_width``-bit carry chain plus two positions per additional
    level (the carry chains of consecutive levels overlap), the standard
    result used when sizing accumulation trees for slow technologies.

    Returns a block whose ``meta`` width information is encoded in the name;
    the final sum width is ``operand_width + ceil(log2(n_operands))``.
    """
    if n_operands < 1:
        raise ValueError("need at least one operand")
    if operand_width < 1:
        raise ValueError("operand width must be >= 1")
    if n_operands == 1:
        # Nothing to add: zero-cost wiring block.
        return HardwareBlock(name=name)

    counts: Counter = Counter()
    level_width = operand_width
    remaining = n_operands
    levels = 0
    while remaining > 1:
        n_adders = remaining // 2
        # Each adder at this level: one HA + (level_width - 1) FAs.
        counts.update({"HA": n_adders, "FA": n_adders * (level_width - 1)})
        remaining = n_adders + (remaining % 2)
        level_width += 1
        levels += 1

    # Critical path: full ripple through the first level plus ~2 FA per extra level.
    path_fa = (operand_width - 1) + 2 * max(levels - 1, 0)
    path = Counter({"HA": 1, "FA": path_fa})
    depth = path_fa + 1
    return HardwareBlock(
        name=name,
        counts=counts,
        path=path,
        toggles=datapath_toggles(counts, depth),
    )


def adder_tree_output_width(n_operands: int, operand_width: int) -> int:
    """Bit width of the sum of ``n_operands`` values of ``operand_width`` bits."""
    if n_operands < 1 or operand_width < 1:
        raise ValueError("invalid adder tree shape")
    if n_operands == 1:
        return operand_width
    return operand_width + int(math.ceil(math.log2(n_operands)))


# --------------------------------------------------------------------------- #
# Explicit gate-level construction (for verification and Verilog export)
# --------------------------------------------------------------------------- #
def build_ripple_adder_netlist(
    width: int,
    name: str = "rca",
    with_carry_in: bool = False,
) -> GateNetlist:
    """Build an explicit gate-level ripple-carry adder netlist.

    Primary inputs: ``a[width]``, ``b[width]`` (and ``cin`` when requested).
    Primary outputs: ``sum[width]`` and ``cout``.
    """
    if width < 1:
        raise ValueError("adder width must be >= 1")
    netlist = GateNetlist(name=name)
    a = netlist.add_inputs("a", width)
    b = netlist.add_inputs("b", width)
    carry = netlist.add_input("cin") if with_carry_in else GateNetlist.CONST_ZERO

    sum_nets: List[str] = []
    for i in range(width):
        if i == 0 and not with_carry_in:
            s, c = netlist.add_gate("HA", [a[i], b[i]], outputs=[f"sum[{i}]", f"c{i}"])
        else:
            s, c = netlist.add_gate(
                "FA", [a[i], b[i], carry], outputs=[f"sum[{i}]", f"c{i}"]
            )
        sum_nets.append(s)
        carry = c
    for s in sum_nets:
        netlist.mark_output(s)
    netlist.mark_output(carry)
    return netlist


def simulate_ripple_adder(netlist: GateNetlist, a_value: int, b_value: int, width: int, cin: int = 0) -> Tuple[int, int]:
    """Drive a gate-level RCA netlist with integers and decode (sum, carry).

    Helper used by the verification tests; the generic logic simulator lives
    in :mod:`repro.hw.simulate`.
    """
    from repro.hw.simulate import simulate_combinational

    if a_value < 0 or b_value < 0:
        raise ValueError("operands must be non-negative")
    values = {}
    for i in range(width):
        values[f"a[{i}]"] = (a_value >> i) & 1
        values[f"b[{i}]"] = (b_value >> i) & 1
    if "cin" in netlist.inputs:
        values["cin"] = cin & 1
    out = simulate_combinational(netlist, values)
    total = 0
    for i in range(width):
        total |= out[f"sum[{i}]"] << i
    carry_net = netlist.outputs[-1]
    return total, out[carry_net]
