"""Switching-activity models used by the power estimation.

PrimeTime-style power analysis needs, for every cell, the expected number of
output transitions per clock cycle (or per evaluation for purely
combinational designs).  Without gate-level simulation of every candidate
design we use the standard architectural model:

* datapath (arithmetic) cells toggle with a base activity that grows with
  the logic depth of the block they sit in, because glitches multiply as
  partial results ripple through deep adder/multiplier cascades;
* hardwired-constant storage (bespoke MUX trees) barely toggles — only the
  select lines change once per cycle;
* registers toggle at most once per cycle plus the clock loading.

The constants below are part of the PDK calibration (see DESIGN.md) and are
shared by the proposed design and all baselines, so relative comparisons do
not depend on per-design tuning.
"""

from __future__ import annotations

from typing import Dict, Mapping

#: Base probability that a datapath cell output toggles on a given cycle.
DATAPATH_BASE_ACTIVITY = 0.18

#: Additional toggles per cell per logic level of depth (glitch propagation).
GLITCH_SLOPE_PER_LEVEL = 0.022

#: Cap on the per-cell glitch multiplier; deep circuits saturate eventually.
MAX_GLITCH_FACTOR = 8.0

#: Activity of hardwired-constant MUX storage (only selects toggle).
STORAGE_ACTIVITY = 0.06

#: Activity of control logic (counters, enables).
CONTROL_ACTIVITY = 0.30

#: Activity of register (DFF) cells, including internal clock toggling.
REGISTER_ACTIVITY = 0.55

#: Activity scale of the *folded* (sequential) compute engine relative to the
#: generic datapath model.  During one classification the input features are
#: held constant; only the coefficient operand changes (once, cleanly, at the
#: cycle boundary when the storage MUX select advances), so roughly half of
#: every multiplier's inputs never toggle and the glitch cascades that the
#: generic datapath model assumes are largely absent.
SEQUENTIAL_OPERAND_REUSE_FACTOR = 0.3

#: Extra toggling of fully-parallel cascaded datapaths.  In a parallel bespoke
#: classifier every primary input changes at once and partial results ripple
#: through multiplier -> adder-tree -> vote logic with no register boundary,
#: so glitches generated in early stages multiply through the later ones.
PARALLEL_CASCADE_GLITCH = 1.9


def glitch_factor(depth_levels: int) -> float:
    """Glitch multiplier of a combinational block of the given logic depth."""
    if depth_levels < 0:
        raise ValueError("depth must be non-negative")
    return min(1.0 + GLITCH_SLOPE_PER_LEVEL * depth_levels, MAX_GLITCH_FACTOR)


def datapath_toggles(
    counts: Mapping[str, int],
    depth_levels: int,
    base_activity: float = DATAPATH_BASE_ACTIVITY,
) -> Dict[str, float]:
    """Expected toggles per cycle for an arithmetic block.

    Every cell in the block is assumed to see the same average activity,
    scaled by the block's glitch factor.  Adder cells (FA/HA) produce two
    outputs, which the factor 1.5 below accounts for on average.
    """
    factor = base_activity * glitch_factor(depth_levels)
    toggles: Dict[str, float] = {}
    for cell, count in counts.items():
        outputs = 1.5 if cell in ("FA", "HA") else 1.0
        toggles[cell] = count * factor * outputs
    return toggles


def storage_toggles(counts: Mapping[str, int], activity: float = STORAGE_ACTIVITY) -> Dict[str, float]:
    """Expected toggles per cycle for hardwired-constant storage."""
    return {cell: count * activity for cell, count in counts.items()}


def control_toggles(counts: Mapping[str, int], activity: float = CONTROL_ACTIVITY) -> Dict[str, float]:
    """Expected toggles per cycle for control logic (counter, FSM)."""
    return {cell: count * activity for cell, count in counts.items()}


def register_toggles(counts: Mapping[str, int], activity: float = REGISTER_ACTIVITY) -> Dict[str, float]:
    """Expected toggles per cycle for register banks."""
    return {cell: count * activity for cell, count in counts.items()}


def scale_toggles(toggles: Mapping[str, float], factor: float) -> Dict[str, float]:
    """Scale a toggle map by a constant factor (e.g. duty cycling a block)."""
    if factor < 0:
        raise ValueError("factor must be non-negative")
    return {cell: t * factor for cell, t in toggles.items()}
