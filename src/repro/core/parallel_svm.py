"""Fully-parallel bespoke SVM baselines (state of the art [2], [3]).

The printed SVM classifiers the paper compares against instantiate dedicated
hardware per coefficient: every classifier's weighted sum is a bespoke
constant-multiplier / adder-tree cone, all cones operate concurrently, and a
combinational vote network resolves the class in a single (long) evaluation.

Two flavours are modelled:

* ``exact`` — the MICRO'20 style of [2]: straightforward bespoke datapaths at
  the trained precision.
* ``approximate`` — the cross-approximation style of [3]: coefficients are
  additionally truncated (LSBs dropped) before hardware generation, shrinking
  every constant multiplier at a small accuracy cost.  Rows marked with a
  star in the paper's Table I correspond to approximate baselines.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.report import ClassifierHardwareReport
from repro.core.voter import CombinationalArgmaxVoter
from repro.hw.activity import PARALLEL_CASCADE_GLITCH, scale_toggles
from repro.hw.area import AreaAnalyzer
from repro.hw.cells import CellLibrary
from repro.hw.netlist import HardwareBlock, parallel, series
from repro.hw.pdk import EGFET_PDK
from repro.hw.power import PowerAnalyzer
from repro.hw.rtl.adders import adder_tree
from repro.hw.rtl.registers import counter_bits
from repro.hw.simulate import ParallelDatapathSimulator
from repro.hw.synthesis import estimate_classifier_score_bound, synthesize_constant_mac
from repro.hw.timing import TimingAnalyzer
from repro.ml.fixed_point import required_bits_for_integer
from repro.ml.metrics import accuracy_percent
from repro.ml.quantization import QuantizedLinearModel


def truncate_model(model: QuantizedLinearModel, drop_bits: int) -> QuantizedLinearModel:
    """Approximate a quantized model by dropping the ``drop_bits`` weight LSBs.

    This mimics the model-to-circuit cross-approximation of [3]: the hardwired
    constants lose their least-significant bits (so their CSD forms get
    sparser and the bespoke multipliers smaller), and the classification is
    performed with the truncated values, so the accuracy impact is real.
    """
    if drop_bits < 0:
        raise ValueError("drop_bits must be non-negative")
    if drop_bits == 0:
        return model
    factor = 1 << drop_bits
    # Round to the nearest representable multiple (not plain truncation) so
    # the approximation stays unbiased, as the cross-approximation flow of
    # [3] does when it re-tunes coefficients to hardware-friendly values.
    truncated_weights = np.round(model.weight_codes / factor).astype(np.int64) * factor
    truncated_biases = np.round(model.bias_codes / factor).astype(np.int64) * factor
    return QuantizedLinearModel(
        weight_codes=truncated_weights,
        bias_codes=truncated_biases,
        input_format=model.input_format,
        weight_format=model.weight_format,
        strategy=model.strategy,
        classes=model.classes,
        pairs=model.pairs,
    )


class ParallelSVMDesign:
    """Fully-parallel bespoke SVM circuit generated from a quantized model."""

    def __init__(
        self,
        model: QuantizedLinearModel,
        style: str = "exact",
        approx_drop_bits: int = 2,
        library: Optional[CellLibrary] = None,
        dataset: str = "",
    ) -> None:
        if style not in ("exact", "approximate"):
            raise ValueError(f"unknown style {style!r}")
        self.style = style
        self.library = library or EGFET_PDK
        self.dataset = dataset
        self.model = (
            truncate_model(model, approx_drop_bits) if style == "approximate" else model
        )

        score_bound = estimate_classifier_score_bound(
            self.model.weight_codes,
            self.model.bias_codes,
            self.model.input_format.max_code,
        )
        self.score_bits = max(required_bits_for_integer(score_bound, signed=True), 2)
        self.simulator = ParallelDatapathSimulator(
            self.model.weight_codes,
            self.model.bias_codes,
            strategy=self.model.strategy,
            pairs=self.model.pairs,
            n_classes=self.model.n_classes,
        )
        # The bespoke circuit is immutable once constructed; cache the (very
        # expensive) per-coefficient synthesis of the full block.
        self._hardware_block: Optional[HardwareBlock] = None

    # ------------------------------------------------------------------ #
    @property
    def n_classifiers(self) -> int:
        return self.model.n_classifiers

    @property
    def n_features(self) -> int:
        return self.model.n_features

    @property
    def cycles_per_classification(self) -> int:
        """The parallel architecture classifies in a single evaluation."""
        return 1

    def hardware(self) -> HardwareBlock:
        """All classifier cones plus the vote / argmax network (cached)."""
        if self._hardware_block is not None:
            return self._hardware_block
        input_bits = self.model.input_format.total_bits
        cones = []
        for k in range(self.n_classifiers):
            cone, _ = synthesize_constant_mac(
                self.model.weight_codes[k],
                int(self.model.bias_codes[k]),
                input_bits=input_bits,
                score_bits=self.score_bits,
                name=f"classifier{k}",
            )
            cones.append(cone)
        cones_block = parallel("classifier_cones", cones)

        index_bits = counter_bits(max(self.model.n_classes, 2))
        if self.model.strategy == "ovr":
            vote = CombinationalArgmaxVoter(
                self.n_classifiers, self.score_bits, index_bits
            ).hardware()
        else:
            vote = self._ovo_vote_network(index_bits)
        design = series(f"parallel_svm[{self.dataset or 'design'}]", [cones_block, vote])
        # No register boundaries: glitches from the multiplier cones propagate
        # through the adder trees and the vote network on every evaluation.
        design.toggles = scale_toggles(design.toggles, PARALLEL_CASCADE_GLITCH)
        self._hardware_block = design
        return design

    def _ovo_vote_network(self, index_bits: int) -> HardwareBlock:
        """Majority-vote network of an OvO design.

        Each class accumulates the sign bits of its pairwise classifiers
        (a small adder tree of one-bit votes) and an argmax tree over the
        per-class counts picks the winner.
        """
        n_classes = self.model.n_classes
        votes_per_class = max(n_classes - 1, 1)
        count_bits = counter_bits(votes_per_class + 1)
        accumulators = [
            adder_tree(votes_per_class, 1, name=f"vote_acc{c}") for c in range(n_classes)
        ]
        acc_block = parallel("vote_accumulators", accumulators)
        argmax = CombinationalArgmaxVoter(n_classes, count_bits, index_bits).hardware()
        return series("ovo_vote", [acc_block, argmax])

    # ------------------------------------------------------------------ #
    def evaluate(
        self,
        X_test: np.ndarray,
        y_test: np.ndarray,
        model_name: Optional[str] = None,
    ) -> ClassifierHardwareReport:
        """Full Table-I-style evaluation of the baseline circuit."""
        if model_name is None:
            model_name = "SVM [2]" if self.style == "exact" else "SVM [3]*"
        block = self.hardware()
        # Purely combinational: the evaluation period is the datapath delay
        # itself (no clock/register overhead).
        timing = TimingAnalyzer(self.library).analyze(block, sequential=False)
        power = PowerAnalyzer(self.library).analyze(
            block, frequency_hz=timing.frequency_hz, cycles_per_classification=1
        )
        area = AreaAnalyzer(self.library).analyze(block)
        accuracy = accuracy_percent(y_test, self.predict(X_test))
        return ClassifierHardwareReport(
            dataset=self.dataset,
            model=model_name,
            accuracy_percent=accuracy,
            area_cm2=area.total_cm2,
            power_mw=power.total_mw,
            frequency_hz=timing.frequency_hz,
            latency_ms=power.latency_ms,
            energy_mj=power.energy_per_classification_mj,
            static_power_mw=power.static_mw,
            dynamic_power_mw=power.dynamic_mw,
            n_cells=block.n_cells(),
            cycles_per_classification=1,
            notes=f"style={self.style}, strategy={self.model.strategy}",
        )

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Class labels predicted by the integer-exact baseline model."""
        return self.model.predict(X)

    def simulate_batch(self, X: np.ndarray) -> np.ndarray:
        """Behavioural-datapath predictions (class ids) for real-valued inputs."""
        codes = self.model.quantize_inputs(np.asarray(X))
        return self.simulator.run_batch(codes)
