"""Sharded flow execution and the persistent on-disk result cache.

Every evaluation surface of this repository — Table I regeneration, the PDK
corner sweeps, the claims benchmark, the CLI — funnels through
:func:`repro.core.design_flow.run_flow`, which trains each (dataset, model)
pair.  Training dominates the wall clock, and the seed implementation ran it
serially and remembered results only in process-local dicts, so every fresh
process paid the whole training bill again on one core.

This module adds the two missing layers:

* :func:`execute_flow_grid` fans a grid of (dataset, kind) pairs out across
  worker processes (``fork``-based :class:`~concurrent.futures.ProcessPoolExecutor`)
  and merges the :class:`~repro.core.design_flow.FlowResult` objects back in
  the caller's requested order, so the output is bit-identical to the serial
  path regardless of completion order.
* :class:`FlowResultCache` persists flow results on disk (default
  ``~/.cache/repro``, overridable via ``--cache-dir`` / ``$REPRO_CACHE_DIR``).
  Entries are keyed by a digest of :meth:`FlowConfig.cache_key` **plus a
  fingerprint of the package's source code**, so editing any module under
  ``repro/`` invalidates every persisted row — stale results can never shadow
  retrained ones.  Hits warm the in-process ``_FLOW_CACHE``, so repeat CLI,
  benchmark and test runs skip retraining entirely.

Each cache entry is one pickle payload (the full ``FlowResult``: report,
design, split) plus a small JSON manifest carrying the human-readable Table I
row, making the cache inspectable without unpickling anything.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.design_flow import (
    FlowConfig,
    FlowResult,
    cached_flow_result,
    run_flow,
    warm_flow_cache,
)

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: Environment variable disabling the persistent cache entirely ("1"/"true").
NO_CACHE_ENV = "REPRO_NO_CACHE"

#: Default upper bound on persisted entries (oldest evicted beyond this).
DISK_CACHE_MAX_ENTRIES = 256

_FINGERPRINT: Optional[str] = None


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``.

    Example::

        os.environ["REPRO_CACHE_DIR"] = "/tmp/repro-cache"
        default_cache_dir()                  # PosixPath('/tmp/repro-cache')
    """
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override).expanduser()
    return Path("~/.cache/repro").expanduser()


def code_fingerprint() -> str:
    """Digest of every ``repro`` source file plus the numeric environment.

    Any edit to the package — a PDK constant, a trainer, a quantizer —
    changes this fingerprint and thereby invalidates every persisted cache
    entry; so does switching the Python interpreter or the numpy build,
    since training numerics can change with either.  This is deliberately
    coarse: correctness over hit rate.  Computed once per process.

    Example::

        key = code_fingerprint()     # 64 hex chars; changes with any edit
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        import platform

        import numpy as np

        package_root = Path(__file__).resolve().parents[1]
        digest = hashlib.sha256()
        digest.update(f"python={platform.python_version()}".encode())
        digest.update(f"|numpy={np.__version__}|".encode())
        for source in sorted(package_root.rglob("*.py")):
            digest.update(str(source.relative_to(package_root)).encode())
            digest.update(b"\0")
            digest.update(source.read_bytes())
            digest.update(b"\0")
        _FINGERPRINT = digest.hexdigest()
    return _FINGERPRINT


def _entry_digest(dataset: str, kind: str, config: FlowConfig) -> str:
    """Filename-safe digest of one (dataset, kind, config, code) combination."""
    payload = repr(config.cache_key(dataset, kind)) + "|" + code_fingerprint()
    return hashlib.sha256(payload.encode()).hexdigest()[:32]


class FlowResultCache:
    """Persistent on-disk layer under the in-process ``_FLOW_CACHE``.

    Parameters
    ----------
    cache_dir:
        Directory holding the entries (created on first store); defaults to
        :func:`default_cache_dir`.
    max_entries:
        Size bound: after a store, the oldest entries beyond this count are
        evicted (by modification time).

    Example::

        cache = FlowResultCache("/tmp/repro-cache")
        result = run_flow_cached("redwine", "ours", cache=cache)  # trains once
        cache.has("redwine", "ours", FlowConfig())                # True
        cache.clear()                                             # drop all
    """

    def __init__(
        self,
        cache_dir: Union[str, Path, None] = None,
        max_entries: int = DISK_CACHE_MAX_ENTRIES,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.cache_dir = Path(cache_dir) if cache_dir is not None else default_cache_dir()
        self.max_entries = max_entries

    # ------------------------------------------------------------------ #
    def _payload_path(self, digest: str) -> Path:
        return self.cache_dir / f"flow-{digest}.pkl"

    def _manifest_path(self, digest: str) -> Path:
        return self.cache_dir / f"flow-{digest}.json"

    def has(self, dataset: str, kind: str, config: FlowConfig) -> bool:
        """Whether a payload for this invocation is currently persisted."""
        return self._payload_path(_entry_digest(dataset, kind, config)).is_file()

    def load(self, dataset: str, kind: str, config: FlowConfig) -> Optional[FlowResult]:
        """The persisted result for one flow invocation, or ``None``.

        A corrupt or unreadable entry is treated as a miss and dropped.
        """
        digest = _entry_digest(dataset, kind, config)
        path = self._payload_path(digest)
        if not path.is_file():
            return None
        try:
            with path.open("rb") as handle:
                result = pickle.load(handle)
        except Exception:
            self._drop(digest)
            return None
        if not isinstance(result, FlowResult):
            self._drop(digest)
            return None
        return result

    def store(self, result: FlowResult, config: FlowConfig) -> Path:
        """Persist one flow result (payload + JSON manifest), then prune."""
        digest = _entry_digest(result.dataset, result.kind, config)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        path = self._payload_path(digest)
        # Write-then-rename so a concurrent reader never sees a torn payload.
        fd, tmp_name = tempfile.mkstemp(dir=str(self.cache_dir), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
            raise
        manifest = {
            "dataset": result.dataset,
            "kind": result.kind,
            "code_fingerprint": code_fingerprint(),
            "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "report": result.report.as_row(),
            "weight_bits_used": result.weight_bits_used,
        }
        self._manifest_path(digest).write_text(json.dumps(manifest, indent=2) + "\n")
        self.prune()
        return path

    def _drop(self, digest: str) -> None:
        for path in (self._payload_path(digest), self._manifest_path(digest)):
            try:
                path.unlink()
            except OSError:
                pass

    def entries(self) -> List[Path]:
        """Payload files currently persisted, oldest first."""
        if not self.cache_dir.is_dir():
            return []
        return sorted(self.cache_dir.glob("flow-*.pkl"), key=lambda p: p.stat().st_mtime)

    def __len__(self) -> int:
        return len(self.entries())

    def prune(self) -> int:
        """Evict the oldest entries beyond ``max_entries``; returns #evicted."""
        entries = self.entries()
        excess = entries[: max(0, len(entries) - self.max_entries)]
        for payload in excess:
            self._drop(payload.stem[len("flow-"):])
        return len(excess)

    def clear(self) -> int:
        """Remove every persisted entry; returns how many were dropped."""
        entries = self.entries()
        for payload in entries:
            self._drop(payload.stem[len("flow-"):])
        return len(entries)


def cache_disabled_by_env() -> bool:
    """Whether ``$REPRO_NO_CACHE`` turns the persistent layer off.

    Example::

        os.environ["REPRO_NO_CACHE"] = "1"
        cache_disabled_by_env()              # True -> default_cache() is None
    """
    return os.environ.get(NO_CACHE_ENV, "").strip().lower() in ("1", "true", "yes")


def default_cache() -> Optional[FlowResultCache]:
    """The default persistent cache, or ``None`` when disabled via env.

    Example::

        cache = default_cache()              # FlowResultCache(~/.cache/repro)
    """
    if cache_disabled_by_env():
        return None
    return FlowResultCache()


#: ``cache=`` arguments accepted by the execution entry points:
#: ``None``/``True`` -> the default persistent cache, ``False`` -> disabled,
#: or an explicit :class:`FlowResultCache`.
CacheSpec = Union[None, bool, FlowResultCache]


def resolve_cache(cache: CacheSpec) -> Optional[FlowResultCache]:
    """Normalise a ``cache=`` argument to a cache instance or ``None``.

    Example::

        resolve_cache(False)                 # None (caching disabled)
        resolve_cache(None)                  # the default persistent cache
    """
    if isinstance(cache, FlowResultCache):
        return cache
    if cache is False:
        return None
    return default_cache()


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``jobs=`` argument: ``None``/1 serial, 0 = all cores.

    Example::

        resolve_jobs(None), resolve_jobs(0)  # (1, os.cpu_count())
    """
    if jobs is None:
        return 1
    if jobs < 0:
        raise ValueError("jobs must be >= 0 (0 = all cores)")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def run_flow_cached(
    dataset_name: str,
    kind: str,
    config: Optional[FlowConfig] = None,
    cache: CacheSpec = None,
) -> FlowResult:
    """:func:`run_flow` with the persistent layer consulted on a miss.

    Lookup order: in-process ``_FLOW_CACHE`` -> on-disk cache (hit warms the
    in-process layer) -> train via :func:`run_flow` (result persisted).
    A one-pair grid, so both entry points share one caching implementation.

    Example::

        result = run_flow_cached("redwine", "ours", fast_config())
        result.report.accuracy_percent       # Table I row, cached next time
    """
    return execute_flow_grid([(dataset_name, kind)], config=config, cache=cache)[
        (dataset_name, kind)
    ]


def _run_flow_worker(task: Tuple[str, str, FlowConfig]) -> FlowResult:
    """Worker-process body: plain serial flow, no persistent-cache writes.

    The parent merges and persists results; keeping workers read-only on the
    cache avoids concurrent writers and keeps the merge deterministic.
    """
    dataset, kind, config = task
    return run_flow(dataset, kind, config)


def execute_flow_grid(
    pairs: Sequence[Tuple[str, str]],
    config: Optional[FlowConfig] = None,
    jobs: Optional[int] = None,
    cache: CacheSpec = None,
) -> Dict[Tuple[str, str], FlowResult]:
    """Run a grid of (dataset, kind) pairs, sharded and cached.

    Parameters
    ----------
    pairs:
        The grid (duplicates are collapsed).  Each pair must name a dataset
        and one of :data:`~repro.core.design_flow.MODEL_KINDS`.
    config:
        Flow configuration shared by every pair.
    jobs:
        ``None``/``1`` runs in-process (bit-identical to the seed behaviour);
        ``N > 1`` shards cache misses across ``N`` forked worker processes;
        ``0`` uses every core.  Training is deterministic (fixed seeds), so
        the merged results are bit-identical to the serial path.
    cache:
        Persistent-layer selection (see :data:`CacheSpec`).

    Returns
    -------
    dict
        ``(dataset, kind) -> FlowResult`` for every requested pair, complete
        regardless of which layer produced each result.

    Example::

        grid = [("redwine", "ours"), ("cardio", "ours")]
        results = execute_flow_grid(grid, config=fast_config(), jobs=0)
        results[("redwine", "ours")].report  # bit-identical to the serial run
    """
    config = config or FlowConfig()
    disk = resolve_cache(cache)
    n_jobs = resolve_jobs(jobs)

    ordered: List[Tuple[str, str]] = []
    for pair in pairs:
        if pair not in ordered:
            ordered.append(tuple(pair))

    results: Dict[Tuple[str, str], FlowResult] = {}
    pending: List[Tuple[str, str]] = []
    for dataset, kind in ordered:
        result = cached_flow_result(dataset, kind, config)
        if result is not None:
            # Backfill the persistent layer so in-process hits still leave a
            # warm cache behind for the next process.
            if disk is not None and not disk.has(dataset, kind, config):
                disk.store(result, config)
        elif disk is not None:
            result = disk.load(dataset, kind, config)
            if result is not None:
                warm_flow_cache(result, config)
        if result is not None:
            results[(dataset, kind)] = result
        else:
            pending.append((dataset, kind))

    if pending:
        if n_jobs > 1 and len(pending) > 1:
            tasks = [(dataset, kind, config) for dataset, kind in pending]
            with ProcessPoolExecutor(max_workers=min(n_jobs, len(tasks))) as pool:
                # pool.map preserves task order, so the merge is deterministic
                # no matter which worker finishes first.
                computed = list(pool.map(_run_flow_worker, tasks))
            for (dataset, kind), result in zip(pending, computed):
                warm_flow_cache(result, config)
                results[(dataset, kind)] = result
        else:
            for dataset, kind in pending:
                results[(dataset, kind)] = run_flow(dataset, kind, config)
        if disk is not None:
            for pair in pending:
                disk.store(results[pair], config)

    return results
