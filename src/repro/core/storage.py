"""Support-vector coefficient storage for printed sequential SVMs.

The paper evaluates two storage styles and keeps the cheaper one:

* **Bespoke MUX storage** (:class:`MuxStorage`) — "the inputs of the MUX
  (excluding the control signal) are hardwired to the parameters of the
  support vectors. This is made feasible by the low costs in PE."  The
  control counter drives the MUX select lines; synthesis collapses the
  constant columns (see :mod:`repro.hw.rtl.mux`).
* **Crossbar ROM storage** (:class:`CrossbarRomStorage`) — "we also evaluated
  a crossbar-based Read-Only Memory (ROM) alternative; however for the
  required storage size, crossbars prove more costly, mainly due to the need
  for printed Analog-to-Digital Converters (ADCs)."  The model below charges
  one printed ADC slice per read-out column plus the (cheap) crossbar dots,
  which is what makes it lose for these storage sizes — the ablation
  benchmark reproduces that comparison.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Sequence

import numpy as np

from repro.hw.activity import storage_toggles
from repro.hw.netlist import HardwareBlock
from repro.hw.rtl.mux import constant_mux_storage
from repro.hw.rtl.registers import counter_bits


class MuxStorage:
    """Bespoke MUX-based storage of the quantized support vectors.

    Parameters
    ----------
    coefficients:
        Integer table of shape ``(n_words, n_values)``: one word per support
        vector, one column per stored value (weights then bias).
    bits_per_value:
        Storage width of each column (two's complement).
    """

    def __init__(self, coefficients: np.ndarray, bits_per_value: Sequence[int]) -> None:
        self.coefficients = np.asarray(coefficients, dtype=np.int64)
        if self.coefficients.ndim != 2:
            raise ValueError("coefficient table must be 2-D")
        self.bits_per_value = [int(b) for b in bits_per_value]
        if len(self.bits_per_value) != self.coefficients.shape[1]:
            raise ValueError("bits_per_value length must match the coefficient columns")
        self._block = constant_mux_storage(
            self.coefficients, self.bits_per_value, name="storage.mux"
        )

    @property
    def n_words(self) -> int:
        """Number of stored support vectors."""
        return int(self.coefficients.shape[0])

    @property
    def n_values_per_word(self) -> int:
        """Number of values per word (m weights + 1 bias)."""
        return int(self.coefficients.shape[1])

    @property
    def word_bits(self) -> int:
        """Total storage bits per word."""
        return int(sum(self.bits_per_value))

    @property
    def total_bits(self) -> int:
        """Total hardwired storage bits."""
        return self.n_words * self.word_bits

    @property
    def select_bits(self) -> int:
        """Width of the select signal the control counter must provide."""
        return counter_bits(self.n_words)

    def read(self, index: int) -> np.ndarray:
        """Return the stored word selected by the control counter value."""
        if not 0 <= index < self.n_words:
            raise IndexError(f"select {index} out of range (0..{self.n_words - 1})")
        return self.coefficients[index].copy()

    def hardware(self) -> HardwareBlock:
        """The storage as a priced hardware block."""
        return self._block


class CrossbarRomStorage:
    """Crossbar-ROM alternative, charged with its printed ADC overhead.

    A crossbar stores one bit per dot (cheap, modelled as wiring), but every
    read-out column needs sensing plus an analog-to-digital conversion stage;
    printed ADCs are notoriously large, which the EGFET library models with
    the heavy ``ADC1`` cell (one slice per output bit).  A small decoder
    driven by the select lines is also required.
    """

    def __init__(self, coefficients: np.ndarray, bits_per_value: Sequence[int]) -> None:
        self.coefficients = np.asarray(coefficients, dtype=np.int64)
        if self.coefficients.ndim != 2:
            raise ValueError("coefficient table must be 2-D")
        self.bits_per_value = [int(b) for b in bits_per_value]
        if len(self.bits_per_value) != self.coefficients.shape[1]:
            raise ValueError("bits_per_value length must match the coefficient columns")

    @property
    def n_words(self) -> int:
        return int(self.coefficients.shape[0])

    @property
    def word_bits(self) -> int:
        return int(sum(self.bits_per_value))

    @property
    def total_bits(self) -> int:
        return self.n_words * self.word_bits

    @property
    def select_bits(self) -> int:
        return counter_bits(self.n_words)

    def read(self, index: int) -> np.ndarray:
        """Return the stored word selected by the row decoder."""
        if not 0 <= index < self.n_words:
            raise IndexError(f"select {index} out of range (0..{self.n_words - 1})")
        return self.coefficients[index].copy()

    def hardware(self) -> HardwareBlock:
        """The crossbar storage (decoder + sense/ADC stages) as a block."""
        # Row decoder: one AND gate per word over the select bits.
        decoder = Counter({"AND2": self.n_words * max(self.select_bits - 1, 1),
                           "INV": self.select_bits})
        # Read-out: one ADC slice per word-bit column (dominant cost), plus a
        # buffer per column to drive the downstream datapath.
        readout = Counter({"ADC1": self.word_bits, "BUF": self.word_bits})
        counts = decoder + readout
        path = Counter({"INV": 1, "AND2": 1, "ADC1": 1})
        return HardwareBlock(
            name="storage.crossbar_rom",
            counts=counts,
            path=path,
            toggles=storage_toggles(counts),
        )


def storage_bits_for_model(weight_bits: int, n_features: int, score_bits: int) -> List[int]:
    """Per-column storage widths for a quantized linear model.

    The ``n_features`` weight columns are stored at ``weight_bits`` each and
    the bias column at the score width (it is pre-scaled to the product
    format, so it needs the full accumulator width).
    """
    if weight_bits < 1 or n_features < 1 or score_bits < 1:
        raise ValueError("invalid storage geometry")
    return [weight_bits] * n_features + [score_bits]
