"""Benchmark-document regression diffing, shared by every bench CLI.

Both ``scripts/bench_simulation.py --compare`` and
``scripts/bench_serving.py --compare`` diff a fresh run against the
committed ``BENCH_*.json`` baseline.  The diff logic is metric-name based,
not schema based: a results document is flattened to its numeric leaves,
and every leaf whose dotted path ends in a known higher-is-better suffix
(throughputs, speedups, reduction percentages, roofline fractions) is
compared.  Metrics present on only one side are skipped — schema drift
between PRs is expected, silent wrong comparisons are not.

Intended as a non-blocking trend signal (timings on shared CI runners are
noisy), so callers print the result and exit 0.

Example::

    current = run_serving_benchmark()
    baseline = load_baseline("BENCH_serving.json")
    regressions = compare_benchmarks(current, baseline)   # prints a summary
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Tuple, Union

#: Leaf-metric suffixes compared by ``--compare`` (all higher-is-better).
COMPARE_METRIC_SUFFIXES = (
    "_per_s",
    "speedup",
    "speedup_vs_interp",
    "speedup_vs_serial",
    "speedup_vs_single_process",
    "reduction_percent",
    "fraction_of_memcpy",
)


def metric_leaves(doc: Dict, prefix: str = "") -> Dict[str, float]:
    """Flatten a results document to ``{dotted.path: value}`` for comparison.

    Only numeric leaves whose path ends in one of
    :data:`COMPARE_METRIC_SUFFIXES` survive; everything else (metadata,
    counts, raw seconds) is ignored.

    Example::

        >>> metric_leaves({"best": {"requests_per_s": 10.0, "n": 4}})
        {'best.requests_per_s': 10.0}
    """
    leaves: Dict[str, float] = {}
    for key, value in doc.items():
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            leaves.update(metric_leaves(value, prefix=f"{path}."))
        elif isinstance(value, (int, float)) and any(
            path.endswith(suffix) for suffix in COMPARE_METRIC_SUFFIXES
        ):
            leaves[path] = float(value)
    return leaves


class BenchmarkBaselineError(ValueError):
    """A ``--compare`` baseline is missing, unreadable or not a benchmark doc."""


#: The shared CLI exit-code contract: 0 = ok, 2 = bad input.  Used by the
#: bench ``--compare`` entry points and ``repro-jobs`` alike, so scripts can
#: distinguish "the tool disagreed" from "I called it wrong".
EXIT_OK = 0
EXIT_BAD_INPUT = 2


def bad_input_exit(tool: str, error: BaseException, stream=None) -> int:
    """Report one bad-input error and return :data:`EXIT_BAD_INPUT`.

    The single choke point for the 0-ok/2-bad-input exit-code contract:
    exactly one line on stderr, formatted ``<tool>: <error>``, never a
    traceback.  ``stream`` overrides stderr for tests.

    Example::

        except BenchmarkBaselineError as error:
            return bad_input_exit("bench_serving --compare", error)
    """
    import sys

    print(f"{tool}: {error}", file=stream if stream is not None else sys.stderr)
    return EXIT_BAD_INPUT


def load_baseline(path: Union[str, Path]) -> Dict:
    """Load and validate a ``--compare`` baseline document.

    Raises :class:`BenchmarkBaselineError` with a message naming the file
    and the problem — missing/unreadable file, invalid JSON, a non-object
    document, or a document with no comparable metric leaves — so the bench
    CLIs can exit non-zero with one clear line instead of a ``KeyError``
    traceback.  Callers should load the baseline *before* the (expensive)
    fresh benchmark run.

    Example::

        baseline = load_baseline("BENCH_simulation.json")
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as error:
        raise BenchmarkBaselineError(
            f"baseline {path} is not readable: {error}"
        ) from error
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as error:
        raise BenchmarkBaselineError(
            f"baseline {path} is not valid JSON: {error}"
        ) from error
    if not isinstance(doc, dict):
        raise BenchmarkBaselineError(
            f"baseline {path} must be a JSON object, got {type(doc).__name__}"
        )
    if not metric_leaves(doc):
        raise BenchmarkBaselineError(
            f"baseline {path} contains no comparable benchmark metrics "
            f"(no numeric leaves ending in {', '.join(COMPARE_METRIC_SUFFIXES)})"
        )
    return doc


def compare_benchmarks(
    current: Dict, baseline: Dict, threshold_percent: float = 10.0
) -> List[Tuple[str, float, float, float]]:
    """Diff two benchmark documents; returns and prints per-section regressions.

    Every shared higher-is-better metric is compared; metrics that dropped
    by more than ``threshold_percent`` are reported as
    ``(dotted_path, baseline_value, current_value, delta_percent)`` tuples,
    grouped by top-level section in the printed summary.

    Example::

        regressions = compare_benchmarks(current, baseline, threshold_percent=10)
        if regressions:
            ...  # advisory only: print, never exit non-zero
    """
    base = metric_leaves(baseline)
    cur = metric_leaves(current)
    regressions = []
    for path in sorted(set(base) & set(cur)):
        if base[path] <= 0:
            continue
        delta = (cur[path] - base[path]) / base[path] * 100.0
        if delta < -threshold_percent:
            regressions.append((path, base[path], cur[path], delta))
    by_section: Dict[str, List] = {}
    for entry in regressions:
        by_section.setdefault(entry[0].split(".", 1)[0], []).append(entry)
    if not regressions:
        print(
            f"benchmark compare: no metric regressed by more than "
            f"{threshold_percent:.0f}% vs baseline"
        )
    for section, entries in sorted(by_section.items()):
        print(f"benchmark compare: regressions in [{section}]")
        for path, b, c, delta in entries:
            print(f"  {path:60s} {b:12.3g} -> {c:12.3g}  ({delta:+.1f}%)")
    skipped = sorted(set(base) ^ set(cur))
    if skipped:
        print(
            f"benchmark compare: {len(skipped)} metric(s) present on only one "
            "side were skipped (schema drift)"
        )
    return regressions
