"""Control circuitry of the sequential SVM.

A ``log2(n)``-bit counter orchestrates the multi-cycle classification: its
value selects the support vector to fetch from storage, identifies the
classifier whose score the voter is currently considering, and terminates
the process after all ``n`` classifiers have been evaluated.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.netlist import HardwareBlock
from repro.hw.rtl.registers import binary_counter, counter_bits


@dataclass
class ControllerState:
    """Architectural state of the controller during simulation."""

    counter: int = 0
    done: bool = False


class SequentialController:
    """Counter-based controller for the multi-cycle SVM evaluation."""

    def __init__(self, n_classifiers: int) -> None:
        if n_classifiers < 1:
            raise ValueError("need at least one classifier")
        self.n_classifiers = int(n_classifiers)
        self._block = binary_counter(self.n_classifiers, name="control.counter")

    @property
    def counter_bits(self) -> int:
        """Width of the control counter (``ceil(log2 n)``, min 1)."""
        return counter_bits(self.n_classifiers)

    @property
    def cycles_per_classification(self) -> int:
        """Number of cycles one classification takes (one per classifier)."""
        return self.n_classifiers

    def hardware(self) -> HardwareBlock:
        """The controller as a priced hardware block."""
        return self._block

    # -- behavioural model -------------------------------------------------- #
    def reset(self) -> ControllerState:
        """State after reset: counter at zero, not done."""
        return ControllerState(counter=0, done=False)

    def step(self, state: ControllerState) -> ControllerState:
        """Advance the controller by one cycle.

        The counter increments until it has selected every classifier; on the
        final classifier it raises ``done`` and wraps back to zero, ready for
        the next classification.
        """
        if state.done:
            return ControllerState(counter=0, done=False)
        if state.counter >= self.n_classifiers - 1:
            return ControllerState(counter=0, done=True)
        return ControllerState(counter=state.counter + 1, done=False)

    def run_sequence(self) -> list:
        """The full select sequence of one classification (0 .. n-1)."""
        selects = []
        state = self.reset()
        for _ in range(self.n_classifiers):
            selects.append(state.counter)
            state = self.step(state)
        if not state.done and self.n_classifiers > 1:
            raise RuntimeError("controller failed to terminate after all classifiers")
        return selects
