"""Repository-root resolution shared by every artifact-writing surface.

The benchmark recorders (``BENCH_simulation.json``, ``BENCH_flow.json``,
``BENCH_serving.json``) and the docs checker all write or read files that
live at the repository root.  The original scripts resolved those paths
relative to the *current working directory*, so running
``python scripts/bench_flow.py`` from anywhere but the checkout root
scattered ``BENCH_*.json`` files around the filesystem.  This module is the
one place that knows how to find the root, regardless of cwd.

Example::

    from repro.core.paths import bench_output_path, repo_root

    repo_root()                          # Path(".../repo") for a checkout
    bench_output_path("BENCH_flow.json") # .../repo/BENCH_flow.json
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

#: Files that must all be present to accept a directory as the repo root.
#: ``pytest.ini`` alone is far too common in unrelated projects (an installed
#: copy of this package could sit inside someone else's checkout), so the
#: repo-specific ``ROADMAP.md`` must be there too.
_ROOT_MARKERS = ("ROADMAP.md", "pytest.ini")


def repo_root() -> Optional[Path]:
    """The repository root directory, or ``None`` outside a checkout.

    Walks upward from this source file looking for a directory carrying
    *all* repository markers, so it works no matter where the process was
    started — scripts, tests and in-checkout imports all resolve the same
    root, while an installed copy of the package (whose parents are not this
    repo) resolves ``None`` instead of hijacking a foreign project.

    Example::

        >>> root = repo_root()
        >>> root is None or (root / "ROADMAP.md").is_file()
        True
    """
    here = Path(__file__).resolve()
    for candidate in here.parents:
        if all((candidate / marker).is_file() for marker in _ROOT_MARKERS):
            return candidate
    return None


def bench_output_path(filename: str) -> Path:
    """Absolute path of a benchmark artifact at the repository root.

    Falls back to a cwd-relative path only when no checkout root can be
    found (e.g. the package was installed site-wide without the repo).

    Example::

        >>> bench_output_path("BENCH_serving.json").name
        'BENCH_serving.json'
    """
    root = repo_root()
    if root is not None:
        return root / filename
    return Path(filename)
